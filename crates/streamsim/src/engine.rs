//! The streaming-pipeline simulation: §4.2 of the paper.
//!
//! Mirrors the paper's SimPy model: "Each node is given a maximum and
//! minimum execution time, a data packet size to consume, and data
//! packet size to emit when the execution time has completed. Discrete
//! events in the simulation model include arrival of a data packet at a
//! node, initiation of execution of that data packet when the node
//! becomes free, and departure of the data packet from the node. The
//! time chosen for execution is chosen from a uniform random
//! distribution using the minimum and maximum times as bounds."
//!
//! Extensions beyond the paper's simulator (both flagged as its
//! shortfalls/future work): optional *bounded* inter-stage queues with
//! blocking backpressure, and exact residual accounting.
//!
//! All stage-local byte quantities are integers; statistics are
//! reported input-referred (normalized) so they are directly comparable
//! with the network-calculus model and the paper's tables.

use nc_core::pipeline::Pipeline;
use nc_des::{ByteQueue, Dist, Sim, SimPool, Span, Tally, Time, TimeWeighted};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::config::{derive_params, NodeParams, ServiceModel, SimConfig};
use crate::result::SimResult;

struct World {
    rng: ChaCha8Rng,
    params: Vec<NodeParams>,
    /// `queues[i]` feeds node `i` (local bytes of node `i`'s input).
    queues: Vec<ByteQueue>,
    busy: Vec<bool>,
    started: Vec<bool>,
    /// Accumulated service time per node (for utilization).
    busy_time: Vec<f64>,
    /// Jobs completed per node.
    jobs_done: Vec<u64>,
    service_model: ServiceModel,
    /// A finished job waiting for downstream space (backpressure).
    pending_out: Vec<Option<u64>>,

    // Source.
    src_remaining: u64,
    src_chunk: u64,
    src_interval: f64,
    src_blocked: bool,

    // Input-referred accounting.
    sink_norm: f64,
    cum_in: f64,
    cum_out: f64,
    in_system: TimeWeighted,
    delays: Tally,
    /// (t, cum_in) steps — always kept for delay lookups.
    input_steps: Vec<(f64, f64)>,
    /// Delay-lookup cursor into `input_steps`: the virtual-delay level
    /// is non-decreasing, so each lookup resumes where the last ended.
    delay_cursor: usize,
    trace: bool,
    trace_out: Vec<(f64, f64)>,
    t_last_out: f64,
}

impl World {
    fn n(&self) -> usize {
        self.params.len()
    }
}

type S = World;

/// Reusable simulation storage for Monte-Carlo replication.
///
/// One replication's event calendar is handed to the next, so a driver
/// looping [`simulate_in`] over seeds stops allocating once the first
/// run has grown the calendar to the workload's high-water mark.
#[derive(Default)]
pub struct SimArena {
    pool: SimPool<World>,
}

impl SimArena {
    /// An empty arena.
    pub fn new() -> SimArena {
        SimArena::default()
    }
}

/// Run the paper's discrete-event simulation of `pipeline`.
///
/// # Panics
/// Panics if the pipeline is invalid (see
/// [`Pipeline::validate`]) or the configuration is inconsistent.
pub fn simulate(pipeline: &Pipeline, config: &SimConfig) -> SimResult {
    simulate_in(&mut SimArena::new(), pipeline, config)
}

/// As [`simulate`], reusing `arena`'s calendar storage across calls.
pub fn simulate_in(arena: &mut SimArena, pipeline: &Pipeline, config: &SimConfig) -> SimResult {
    pipeline
        .validate()
        .unwrap_or_else(|e| panic!("simulate: invalid pipeline: {e}"));
    let params = derive_params(pipeline);
    let n = params.len();

    let src_chunk = config.source_chunk.unwrap_or(params[0].job_in).max(1);
    let src_rate = pipeline.source.rate.to_f64();
    assert!(src_rate > 0.0);
    let sink_norm = {
        let last = &params[n - 1];
        last.norm_in * last.job_in as f64 / last.job_out as f64
    };

    if let Some(caps) = &config.queue_capacities {
        assert_eq!(
            caps.len(),
            n,
            "queue_capacities must have one entry per node"
        );
    }
    let queues: Vec<ByteQueue> = (0..n)
        .map(|i| {
            let cap = config
                .queue_capacities
                .as_ref()
                .map(|caps| caps[i])
                .or(config.queue_capacity);
            match cap {
                None => ByteQueue::unbounded(Time::ZERO),
                Some(c) => {
                    assert!(
                        c >= params[i].job_in,
                        "queue for node '{}' smaller than its job size",
                        params[i].name
                    );
                    // A queue must also admit whole upstream blocks or
                    // the pipeline deadlocks.
                    let upstream = if i == 0 {
                        src_chunk
                    } else {
                        params[i - 1].job_out
                    };
                    assert!(
                        c >= upstream,
                        "queue for node '{}' smaller than the upstream block ({c} < {upstream})",
                        params[i].name
                    );
                    ByteQueue::bounded(Time::ZERO, c)
                }
            }
        })
        .collect();

    let world = World {
        rng: ChaCha8Rng::seed_from_u64(config.seed),
        params,
        queues,
        busy: vec![false; n],
        started: vec![false; n],
        busy_time: vec![0.0; n],
        jobs_done: vec![0u64; n],
        service_model: config.service_model,
        pending_out: vec![None; n],
        src_remaining: config.total_input,
        src_chunk,
        src_interval: src_chunk as f64 / src_rate,
        src_blocked: false,
        sink_norm,
        cum_in: 0.0,
        cum_out: 0.0,
        in_system: TimeWeighted::new(Time::ZERO, 0.0),
        delays: Tally::new(),
        input_steps: Vec::new(),
        delay_cursor: 0,
        trace: config.trace,
        trace_out: Vec::new(),
        t_last_out: 0.0,
    };

    let mut sim = arena.pool.take(world);
    sim.schedule_at(Time::ZERO, source_emit);
    sim.run();

    let w = &sim.state;
    let bytes_out = w.cum_out;
    let makespan = w.t_last_out;
    let residual: f64 = w
        .queues
        .iter()
        .zip(&w.params)
        .map(|(q, p)| q.level() as f64 * p.norm_in)
        .sum();
    let per_queue_peak = w
        .queues
        .iter()
        .zip(&w.params)
        .map(|(q, p)| (p.name.clone(), q.peak() * p.norm_in))
        .collect();
    let horizon = sim.now().as_secs().max(f64::MIN_POSITIVE);
    let per_node = w
        .params
        .iter()
        .enumerate()
        .map(|(i, p)| crate::result::NodeStats {
            name: p.name.clone(),
            utilization: (w.busy_time[i] / horizon).min(1.0),
            jobs: w.jobs_done[i],
            bytes_in: w.jobs_done[i] * p.job_in,
            avg_queue: w.queues[i].avg_occupancy(sim.now()) * p.norm_in,
        })
        .collect();
    let throughput = if makespan > 0.0 {
        bytes_out / makespan
    } else {
        0.0
    };
    let result = SimResult {
        bytes_out,
        makespan,
        throughput,
        steady_throughput: steady_slope(&w.trace_out).unwrap_or(throughput),
        delay_min: w.delays.min().unwrap_or(0.0),
        delay_max: w.delays.max().unwrap_or(0.0),
        delay_mean: w.delays.mean().unwrap_or(0.0),
        peak_backlog: w.in_system.max(),
        per_queue_peak,
        residual,
        trace_in: if w.trace {
            w.input_steps.clone()
        } else {
            Vec::new()
        },
        trace_out: w.trace_out.clone(),
        per_node,
        events: sim.events_processed(),
    };
    arena.pool.put(sim);
    result
}

/// Source event: emit one chunk into the first queue (or block on a
/// bounded queue) and reschedule.
fn source_emit(sim: &mut Sim<S>) {
    let now = sim.now();
    let w = &mut sim.state;
    if w.src_remaining == 0 {
        return;
    }
    let chunk = w.src_chunk.min(w.src_remaining);
    if !w.queues[0].can_put(chunk) {
        // Bounded first queue is full: the source stalls until space
        // appears (pump() will resume it).
        w.src_blocked = true;
        return;
    }
    w.queues[0].put(now, chunk);
    w.src_remaining -= chunk;
    w.cum_in += chunk as f64; // norm_in[0] == 1 by construction
    w.in_system.add(now, chunk as f64);
    w.input_steps.push((now.as_secs(), w.cum_in));
    if w.src_remaining > 0 {
        let dt = Span::secs(sim.state.src_interval);
        sim.schedule_in(dt, source_emit);
    }
    try_start(sim, 0);
}

// The wake protocol. The seed simulator re-ran a full O(n) fixpoint
// scan (deliver / start / resume-source until nothing changed) on every
// event; at BITW scale that scan dominated per-event cost. These
// targeted wakes reach the same fixpoint by re-examining exactly the
// nodes whose enabling conditions the event could have flipped:
//
//   * queue `i` gained bytes, or `pending_out[i]` cleared → `try_start(i)`
//   * node `i` went idle with output, or queue `i+1` freed → `try_deliver(i)`
//   * queue 0 freed space → `resume_source`
//
// Deadlock-freedom is preserved because every byte movement still wakes
// every consumer it could unblock — the wakes are just routed instead
// of rediscovered by scanning. The invariant between events is
// unchanged: no delivery, start, or source resume is possible.

/// Start node `i` if it is idle, unblocked, and has a full job queued.
/// A successful start frees input-queue space, which may unblock the
/// upstream delivery (or the stalled source when `i == 0`).
fn try_start(sim: &mut Sim<S>, i: usize) {
    let now = sim.now();
    let w = &mut sim.state;
    let p = &w.params[i];
    if w.busy[i] || w.pending_out[i].is_some() || !w.queues[i].can_get(p.job_in) {
        return;
    }
    w.queues[i].get(now, p.job_in);
    w.busy[i] = true;
    let startup = if w.started[i] {
        0.0
    } else {
        w.started[i] = true;
        p.startup
    };
    let dist = match w.service_model {
        ServiceModel::Uniform => Dist::Uniform {
            lo: p.exec_min,
            hi: p.exec_max,
        },
        ServiceModel::Exponential => Dist::Exponential { mean: p.exec_avg },
        ServiceModel::Deterministic => Dist::Constant(p.exec_avg),
    };
    let exec = dist.sample(&mut w.rng);
    w.busy_time[i] += exec;
    sim.schedule_in(Span::secs(startup + exec), move |sim| finish(sim, i));
    if i == 0 {
        resume_source(sim);
    } else {
        try_deliver(sim, i - 1);
    }
}

/// Deliver node `i`'s pending output downstream (or to the sink) if
/// space allows, then wake the two nodes the movement affects: `i`
/// (its output slot cleared) and `i + 1` (new input) — in that order,
/// matching the full scan's ascending start order at each wake.
/// Events landing on the exact same timestamp may still interleave
/// differently than a global rescan would; all observables stay within
/// the tolerance/containment bounds the tests assert.
fn try_deliver(sim: &mut Sim<S>, i: usize) {
    let Some(bytes) = sim.state.pending_out[i] else {
        return;
    };
    if i + 1 == sim.state.n() {
        deliver_to_sink(sim, bytes);
        sim.state.pending_out[i] = None;
        try_start(sim, i);
    } else if sim.state.queues[i + 1].can_put(bytes) {
        let now = sim.now();
        sim.state.queues[i + 1].put(now, bytes);
        sim.state.pending_out[i] = None;
        try_start(sim, i);
        try_start(sim, i + 1);
    }
}

/// Restart a source stalled on a full first queue once space appears.
fn resume_source(sim: &mut Sim<S>) {
    if sim.state.src_blocked && sim.state.queues[0].can_put(sim.state.src_chunk) {
        sim.state.src_blocked = false;
        source_emit(sim);
    }
}

/// Node `i` finished a job: its output becomes pending delivery.
fn finish(sim: &mut Sim<S>, i: usize) {
    debug_assert!(sim.state.busy[i]);
    debug_assert!(sim.state.pending_out[i].is_none());
    sim.state.busy[i] = false;
    sim.state.jobs_done[i] += 1;
    sim.state.pending_out[i] = Some(sim.state.params[i].job_out);
    try_deliver(sim, i);
}

/// Final-stage output reaches the sink: record throughput, delay, and
/// the stairstep trace.
fn deliver_to_sink(sim: &mut Sim<S>, local_bytes: u64) {
    let now = sim.now();
    let w = &mut sim.state;
    let out_norm = local_bytes as f64 * w.sink_norm;
    w.cum_out += out_norm;
    w.in_system.add(now, -out_norm);
    w.t_last_out = now.as_secs();

    // Virtual delay: when did this cumulative level enter the system?
    // The level only ever grows, so the stairstep inverse lookup is a
    // cursor that advances monotonically through `input_steps`.
    let level = w.cum_out.min(w.cum_in);
    debug_assert!(!w.input_steps.is_empty());
    while w.delay_cursor + 1 < w.input_steps.len() && w.input_steps[w.delay_cursor].1 < level - 1e-9
    {
        w.delay_cursor += 1;
    }
    let t_in = w.input_steps[w.delay_cursor].0;
    w.delays.record((now.as_secs() - t_in).max(0.0));

    if w.trace {
        w.trace_out.push((now.as_secs(), w.cum_out));
    }
}

/// Slope of the cumulative-output trace between its 10% and 90%
/// levels — the fill/drain-free steady-state rate.
fn steady_slope(trace: &[(f64, f64)]) -> Option<f64> {
    let (_, total) = *trace.last()?;
    if total <= 0.0 || trace.len() < 8 {
        return None;
    }
    let (lo_level, hi_level) = (0.1 * total, 0.9 * total);
    let lo = trace.iter().find(|&&(_, v)| v >= lo_level)?;
    let hi = trace.iter().find(|&&(_, v)| v >= hi_level)?;
    let dt = hi.0 - lo.0;
    if dt <= 0.0 {
        return None;
    }
    Some((hi.1 - lo.1) / dt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_core::num::Rat;
    use nc_core::pipeline::{Node, NodeKind, Source, StageRates};

    fn node(name: &str, rmin: i64, rmax: i64, jin: i64, jout: i64) -> Node {
        Node::new(
            name,
            NodeKind::Compute,
            StageRates::new(Rat::int(rmin), Rat::int((rmin + rmax) / 2), Rat::int(rmax)),
            Rat::ZERO,
            Rat::int(jin),
            Rat::int(jout),
        )
    }

    fn pipeline(rate: i64, nodes: Vec<Node>) -> Pipeline {
        Pipeline::new(
            "test",
            Source {
                rate: Rat::int(rate),
                burst: Rat::int(64),
            },
            nodes,
        )
    }

    fn cfg(total: u64) -> SimConfig {
        SimConfig {
            seed: 1,
            total_input: total,
            source_chunk: Some(64),
            queue_capacity: None,
            queue_capacities: None,
            service_model: ServiceModel::Uniform,
            trace: true,
        }
    }

    #[test]
    fn conserves_volume_identity_pipeline() {
        // One deterministic stage, 1:1 jobs: everything drains.
        let p = pipeline(1000, vec![node("id", 500, 500, 64, 64)]);
        let r = simulate(&p, &cfg(64 * 100));
        assert_eq!(r.bytes_out, 6400.0);
        assert_eq!(r.residual, 0.0);
        assert!(r.events > 0);
    }

    #[test]
    fn throughput_tracks_bottleneck() {
        // Source 1000 B/s feeds a 500 B/s stage: output rate ≈ 500.
        let p = pipeline(1000, vec![node("slow", 500, 500, 64, 64)]);
        let r = simulate(&p, &cfg(64 * 200));
        assert!(
            (r.throughput - 500.0).abs() / 500.0 < 0.05,
            "throughput {} vs 500",
            r.throughput
        );
    }

    #[test]
    fn source_limited_throughput() {
        // Source 300 B/s feeds a 1000 B/s stage: output rate ≈ 300.
        let p = pipeline(300, vec![node("fast", 1000, 1000, 64, 64)]);
        let r = simulate(&p, &cfg(64 * 100));
        assert!(
            (r.throughput - 300.0).abs() / 300.0 < 0.07,
            "throughput {} vs 300",
            r.throughput
        );
    }

    #[test]
    fn job_ratio_volume_conservation() {
        // 4:1 then 1:4 — normalized output equals input.
        let p = pipeline(
            1000,
            vec![
                node("pack", 800, 800, 64, 16),
                node("unpack", 800, 800, 16, 64),
            ],
        );
        let r = simulate(&p, &cfg(64 * 50));
        assert!((r.bytes_out - 3200.0).abs() < 1e-6, "out {}", r.bytes_out);
        assert_eq!(r.residual, 0.0);
    }

    #[test]
    fn delays_positive_and_ordered() {
        let p = pipeline(
            800,
            vec![node("a", 600, 900, 64, 64), node("b", 600, 900, 64, 64)],
        );
        let r = simulate(&p, &cfg(64 * 100));
        assert!(r.delay_min > 0.0);
        assert!(r.delay_min <= r.delay_mean && r.delay_mean <= r.delay_max);
    }

    #[test]
    fn backlog_grows_under_overload() {
        // Overloaded stage: backlog approaches total input.
        let over = pipeline(1000, vec![node("slow", 100, 100, 64, 64)]);
        let under = pipeline(1000, vec![node("fast", 2000, 2000, 64, 64)]);
        let r_over = simulate(&over, &cfg(64 * 50));
        let r_under = simulate(&under, &cfg(64 * 50));
        assert!(r_over.peak_backlog > 4.0 * r_under.peak_backlog);
    }

    #[test]
    fn bounded_queues_backpressure_without_loss() {
        let p = pipeline(
            2000,
            vec![
                node("a", 1000, 1000, 64, 64),
                node("slow", 250, 250, 64, 64),
            ],
        );
        let mut c = cfg(64 * 60);
        c.queue_capacity = Some(256);
        let r = simulate(&p, &c);
        // All data still flows (blocking, not dropping)…
        assert!((r.bytes_out - 64.0 * 60.0).abs() < 1e-6);
        // …and no queue ever exceeded its capacity.
        for (name, peak) in &r.per_queue_peak {
            assert!(*peak <= 256.0 + 1e-9, "queue {name} peaked at {peak}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let p = pipeline(
            800,
            vec![node("a", 600, 900, 64, 64), node("b", 500, 700, 64, 64)],
        );
        let r1 = simulate(&p, &cfg(64 * 40));
        let r2 = simulate(&p, &cfg(64 * 40));
        assert_eq!(r1.throughput, r2.throughput);
        assert_eq!(r1.delay_max, r2.delay_max);
        assert_eq!(r1.peak_backlog, r2.peak_backlog);
        let mut c3 = cfg(64 * 40);
        c3.seed = 999;
        let r3 = simulate(&p, &c3);
        assert_ne!(r1.delay_max, r3.delay_max);
    }

    #[test]
    fn arena_reuse_is_bit_identical() {
        // Pooled replication must not leak any state between runs: a
        // shared arena reproduces the fresh-sim results exactly.
        let p = pipeline(
            800,
            vec![node("a", 600, 900, 64, 64), node("b", 500, 700, 64, 64)],
        );
        let mut arena = SimArena::new();
        for seed in [1u64, 7, 42] {
            let mut c = cfg(64 * 40);
            c.seed = seed;
            let fresh = simulate(&p, &c);
            let pooled = simulate_in(&mut arena, &p, &c);
            assert_eq!(fresh.throughput, pooled.throughput);
            assert_eq!(fresh.delay_max, pooled.delay_max);
            assert_eq!(fresh.peak_backlog, pooled.peak_backlog);
            assert_eq!(fresh.events, pooled.events);
            assert_eq!(fresh.trace_out, pooled.trace_out);
        }
    }

    #[test]
    fn trace_is_monotone_stairstep() {
        let p = pipeline(800, vec![node("a", 600, 900, 64, 64)]);
        let r = simulate(&p, &cfg(64 * 30));
        assert!(!r.trace_out.is_empty());
        for w in r.trace_out.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert!(!r.trace_in.is_empty());
    }

    #[test]
    fn steady_throughput_excludes_fill() {
        // A big startup latency drags the mean rate but not the steady
        // slope.
        let mut slow_start = pipeline(1000, vec![node("s", 500, 500, 64, 64)]);
        slow_start.nodes[0].latency = Rat::new(1, 1); // 1 s startup
        let r = simulate(&slow_start, &cfg(64 * 40));
        assert!(r.throughput < 0.9 * 500.0, "mean {}", r.throughput);
        assert!(
            (r.steady_throughput - 500.0).abs() / 500.0 < 0.05,
            "steady {}",
            r.steady_throughput
        );
    }

    #[test]
    fn per_node_stats_identify_bottleneck() {
        let p = pipeline(
            2000,
            vec![
                node("fast", 1500, 1500, 64, 64),
                node("slow", 300, 300, 64, 64),
            ],
        );
        let r = simulate(&p, &cfg(64 * 100));
        assert_eq!(r.per_node.len(), 2);
        let fast = &r.per_node[0];
        let slow = &r.per_node[1];
        // The slow stage is ~saturated; the fast one mostly idle.
        assert!(slow.utilization > 0.9, "slow util {}", slow.utilization);
        assert!(fast.utilization < 0.4, "fast util {}", fast.utilization);
        // Both processed every job.
        assert_eq!(fast.jobs, 100);
        assert_eq!(slow.jobs, 100);
        assert_eq!(slow.bytes_in, 6400);
        // The slow stage's queue holds the backlog.
        assert!(slow.avg_queue > fast.avg_queue);
    }

    #[test]
    fn service_models_rank_by_variability() {
        // Same pipeline at high load under the three service models:
        // the Markovian (exponential) stages queue far more than the
        // paper's uniform model, which exceeds deterministic — the
        // mechanism behind the M/M/1 baseline's optimism/pessimism
        // mismatch the paper discusses.
        let p = pipeline(900, vec![node("svc", 800, 1200, 64, 64)]);
        let run = |model: ServiceModel| {
            let mut c = cfg(64 * 2000);
            c.service_model = model;
            simulate(&p, &c)
        };
        let det = run(ServiceModel::Deterministic);
        let uni = run(ServiceModel::Uniform);
        let exp = run(ServiceModel::Exponential);
        assert!(
            det.delay_mean <= uni.delay_mean && uni.delay_mean < exp.delay_mean,
            "det {} uni {} exp {}",
            det.delay_mean,
            uni.delay_mean,
            exp.delay_mean
        );
        assert!(exp.peak_backlog > uni.peak_backlog);
    }

    #[test]
    fn residual_reported_for_partial_jobs() {
        // 100 bytes with a 64-byte job: one job runs, 36 bytes stuck.
        let p = pipeline(1000, vec![node("a", 500, 500, 64, 64)]);
        let mut c = cfg(100);
        c.source_chunk = Some(50);
        let r = simulate(&p, &c);
        assert_eq!(r.bytes_out, 64.0);
        assert_eq!(r.residual, 36.0);
    }
}

//! The paper's §5 bump-in-the-wire evaluation — including the
//! traditional-vs-bump-in-the-wire comparison of Figures 7/8 (the
//! qualitative payoff: no PCIe round-trip between the FPGA and the
//! network) and a run of the real LZ4 + AES kernels over a stream.
//!
//! Run with `cargo run --release --example bump_in_the_wire`.

use streamcalc::apps::{bitw, format_table};
use streamcalc::core::num::Rat;
use streamcalc::core::pipeline::{Node, NodeKind, Pipeline, StageRates};
use streamcalc::core::units::{fmt_bytes, fmt_time, gib_per_s};
use streamcalc::core::Value;
use streamcalc::workloads::aes::{cbc_decrypt, cbc_encrypt, Aes256};
use streamcalc::workloads::lz4;

fn main() {
    // ----- 1. The real kernels on a streamed payload ----------------
    let payload: Vec<u8> = b"telemetry record 0042: temperature=21.5C pressure=1013hPa "
        .iter()
        .cycle()
        .take(1 << 20)
        .copied()
        .collect();
    let (blocks, ratio) = lz4::compress_chunked(&payload, 64 << 10);
    let aes = Aes256::new(&[9u8; 32]);
    let iv = [3u8; 16];
    let encrypted: Vec<Vec<u8>> = blocks.iter().map(|b| cbc_encrypt(&aes, &iv, b)).collect();
    // ... network ... then the receive side:
    let decrypted: Vec<Vec<u8>> = encrypted
        .iter()
        .map(|b| cbc_decrypt(&aes, &iv, b).expect("valid ciphertext"))
        .collect();
    let restored = lz4::decompress_chunked(&decrypted, 64 << 10).expect("valid stream");
    assert_eq!(restored, payload);
    println!(
        "streamed 1 MiB through compress->encrypt->decrypt->decompress (ratio {ratio:.2}x): OK\n"
    );

    // ----- 2. The paper's Table 3 + bounds ---------------------------
    let repro = bitw::reproduce(42);
    println!(
        "{}",
        format_table(
            "Table 3: bump-in-the-wire throughput (ours vs paper)",
            &repro.table3
        )
    );
    println!(
        "delay bound d = {} (paper 38 us), backlog bound x = {} (paper 3 KiB)",
        fmt_time(Value::finite(Rat::from_f64(repro.bounds.delay_bound_s))),
        fmt_bytes(Value::finite(Rat::from_f64(
            repro.bounds.backlog_bound_bytes
        ))),
    );
    println!(
        "light-load sim delay [{:.1}, {:.1}] us, peak backlog {:.0} B, within bounds: {}\n",
        repro.bounds.sim_delay_min_s * 1e6,
        repro.bounds.sim_delay_max_s * 1e6,
        repro.bounds.sim_backlog_bytes,
        repro.bounds.sim_within_bounds(),
    );

    // ----- 3. Figures 7 vs 8: the point of bump-in-the-wire ---------
    // Traditional deployment: the FPGA result must cross PCIe back to
    // the host and again to the NIC before hitting the network. Bump in
    // the wire removes both hops.
    let traditional = with_extra_pcie_hops(bitw::pipeline(bitw::Scenario::Pessimistic));
    let m_trad = traditional.build_model();
    let m_bitw = bitw::pipeline(bitw::Scenario::Pessimistic).build_model();
    println!("traditional vs bump-in-the-wire (pessimistic scenario):");
    println!(
        "  total latency T_tot: {} vs {}",
        fmt_time(Value::finite(m_trad.total_latency)),
        fmt_time(Value::finite(m_bitw.total_latency)),
    );
    println!(
        "  delay estimate d:    {} vs {}",
        fmt_time(m_trad.heuristic_delay()),
        fmt_time(m_bitw.heuristic_delay()),
    );
    println!(
        "  backlog estimate x:  {} vs {}",
        fmt_bytes(Value::finite(Rat::from_f64(
            m_trad.heuristic_backlog().to_f64()
        ))),
        fmt_bytes(Value::finite(Rat::from_f64(
            m_bitw.heuristic_backlog().to_f64()
        ))),
    );
    let d_gain = m_trad.heuristic_delay().to_f64() / m_bitw.heuristic_delay().to_f64();
    println!("  bump-in-the-wire cuts the delay estimate {d_gain:.2}x");
    assert!(d_gain > 1.0);
}

/// Insert the two host-side PCIe crossings of the traditional (Figure
/// 7) deployment: FPGA -> host memory -> NIC.
fn with_extra_pcie_hops(mut p: Pipeline) -> Pipeline {
    let hop = |name: &str| {
        Node::new(
            name,
            NodeKind::PcieLink,
            StageRates::fixed(gib_per_s(11.0)),
            streamcalc::core::units::micros(5.0),
            Rat::int(1024),
            Rat::int(1024),
        )
    };
    // After encrypt (index 1): FPGA -> host, then host -> NIC.
    p.nodes.insert(2, hop("pcie_fpga_to_host"));
    p.nodes.insert(3, hop("pcie_host_to_nic"));
    p.name = "traditional FPGA deployment".into();
    p
}

//! Vendored `Serialize`/`Deserialize` derive macros.
//!
//! The build environment has no registry access, so `syn`/`quote` are
//! unavailable; the item definition is parsed directly from the
//! `proc_macro` token stream and the impls are emitted as source
//! strings. Supported shapes are the ones this workspace uses:
//! named-field structs (with `#[serde(skip)]`), unit enums, and
//! externally-tagged data enums with newtype or struct variants.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Clone)]
struct Field {
    name: String,
    ty: String,
    skip: bool,
    is_option: bool,
    /// `#[serde(default)]` → `Some(None)`; `#[serde(default = "path")]`
    /// → `Some(Some(path))`. Missing fields deserialize to the default
    /// instead of erroring.
    default: Option<Option<String>>,
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Field-level `#[serde(...)]` options this derive understands.
#[derive(Default)]
struct FieldAttrs {
    skip: bool,
    default: Option<Option<String>>,
}

/// Parse one attribute group's contents (`serde(...)`) into `attrs`.
fn parse_serde_attr(group: &proc_macro::Group, attrs: &mut FieldAttrs) {
    let mut it = group.stream().into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(inner)) = it.next() else {
        return;
    };
    let toks: Vec<TokenTree> = inner.stream().into_iter().collect();
    let mut j = 0;
    while j < toks.len() {
        match &toks[j] {
            TokenTree::Ident(id) if id.to_string() == "skip" => attrs.skip = true,
            TokenTree::Ident(id) if id.to_string() == "default" => {
                // Bare `default`, or `default = "path::to::fn"`.
                if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                    (toks.get(j + 1), toks.get(j + 2))
                {
                    if eq.as_char() == '=' {
                        let path = lit.to_string();
                        attrs.default = Some(Some(path.trim_matches('"').to_string()));
                        j += 2;
                        continue;
                    }
                }
                attrs.default = Some(None);
            }
            _ => {}
        }
        j += 1;
    }
}

/// Skip attributes starting at `i`, returning (next index, parsed
/// serde field options).
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, FieldAttrs) {
    let mut attrs = FieldAttrs::default();
    while let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
            parse_serde_attr(g, &mut attrs);
        }
        i += 2;
    }
    (i, attrs)
}

/// Skip a visibility modifier (`pub`, `pub(crate)`, ...) at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Parse `name: Type` fields from the contents of a brace group.
fn parse_fields(body: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, attrs) = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, next);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found `{other}`"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, found `{other}`"),
        }
        // Collect type tokens until a comma at angle-bracket depth 0.
        let mut ty = Vec::new();
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                _ => {}
            }
            ty.push(tokens[i].to_string());
            i += 1;
        }
        i += 1; // past the comma (or end)
        let is_option = ty.first().map(String::as_str) == Some("Option");
        fields.push(Field {
            name,
            ty: ty.join(" "),
            skip: attrs.skip,
            is_option,
            default: attrs.default,
        });
    }
    fields
}

fn parse_variants(body: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, _) = skip_attrs(&tokens, i);
        i = next;
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found `{other}`"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_fields(g);
                i += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Past an optional discriminant to the separating comma.
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    loop {
        let (next, _) = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, next);
        if i == next && !matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            break;
        }
        if !matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#')
            && !matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub")
        {
            break;
        }
    }
    let kw = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found `{other}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found `{other}`"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive(Serialize/Deserialize): generic types are not supported by the vendored serde_derive");
    }
    let body = match &tokens[i] {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g,
        other => panic!("expected braced {kw} body, found `{other}`"),
    };
    match kw.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_fields(body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("cannot derive for `{other}` items"),
    }
}

// ---------------------------------------------------------------- Serialize

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            let mut body = String::new();
            for f in &live {
                body.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __state, \"{0}\", &self.{0})?;\n",
                    f.name
                ));
            }
            format!(
                "impl ::serde::ser::Serialize for {name} {{\n\
                     fn serialize<__S: ::serde::ser::Serializer>(&self, __serializer: __S) -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                         let mut __state = ::serde::ser::Serializer::serialize_struct(__serializer, \"{name}\", {len})?;\n\
                         {body}\
                         ::serde::ser::SerializeStruct::end(__state)\n\
                     }}\n\
                 }}\n",
                len = live.len(),
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::ser::Serializer::serialize_unit_variant(__serializer, \"{name}\", {idx}u32, \"{vn}\"),\n"
                    )),
                    VariantKind::Newtype => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::ser::Serializer::serialize_newtype_variant(__serializer, \"{name}\", {idx}u32, \"{vn}\", __f0),\n"
                    )),
                    VariantKind::Struct(fields) => {
                        let pat: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut sv = String::new();
                        for f in fields {
                            sv.push_str(&format!(
                                "::serde::ser::SerializeStruct::serialize_field(&mut __sv, \"{0}\", {0})?;\n",
                                f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {pat} }} => {{\n\
                                 let mut __sv = ::serde::ser::Serializer::serialize_struct_variant(__serializer, \"{name}\", {idx}u32, \"{vn}\", {len})?;\n\
                                 {sv}\
                                 ::serde::ser::SerializeStruct::end(__sv)\n\
                             }}\n",
                            pat = pat.join(", "),
                            len = fields.len(),
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::ser::Serialize for {name} {{\n\
                     fn serialize<__S: ::serde::ser::Serializer>(&self, __serializer: __S) -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}\n"
            )
        }
    }
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let out = format!("const _: () = {{\n{}\n}};", gen_serialize(&item));
    out.parse().unwrap()
}

// -------------------------------------------------------------- Deserialize

/// Emit a `Deserialize` impl (map-keyed visitor) for a named-field
/// struct. Reused for the shadow structs backing enum struct variants.
fn gen_struct_deserialize(name: &str, fields: &[Field]) -> String {
    let mut locals = String::new();
    let mut arms = String::new();
    let mut build = String::new();
    for f in fields {
        let fname = &f.name;
        if f.skip {
            build.push_str(&format!("{fname}: ::core::default::Default::default(),\n"));
            continue;
        }
        locals.push_str(&format!(
            "let mut __f_{fname}: ::core::option::Option<{ty}> = ::core::option::Option::None;\n",
            ty = f.ty
        ));
        arms.push_str(&format!(
            "\"{fname}\" => {{ __f_{fname} = ::core::option::Option::Some(::serde::de::MapAccess::next_value(&mut __map)?); }}\n"
        ));
        let missing = match (&f.default, f.is_option) {
            (Some(Some(path)), _) => format!("{path}()"),
            (Some(None), _) => "::core::default::Default::default()".to_string(),
            (None, true) => "::core::option::Option::None".to_string(),
            (None, false) => format!(
                "return ::core::result::Result::Err(::serde::de::Error::missing_field(\"{fname}\"))"
            ),
        };
        build.push_str(&format!(
            "{fname}: match __f_{fname} {{ ::core::option::Option::Some(__v) => __v, ::core::option::Option::None => {missing} }},\n"
        ));
    }
    format!(
        "impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::de::Deserializer<'de>>(__deserializer: __D) -> ::core::result::Result<Self, __D::Error> {{\n\
                 struct __Visitor;\n\
                 impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                     type Value = {name};\n\
                     fn expecting(&self, __f: &mut ::core::fmt::Formatter) -> ::core::fmt::Result {{\n\
                         __f.write_str(\"struct {name}\")\n\
                     }}\n\
                     fn visit_map<__A: ::serde::de::MapAccess<'de>>(self, mut __map: __A) -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                         {locals}\
                         while let ::core::option::Option::Some(__key) = ::serde::de::MapAccess::next_key::<::std::string::String>(&mut __map)? {{\n\
                             match __key.as_str() {{\n\
                                 {arms}\
                                 _ => {{ ::serde::de::MapAccess::skip_value(&mut __map)?; }}\n\
                             }}\n\
                         }}\n\
                         ::core::result::Result::Ok({name} {{\n{build}}})\n\
                     }}\n\
                 }}\n\
                 ::serde::de::Deserializer::deserialize_any(__deserializer, __Visitor)\n\
             }}\n\
         }}\n"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit: Vec<&Variant> = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .collect();
    let names_list: Vec<String> = variants.iter().map(|v| format!("\"{}\"", v.name)).collect();
    let names_list = names_list.join(", ");

    let mut shadows = String::new();
    let mut map_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.kind {
            VariantKind::Unit => map_arms.push_str(&format!(
                "\"{vn}\" => {{ ::serde::de::MapAccess::skip_value(&mut __map)?; ::core::result::Result::Ok({name}::{vn}) }}\n"
            )),
            VariantKind::Newtype => map_arms.push_str(&format!(
                "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}(::serde::de::MapAccess::next_value(&mut __map)?)),\n"
            )),
            VariantKind::Struct(fields) => {
                let shadow = format!("__Serde_{name}_{vn}");
                let decl: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{}: {}", f.name, f.ty))
                    .collect();
                shadows.push_str(&format!(
                    "#[allow(non_camel_case_types)]\nstruct {shadow} {{ {} }}\n{}",
                    decl.join(", "),
                    gen_struct_deserialize(&shadow, fields),
                ));
                let rebuild: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{0}: __sh.{0}", f.name))
                    .collect();
                map_arms.push_str(&format!(
                    "\"{vn}\" => {{\n\
                         let __sh: {shadow} = ::serde::de::MapAccess::next_value(&mut __map)?;\n\
                         ::core::result::Result::Ok({name}::{vn} {{ {rebuild} }})\n\
                     }}\n",
                    rebuild = rebuild.join(", "),
                ));
            }
        }
    }

    let visit_str = if unit.is_empty() {
        String::new()
    } else {
        let mut arms = String::new();
        for v in &unit {
            arms.push_str(&format!(
                "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),\n",
                vn = v.name
            ));
        }
        format!(
            "fn visit_str<__E: ::serde::de::Error>(self, __v: &str) -> ::core::result::Result<Self::Value, __E> {{\n\
                 match __v {{\n\
                     {arms}\
                     __other => ::core::result::Result::Err(::serde::de::Error::unknown_variant(__other, &[{names_list}])),\n\
                 }}\n\
             }}\n"
        )
    };

    format!(
        "{shadows}\
         impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::de::Deserializer<'de>>(__deserializer: __D) -> ::core::result::Result<Self, __D::Error> {{\n\
                 struct __Visitor;\n\
                 impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                     type Value = {name};\n\
                     fn expecting(&self, __f: &mut ::core::fmt::Formatter) -> ::core::fmt::Result {{\n\
                         __f.write_str(\"enum {name}\")\n\
                     }}\n\
                     {visit_str}\
                     fn visit_map<__A: ::serde::de::MapAccess<'de>>(self, mut __map: __A) -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                         let __tag: ::std::string::String = match ::serde::de::MapAccess::next_key(&mut __map)? {{\n\
                             ::core::option::Option::Some(__k) => __k,\n\
                             ::core::option::Option::None => return ::core::result::Result::Err(::serde::de::Error::custom(\"expected a variant tag\")),\n\
                         }};\n\
                         match __tag.as_str() {{\n\
                             {map_arms}\
                             __other => ::core::result::Result::Err(::serde::de::Error::unknown_variant(__other, &[{names_list}])),\n\
                         }}\n\
                     }}\n\
                 }}\n\
                 ::serde::de::Deserializer::deserialize_any(__deserializer, __Visitor)\n\
             }}\n\
         }}\n"
    )
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => gen_struct_deserialize(name, fields),
        Item::Enum { name, variants } => gen_enum_deserialize(name, variants),
    };
    let out = format!("const _: () = {{\n{body}\n}};");
    out.parse().unwrap()
}

//! The BLASTN pipeline stages (§4.1 of the paper).
//!
//! Each function is one stage of the NCBI BLASTN computation as the
//! paper's Mercator/GPU implementation organizes it: seed match, seed
//! enumeration, small extension, ungapped extension. All stages are
//! filters or expanders over a stream of work items — exactly the
//! irregular-dataflow behaviour that motivates the queues between
//! stages and the job-ratio modeling.

use crate::fasta::base_at;

use super::index::{kmer_code, QueryIndex, SEED_LEN};

/// A seed match: database position `p`, query position `q` (base
/// coordinates).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeedMatch {
    /// Database position of the 8-mer.
    pub p: u32,
    /// Query position of the 8-mer.
    pub q: u32,
}

/// An extension result: a match with its score and extent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Extension {
    /// The originating seed.
    pub seed: SeedMatch,
    /// Leftward extent in bases (from the seed start).
    pub left: u32,
    /// Rightward extent in bases (from the seed end).
    pub right: u32,
    /// Alignment score (ungapped stage) or total length (small stage).
    pub score: i32,
}

/// Stage 2 — **seed match**: scan every byte-aligned 8-mer of the 2-bit
/// database (stride 4 bases = 1 byte, per §4.1) and keep positions
/// whose 8-mer occurs in the query. "Seed matching in particular is a
/// highly effective filter."
pub fn seed_match(db_packed: &[u8], db_len: usize, index: &QueryIndex) -> Vec<u32> {
    let mut hits = Vec::new();
    if db_len < SEED_LEN {
        return hits;
    }
    let mut p = 0usize;
    while p + SEED_LEN <= db_len {
        if index.contains(kmer_code(db_packed, p)) {
            hits.push(p as u32);
        }
        p += 4; // byte-aligned stride
    }
    hits
}

/// Stage 3 — **seed enumeration**: expand each hit position into all
/// `(p, q)` pairs by re-reading the 8-mer from the database and listing
/// its query positions. "This stage produces on average 1–2 matches per
/// input position" for non-repetitive queries.
pub fn seed_enumeration(db_packed: &[u8], hits: &[u32], index: &QueryIndex) -> Vec<SeedMatch> {
    let mut out = Vec::with_capacity(hits.len() * 2);
    for &p in hits {
        let code = kmer_code(db_packed, p as usize);
        out.extend(index.positions(code).iter().map(|&q| SeedMatch { p, q }));
    }
    out
}

/// Stage 4 — **small extension**: "attempts to extend each match to the
/// left and right by up to 3 bases. If a match `(p, q)` can be extended
/// to a total length of at least 11, it is passed on."
pub fn small_extension(
    db_packed: &[u8],
    db_len: usize,
    query_packed: &[u8],
    query_len: usize,
    seeds: &[SeedMatch],
) -> Vec<Extension> {
    const MAX_EXT: u32 = 3;
    const MIN_TOTAL: u32 = 11;
    let mut out = Vec::new();
    for &s in seeds {
        let mut left = 0u32;
        while left < MAX_EXT {
            let (dp, dq) = (s.p as i64 - left as i64 - 1, s.q as i64 - left as i64 - 1);
            if dp < 0 || dq < 0 {
                break;
            }
            if base_at(db_packed, dp as usize) != base_at(query_packed, dq as usize) {
                break;
            }
            left += 1;
        }
        let mut right = 0u32;
        while right < MAX_EXT {
            let (dp, dq) = (
                s.p as usize + SEED_LEN + right as usize,
                s.q as usize + SEED_LEN + right as usize,
            );
            if dp >= db_len || dq >= query_len {
                break;
            }
            if base_at(db_packed, dp) != base_at(query_packed, dq) {
                break;
            }
            right += 1;
        }
        let total = SEED_LEN as u32 + left + right;
        if total >= MIN_TOTAL {
            out.push(Extension {
                seed: s,
                left,
                right,
                score: total as i32,
            });
        }
    }
    out
}

/// Scoring and windowing parameters for ungapped extension.
#[derive(Clone, Copy, Debug)]
pub struct UngappedParams {
    /// Score for a matching base (BLASTN default +1).
    pub match_score: i32,
    /// Penalty for a mismatch (BLASTN default −3).
    pub mismatch_score: i32,
    /// X-drop: stop extending once the running score falls this far
    /// below the best seen.
    pub x_drop: i32,
    /// Window half-width around the seed (§4.1: "at most a fixed-size
    /// window (currently 128 bases) centered on the initial seed
    /// match").
    pub window: u32,
    /// Minimum score to report (§4.1: "Only seed matches whose
    /// highest-scoring ungapped extension score above a specified
    /// threshold are returned").
    pub threshold: i32,
}

impl Default for UngappedParams {
    fn default() -> Self {
        UngappedParams {
            match_score: 1,
            mismatch_score: -3,
            x_drop: 10,
            window: 64,
            threshold: 16,
        }
    }
}

/// Stage 5 — **ungapped extension**: extend with match/mismatch
/// scoring and an X-drop cutoff, within the window; keep extensions
/// scoring above the threshold.
pub fn ungapped_extension(
    db_packed: &[u8],
    db_len: usize,
    query_packed: &[u8],
    query_len: usize,
    candidates: &[Extension],
    params: &UngappedParams,
) -> Vec<Extension> {
    let mut out = Vec::new();
    for &c in candidates {
        let s = c.seed;
        // Seed itself scores as 8 matches.
        let seed_score = SEED_LEN as i32 * params.match_score;

        // Extend right from the seed end.
        let (mut best_r, mut run, mut best_right) = (0i32, 0i32, 0u32);
        let mut k = 0u32;
        while k < params.window {
            let (dp, dq) = (
                s.p as usize + SEED_LEN + k as usize,
                s.q as usize + SEED_LEN + k as usize,
            );
            if dp >= db_len || dq >= query_len {
                break;
            }
            run += if base_at(db_packed, dp) == base_at(query_packed, dq) {
                params.match_score
            } else {
                params.mismatch_score
            };
            if run > best_r {
                best_r = run;
                best_right = k + 1;
            }
            if best_r - run >= params.x_drop {
                break;
            }
            k += 1;
        }

        // Extend left from the seed start.
        let (mut best_l, mut run, mut best_left) = (0i32, 0i32, 0u32);
        let mut k = 0u32;
        while k < params.window {
            let dp = s.p as i64 - 1 - k as i64;
            let dq = s.q as i64 - 1 - k as i64;
            if dp < 0 || dq < 0 {
                break;
            }
            run += if base_at(db_packed, dp as usize) == base_at(query_packed, dq as usize) {
                params.match_score
            } else {
                params.mismatch_score
            };
            if run > best_l {
                best_l = run;
                best_left = k + 1;
            }
            if best_l - run >= params.x_drop {
                break;
            }
            k += 1;
        }

        let score = seed_score + best_l + best_r;
        if score >= params.threshold {
            out.push(Extension {
                seed: s,
                left: best_left,
                right: best_right,
                score,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fasta::{fa2bit, random_dna};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn packed(s: &[u8]) -> Vec<u8> {
        fa2bit(s)
    }

    #[test]
    fn seed_match_finds_planted_kmer() {
        // Plant the query's 8-mer at a byte-aligned database position.
        let query = b"ACGTACGTCCCCCCCC";
        let mut db = random_dna(256, &mut ChaCha8Rng::seed_from_u64(3));
        db[40..48].copy_from_slice(b"ACGTACGT");
        let qp = packed(query);
        let dp = packed(&db);
        let idx = QueryIndex::build(&qp, query.len());
        let hits = seed_match(&dp, db.len(), &idx);
        assert!(hits.contains(&40), "hits: {hits:?}");
    }

    #[test]
    fn seed_match_filters_most_random_positions() {
        // A short query covers few of the 65536 8-mers, so almost all
        // random database positions are filtered ("eliminating the vast
        // majority of input 8-mers").
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let query = random_dna(512, &mut rng);
        let db = random_dna(1 << 16, &mut rng);
        let qp = packed(&query);
        let dbp = packed(&db);
        let idx = QueryIndex::build(&qp, query.len());
        let positions_scanned = (db.len() - 8) / 4 + 1;
        let hits = seed_match(&dbp, db.len(), &idx);
        let pass_rate = hits.len() as f64 / positions_scanned as f64;
        // ~505 distinct 8-mers / 65536 ≈ 0.8% expected.
        assert!(pass_rate < 0.03, "pass rate {pass_rate}");
        assert!(!hits.is_empty(), "some hits expected at this size");
    }

    #[test]
    fn enumeration_expands_repeats() {
        // Query repeats its 8-mer: each hit expands to several (p, q).
        let query = b"ACGTACGTACGTACGT"; // ACGTACGT at q = 0, 4, 8
        let mut db = random_dna(64, &mut ChaCha8Rng::seed_from_u64(5));
        db[16..24].copy_from_slice(b"ACGTACGT");
        let qp = packed(query);
        let dbp = packed(&db);
        let idx = QueryIndex::build(&qp, query.len());
        let hits = seed_match(&dbp, db.len(), &idx);
        let seeds = seed_enumeration(&dbp, &hits, &idx);
        let at_16: Vec<_> = seeds.iter().filter(|s| s.p == 16).collect();
        assert_eq!(at_16.len(), 3);
    }

    #[test]
    fn small_extension_filters_short_matches() {
        // Identical 8-mer context but divergent flanks: total length 8
        // < 11 → filtered.
        let query = b"TTTTACGTACGTTTTT";
        let db = b"GGGGACGTACGTGGGG";
        let qp = packed(query);
        let dbp = packed(db);
        let seed = SeedMatch { p: 4, q: 4 };
        let out = small_extension(&dbp, db.len(), &qp, query.len(), &[seed]);
        assert!(out.is_empty());
    }

    #[test]
    fn small_extension_passes_long_matches() {
        // Flanks match on both sides: 8 + 3 + 3 = 14 ≥ 11.
        let query = b"AATTTACGTACGTCCAA";
        let db = b"GGTTTACGTACGTCCGG";
        let qp = packed(query);
        let dbp = packed(db);
        let seed = SeedMatch { p: 5, q: 5 };
        let out = small_extension(&dbp, db.len(), &qp, query.len(), &[seed]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].left, 3);
        assert_eq!(out[0].right, 2);
        assert_eq!(out[0].score, 13);
    }

    #[test]
    fn ungapped_extension_scores_planted_homology() {
        // A 60-base identical region: score ≈ 60 with defaults.
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let region = random_dna(60, &mut rng);
        let mut query = random_dna(200, &mut rng);
        let mut db = random_dna(400, &mut rng);
        query[100..160].copy_from_slice(&region);
        db[200..260].copy_from_slice(&region);
        let qp = packed(&query);
        let dbp = packed(&db);
        let seed = SeedMatch { p: 220, q: 120 }; // inside the region
        let cand = Extension {
            seed,
            left: 3,
            right: 3,
            score: 14,
        };
        let out = ungapped_extension(
            &dbp,
            db.len(),
            &qp,
            query.len(),
            &[cand],
            &UngappedParams::default(),
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].score >= 50, "score {}", out[0].score);
    }

    #[test]
    fn ungapped_extension_rejects_noise() {
        // Random flanks: score stays near the seed score of 8 < 16.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let query = random_dna(200, &mut rng);
        let mut db = random_dna(400, &mut rng);
        db[100..108].copy_from_slice(&query[50..58]);
        let qp = packed(&query);
        let dbp = packed(&db);
        let cand = Extension {
            seed: SeedMatch { p: 100, q: 50 },
            left: 0,
            right: 0,
            score: 8,
        };
        let out = ungapped_extension(
            &dbp,
            db.len(),
            &qp,
            query.len(),
            &[cand],
            &UngappedParams::default(),
        );
        assert!(out.is_empty());
    }
}

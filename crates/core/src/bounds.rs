//! The performance bounds of §3 of the paper.
//!
//! Given an arrival curve `α`, a service curve `β`, and optionally a
//! maximum service curve `γ`, network calculus yields:
//!
//! * **backlog bound** `x ≤ sup_t {α(t) − β(t)}`,
//! * **virtual delay bound** `d ≤ sup_t inf{d : α(t) ≤ β(t+d)}`,
//! * **output flow bound** `α* = (α ⊗ γ) ⊘ β`.
//!
//! The paper's §3 prints the output bound as `(α ⊗ γ) ⊗ β` but
//! describes "calculating both a min-plus convolution and a min-plus
//! de-convolution"; the standard result (Le Boudec & Thiran, Thm 1.4.3)
//! is the deconvolution, which we implement (see DESIGN.md §5).
//!
//! All bounds are exact rational computations; the overload case
//! `R_α > R_β` correctly yields `+∞` (the same divergence queueing
//! theory predicts for ρ > 1).

use crate::curve::pwl::Curve;
use crate::num::{Rat, Value};
use crate::ops::{horizontal_deviation, min_plus_conv, min_plus_deconv, vertical_deviation};

/// Maximum data resident in the system (the paper's `x(t)` bound).
pub fn backlog_bound(arrival: &Curve, service: &Curve) -> Value {
    vertical_deviation(arrival, service)
}

/// Maximum virtual delay through the system (the paper's `d(t)` bound).
pub fn delay_bound(arrival: &Curve, service: &Curve) -> Value {
    horizontal_deviation(arrival, service)
}

/// Output flow bound `α ⊘ β` (no maximum service curve).
pub fn output_bound(arrival: &Curve, service: &Curve) -> Curve {
    min_plus_deconv(arrival, service)
}

/// Output flow bound `α* = (α ⊗ γ) ⊘ β` with a maximum service curve
/// `γ` tightening the result (§3 of the paper).
pub fn output_bound_with_max(arrival: &Curve, max_service: &Curve, service: &Curve) -> Curve {
    min_plus_deconv(&min_plus_conv(arrival, max_service), service)
}

/// Closed-form backlog bound for the leaky-bucket/rate-latency pair:
/// `x ≤ b + R_α · T` (paper §3). Returns `+∞` if `R_α > R_β`.
pub fn lb_rl_backlog(arrival_rate: Rat, burst: Rat, service_rate: Rat, latency: Rat) -> Value {
    if arrival_rate > service_rate {
        Value::Infinity
    } else {
        Value::finite(burst + arrival_rate * latency)
    }
}

/// Closed-form delay bound for the leaky-bucket/rate-latency pair:
/// `d ≤ T + b / R_β` (paper §3). Returns `+∞` if `R_α > R_β`.
pub fn lb_rl_delay(arrival_rate: Rat, burst: Rat, service_rate: Rat, latency: Rat) -> Value {
    if arrival_rate > service_rate || service_rate.is_zero() {
        Value::Infinity
    } else {
        Value::finite(latency + burst / service_rate)
    }
}

/// The paper's §3 overload hypothesis: "While the bounds are indeed
/// infinite for backlog and virtual delay over the long run, we
/// hypothesize that we can use values given by the model to understand
/// estimates on required queue size." These heuristics evaluate the
/// closed forms *without* the stability check, so they stay finite for
/// `R_α > R_β` — estimates, not guarantees.
pub mod heuristic {
    use super::*;

    /// Closed-form backlog estimate `b + R_α · T`, finite in every
    /// regime.
    pub fn backlog(arrival_rate: Rat, burst: Rat, latency: Rat) -> Rat {
        burst + arrival_rate * latency
    }

    /// Closed-form delay estimate `T + b / R_β`, finite in every
    /// regime (except a zero-rate server).
    pub fn delay(burst: Rat, service_rate: Rat, latency: Rat) -> Value {
        if service_rate.is_zero() {
            Value::Infinity
        } else {
            Value::finite(latency + burst / service_rate)
        }
    }
}

/// Largest sustainable leaky-bucket arrival rate `R_α` such that the
/// backlog bound `sup_t {R_α·t + b − β(t)}` stays within
/// `budget` bytes — the paper's §6 future-work question ("utilizing
/// network calculus to guide the sizing and allocation of buffers" /
/// "when arrival rates need to be changed to accommodate queues that
/// are at risk of overflowing"), answered exactly.
///
/// The bound is affine in `R_α` at each candidate abscissa, so the
/// admissible region is an intersection of half-planes solved in
/// rational arithmetic. Returns `None` when even `R_α = 0` overflows
/// (i.e. `b > budget` net of any free service at `t = 0`).
pub fn max_admissible_rate(service: &Curve, burst: Rat, budget: Rat) -> Option<Rat> {
    assert!(!burst.is_negative() && !budget.is_negative());
    // Constraint at t = 0 (and wherever β = 0): b ≤ budget.
    if burst > budget {
        return None;
    }
    // Rate can never exceed the service's ultimate rate (else the true
    // bound is infinite).
    let mut best = match service.ultimate_slope() {
        Value::Finite(r) => r,
        Value::Infinity => {
            // Service eventually infinite (delay-style curve): only the
            // finite prefix constrains; start from an upper bound given
            // by the steepest constraint below, seeded generously.
            Rat::int(i64::MAX)
        }
        Value::NegInfinity => unreachable!("service curves are not -inf"),
    };
    // Candidate abscissas: β's breakpoints plus a tail probe.
    let t_star = service.last_breakpoint_x() + Rat::ONE;
    let mut cands: Vec<Rat> = service.breakpoints().iter().map(|bp| bp.x).collect();
    cands.push(t_star);
    for t in cands {
        if !t.is_positive() {
            continue;
        }
        for beta_v in [service.eval(t), service.eval_right(t), service.eval_left(t)] {
            match beta_v {
                Value::Finite(bv) => {
                    // R_α · t + b − bv ≤ budget  ⇒  R_α ≤ (budget − b + bv)/t.
                    let cap = (budget - burst + bv) / t;
                    best = best.min(cap);
                }
                _ => continue,
            }
        }
    }
    if best.is_negative() {
        None
    } else {
        Some(best)
    }
}

/// The three operating regimes the paper distinguishes when comparing
/// the arrival rate `R_α` with the service rate `R_β`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize)]
pub enum Regime {
    /// `R_α < R_β`: standard operation, finite bounds.
    Underloaded,
    /// `R_α = R_β`: critical load; bounds finite but the queue never
    /// drains faster than it fills.
    Critical,
    /// `R_α > R_β`: overload; backlog and delay bounds are infinite.
    Overloaded,
}

/// Classify a pair of curves by their ultimate rates.
pub fn classify_regime(arrival: &Curve, service: &Curve) -> Regime {
    let ra = arrival.ultimate_slope();
    let rb = service.ultimate_slope();
    if ra < rb {
        Regime::Underloaded
    } else if ra == rb {
        Regime::Critical
    } else {
        Regime::Overloaded
    }
}

/// Complete single-node analysis: all §3 bounds in one bundle.
#[derive(Clone, Debug)]
pub struct NodeBounds {
    /// Backlog bound `x`.
    pub backlog: Value,
    /// Virtual delay bound `d`.
    pub delay: Value,
    /// Output arrival bound `α*`.
    pub output: Curve,
    /// Operating regime.
    pub regime: Regime,
}

/// Analyze one node: arrival `α`, service `β`, optional max service `γ`.
pub fn analyze_node(arrival: &Curve, service: &Curve, max_service: Option<&Curve>) -> NodeBounds {
    let output = match max_service {
        Some(gamma) => output_bound_with_max(arrival, gamma, service),
        None => output_bound(arrival, service),
    };
    NodeBounds {
        backlog: backlog_bound(arrival, service),
        delay: delay_bound(arrival, service),
        output,
        regime: classify_regime(arrival, service),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::shapes;
    use crate::num::rat;

    #[test]
    fn closed_forms_match_general_algorithms() {
        let (ra, b, rb, t) = (Rat::int(2), Rat::int(5), Rat::int(3), Rat::int(4));
        let alpha = shapes::leaky_bucket(ra, b);
        let beta = shapes::rate_latency(rb, t);
        assert_eq!(backlog_bound(&alpha, &beta), lb_rl_backlog(ra, b, rb, t));
        assert_eq!(delay_bound(&alpha, &beta), lb_rl_delay(ra, b, rb, t));
    }

    #[test]
    fn output_bound_with_max_tightens() {
        let alpha = shapes::leaky_bucket(Rat::int(2), Rat::int(5));
        let beta = shapes::rate_latency(Rat::int(3), Rat::int(4));
        // γ caps the instantaneous output rate at 4.
        let gamma = shapes::constant_rate(Rat::int(4));
        let with = output_bound_with_max(&alpha, &gamma, &beta);
        let without = output_bound(&alpha, &beta);
        for n in 0..30 {
            let t = rat(n, 2);
            assert!(with.eval(t) <= without.eval(t), "γ must only tighten");
        }
        // Near zero the burst is paced by γ instead of appearing whole.
        assert!(with.eval_right(Rat::ZERO) <= without.eval_right(Rat::ZERO));
    }

    #[test]
    fn regimes() {
        let beta = shapes::rate_latency(Rat::int(3), Rat::ONE);
        let under = shapes::leaky_bucket(Rat::int(2), Rat::ONE);
        let crit = shapes::leaky_bucket(Rat::int(3), Rat::ONE);
        let over = shapes::leaky_bucket(Rat::int(4), Rat::ONE);
        assert_eq!(classify_regime(&under, &beta), Regime::Underloaded);
        assert_eq!(classify_regime(&crit, &beta), Regime::Critical);
        assert_eq!(classify_regime(&over, &beta), Regime::Overloaded);
        let nb = analyze_node(&over, &beta, None);
        assert_eq!(nb.backlog, Value::Infinity);
        assert_eq!(nb.delay, Value::Infinity);
    }

    #[test]
    fn admissible_rate_closed_form() {
        // β = RL(3, 4), burst 5, budget B: x = b + r·T ≤ B ⇒ r ≤ (B−5)/4,
        // clamped at R = 3.
        let beta = shapes::rate_latency(Rat::int(3), Rat::int(4));
        // Budget 13 = the bound at r = 2.
        assert_eq!(
            max_admissible_rate(&beta, Rat::int(5), Rat::int(13)),
            Some(Rat::int(2))
        );
        // Huge budget: capped by the service rate.
        assert_eq!(
            max_admissible_rate(&beta, Rat::int(5), Rat::int(1_000_000)),
            Some(Rat::int(3))
        );
        // Budget below the burst: nothing is admissible.
        assert_eq!(max_admissible_rate(&beta, Rat::int(5), Rat::int(4)), None);
    }

    #[test]
    fn admissible_rate_is_exact_boundary() {
        use crate::ops::vertical_deviation;
        let beta = shapes::rate_latency(Rat::int(7), Rat::int(2))
            .min(&shapes::leaky_bucket(Rat::int(3), Rat::int(9)));
        let burst = Rat::int(2);
        let budget = Rat::int(10);
        let r = max_admissible_rate(&beta, burst, budget).expect("admissible");
        // At the returned rate the bound is within budget…
        let at = vertical_deviation(&shapes::leaky_bucket(r, burst), &beta);
        assert!(at <= Value::finite(budget), "bound {at:?} over budget");
        // …and any faster rate overflows.
        let over = vertical_deviation(
            &shapes::leaky_bucket(r + crate::num::rat(1, 100), burst),
            &beta,
        );
        assert!(over > Value::finite(budget), "boundary not tight: {over:?}");
    }

    #[test]
    fn analyze_node_bundle_consistency() {
        let alpha = shapes::leaky_bucket(Rat::int(2), Rat::int(5));
        let beta = shapes::rate_latency(Rat::int(3), Rat::int(4));
        let nb = analyze_node(&alpha, &beta, None);
        assert_eq!(nb.backlog, Value::from(13));
        assert_eq!(nb.delay, Value::finite(Rat::int(4) + rat(5, 3)));
        assert_eq!(nb.output, output_bound(&alpha, &beta));
        assert_eq!(nb.regime, Regime::Underloaded);
    }
}

//! FASTA handling and the DIBS `fa2bit` data-integration kernel.
//!
//! The first stage of the paper's BLAST pipeline (§4.1): "The DNA
//! database to be searched, represented in FASTA format, is first
//! converted to two bits per DNA base" — a pre-processing step from the
//! Data Integration Benchmark Suite implemented on an FPGA in the
//! paper, and as a plain CPU kernel here (the models only consume its
//! measured rate and its exact 4:1 job ratio).

use rand::Rng;

/// Encoding: `A=00, C=01, G=10, T=11`, four bases per byte, first base
/// in the low bits.
pub const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// Generate `len` random DNA bases with the given RNG.
pub fn random_dna(len: usize, rng: &mut impl Rng) -> Vec<u8> {
    (0..len).map(|_| BASES[rng.gen_range(0..4)]).collect()
}

/// Render a sequence as FASTA with 70-column lines.
pub fn to_fasta(header: &str, seq: &[u8]) -> String {
    let mut s = String::with_capacity(seq.len() + seq.len() / 70 + header.len() + 4);
    s.push('>');
    s.push_str(header);
    s.push('\n');
    for line in seq.chunks(70) {
        s.push_str(std::str::from_utf8(line).expect("DNA is ASCII"));
        s.push('\n');
    }
    s
}

/// Parse a (single-record) FASTA document back into a raw sequence.
/// Returns `None` if the document has no header line.
pub fn parse_fasta(doc: &str) -> Option<(String, Vec<u8>)> {
    let mut lines = doc.lines();
    let header = lines.next()?.strip_prefix('>')?.to_string();
    let mut seq = Vec::new();
    for l in lines {
        if l.starts_with('>') {
            break; // single-record parser
        }
        seq.extend(l.trim().bytes());
    }
    Some((header, seq))
}

/// `fa2bit`: pack ASCII DNA into 2 bits/base. Non-ACGT characters
/// (e.g. `N`) are mapped to `A`, matching the benchmark's behaviour of
/// forcing a 4:1 fixed job ratio.
pub fn fa2bit(seq: &[u8]) -> Vec<u8> {
    let mut out = vec![0u8; seq.len().div_ceil(4)];
    for (i, &b) in seq.iter().enumerate() {
        let code = match b {
            b'A' | b'a' => 0u8,
            b'C' | b'c' => 1,
            b'G' | b'g' => 2,
            b'T' | b't' => 3,
            _ => 0,
        };
        out[i / 4] |= code << ((i % 4) * 2);
    }
    out
}

/// Unpack 2-bit DNA back to ASCII (`len` = number of bases).
pub fn bit2fa(packed: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= packed.len() * 4, "length exceeds packed data");
    (0..len)
        .map(|i| BASES[((packed[i / 4] >> ((i % 4) * 2)) & 0b11) as usize])
        .collect()
}

/// Parse a multi-record FASTA document into `(header, sequence)`
/// records; blank lines and leading whitespace are tolerated. Returns
/// an empty vector for a document with no records.
pub fn parse_fasta_multi(doc: &str) -> Vec<(String, Vec<u8>)> {
    let mut records: Vec<(String, Vec<u8>)> = Vec::new();
    for line in doc.lines() {
        let line = line.trim_end();
        if let Some(h) = line.strip_prefix('>') {
            records.push((h.to_string(), Vec::new()));
        } else if let Some((_, seq)) = records.last_mut() {
            seq.extend(line.trim().bytes());
        }
    }
    records
}

/// Render multiple records as one FASTA document.
pub fn to_fasta_multi(records: &[(String, Vec<u8>)]) -> String {
    records
        .iter()
        .map(|(h, s)| to_fasta(h, s))
        .collect::<String>()
}

/// Reverse complement of an ASCII DNA sequence (A<->T, C<->G).
/// BLASTN searches both strands; the minus strand is the reverse
/// complement of the query.
pub fn reverse_complement(seq: &[u8]) -> Vec<u8> {
    seq.iter()
        .rev()
        .map(|&b| match b {
            b'A' | b'a' => b'T',
            b'T' | b't' => b'A',
            b'C' | b'c' => b'G',
            b'G' | b'g' => b'C',
            other => other,
        })
        .collect()
}

/// Read the base at position `i` from packed 2-bit data.
#[inline]
pub fn base_at(packed: &[u8], i: usize) -> u8 {
    (packed[i / 4] >> ((i % 4) * 2)) & 0b11
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn pack_unpack_roundtrip() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for len in [0usize, 1, 3, 4, 5, 8, 1000, 4097] {
            let seq = random_dna(len, &mut rng);
            let packed = fa2bit(&seq);
            assert_eq!(packed.len(), len.div_ceil(4));
            assert_eq!(bit2fa(&packed, len), seq, "len {len}");
        }
    }

    #[test]
    fn known_packing() {
        // ACGT = codes 0,1,2,3 → low-to-high: 0b11100100 = 0xE4.
        assert_eq!(fa2bit(b"ACGT"), vec![0xE4]);
        assert_eq!(fa2bit(b"AAAA"), vec![0x00]);
        assert_eq!(fa2bit(b"TTTT"), vec![0xFF]);
        assert_eq!(base_at(&[0xE4], 2), 2);
    }

    #[test]
    fn job_ratio_is_four_to_one() {
        // The paper's Figure 3 annotates fa2bit with a 4:1 job ratio.
        let seq = vec![b'G'; 4096];
        assert_eq!(fa2bit(&seq).len() * 4, seq.len());
    }

    #[test]
    fn non_acgt_maps_to_a() {
        assert_eq!(fa2bit(b"NNNN"), vec![0x00]);
        assert_eq!(bit2fa(&fa2bit(b"ANCN"), 4), b"AACA".to_vec());
    }

    #[test]
    fn fasta_roundtrip() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let seq = random_dna(333, &mut rng);
        let doc = to_fasta("chr1 test", &seq);
        assert!(doc.starts_with(">chr1 test\n"));
        assert!(doc.lines().skip(1).all(|l| l.len() <= 70));
        let (h, parsed) = parse_fasta(&doc).unwrap();
        assert_eq!(h, "chr1 test");
        assert_eq!(parsed, seq);
    }

    #[test]
    fn multi_record_roundtrip() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let records = vec![
            ("chr1".to_string(), random_dna(150, &mut rng)),
            ("chr2 plasmid".to_string(), random_dna(71, &mut rng)),
            ("chr3".to_string(), random_dna(1, &mut rng)),
        ];
        let doc = to_fasta_multi(&records);
        assert_eq!(parse_fasta_multi(&doc), records);
        // Stray prefix junk before the first record is ignored.
        let with_junk = format!(
            "; comment
{doc}"
        );
        assert_eq!(parse_fasta_multi(&with_junk), records);
        assert!(parse_fasta_multi("").is_empty());
    }

    #[test]
    fn reverse_complement_involution() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let seq = random_dna(501, &mut rng);
        let rc = reverse_complement(&seq);
        assert_eq!(reverse_complement(&rc), seq);
        assert_eq!(reverse_complement(b"ACGT"), b"ACGT".to_vec());
        assert_eq!(reverse_complement(b"AACG"), b"CGTT".to_vec());
    }

    #[test]
    fn parse_rejects_headerless() {
        assert!(parse_fasta("ACGT\n").is_none());
        assert!(parse_fasta("").is_none());
    }
}

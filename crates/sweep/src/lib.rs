//! # nc-sweep — batch parameter-sweep engine for pipeline models
//!
//! The paper's real use case is not one analysis but many: block-size
//! and link-rate what-ifs, offered-load sweeps across the three §3
//! regimes, bounds surfaces for buffer provisioning. This crate turns a
//! base [`Pipeline`] plus a set of parameter [`Axis`] definitions into
//! a full cartesian grid of scenarios, evaluates every grid point
//! (network-calculus bounds, horizon throughput rows, and optionally a
//! discrete-event simulation), and returns a deterministic bounds
//! surface.
//!
//! Evaluation fans out over `rayon`. Each worker thread carries its own
//! [`ModelCache`] (hash-consed curves + memoized min-plus operators +
//! pipeline-prefix reuse — see `nc_core::cache`) and its own
//! reusable [`SimArena`], so neighbouring grid points share almost all
//! of their analysis. Results are collected in grid order and contain
//! no thread-dependent data: sweep output is byte-identical for any
//! `RAYON_NUM_THREADS`, including 1.
//!
//! ## Quick start
//!
//! ```
//! use nc_core::num::Rat;
//! use nc_core::pipeline::{Node, NodeKind, Pipeline, Source, StageRates};
//! use nc_sweep::{Axis, Param, SweepSpec};
//!
//! let base = Pipeline::new(
//!     "demo",
//!     Source { rate: Rat::int(80), burst: Rat::int(64) },
//!     vec![Node::new(
//!         "stage",
//!         NodeKind::Compute,
//!         StageRates::new(Rat::int(90), Rat::int(100), Rat::int(110)),
//!         Rat::ZERO,
//!         Rat::int(64),
//!         Rat::int(64),
//!     )],
//! );
//! let spec = SweepSpec {
//!     base,
//!     axes: vec![
//!         Axis::linspace(Param::SourceRate, Rat::int(40), Rat::int(160), 5),
//!         Axis::new(Param::BlockSize(0), vec![Rat::int(32), Rat::int(64)]),
//!     ],
//!     horizons: vec![Rat::int(1), Rat::int(100)],
//!     sim: None,
//! };
//! let surface = nc_sweep::run(&spec);
//! assert_eq!(surface.points.len(), 10);
//! assert!(surface.stats.prefix_hits + surface.stats.prefix_misses >= 10);
//! ```

#![warn(missing_docs)]

use std::sync::{Arc, Mutex};

use rayon::prelude::*;

use nc_core::bounds::Regime;
use nc_core::cache::{CacheStats, CurveOps, DirectOps};
use nc_core::num::{Rat, Value};
use nc_core::pipeline::{ModelCache, Pipeline, PipelineModel, StageRates, ThroughputBounds};
use nc_streamsim::{simulate, simulate_in, SimArena, SimConfig, SimResult};

/// Which pipeline parameter an axis varies. Stage indices are 0-based
/// positions in [`Pipeline::nodes`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Param {
    /// Source sustained rate `R_α` (bytes/s) — the offered load.
    SourceRate,
    /// Source burst `b` (bytes).
    SourceBurst,
    /// Fixed throughput of a stage (sets min = avg = max) — e.g. a
    /// link rate.
    Rate(usize),
    /// Scale a stage's measured min/avg/max throughput triple.
    RateScale(usize),
    /// Dispatch latency `T_n` of a stage (seconds).
    Latency(usize),
    /// Block size of a stage: sets `job_in = job_out` (bytes).
    BlockSize(usize),
    /// Compression ratio of a stage: sets `job_out = job_in / value`.
    CompressionRatio(usize),
}

impl Param {
    /// Stable column label for surfaces/CSV.
    pub fn label(&self) -> String {
        match self {
            Param::SourceRate => "source_rate".into(),
            Param::SourceBurst => "source_burst".into(),
            Param::Rate(i) => format!("rate[{i}]"),
            Param::RateScale(i) => format!("rate_scale[{i}]"),
            Param::Latency(i) => format!("latency[{i}]"),
            Param::BlockSize(i) => format!("block_size[{i}]"),
            Param::CompressionRatio(i) => format!("compression[{i}]"),
        }
    }

    /// Apply `value` to `p` in place.
    ///
    /// # Panics
    /// Panics if the stage index is out of range.
    pub fn apply(&self, p: &mut Pipeline, value: Rat) {
        match *self {
            Param::SourceRate => p.source.rate = value,
            Param::SourceBurst => p.source.burst = value,
            Param::Rate(i) => p.nodes[i].rates = StageRates::fixed(value),
            Param::RateScale(i) => {
                let r = p.nodes[i].rates;
                p.nodes[i].rates = StageRates::new(r.min * value, r.avg * value, r.max * value);
            }
            Param::Latency(i) => p.nodes[i].latency = value,
            Param::BlockSize(i) => {
                p.nodes[i].job_in = value;
                p.nodes[i].job_out = value;
            }
            Param::CompressionRatio(i) => {
                p.nodes[i].job_out = p.nodes[i].job_in / value;
            }
        }
    }
}

/// One sweep dimension: a parameter and the exact values it takes.
#[derive(Clone, Debug)]
pub struct Axis {
    /// The varied parameter.
    pub param: Param,
    /// Grid values, in order.
    pub values: Vec<Rat>,
}

impl Axis {
    /// An axis over explicit values.
    pub fn new(param: Param, values: Vec<Rat>) -> Axis {
        assert!(!values.is_empty(), "axis needs at least one value");
        Axis { param, values }
    }

    /// `n` evenly spaced exact-rational values from `from` to `to`
    /// inclusive (`n = 1` yields just `from`).
    pub fn linspace(param: Param, from: Rat, to: Rat, n: usize) -> Axis {
        assert!(n >= 1, "linspace needs n >= 1");
        let values = if n == 1 {
            vec![from]
        } else {
            let step = (to - from) / Rat::int(n as i64 - 1);
            (0..n).map(|k| from + step * Rat::int(k as i64)).collect()
        };
        Axis::new(param, values)
    }
}

/// A full sweep: base pipeline, axes (cartesian product), throughput
/// horizons to tabulate, and an optional simulation per grid point.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// The pipeline every grid point starts from.
    pub base: Pipeline,
    /// Sweep dimensions; the grid is their cartesian product with the
    /// **last axis varying fastest** (row-major).
    pub axes: Vec<Axis>,
    /// Horizons for [`PipelineModel::throughput_over`]-style rows.
    pub horizons: Vec<Rat>,
    /// When set, run the DES with this config at every grid point (the
    /// seed is used as-is, so results stay deterministic).
    pub sim: Option<SimConfig>,
}

/// Errors detected by [`SweepSpec::validate`].
#[derive(Clone, Debug, PartialEq)]
pub enum SpecError {
    /// The base pipeline failed [`Pipeline::validate`].
    Pipeline(nc_core::pipeline::PipelineError),
    /// An axis references a stage index outside the base pipeline.
    AxisStageOutOfRange {
        /// The axis label.
        axis: String,
        /// Number of stages in the base pipeline.
        stages: usize,
    },
    /// A swept value is invalid for its parameter (negative or zero
    /// rate, negative latency, non-positive block size…).
    BadAxisValue {
        /// The axis label.
        axis: String,
        /// The offending value.
        value: Rat,
        /// Which constraint it violates.
        why: &'static str,
    },
    /// A throughput horizon is not strictly positive.
    BadHorizon(Rat),
    /// The per-point simulation's fault schedule is invalid for the
    /// base pipeline (wrapped [`nc_streamsim::ConfigError`]).
    Faults(nc_streamsim::ConfigError),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Pipeline(e) => write!(f, "base pipeline: {e}"),
            SpecError::AxisStageOutOfRange { axis, stages } => {
                write!(
                    f,
                    "axis {axis}: stage index out of range (pipeline has {stages} stages)"
                )
            }
            SpecError::BadAxisValue { axis, value, why } => {
                write!(f, "axis {axis}: value {} {why}", value.to_f64())
            }
            SpecError::BadHorizon(h) => {
                write!(f, "throughput horizon {} must be positive", h.to_f64())
            }
            SpecError::Faults(e) => write!(f, "sim fault schedule: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl SweepSpec {
    /// Check the spec end to end *before* expanding the grid: base
    /// pipeline structure, every axis value against its parameter's
    /// domain, horizons, and — when a simulation with fault injection
    /// is attached — the fault schedule against the base pipeline.
    /// Returns the first violation as a typed error instead of letting
    /// a worker panic mid-sweep.
    pub fn validate(&self) -> Result<(), SpecError> {
        self.base.validate().map_err(SpecError::Pipeline)?;
        let stages = self.base.nodes.len();
        for axis in &self.axes {
            let label = axis.param.label();
            let stage = match axis.param {
                Param::SourceRate | Param::SourceBurst => None,
                Param::Rate(i)
                | Param::RateScale(i)
                | Param::Latency(i)
                | Param::BlockSize(i)
                | Param::CompressionRatio(i) => Some(i),
            };
            if stage.is_some_and(|i| i >= stages) {
                return Err(SpecError::AxisStageOutOfRange {
                    axis: label,
                    stages,
                });
            }
            for &value in &axis.values {
                let why = match axis.param {
                    Param::SourceRate | Param::Rate(_) | Param::RateScale(_) => {
                        (!value.is_positive()).then_some("must be a positive rate")
                    }
                    Param::SourceBurst | Param::Latency(_) => {
                        value.is_negative().then_some("must be non-negative")
                    }
                    Param::BlockSize(_) | Param::CompressionRatio(_) => {
                        (!value.is_positive()).then_some("must be positive")
                    }
                };
                if let Some(why) = why {
                    return Err(SpecError::BadAxisValue {
                        axis: label,
                        value,
                        why,
                    });
                }
            }
        }
        for &h in &self.horizons {
            if !h.is_positive() {
                return Err(SpecError::BadHorizon(h));
            }
        }
        if let Some(sim) = &self.sim {
            if let Some(fs) = &sim.faults {
                fs.validate(stages).map_err(SpecError::Faults)?;
            }
        }
        Ok(())
    }
}

/// One point of the expanded grid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GridPoint {
    /// Position in grid order.
    pub index: usize,
    /// One value per axis, aligned with [`SweepSpec::axes`].
    pub coords: Vec<Rat>,
}

/// Expand the cartesian grid of a spec, row-major, last axis fastest.
pub fn grid(spec: &SweepSpec) -> Vec<GridPoint> {
    let total: usize = spec.axes.iter().map(|a| a.values.len()).product();
    let mut points = Vec::with_capacity(total);
    for index in 0..total {
        let mut rem = index;
        let mut coords = vec![Rat::ZERO; spec.axes.len()];
        for (k, axis) in spec.axes.iter().enumerate().rev() {
            let n = axis.values.len();
            coords[k] = axis.values[rem % n];
            rem /= n;
        }
        points.push(GridPoint { index, coords });
    }
    points
}

/// The pipeline at one grid point: the base with every axis value
/// applied in axis order.
pub fn pipeline_at(spec: &SweepSpec, point: &GridPoint) -> Pipeline {
    let mut p = spec.base.clone();
    for (axis, v) in spec.axes.iter().zip(&point.coords) {
        axis.param.apply(&mut p, *v);
    }
    p
}

/// Scalar summary of one simulation run (the fields the paper's tables
/// and the overload sweep read off the DES).
#[derive(Clone, Debug, serde::Serialize)]
pub struct SimSummary {
    /// Mean throughput, input-referred bytes/s.
    pub throughput: f64,
    /// Steady-state throughput (fill/drain excluded).
    pub steady_throughput: f64,
    /// Peak data resident in the system, input-referred bytes.
    pub peak_backlog: f64,
    /// Longest observed end-to-end delay, seconds.
    pub delay_max: f64,
    /// Per-node busy fraction, flow order.
    pub utilization: Vec<f64>,
    /// Kernel events executed.
    pub events: u64,
}

impl SimSummary {
    fn of(r: &SimResult) -> SimSummary {
        SimSummary {
            throughput: r.throughput,
            steady_throughput: r.steady_throughput,
            peak_backlog: r.peak_backlog,
            delay_max: r.delay_max,
            utilization: r.per_node.iter().map(|n| n.utilization).collect(),
            events: r.events,
        }
    }

    /// Busiest stage's utilization (the simulated bottleneck).
    pub fn max_utilization(&self) -> f64 {
        self.utilization.iter().copied().fold(0.0, f64::max)
    }
}

/// Everything evaluated at one grid point.
#[derive(Clone, Debug, serde::Serialize)]
pub struct PointResult {
    /// Grid-order index.
    pub index: usize,
    /// Axis values of this point.
    pub coords: Vec<Rat>,
    /// System operating regime.
    pub regime: Regime,
    /// System backlog bound (aggregate service curve), bytes.
    pub backlog: Value,
    /// System delay bound (aggregate), seconds.
    pub delay: Value,
    /// Backlog bound against the exact concatenated service, bytes.
    pub backlog_concat: Value,
    /// Delay bound against the exact concatenated service, seconds.
    pub delay_concat: Value,
    /// §3 overload-tolerant backlog estimate, bytes.
    pub heuristic_backlog: Rat,
    /// §3 overload-tolerant delay estimate, seconds.
    pub heuristic_delay: Value,
    /// Recurrence latency `T_N^tot`, seconds.
    pub total_latency: Rat,
    /// Bottleneck normalized min rate, bytes/s.
    pub bottleneck_rate_min: Rat,
    /// Throughput bounds per requested horizon.
    pub throughput: Vec<ThroughputBounds>,
    /// DES summary when [`SweepSpec::sim`] was set.
    pub sim: Option<SimSummary>,
}

/// A completed sweep: the bounds surface plus cache telemetry.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// Column label per axis.
    pub axis_labels: Vec<String>,
    /// Horizons tabulated per point.
    pub horizons: Vec<Rat>,
    /// One result per grid point, in grid order.
    pub points: Vec<PointResult>,
    /// Merged cache counters across worker threads (all zero for the
    /// uncached baseline).
    pub stats: CacheStats,
}

impl SweepResult {
    /// Deterministic CSV of the surface: axis columns, bound columns,
    /// `upper/lower/output` throughput triple per horizon, and sim
    /// columns when present. Cache statistics are deliberately **not**
    /// part of the CSV — they vary with thread count; the surface does
    /// not.
    pub fn to_csv(&self) -> String {
        let mut csv = String::new();
        for l in &self.axis_labels {
            csv.push_str(l);
            csv.push(',');
        }
        csv.push_str(
            "regime,backlog,delay,backlog_concat,delay_concat,heuristic_backlog,heuristic_delay",
        );
        for h in &self.horizons {
            let h = h.to_f64();
            csv.push_str(&format!(",thr_upper@{h},thr_lower@{h},thr_output@{h}"));
        }
        let any_sim = self.points.iter().any(|p| p.sim.is_some());
        if any_sim {
            csv.push_str(",sim_throughput,sim_steady,sim_peak_backlog,sim_delay_max,sim_util");
        }
        csv.push('\n');
        for p in &self.points {
            for c in &p.coords {
                csv.push_str(&format!("{},", c.to_f64()));
            }
            csv.push_str(&format!(
                "{:?},{},{},{},{},{},{}",
                p.regime,
                fmt_value(p.backlog),
                fmt_value(p.delay),
                fmt_value(p.backlog_concat),
                fmt_value(p.delay_concat),
                p.heuristic_backlog.to_f64(),
                fmt_value(p.heuristic_delay),
            ));
            for t in &p.throughput {
                csv.push_str(&format!(
                    ",{},{},{}",
                    fmt_value(t.upper),
                    fmt_value(t.lower),
                    fmt_value(t.output_loose)
                ));
            }
            if any_sim {
                match &p.sim {
                    Some(s) => csv.push_str(&format!(
                        ",{},{},{},{},{}",
                        s.throughput,
                        s.steady_throughput,
                        s.peak_backlog,
                        s.delay_max,
                        s.max_utilization()
                    )),
                    None => csv.push_str(",,,,,"),
                }
            }
            csv.push('\n');
        }
        csv
    }
}

fn fmt_value(v: Value) -> String {
    match v {
        Value::Finite(r) => format!("{}", r.to_f64()),
        Value::Infinity => "inf".into(),
        Value::NegInfinity => "-inf".into(),
    }
}

fn summarize(
    point: &GridPoint,
    model: &PipelineModel,
    throughput: Vec<ThroughputBounds>,
    sim: Option<SimSummary>,
    ops: &mut dyn CurveOps,
) -> PointResult {
    PointResult {
        index: point.index,
        coords: point.coords.clone(),
        regime: model.regime(),
        backlog: model.backlog_bound_with(ops),
        delay: model.delay_bound_with(ops),
        backlog_concat: model.backlog_bound_concat_with(ops),
        delay_concat: model.delay_bound_concat_with(ops),
        heuristic_backlog: model.heuristic_backlog(),
        heuristic_delay: model.heuristic_delay(),
        total_latency: model.total_latency,
        bottleneck_rate_min: model.bottleneck_rate_min,
        throughput,
        sim,
    }
}

fn eval_cached(
    spec: &SweepSpec,
    point: &GridPoint,
    cache: &mut ModelCache,
    arena: &mut SimArena,
) -> PointResult {
    let p = pipeline_at(spec, point);
    let model = p.build_model_cached(cache);
    let throughput = model.throughput_profile_with(cache.curves(), &spec.horizons);
    let sim = spec
        .sim
        .as_ref()
        .map(|cfg| SimSummary::of(&simulate_in(arena, &p, cfg)));
    summarize(point, &model, throughput, sim, cache.curves())
}

fn eval_uncached(spec: &SweepSpec, point: &GridPoint) -> PointResult {
    let p = pipeline_at(spec, point);
    let model = p.build_model();
    let throughput = spec
        .horizons
        .iter()
        .map(|h| model.throughput_over(*h))
        .collect();
    let sim = spec
        .sim
        .as_ref()
        .map(|cfg| SimSummary::of(&simulate(&p, cfg)));
    summarize(point, &model, throughput, sim, &mut DirectOps)
}

/// Per-worker state for the parallel sweep. Cache counters are merged
/// into the shared sink on drop (rayon gives no other hook to recover
/// `map_init` state).
struct Worker {
    cache: ModelCache,
    arena: SimArena,
    sink: Arc<Mutex<CacheStats>>,
}

impl Drop for Worker {
    fn drop(&mut self) {
        let mut s = self.sink.lock().expect("stats sink poisoned");
        *s = s.merge(&self.cache.stats());
    }
}

/// Evaluate the full grid in parallel with per-worker caches and sim
/// arenas. Point results are independent of the cache state, so the
/// output (and its CSV) is byte-identical for any thread count; only
/// [`SweepResult::stats`] varies with scheduling.
pub fn run(spec: &SweepSpec) -> SweepResult {
    let points = grid(spec);
    let sink = Arc::new(Mutex::new(CacheStats::default()));
    let results: Vec<PointResult> = points
        .into_par_iter()
        .map_init(
            || Worker {
                cache: ModelCache::new(),
                arena: SimArena::new(),
                sink: Arc::clone(&sink),
            },
            |w, point| eval_cached(spec, &point, &mut w.cache, &mut w.arena),
        )
        .collect();
    let stats = *sink.lock().expect("stats sink poisoned");
    SweepResult {
        axis_labels: spec.axes.iter().map(|a| a.param.label()).collect(),
        horizons: spec.horizons.clone(),
        points: results,
        stats,
    }
}

/// The ablation baseline: one grid point at a time on the calling
/// thread, no caches, no arena reuse — exactly the repo's status-quo
/// loop (`build_model` + `throughput_over` + `simulate` per point).
/// Produces identical [`SweepResult::points`] to [`run`].
pub fn run_serial_uncached(spec: &SweepSpec) -> SweepResult {
    let points = grid(spec);
    let results: Vec<PointResult> = points.iter().map(|pt| eval_uncached(spec, pt)).collect();
    SweepResult {
        axis_labels: spec.axes.iter().map(|a| a.param.label()).collect(),
        horizons: spec.horizons.clone(),
        points: results,
        stats: CacheStats::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_core::pipeline::{Node, NodeKind, Source};

    fn base() -> Pipeline {
        Pipeline::new(
            "t",
            Source {
                rate: Rat::int(80),
                burst: Rat::int(64),
            },
            vec![
                Node::new(
                    "a",
                    NodeKind::Compute,
                    StageRates::new(Rat::int(90), Rat::int(100), Rat::int(110)),
                    Rat::new(1, 1000),
                    Rat::int(64),
                    Rat::int(64),
                ),
                Node::new(
                    "b",
                    NodeKind::NetworkLink,
                    StageRates::fixed(Rat::int(120)),
                    Rat::ZERO,
                    Rat::int(64),
                    Rat::int(64),
                ),
            ],
        )
    }

    #[test]
    fn validate_accepts_a_sane_spec_and_names_each_violation() {
        let ok = SweepSpec {
            base: base(),
            axes: vec![Axis::new(Param::SourceRate, vec![Rat::int(40)])],
            horizons: vec![Rat::int(1)],
            sim: None,
        };
        assert_eq!(ok.validate(), Ok(()));

        let mut bad = ok.clone();
        bad.axes = vec![Axis::new(Param::Rate(5), vec![Rat::int(40)])];
        assert!(matches!(
            bad.validate(),
            Err(SpecError::AxisStageOutOfRange { stages: 2, .. })
        ));

        let mut bad = ok.clone();
        bad.axes = vec![Axis::new(Param::SourceRate, vec![Rat::int(-40)])];
        let e = bad.validate().unwrap_err();
        assert!(e.to_string().contains("positive rate"), "{e}");

        let mut bad = ok.clone();
        bad.horizons = vec![Rat::ZERO];
        assert_eq!(bad.validate(), Err(SpecError::BadHorizon(Rat::ZERO)));

        // An invalid fault schedule surfaces as a typed, wrapped error.
        let mut schedule = nc_streamsim::FaultSchedule::none(2);
        schedule.stages[0].derate = 1.5;
        let mut bad = ok.clone();
        bad.sim = Some(SimConfig {
            faults: Some(schedule),
            workers: None,
            ..SimConfig::default()
        });
        let e = bad.validate().unwrap_err();
        assert!(matches!(e, SpecError::Faults(_)));
        assert!(e.to_string().contains("derate"), "{e}");
    }

    #[test]
    fn grid_is_row_major_last_axis_fastest() {
        let spec = SweepSpec {
            base: base(),
            axes: vec![
                Axis::new(Param::SourceRate, vec![Rat::int(1), Rat::int(2)]),
                Axis::new(
                    Param::Rate(1),
                    vec![Rat::int(10), Rat::int(20), Rat::int(30)],
                ),
            ],
            horizons: vec![],
            sim: None,
        };
        let g = grid(&spec);
        assert_eq!(g.len(), 6);
        assert_eq!(g[0].coords, vec![Rat::int(1), Rat::int(10)]);
        assert_eq!(g[1].coords, vec![Rat::int(1), Rat::int(20)]);
        assert_eq!(g[3].coords, vec![Rat::int(2), Rat::int(10)]);
        assert_eq!(g[5].coords, vec![Rat::int(2), Rat::int(30)]);
    }

    #[test]
    fn linspace_endpoints_exact() {
        let a = Axis::linspace(Param::SourceRate, Rat::int(40), Rat::int(160), 25);
        assert_eq!(a.values.len(), 25);
        assert_eq!(a.values[0], Rat::int(40));
        assert_eq!(a.values[24], Rat::int(160));
        assert_eq!(a.values[1] - a.values[0], Rat::int(5));
    }

    #[test]
    fn params_apply() {
        let mut p = base();
        Param::BlockSize(0).apply(&mut p, Rat::int(128));
        assert_eq!(p.nodes[0].job_in, Rat::int(128));
        assert_eq!(p.nodes[0].job_out, Rat::int(128));
        Param::CompressionRatio(0).apply(&mut p, Rat::int(4));
        assert_eq!(p.nodes[0].job_out, Rat::int(32));
        Param::RateScale(1).apply(&mut p, Rat::new(1, 2));
        assert_eq!(p.nodes[1].rates.min, Rat::int(60));
        Param::Latency(1).apply(&mut p, Rat::ONE);
        assert_eq!(p.nodes[1].latency, Rat::ONE);
    }

    #[test]
    fn cached_run_equals_uncached_baseline() {
        let spec = SweepSpec {
            base: base(),
            axes: vec![
                Axis::linspace(Param::SourceRate, Rat::int(40), Rat::int(160), 7),
                Axis::new(Param::BlockSize(0), vec![Rat::int(32), Rat::int(64)]),
            ],
            horizons: vec![Rat::int(1), Rat::int(100)],
            sim: Some(SimConfig {
                seed: 7,
                total_input: 64 << 10,
                source_chunk: Some(64),
                trace: false,
                ..SimConfig::default()
            }),
        };
        let fast = run(&spec);
        let slow = run_serial_uncached(&spec);
        assert_eq!(fast.to_csv(), slow.to_csv());
        // The cache did real work: every point after the first reuses
        // prefixes and operator results.
        assert!(fast.stats.prefix_hits + fast.stats.op_hits() > 0);
        assert_eq!(slow.stats, CacheStats::default());
    }

    #[test]
    fn output_independent_of_thread_count() {
        let spec = SweepSpec {
            base: base(),
            axes: vec![Axis::linspace(
                Param::SourceRate,
                Rat::int(40),
                Rat::int(160),
                9,
            )],
            horizons: vec![Rat::int(10)],
            sim: None,
        };
        let one = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("pool")
            .install(|| run(&spec));
        let four = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .expect("pool")
            .install(|| run(&spec));
        assert_eq!(one.to_csv(), four.to_csv());
    }
}

//! Property tests for the admission engine.
//!
//! * **Oracle equivalence** — on random pipelines, flow classes, and
//!   request sequences (admits and departs interleaved), every engine
//!   decision (placement, rejection reason, and the exact rational
//!   bound) equals a from-scratch, uncached recomputation through the
//!   general curve algebra ([`nc_admit::oracle::decide_full`]).
//! * **Monotonicity** — a flow admitted at some (rate, burst) is still
//!   admitted after shrinking either parameter, against the same
//!   engine state. The service side is frozen at onboarding, so the
//!   decision is monotone in the arrival envelope (DESIGN.md §13).

use nc_admit::{oracle, AdmissionEngine, ClassId, Decision, FlowClass, Placement};
use nc_core::num::{rat, Rat};
use nc_core::pipeline::{Node, NodeKind, Pipeline, Source, StageRates};
use proptest::prelude::*;

fn node(i: usize, rate: i64, job: i64, latency_q: i64) -> Node {
    Node::new(
        format!("s{i}"),
        NodeKind::Compute,
        StageRates::fixed(Rat::int(rate)),
        rat(latency_q as i128, 4),
        Rat::int(job),
        Rat::int(job),
    )
}

/// Strategy: a small random pipeline with integer stage rates, job
/// sizes, and quarter-second dispatch latencies.
fn arb_pipeline() -> impl Strategy<Value = Pipeline> {
    let stage = (4i64..=40, 1i64..=8, 0i64..=4);
    (
        proptest::collection::vec(stage, 1..=4),
        1i64..=10, // source rate
        0i64..=16, // source burst
    )
        .prop_map(|(stages, src_rate, src_burst)| {
            let nodes = stages
                .into_iter()
                .enumerate()
                .map(|(i, (rate, job, lat))| node(i, rate, job, lat))
                .collect();
            Pipeline::new(
                "p",
                Source {
                    rate: Rat::int(src_rate),
                    burst: Rat::int(src_burst),
                },
                nodes,
            )
        })
}

/// Strategy: a flow class with quarter-unit rate/burst and a deadline
/// spanning trivially-met to hopeless.
fn arb_class(i: usize) -> impl Strategy<Value = FlowClass> {
    (1i64..=16, 1i64..=16, 1i64..=64).prop_map(move |(rate_q, burst_q, dl_q)| FlowClass {
        name: format!("c{i}"),
        rate: rat(rate_q as i128, 4),
        burst: rat(burst_q as i128, 4),
        block: rat(1, 4),
        deadline: rat(dl_q as i128, 4),
    })
}

fn arb_classes() -> impl Strategy<Value = Vec<FlowClass>> {
    proptest::collection::vec((1i64..=16, 1i64..=16, 1i64..=64), 1..=4).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (rate_q, burst_q, dl_q))| FlowClass {
                name: format!("c{i}"),
                rate: rat(rate_q as i128, 4),
                burst: rat(burst_q as i128, 4),
                block: rat(1, 4),
                deadline: rat(dl_q as i128, 4),
            })
            .collect()
    })
}

/// One scripted request: admit (class, attach) or depart the i-th
/// oldest resident flow.
#[derive(Clone, Debug)]
enum Req {
    Decide { class: usize, attach: usize },
    Depart { index: usize },
}

fn arb_requests() -> impl Strategy<Value = Vec<Req>> {
    // kind 0 departs, 1..5 decide — an 80/20 mix keeps a resident
    // population around while still exercising the depart path.
    let req = (0usize..5, 0usize..4, 0usize..8).prop_map(|(kind, class, index)| {
        if kind == 0 {
            Req::Depart { index }
        } else {
            Req::Decide {
                class,
                attach: index % 4,
            }
        }
    });
    proptest::collection::vec(req, 1..=16)
}

/// `Option` strategy (the vendored proptest subset has no
/// `proptest::option`): `None` in one case out of three.
fn opt<S: Strategy>(inner: S) -> impl Strategy<Value = Option<S::Value>> {
    (0usize..3, inner).prop_map(|(on, v)| (on > 0).then_some(v))
}

/// The oracle-side composition mirroring `AdmissionEngine::decide`:
/// local first, remote (attach 0) on local rejection.
#[allow(clippy::too_many_arguments)]
fn oracle_decide(
    local: &Pipeline,
    local_budget: Option<Rat>,
    remote: Option<&Pipeline>,
    classes: &[FlowClass],
    local_resident: &[(usize, ClassId)],
    remote_resident: &[(usize, ClassId)],
    candidate: &FlowClass,
    attach: usize,
) -> Decision {
    match oracle::decide_full(
        local,
        local_budget,
        classes,
        local_resident,
        candidate,
        attach,
    ) {
        Ok(bound) => Decision::Admit { bound },
        Err(reason) => {
            if let Some(r) = remote {
                if let Ok(bound) =
                    oracle::decide_full(r, None, classes, remote_resident, candidate, 0)
                {
                    return Decision::AdmitRemote { bound };
                }
            }
            Decision::Reject { reason }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Incremental decisions — placement, reason, and exact bound —
    /// equal full uncached recomputation, across admits and departs.
    #[test]
    fn engine_matches_full_recomputation(
        local in arb_pipeline(),
        remote in opt(arb_pipeline()),
        budget_extra in opt(0i64..=32),
        classes in arb_classes(),
        requests in arb_requests(),
    ) {
        let budget = budget_extra.map(|x| local.source.burst + Rat::int(x));
        let mut engine = AdmissionEngine::new();
        let tenant = engine.add_tenant(local.clone(), budget).unwrap();
        if let Some(r) = &remote {
            engine.set_remote(tenant, r.clone(), None).unwrap();
        }
        let mut ids = Vec::new();
        for c in &classes {
            ids.push(engine.register_class(c.clone()).unwrap());
        }

        // Shadow state for the oracle: resident (attach, class) pairs
        // per path, in admission order.
        let mut local_res: Vec<(usize, ClassId)> = Vec::new();
        let mut remote_res: Vec<(usize, ClassId)> = Vec::new();
        // (attach requested, class, placement) per live flow.
        let mut live: Vec<(usize, ClassId, Placement)> = Vec::new();

        for req in requests {
            match req {
                Req::Decide { class, attach } => {
                    let class = ids[class % ids.len()];
                    let attach = attach % local.nodes.len();
                    let got = engine.decide(tenant, class, attach).unwrap();
                    let want = oracle_decide(
                        &local,
                        budget,
                        remote.as_ref(),
                        &classes,
                        &local_res,
                        &remote_res,
                        &classes[class.0],
                        attach,
                    );
                    prop_assert_eq!(got, want);
                    match got.placement() {
                        Some(Placement::Local) => {
                            local_res.push((attach, class));
                            live.push((attach, class, Placement::Local));
                        }
                        Some(Placement::Remote) => {
                            remote_res.push((0, class));
                            live.push((attach, class, Placement::Remote));
                        }
                        None => {}
                    }
                }
                Req::Depart { index } => {
                    if live.is_empty() {
                        continue;
                    }
                    let (attach, class, placement) = live.remove(index % live.len());
                    engine.depart(tenant, class, attach, placement).unwrap();
                    let shadow = match placement {
                        Placement::Local => &mut local_res,
                        Placement::Remote => &mut remote_res,
                    };
                    let key = if placement == Placement::Local { attach } else { 0 };
                    let pos = shadow.iter().position(|&e| e == (key, class)).unwrap();
                    shadow.remove(pos);
                }
            }
        }
    }

    /// An admitted flow stays admitted when its rate or burst shrinks
    /// (same deadline, same engine state).
    #[test]
    fn admission_is_monotone_in_rate_and_burst(
        local in arb_pipeline(),
        budget_extra in opt(0i64..=32),
        classes in arb_classes(),
        requests in arb_requests(),
        big in arb_class(100),
        shrink_rate_q in 1i64..=16,
        shrink_burst_q in 1i64..=16,
        attach in 0usize..4,
    ) {
        let budget = budget_extra.map(|x| local.source.burst + Rat::int(x));
        let mut engine = AdmissionEngine::new();
        let tenant = engine.add_tenant(local.clone(), budget).unwrap();
        let mut ids = Vec::new();
        for c in &classes {
            ids.push(engine.register_class(c.clone()).unwrap());
        }
        // Load the engine with a random resident population.
        for req in requests {
            if let Req::Decide { class, attach } = req {
                let _ = engine.decide(tenant, ids[class % ids.len()], attach % local.nodes.len());
            }
        }

        let small = FlowClass {
            rate: big.rate.min(rat(shrink_rate_q as i128, 4)),
            burst: big.burst.min(rat(shrink_burst_q as i128, 4)),
            ..big.clone()
        };
        let big_id = engine.register_class(big).unwrap();
        let small_id = engine.register_class(small).unwrap();
        let attach = attach % local.nodes.len();
        let big_decision = engine.peek(tenant, big_id, attach).unwrap();
        if big_decision.is_admitted() {
            let small_decision = engine.peek(tenant, small_id, attach).unwrap();
            prop_assert!(
                small_decision.is_admitted(),
                "big admitted as {:?} but shrunk candidate rejected as {:?}",
                big_decision,
                small_decision
            );
        }
    }
}

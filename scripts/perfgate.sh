#!/usr/bin/env bash
# Perf regression gate: re-run the perfbase snapshot into a temp file
# and flag any repro binary or simulation row that is >25% slower than
# the newest committed BENCH_*.json baseline.
#
# Default mode is warn-only — wall-clock noise on shared machines makes
# a hard gate flakier than it is useful, so the warning is the review
# signal. Set PERFGATE_STRICT=1 to make a >25% regression (or a failed
# perfbase run) fail the gate with a non-zero exit, for environments
# quiet enough to trust the numbers.
set -uo pipefail
cd "$(dirname "$0")/.."

strict="${PERFGATE_STRICT:-0}"

base=$(ls BENCH_*.json 2>/dev/null | sort -V | tail -1)
if [[ -z "${base}" ]]; then
    echo "perfgate: no BENCH_*.json baseline found — skipping"
    exit 0
fi

out=$(mktemp -t perfgate.XXXXXX.json)
# perfbase re-runs the repro bins, which rewrite results/ — all
# byte-deterministic except the sweep CSV: perfbase times the default
# 16x16 grid, while the committed artifact is the 4x4 smoke output.
# Snapshot and restore it so a check.sh run leaves the tree clean.
sweep_csv=results/sweep_bitw.csv
sweep_saved=$(mktemp -t perfgate.sweep.XXXXXX.csv)
if ! cp "$sweep_csv" "$sweep_saved" 2>/dev/null; then
    rm -f "$sweep_saved"
    sweep_saved=""
fi
restore() {
    if [[ -n "$sweep_saved" && -f "$sweep_saved" ]]; then
        mv "$sweep_saved" "$sweep_csv"
    fi
    rm -f "$out"
}
trap restore EXIT
echo "perfgate: re-running perfbase (baseline: ${base}, strict=${strict})"
if ! PERFBASE_OUT="$out" cargo run --release -q -p nc-bench --bin perfbase >/dev/null; then
    if [[ "$strict" != "0" ]]; then
        echo "perfgate: FAIL — perfbase run failed (strict mode)"
        exit 1
    fi
    echo "perfgate: perfbase run failed — skipping comparison (warn-only)"
    exit 0
fi

PERFGATE_STRICT="$strict" python3 - "$base" "$out" <<'PY'
import json, os, sys

base_path, cur_path = sys.argv[1], sys.argv[2]
strict = os.environ.get("PERFGATE_STRICT", "0") != "0"
with open(base_path) as f:
    base = json.load(f)
with open(cur_path) as f:
    cur = json.load(f)

def rows(snapshot):
    r = {}
    for b in snapshot.get("bins", []):
        r[("bin", b["bin"])] = b["wall_s"]
    for s in snapshot.get("sims", []):
        r[("sim", s["what"])] = s["per_run_s"]
    return r

old, new = rows(base), rows(cur)
shared = sorted(old.keys() & new.keys())
slow = [(k, old[k], new[k]) for k in shared if new[k] > old[k] * 1.25]

if slow:
    word = "FAIL" if strict else "WARNING"
    print(f"perfgate: {word} — {len(slow)} row(s) >25% slower than {base_path}:")
    for (kind, name), was, now in slow:
        print(f"  {kind:<4} {name:<44} {was:.3e}s -> {now:.3e}s ({now / was:.2f}x)")
    sys.exit(1 if strict else 0)
else:
    print(f"perfgate: ok — {len(shared)} rows compared against {base_path}, none >25% slower")
PY
status=$?
if [[ "$strict" != "0" && $status -ne 0 ]]; then
    exit "$status"
fi
exit 0

//! Run the complete reproduction: every table and figure, written to
//! `results/`. This is the one-command regeneration entry point cited
//! by EXPERIMENTS.md.

use nc_apps::{bitw, blast, format_table};

fn main() {
    println!("=== streamcalc full reproduction ===\n");

    // --- Figure 1 (conceptual geometry) ---
    // Delegated: identical to the fig1 binary's computation.
    let alpha =
        nc_core::curve::shapes::leaky_bucket(nc_core::num::Rat::int(1), nc_core::num::Rat::int(4));
    let beta =
        nc_core::curve::shapes::rate_latency(nc_core::num::Rat::int(2), nc_core::num::Rat::int(2));
    println!(
        "Figure 1 geometry: x = {:?}, d = {:?}\n",
        nc_core::bounds::backlog_bound(&alpha, &beta),
        nc_core::bounds::delay_bound(&alpha, &beta),
    );

    // --- BLAST (Sec. 4) ---
    let b = blast::reproduce(42);
    let mut t1 = format_table(
        "Table 1: BLAST streaming data application throughput",
        &b.table1,
    );
    t1.push('\n');
    t1.push_str(&nc_bench::format_bounds("BLAST (Sec. 4.2)", &b.bounds));
    nc_bench::emit("table1.txt", &t1);
    nc_bench::emit_json("table1.json", &b.table1);
    let fig4 = blast::figure4(&b, 160);
    nc_bench::emit("fig4.csv", &fig4.to_csv());

    // --- Bump in the wire (Sec. 5) ---
    let (rows, ratio) = bitw::measure_table2(4 << 20, 9);
    let mut t2 = String::from(
        "Table 2: function throughputs (our CPU kernels vs the paper's FPGA kernels)\n",
    );
    for r in &rows {
        t2.push_str(&format!(
            "  {:<12} ours {:>8.0}/{:>8.0}/{:>8.0}   paper {:>6.0}/{:>6.0}/{:>6.0} MiB/s\n",
            r.function, r.ours.0, r.ours.1, r.ours.2, r.paper.0, r.paper.1, r.paper.2
        ));
    }
    t2.push_str(&format!("  observed LZ4 ratio: {ratio:.2}x\n"));
    nc_bench::emit("table2.txt", &t2);
    nc_bench::emit_json("table2.json", &rows);

    let w = bitw::reproduce(42);
    let mut t3 = format_table(
        "Table 3: bump-in-the-wire streaming data application throughput",
        &w.table3,
    );
    t3.push('\n');
    t3.push_str(&nc_bench::format_bounds(
        "Bump-in-the-wire (Sec. 5)",
        &w.bounds,
    ));
    nc_bench::emit("table3.txt", &t3);
    nc_bench::emit_json("table3.json", &w.table3);
    let fig10 = bitw::figure10(&w, 160);
    nc_bench::emit("fig10.csv", &fig10.to_csv());

    println!("\n=== reproduction complete; artifacts in results/ ===");
}

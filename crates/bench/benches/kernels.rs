//! Workload-kernel throughput benches — the Criterion side of Table 2:
//! LZ4 compress/decompress, AES-256-CBC encrypt/decrypt, fa2bit, and
//! the BLASTN stages, each measured on the data it would see in the
//! paper's pipelines. Criterion's `throughput` reporting prints MiB/s
//! directly comparable with `results/table2.txt`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use nc_workloads::aes::{cbc_decrypt_raw, cbc_encrypt_raw, Aes256};
use nc_workloads::blast::{blast_search, QueryIndex, UngappedParams};
use nc_workloads::fasta::{fa2bit, random_dna};
use nc_workloads::lz4;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn text_like(len: usize, seed: u64) -> Vec<u8> {
    let vocab: [&[u8]; 8] = [
        b"stream", b"data", b"node", b"queue", b"rate", b"burst", b"delay", b"curve",
    ];
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut v = Vec::with_capacity(len + 8);
    while v.len() < len {
        v.extend_from_slice(vocab[rng.gen_range(0..vocab.len())]);
        v.push(b' ');
    }
    v.truncate(len);
    v
}

fn bench_lz4(c: &mut Criterion) {
    let mut g = c.benchmark_group("lz4");
    for size in [64 << 10, 1 << 20] {
        let data = text_like(size, 1);
        let compressed = lz4::compress(&data);
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("compress", size), &data, |b, d| {
            b.iter(|| black_box(lz4::compress(d)))
        });
        g.bench_with_input(BenchmarkId::new("decompress", size), &compressed, |b, d| {
            b.iter(|| black_box(lz4::decompress(d, size).unwrap()))
        });
    }
    g.finish();
}

fn bench_aes(c: &mut Criterion) {
    let mut g = c.benchmark_group("aes256_cbc");
    let aes = Aes256::new(&[7u8; 32]);
    let iv = [1u8; 16];
    for size in [64usize << 10, 1 << 20] {
        let mut buf = vec![0xA5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("encrypt", size), &size, |b, _| {
            b.iter(|| {
                cbc_encrypt_raw(&aes, &iv, &mut buf);
                black_box(buf[0])
            })
        });
        g.bench_with_input(BenchmarkId::new("decrypt", size), &size, |b, _| {
            b.iter(|| {
                cbc_decrypt_raw(&aes, &iv, &mut buf).unwrap();
                black_box(buf[0])
            })
        });
    }
    g.finish();
}

fn bench_fa2bit(c: &mut Criterion) {
    let mut g = c.benchmark_group("fa2bit");
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let seq = random_dna(1 << 20, &mut rng);
    g.throughput(Throughput::Bytes(1 << 20));
    g.bench_function("pack_1MiB", |b| b.iter(|| black_box(fa2bit(&seq))));
    g.finish();
}

fn bench_blast(c: &mut Criterion) {
    let mut g = c.benchmark_group("blast");
    g.sample_size(10);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let query = random_dna(512, &mut rng);
    let db = random_dna(1 << 20, &mut rng);
    let qp = fa2bit(&query);
    let dbp = fa2bit(&db);
    g.throughput(Throughput::Bytes(1 << 20));
    g.bench_function("full_search_1MiB_db", |b| {
        b.iter(|| black_box(blast_search(&query, &db, &UngappedParams::default())))
    });
    g.bench_function("seed_match_1MiB_db", |b| {
        let idx = QueryIndex::build(&qp, query.len());
        b.iter(|| black_box(nc_workloads::blast::seed_match(&dbp, db.len(), &idx)))
    });
    g.bench_function("index_build_512b_query", |b| {
        b.iter(|| black_box(QueryIndex::build(&qp, query.len())))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_lz4, bench_aes, bench_fa2bit, bench_blast
}
criterion_main!(benches);

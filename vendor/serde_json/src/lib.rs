//! Vendored JSON format layered on the vendored `serde` data model.
//!
//! Implements the workspace's actual usage surface — `to_string`,
//! `to_string_pretty`, and `from_str` — with the same observable
//! behaviour as upstream `serde_json` for the value shapes this
//! repository serializes: numbers, strings, booleans, null, arrays,
//! objects, and externally-tagged enums.

use serde::de::{self, Deserialize, Visitor};
use serde::ser::{self, Serialize};
use std::fmt;

/// Error produced by JSON serialization or deserialization.
pub struct Error(String);

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        write!(f, "Error({:?})", self.0)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

// ------------------------------------------------------------- serialization

struct Writer {
    out: String,
    pretty: bool,
    indent: usize,
}

impl Writer {
    fn newline_indent(&mut self) {
        if self.pretty {
            self.out.push('\n');
            for _ in 0..self.indent {
                self.out.push_str("  ");
            }
        }
    }

    fn write_f64(&mut self, v: f64) {
        if v.is_finite() {
            // Shortest round-trip representation; integral floats keep
            // a trailing ".0" so the value reads back as a float.
            let s = format!("{v}");
            self.out.push_str(&s);
            if v.fract() == 0.0 && !s.contains(['.', 'e', 'E']) && v.abs() < 1e15 {
                self.out.push_str(".0");
            }
        } else {
            // Upstream serde_json serializes NaN/inf as null.
            self.out.push_str("null");
        }
    }

    fn write_str(&mut self, v: &str) {
        self.out.push('"');
        for c in v.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

/// Sub-serializer for sequences, structs, and struct variants.
pub struct Compound<'a> {
    w: &'a mut Writer,
    first: bool,
    close: &'static str,
}

impl Compound<'_> {
    fn element_gap(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.w.out.push(',');
        }
        self.w.newline_indent();
    }

    fn finish(self) -> Result<(), Error> {
        self.w.indent = self.w.indent.saturating_sub(1);
        if !self.first {
            self.w.newline_indent();
        }
        self.w.out.push_str(self.close);
        // A struct variant owes the outer `}` of its tag object.
        if self.close.len() == 2 && self.w.pretty {
            // Already emitted both braces without an inner newline;
            // acceptable compact close for the nested tag object.
        }
        Ok(())
    }
}

impl ser::SerializeSeq for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.element_gap();
        value.serialize(&mut *self.w)
    }

    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

impl ser::SerializeStruct for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.element_gap();
        self.w.write_str(key);
        self.w.out.push(':');
        if self.w.pretty {
            self.w.out.push(' ');
        }
        value.serialize(&mut *self.w)
    }

    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

impl<'a> ser::Serializer for &'a mut Writer {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = Compound<'a>;
    type SerializeStruct = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), Error> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), Error> {
        self.write_f64(v);
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), Error> {
        self.write_str(v);
        Ok(())
    }

    fn serialize_unit(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_none(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), Error> {
        value.serialize(self)
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<(), Error> {
        self.write_str(variant);
        Ok(())
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.out.push('{');
        self.write_str(variant);
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
        value.serialize(&mut *self)?;
        self.out.push('}');
        Ok(())
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<Compound<'a>, Error> {
        self.out.push('[');
        self.indent += 1;
        Ok(Compound {
            w: self,
            first: true,
            close: "]",
        })
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Compound<'a>, Error> {
        self.out.push('{');
        self.indent += 1;
        Ok(Compound {
            w: self,
            first: true,
            close: "}",
        })
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, Error> {
        self.out.push('{');
        self.write_str(variant);
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
        self.out.push('{');
        self.indent += 1;
        Ok(Compound {
            w: self,
            first: true,
            close: "}}",
        })
    }
}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut w = Writer {
        out: String::new(),
        pretty: false,
        indent: 0,
    };
    value.serialize(&mut w)?;
    Ok(w.out)
}

/// Serialize `value` as human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut w = Writer {
        out: String::new(),
        pretty: true,
        indent: 0,
    };
    value.serialize(&mut w)?;
    Ok(w.out)
}

// ----------------------------------------------------------- deserialization

/// Parsed JSON value tree (internal).
enum JVal {
    Null,
    Bool(bool),
    Int(i64),
    Num(f64),
    Str(String),
    Arr(Vec<JVal>),
    Obj(Vec<(String, JVal)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, Error> {
        Err(Error(format!("{msg} at byte {}", self.pos)))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected `{}`", b as char))
        }
    }

    fn parse_value(&mut self) -> Result<JVal, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JVal::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", JVal::Bool(true)),
            Some(b'f') => self.parse_lit("false", JVal::Bool(false)),
            Some(b'n') => self.parse_lit("null", JVal::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: JVal) -> Result<JVal, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            self.err(&format!("expected `{lit}`"))
        }
    }

    fn parse_number(&mut self) -> Result<JVal, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid utf-8 in number".into()))?;
        if !float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(JVal::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(v) => Ok(JVal::Num(v)),
            Err(_) => self.err(&format!("invalid number `{text}`")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 3; // +1 below covers the 4th
                                }
                                None => return self.err("invalid \\u escape"),
                            }
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8 in string".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<JVal, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JVal::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JVal::Arr(items));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JVal, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JVal::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JVal::Obj(entries));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }
}

struct SeqAcc<'de> {
    iter: std::slice::Iter<'de, JVal>,
}

impl<'de> de::SeqAccess<'de> for SeqAcc<'de> {
    type Error = Error;

    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Error> {
        match self.iter.next() {
            Some(v) => T::deserialize(v).map(Some),
            None => Ok(None),
        }
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.iter.len())
    }
}

struct MapAcc<'de> {
    iter: std::slice::Iter<'de, (String, JVal)>,
    value: Option<&'de JVal>,
}

/// Deserializer handing an object key to `next_key`.
struct StrDeserializer<'de>(&'de str);

impl<'de> de::Deserializer<'de> for StrDeserializer<'de> {
    type Error = Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        visitor.visit_str(self.0)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        visitor.visit_some(self)
    }
}

impl<'de> de::MapAccess<'de> for MapAcc<'de> {
    type Error = Error;

    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Error> {
        match self.iter.next() {
            Some((key, value)) => {
                self.value = Some(value);
                K::deserialize(StrDeserializer(key)).map(Some)
            }
            None => Ok(None),
        }
    }

    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Error> {
        let value = self
            .value
            .take()
            .ok_or_else(|| Error("next_value called before next_key".into()))?;
        V::deserialize(value)
    }

    fn skip_value(&mut self) -> Result<(), Error> {
        self.value.take();
        Ok(())
    }
}

impl<'de> de::Deserializer<'de> for &'de JVal {
    type Error = Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self {
            JVal::Null => visitor.visit_unit(),
            JVal::Bool(b) => visitor.visit_bool(*b),
            JVal::Int(i) => visitor.visit_i64(*i),
            JVal::Num(n) => visitor.visit_f64(*n),
            JVal::Str(s) => visitor.visit_str(s),
            JVal::Arr(items) => visitor.visit_seq(SeqAcc { iter: items.iter() }),
            JVal::Obj(entries) => visitor.visit_map(MapAcc {
                iter: entries.iter(),
                value: None,
            }),
        }
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self {
            JVal::Null => visitor.visit_none(),
            _ => visitor.visit_some(self),
        }
    }
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: for<'de> Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return parser.err("trailing characters");
    }
    T::deserialize(&value)
}

//! A prunable stairstep buffer with stable absolute indexing.
//!
//! The simulation engines record one `(time, cumulative-input)` step per
//! source emission and look steps up later — by *absolute index* — to
//! answer "when did cumulative level `L` enter the system?" for the
//! virtual-delay statistic. The lookup cursor is monotone (output levels
//! only grow), so steps behind the cursor are dead. A [`StepRing`] is a
//! `VecDeque` plus a base offset: indices behave exactly like a
//! `Vec`'s, but [`StepRing::prune_to`] drops the dead prefix, bounding
//! live memory by the data in flight (O(pipeline) in stable regimes)
//! instead of O(events) for the whole run.
//!
//! When tracing is on, the engines simply never prune, and
//! [`StepRing::iter`] replays the full stairstep for `trace_in`.

use std::collections::VecDeque;

/// Append-only step sequence with absolute indices and prefix pruning.
#[derive(Clone, Debug, Default)]
pub(crate) struct StepRing<T> {
    buf: VecDeque<T>,
    /// Absolute index of `buf[0]` — the number of pruned entries.
    base: usize,
}

impl<T: Copy> StepRing<T> {
    /// An empty ring.
    pub fn new() -> StepRing<T> {
        StepRing {
            buf: VecDeque::new(),
            base: 0,
        }
    }

    /// Remove all entries and reset indices (keeps the allocation).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.base = 0;
    }

    /// Append one entry at absolute index `self.len()`.
    pub fn push(&mut self, x: T) {
        self.buf.push_back(x);
    }

    /// One past the last absolute index ever pushed (pruning does not
    /// shrink this).
    pub fn len(&self) -> usize {
        self.base + self.buf.len()
    }

    /// `true` when nothing was ever pushed (or everything was pruned).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The entry at absolute index `i`.
    ///
    /// # Panics
    /// Panics if `i` was pruned or never pushed.
    pub fn get(&self, i: usize) -> T {
        self.buf[i - self.base]
    }

    /// Drop every entry with absolute index `< i` (no-op when already
    /// pruned that far).
    pub fn prune_to(&mut self, i: usize) {
        while self.base < i {
            self.buf.pop_front();
            self.base += 1;
        }
    }

    /// Live entries in index order (all entries when never pruned).
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        self.buf.iter().copied()
    }

    /// Apply `f` to every live entry in place (the deterministic
    /// fast-forward translates times and cumulative levels by whole
    /// cycles).
    pub fn shift(&mut self, mut f: impl FnMut(&mut T)) {
        for x in self.buf.iter_mut() {
            f(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_survive_pruning() {
        let mut r: StepRing<u32> = StepRing::new();
        for v in 0..10 {
            r.push(v * 10);
        }
        assert_eq!(r.len(), 10);
        assert_eq!(r.get(3), 30);
        r.prune_to(4);
        assert_eq!(r.len(), 10, "len is absolute, not live count");
        assert_eq!(r.get(4), 40);
        assert_eq!(r.get(9), 90);
        r.prune_to(2); // backwards: no-op
        assert_eq!(r.get(4), 40);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![40, 50, 60, 70, 80, 90]);
    }

    #[test]
    fn shift_applies_to_live_entries() {
        let mut r: StepRing<(u64, u64)> = StepRing::new();
        r.push((1, 10));
        r.push((2, 20));
        r.prune_to(1);
        r.shift(|e| {
            e.0 += 100;
            e.1 += 5;
        });
        assert_eq!(r.get(1), (102, 25));
    }

    #[test]
    fn clear_resets_base() {
        let mut r: StepRing<u32> = StepRing::new();
        r.push(1);
        r.prune_to(1);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        r.push(7);
        assert_eq!(r.get(0), 7);
    }
}

//! Constructors for the standard network-calculus curve shapes.
//!
//! These are the building blocks used throughout the paper: leaky-bucket
//! arrival curves, rate-latency service curves, pure delays `δ_T`, and
//! the piecewise combinations derived from them.

use crate::num::{Rat, Value};

use super::pwl::{Breakpoint, Curve};

/// The zero curve `f(t) = 0`.
pub fn zero() -> Curve {
    Curve::from_breakpoints_unchecked(vec![Breakpoint::cont(Rat::ZERO, Value::ZERO, Rat::ZERO)])
}

/// The constant curve `f(t) = c` for all `t ≥ 0`.
pub fn constant(c: Rat) -> Curve {
    Curve::from_breakpoints_unchecked(vec![Breakpoint::cont(
        Rat::ZERO,
        Value::finite(c),
        Rat::ZERO,
    )])
}

/// The pure-rate curve `f(t) = R·t` (a leaky bucket with zero burst).
pub fn constant_rate(rate: Rat) -> Curve {
    assert!(!rate.is_negative(), "constant_rate needs R >= 0");
    Curve::from_breakpoints_unchecked(vec![Breakpoint::cont(Rat::ZERO, Value::ZERO, rate)])
}

/// The leaky-bucket arrival curve of the paper's §2:
///
/// ```text
/// α(t) = Rα · t + b   for t > 0,   α(0) = 0.
/// ```
///
/// `rate` is `Rα` (data per unit time) and `burst` is `b` (instantaneous
/// data). The discontinuity at `t = 0` is represented exactly.
pub fn leaky_bucket(rate: Rat, burst: Rat) -> Curve {
    assert!(!rate.is_negative(), "leaky_bucket needs R >= 0");
    assert!(!burst.is_negative(), "leaky_bucket needs b >= 0");
    if burst.is_zero() {
        return constant_rate(rate);
    }
    Curve::from_breakpoints_unchecked(vec![Breakpoint {
        x: Rat::ZERO,
        v: Value::ZERO,
        v_right: Value::finite(burst),
        slope: rate,
    }])
}

/// The rate-latency service curve of the paper's §2:
///
/// ```text
/// β(t) = Rβ · (t − T)   for t > T,   0 otherwise.
/// ```
pub fn rate_latency(rate: Rat, latency: Rat) -> Curve {
    assert!(!rate.is_negative(), "rate_latency needs R >= 0");
    assert!(!latency.is_negative(), "rate_latency needs T >= 0");
    if latency.is_zero() {
        return constant_rate(rate);
    }
    Curve::from_breakpoints_unchecked(vec![
        Breakpoint::cont(Rat::ZERO, Value::ZERO, Rat::ZERO),
        Breakpoint::cont(latency, Value::ZERO, rate),
    ])
}

/// The burst-delay (pure delay) curve `δ_T`: `0` on `[0, T]`, `+∞`
/// after. `f ⊗ δ_T` delays `f` by `T`; `δ_0` is the identity of `⊗`.
pub fn delta(latency: Rat) -> Curve {
    assert!(!latency.is_negative(), "delta needs T >= 0");
    if latency.is_zero() {
        return Curve::from_breakpoints_unchecked(vec![Breakpoint {
            x: Rat::ZERO,
            v: Value::ZERO,
            v_right: Value::Infinity,
            slope: Rat::ZERO,
        }]);
    }
    Curve::from_breakpoints_unchecked(vec![
        Breakpoint::cont(Rat::ZERO, Value::ZERO, Rat::ZERO),
        Breakpoint {
            x: latency,
            v: Value::ZERO,
            v_right: Value::Infinity,
            slope: Rat::ZERO,
        },
    ])
}

/// The constant `+∞` curve for `t > 0` (top element of the min-plus
/// lattice among curves with `f(0) = 0`); equals `δ_0`.
pub fn top() -> Curve {
    delta(Rat::ZERO)
}

/// A multi-bucket (concave piecewise-affine) arrival curve: the minimum
/// of several leaky buckets. Commonly used to express both a peak rate
/// and a sustained rate, e.g. `min(P·t + 1, R·t + b)`.
///
/// # Panics
/// Panics if `buckets` is empty.
pub fn token_buckets(buckets: &[(Rat, Rat)]) -> Curve {
    assert!(!buckets.is_empty(), "token_buckets needs >= 1 bucket");
    let mut acc = leaky_bucket(buckets[0].0, buckets[0].1);
    for &(r, b) in &buckets[1..] {
        acc = acc.min(&leaky_bucket(r, b));
    }
    acc
}

/// A truncated staircase curve: jumps of `step` at `0, τ, 2τ, …,
/// (steps−1)·τ`, then continues at the average rate `step/τ`.
///
/// This models packetized flows (the paper's §3 `P^L` discussion): data
/// leaves a packetizer in whole packets of `step` bytes every `τ`. The
/// exact staircase has infinitely many breakpoints; after `steps`
/// periods we continue with the affine envelope, which is exact for all
/// bound computations whose horizon lies within `steps·τ` and
/// conservative beyond.
pub fn truncated_staircase(step: Rat, period: Rat, steps: usize) -> Curve {
    assert!(step.is_positive() && period.is_positive());
    assert!(steps >= 1);
    let mut bps = Vec::with_capacity(steps + 1);
    for k in 0..steps {
        let x = period * Rat::int(k as i64);
        let v = Value::finite(step * Rat::int(k as i64));
        let v_right = Value::finite(step * Rat::int(k as i64 + 1));
        bps.push(Breakpoint {
            x,
            v,
            v_right,
            slope: Rat::ZERO,
        });
    }
    // Affine continuation at the sustained rate step/τ from the last jump.
    let x = period * Rat::int(steps as i64);
    let v = Value::finite(step * Rat::int(steps as i64));
    bps.push(Breakpoint {
        x,
        v,
        v_right: v,
        slope: step / period,
    });
    Curve::from_breakpoints_unchecked(bps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::num::rat;

    #[test]
    fn zero_and_constant() {
        assert_eq!(zero().eval(Rat::int(100)), Value::ZERO);
        assert_eq!(constant(Rat::int(7)).eval(Rat::ZERO), Value::from(7));
        assert_eq!(constant(Rat::int(7)).eval(Rat::int(9)), Value::from(7));
    }

    #[test]
    fn leaky_bucket_zero_burst_is_rate() {
        let c = leaky_bucket(Rat::int(3), Rat::ZERO);
        assert_eq!(c.eval_right(Rat::ZERO), Value::ZERO);
        assert_eq!(c.eval(Rat::int(2)), Value::from(6));
    }

    #[test]
    fn rate_latency_zero_latency_is_rate() {
        let c = rate_latency(Rat::int(3), Rat::ZERO);
        assert_eq!(c.eval(Rat::int(2)), Value::from(6));
    }

    #[test]
    fn delta_zero_is_top() {
        let d = delta(Rat::ZERO);
        assert_eq!(d.eval(Rat::ZERO), Value::ZERO);
        assert_eq!(d.eval(rat(1, 1000)), Value::Infinity);
    }

    #[test]
    fn token_buckets_concave_min() {
        // Peak rate 10 with burst 1, sustained rate 2 with burst 9.
        let c = token_buckets(&[(Rat::int(10), Rat::ONE), (Rat::int(2), Rat::int(9))]);
        // Crossing at t = 1: 10t+1 = 2t+9.
        assert_eq!(c.eval(rat(1, 2)), Value::from(6));
        assert_eq!(c.eval(Rat::int(2)), Value::from(13));
        assert!(c.is_wide_sense_increasing());
    }

    #[test]
    fn staircase_values() {
        let s = truncated_staircase(Rat::int(4), Rat::int(2), 3);
        assert_eq!(s.eval(Rat::ZERO), Value::ZERO);
        assert_eq!(s.eval(Rat::ONE), Value::from(4));
        assert_eq!(s.eval(Rat::int(2)), Value::from(4));
        assert_eq!(s.eval_right(Rat::int(2)), Value::from(8));
        assert_eq!(s.eval(Rat::int(3)), Value::from(8));
        // Affine tail: slope 2 from (6, 12).
        assert_eq!(s.eval(Rat::int(8)), Value::from(16));
        assert!(s.is_wide_sense_increasing());
    }
}

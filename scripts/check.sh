#!/usr/bin/env bash
# Local CI gate: formatting, lints, the tier-1 build+test pass, and a
# smoke run of the kernel benches. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings: whole workspace)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> criterion smoke: curve_ops + des_calendar + par_scaling + admission in test mode"
cargo bench -p nc-bench --bench curve_ops -- --test
cargo bench -p nc-bench --bench des_calendar -- --test
PAR_SCALING_SMOKE=1 cargo bench -p nc-bench --bench par_scaling -- --test
cargo bench -p nc-bench --bench admission -- --test

echo "==> sweep smoke: 4x4 grid through the batch engine"
SWEEP_GRID=4x4 cargo run --release -q -p nc-bench --bin sweep

echo "==> NC_THREADS determinism: sweep CSV byte-identical at 1 worker"
cp results/sweep_bitw.csv /tmp/sweep_ambient.csv
SWEEP_GRID=4x4 NC_THREADS=1 cargo run --release -q -p nc-bench --bin sweep > /dev/null
cmp results/sweep_bitw.csv /tmp/sweep_ambient.csv \
  || { echo "FAIL: sweep CSV differs between NC_THREADS=1 and the ambient pool" >&2; exit 1; }
rm -f /tmp/sweep_ambient.csv

echo "==> admission smoke: 6-tenant request trace through the admit bin"
ADMIT_FLEET=6 ADMIT_REQS=40 cargo run --release -q -p nc-bench --bin admit > /dev/null

echo "==> NC_THREADS determinism: admission CSV byte-identical at 1 worker"
cp results/admission.csv /tmp/admission_ambient.csv
ADMIT_FLEET=6 ADMIT_REQS=40 NC_THREADS=1 cargo run --release -q -p nc-bench --bin admit > /dev/null
cmp results/admission.csv /tmp/admission_ambient.csv \
  || { echo "FAIL: admission CSV differs between NC_THREADS=1 and the ambient pool" >&2; exit 1; }
rm -f /tmp/admission_ambient.csv

echo "==> NC_THREADS determinism: striped fleet CSV byte-identical at 1 vs 2 workers"
FLEET_TENANTS=20 NC_THREADS=1 cargo run --release -q -p nc-bench --bin fleet > /dev/null
cp results/fleet.csv /tmp/fleet_1worker.csv
FLEET_TENANTS=20 NC_THREADS=2 cargo run --release -q -p nc-bench --bin fleet > /dev/null
cmp results/fleet.csv /tmp/fleet_1worker.csv \
  || { echo "FAIL: fleet CSV differs between NC_THREADS=1 and NC_THREADS=2" >&2; exit 1; }
rm -f /tmp/fleet_1worker.csv

echo "==> faults gate: degraded bounds contain every faulted run"
cargo run --release -q -p nc-bench --bin faults > /dev/null

echo "==> coverage lane (warn-only, skipped when cargo-llvm-cov absent)"
if command -v cargo-llvm-cov > /dev/null 2>&1; then
  # Line-coverage floor on the library crates; warn-only so a dip
  # never blocks the gate, but the number is always printed.
  if ! cargo llvm-cov --workspace --lib --summary-only \
      --fail-under-lines 70; then
    echo "WARN: line coverage below the 70% floor (not fatal)" >&2
  fi
else
  echo "WARN: cargo-llvm-cov not installed; skipping coverage lane" >&2
fi

if [ "${CHECK_NIGHTLY:-0}" != "0" ]; then
  echo "==> nightly lane: ignored (long-horizon) tests included"
  cargo test -q -- --include-ignored
fi

echo "==> perf gate (warn-only; PERFGATE_STRICT=1 to hard-fail)"
scripts/perfgate.sh

echo "==> all checks passed"

//! Striped fleet simulation: `FLEET_TENANTS` independent seeded
//! bump-in-the-wire tenants, each pushing `FLEET_INPUT_KIB` of input,
//! batch-simulated across `NC_THREADS` OS workers with one pooled
//! `SimArena` per worker.
//!
//! Tenant rows are merged in tenant order, so `results/fleet.csv` is
//! byte-identical for every worker count — `check.sh` asserts this.
//! Wall time and aggregate events/s are printed; the perfbase snapshot
//! carries the tracked striped-fleet throughput row.

use std::time::Instant;

use nc_bench::fleet;

fn main() {
    let cfg = fleet::FleetConfig::from_env();
    let workers = nc_bench::nc_threads().unwrap_or(1);

    let t0 = Instant::now();
    let rows = fleet::run_striped(&cfg, workers);
    let dt = t0.elapsed().as_secs_f64();

    let events: u64 = rows.iter().map(|r| r.events).sum();
    let bytes: f64 = rows.iter().map(|r| r.bytes_out).sum();
    println!(
        "fleet: {} tenants x {} KiB, {} workers: {:.3}s  ({} events, {:.3e} events/s, {:.3e} bytes out)",
        cfg.tenants,
        cfg.input_bytes >> 10,
        workers,
        dt,
        events,
        events as f64 / dt.max(f64::MIN_POSITIVE),
        bytes
    );

    nc_bench::emit("fleet.csv", &fleet::to_csv(&rows));
}

//! BLASTN biosequence alignment, organized as the streaming stages of
//! the paper's Figure 2.

pub mod gapped;
pub mod index;
pub mod pipeline;
pub mod stages;

pub use gapped::{gapped_extension, GappedAlignment, GappedParams};
pub use index::{kmer_code, QueryIndex, NUM_KMERS, SEED_LEN};
pub use pipeline::{
    blast_search, blast_search_both_strands, dedup_by_diagonal, BlastResult, StageStats, Strand,
    StrandHit,
};
pub use stages::{
    seed_enumeration, seed_match, small_extension, ungapped_extension, Extension, SeedMatch,
    UngappedParams,
};

//! `model` — analyze any pipeline described in a JSON spec file: the
//! tool a downstream user runs on *their* streaming application.
//!
//! ```text
//! Usage: model <pipeline.json> [--sim <MiB>] [--budget <KiB>] [--seed <n>]
//!
//!   --sim <MiB>     also run the discrete-event simulation on that volume
//!   --budget <KiB>  report the max admissible source rate for a total
//!                   buffer budget (back-pressure sizing)
//!   --seed <n>      simulation seed (default 42)
//! ```
//!
//! A ready-made spec lives at `specs/example_pipeline.json`; rates,
//! latencies, and job sizes are plain numbers (bytes, seconds) or exact
//! `[num, den]` rationals.

use std::process::ExitCode;

use nc_core::num::Rat;
use nc_core::pipeline::Pipeline;
use nc_core::units::{fmt_bytes, fmt_rate, fmt_time};
use nc_core::Value;
use nc_streamsim::{simulate, SimConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first() else {
        eprintln!("usage: model <pipeline.json> [--sim <MiB>] [--budget <KiB>] [--seed <n>]");
        return ExitCode::FAILURE;
    };
    let mut sim_mib: Option<u64> = None;
    let mut budget_kib: Option<u64> = None;
    let mut seed = 42u64;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--sim" => {
                sim_mib = args.get(i + 1).and_then(|v| v.parse().ok());
                i += 2;
            }
            "--budget" => {
                budget_kib = args.get(i + 1).and_then(|v| v.parse().ok());
                i += 2;
            }
            "--seed" => {
                seed = args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(seed);
                i += 2;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let raw = match std::fs::read_to_string(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let pipeline: Pipeline = match serde_json::from_str(&raw) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = pipeline.validate() {
        eprintln!("invalid pipeline: {e}");
        return ExitCode::FAILURE;
    }

    let model = pipeline.build_model();
    println!(
        "pipeline '{}' ({} stages)",
        pipeline.name,
        pipeline.nodes.len()
    );
    println!("regime: {:?}", model.regime());
    println!(
        "normalized bottleneck (min/avg/max): {} / {} / {}",
        fmt_rate(Value::finite(model.bottleneck_rate_min)),
        fmt_rate(Value::finite(model.bottleneck_rate_avg)),
        fmt_rate(Value::finite(model.bottleneck_rate_max)),
    );
    println!(
        "total latency T_tot = {}",
        fmt_time(Value::finite(model.total_latency))
    );
    println!("\nper-node (normalized):");
    println!(
        "  {:<16} {:>14} {:>14} {:>12} {:>12} {:>12}",
        "node", "rate_min", "rate_max", "job", "backlog", "delay"
    );
    for n in &model.per_node {
        println!(
            "  {:<16} {:>14} {:>14} {:>12} {:>12} {:>12}",
            n.name,
            fmt_rate(Value::finite(n.rate_min)),
            fmt_rate(Value::finite(n.rate_max)),
            fmt_bytes(Value::finite(n.job_in_normalized)),
            fmt_bytes(n.backlog),
            fmt_time(n.delay),
        );
    }
    println!("\nsystem bounds:");
    println!(
        "  backlog x = {} (aggregate) / {} (concatenated)",
        fmt_bytes(model.backlog_bound()),
        fmt_bytes(model.backlog_bound_concat())
    );
    println!(
        "  delay   d = {} (aggregate) / {} (concatenated)",
        fmt_time(model.delay_bound()),
        fmt_time(model.delay_bound_concat())
    );
    println!(
        "  heuristic estimates (finite in overload): x = {}, d = {}",
        fmt_bytes(Value::finite(model.heuristic_backlog())),
        fmt_time(model.heuristic_delay()),
    );

    if let Some(kib) = budget_kib {
        let budget = Rat::int(kib as i64) * Rat::int(1024);
        match model.max_admissible_rate(budget) {
            Some(r) => println!(
                "\nmax admissible source rate for a {} buffer: {}",
                fmt_bytes(Value::finite(budget)),
                fmt_rate(Value::finite(r))
            ),
            None => println!(
                "\nno admissible rate: the source burst alone overflows {}",
                fmt_bytes(Value::finite(budget))
            ),
        }
    }

    if let Some(mib) = sim_mib {
        let cfg = SimConfig {
            seed,
            total_input: mib << 20,
            ..SimConfig::default()
        };
        let r = simulate(&pipeline, &cfg);
        println!("\nsimulation ({mib} MiB, seed {seed}):");
        println!("  throughput   = {:.1} MiB/s", r.throughput / 1048576.0);
        println!(
            "  delay range  = [{:.3}, {:.3}] ms",
            r.delay_min * 1e3,
            r.delay_max * 1e3
        );
        println!(
            "  peak backlog = {}",
            fmt_bytes(Value::finite(Rat::from_f64(r.peak_backlog)))
        );
        println!("  events       = {}", r.events);
    }
    ExitCode::SUCCESS
}

//! The frozen pre-thinning simulation engine — the executable spec.
//!
//! This is the calendar-and-closures engine as it stood before the
//! scaling work: every source emission and job completion is a
//! type-erased event on the [`nc_des::Sim`] calendar, the input
//! stairstep and the delay tally grow one entry per event, and no
//! fast-forwarding happens. It is kept verbatim for two jobs:
//!
//! * **Equivalence testing** — the `prop_engine_equiv` property test
//!   drives random pipelines, seeds, and configurations through this
//!   engine and the thinned one and asserts bit-identical
//!   [`SimResult`]s (the thinning is a pure re-plumbing of the event
//!   loop: same event times, same `(time, seq)` order, same RNG draw
//!   sequence, same accounting order).
//! * **Perf ablation** — `perfbase` times the thinned engine against
//!   this reference so the speedup stays a tracked number rather than a
//!   claim.
//!
//! Do not "fix" or optimize this module; change [`crate::engine`] and
//! let the property test arbitrate.

use nc_core::pipeline::Pipeline;
use nc_des::{ByteQueue, Dist, Sim, SimPool, Span, Tally, Time, TimeWeighted};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::config::{derive_params, NodeParams, ServiceModel, SimConfig};
use crate::engine::steady_slope;
use crate::faults::FaultRt;
use crate::result::SimResult;

struct World {
    rng: ChaCha8Rng,
    params: Vec<NodeParams>,
    /// `queues[i]` feeds node `i` (local bytes of node `i`'s input).
    queues: Vec<ByteQueue>,
    busy: Vec<bool>,
    started: Vec<bool>,
    /// Accumulated service time per node (for utilization).
    busy_time: Vec<f64>,
    /// Jobs completed per node.
    jobs_done: Vec<u64>,
    service_model: ServiceModel,
    /// A finished job waiting for downstream space (backpressure).
    pending_out: Vec<Option<u64>>,

    // Fault injection — mirrors `crate::engine` exactly (the fault
    // layer predates nothing here: it is injected into both engines in
    // lock-step so the bitwise-equivalence property keeps holding).
    faults: Option<FaultRt>,
    cur_retry: Vec<u32>,
    last_exec: Vec<f64>,
    dropped_jobs: u64,
    dropped_norm: f64,
    retries: u64,

    // Source.
    src_remaining: u64,
    src_chunk: u64,
    src_interval: f64,
    src_blocked: bool,

    // Input-referred accounting.
    sink_norm: f64,
    cum_in: f64,
    cum_out: f64,
    in_system: TimeWeighted,
    delays: Tally,
    /// (t, cum_in) steps — always kept for delay lookups.
    input_steps: Vec<(f64, f64)>,
    /// Delay-lookup cursor into `input_steps`: the virtual-delay level
    /// is non-decreasing, so each lookup resumes where the last ended.
    delay_cursor: usize,
    trace: bool,
    trace_out: Vec<(f64, f64)>,
    t_last_out: f64,
}

impl World {
    fn n(&self) -> usize {
        self.params.len()
    }
}

type S = World;

/// Run the pre-thinning engine on `pipeline` (see the module docs for
/// why you would want this over [`crate::simulate`]).
///
/// # Panics
/// Panics if the pipeline is invalid (see
/// [`Pipeline::validate`]) or the configuration is inconsistent.
pub fn simulate_reference(pipeline: &Pipeline, config: &SimConfig) -> SimResult {
    pipeline
        .validate()
        .unwrap_or_else(|e| panic!("simulate: invalid pipeline: {e}"));
    let mut params = derive_params(pipeline);
    let n = params.len();
    let faults = config.faults.as_ref().and_then(|fs| {
        fs.validate(n)
            .unwrap_or_else(|e| panic!("simulate: invalid fault schedule: {e}"));
        FaultRt::build(fs, n)
    });
    if let Some(fr) = &faults {
        fr.apply_derates(&mut params);
    }

    let src_chunk = config.source_chunk.unwrap_or(params[0].job_in).max(1);
    let src_rate = pipeline.source.rate.to_f64();
    assert!(src_rate > 0.0);
    let sink_norm = {
        let last = &params[n - 1];
        last.norm_in * last.job_in as f64 / last.job_out as f64
    };

    if let Some(caps) = &config.queue_capacities {
        assert_eq!(
            caps.len(),
            n,
            "queue_capacities must have one entry per node"
        );
    }
    let queues: Vec<ByteQueue> = (0..n)
        .map(|i| {
            let cap = config
                .queue_capacities
                .as_ref()
                .map(|caps| caps[i])
                .or(config.queue_capacity);
            match cap {
                None => ByteQueue::unbounded(Time::ZERO),
                Some(c) => {
                    assert!(
                        c >= params[i].job_in,
                        "queue for node '{}' smaller than its job size",
                        params[i].name
                    );
                    // A queue must also admit whole upstream blocks or
                    // the pipeline deadlocks.
                    let upstream = if i == 0 {
                        src_chunk
                    } else {
                        params[i - 1].job_out
                    };
                    assert!(
                        c >= upstream,
                        "queue for node '{}' smaller than the upstream block ({c} < {upstream})",
                        params[i].name
                    );
                    ByteQueue::bounded(Time::ZERO, c)
                }
            }
        })
        .collect();

    let world = World {
        rng: ChaCha8Rng::seed_from_u64(config.seed),
        params,
        queues,
        busy: vec![false; n],
        started: vec![false; n],
        busy_time: vec![0.0; n],
        jobs_done: vec![0u64; n],
        service_model: config.service_model,
        pending_out: vec![None; n],
        faults,
        cur_retry: vec![0u32; n],
        last_exec: vec![0.0; n],
        dropped_jobs: 0,
        dropped_norm: 0.0,
        retries: 0,
        src_remaining: config.total_input,
        src_chunk,
        src_interval: src_chunk as f64 / src_rate,
        src_blocked: false,
        sink_norm,
        cum_in: 0.0,
        cum_out: 0.0,
        in_system: TimeWeighted::new(Time::ZERO, 0.0),
        delays: Tally::new(),
        input_steps: Vec::new(),
        delay_cursor: 0,
        trace: config.trace,
        trace_out: Vec::new(),
        t_last_out: 0.0,
    };

    let mut pool: SimPool<World> = SimPool::new();
    let mut sim = pool.take(world);
    sim.schedule_at(Time::ZERO, source_emit);
    sim.run();

    let w = &sim.state;
    let bytes_out = w.cum_out;
    let makespan = w.t_last_out;
    let residual: f64 = w
        .queues
        .iter()
        .zip(&w.params)
        .map(|(q, p)| q.level() as f64 * p.norm_in)
        .sum();
    let per_queue_peak = w
        .queues
        .iter()
        .zip(&w.params)
        .map(|(q, p)| (p.name.clone(), q.peak() * p.norm_in))
        .collect();
    let horizon = sim.now().as_secs().max(f64::MIN_POSITIVE);
    let per_node = w
        .params
        .iter()
        .enumerate()
        .map(|(i, p)| crate::result::NodeStats {
            name: p.name.clone(),
            utilization: (w.busy_time[i] / horizon).min(1.0),
            jobs: w.jobs_done[i],
            bytes_in: w.jobs_done[i] * p.job_in,
            avg_queue: w.queues[i].avg_occupancy(sim.now()) * p.norm_in,
        })
        .collect();
    let throughput = if makespan > 0.0 {
        bytes_out / makespan
    } else {
        0.0
    };
    let result = SimResult {
        bytes_out,
        makespan,
        throughput,
        steady_throughput: steady_slope(&w.trace_out).unwrap_or(throughput),
        delay_min: w.delays.min().unwrap_or(0.0),
        delay_max: w.delays.max().unwrap_or(0.0),
        delay_mean: w.delays.mean().unwrap_or(0.0),
        peak_backlog: w.in_system.max(),
        per_queue_peak,
        residual,
        trace_in: if w.trace {
            w.input_steps.clone()
        } else {
            Vec::new()
        },
        trace_out: w.trace_out.clone(),
        per_node,
        events: sim.events_processed(),
        dropped_jobs: w.dropped_jobs,
        dropped_bytes: w.dropped_norm,
        retries: w.retries,
    };
    pool.put(sim);
    result
}

/// Source event: emit one chunk into the first queue (or block on a
/// bounded queue) and reschedule.
fn source_emit(sim: &mut Sim<S>) {
    let now = sim.now();
    let w = &mut sim.state;
    if w.src_remaining == 0 {
        return;
    }
    let chunk = w.src_chunk.min(w.src_remaining);
    if !w.queues[0].can_put(chunk) {
        // Bounded first queue is full: the source stalls until space
        // appears (pump() will resume it).
        w.src_blocked = true;
        return;
    }
    w.queues[0].put(now, chunk);
    w.src_remaining -= chunk;
    w.cum_in += chunk as f64; // norm_in[0] == 1 by construction
    w.in_system.add(now, chunk as f64);
    w.input_steps.push((now.as_secs(), w.cum_in));
    if w.src_remaining > 0 {
        let dt = Span::secs(sim.state.src_interval);
        sim.schedule_in(dt, source_emit);
    }
    try_start(sim, 0);
}

// The wake protocol — see `crate::engine` for the rationale; this copy
// preserves the exact pre-thinning behavior.

/// Start node `i` if it is idle, unblocked, and has a full job queued.
/// A successful start frees input-queue space, which may unblock the
/// upstream delivery (or the stalled source when `i == 0`).
fn try_start(sim: &mut Sim<S>, i: usize) {
    let now = sim.now();
    // Drop-policy outage: jobs that would start now are consumed and
    // discarded (mirrors `crate::engine::World::try_start`).
    loop {
        let w = &mut sim.state;
        let Some(fr) = &w.faults else { break };
        if !(fr.drops(i) && fr.in_outage(i, now.as_secs())) {
            break;
        }
        let job_in = w.params[i].job_in;
        if w.busy[i] || w.pending_out[i].is_some() || !w.queues[i].can_get(job_in) {
            break;
        }
        w.queues[i].get(now, job_in);
        let dn = job_in as f64 * w.params[i].norm_in;
        w.dropped_jobs += 1;
        w.dropped_norm += dn;
        w.in_system.add(now, -dn);
        if i == 0 {
            resume_source(sim);
        } else {
            try_deliver(sim, i - 1);
        }
    }
    let w = &mut sim.state;
    let p = &w.params[i];
    if w.busy[i] || w.pending_out[i].is_some() || !w.queues[i].can_get(p.job_in) {
        return;
    }
    w.queues[i].get(now, p.job_in);
    w.busy[i] = true;
    let startup = if w.started[i] {
        0.0
    } else {
        w.started[i] = true;
        p.startup
    };
    let dist = match w.service_model {
        ServiceModel::Uniform => Dist::Uniform {
            lo: p.exec_min,
            hi: p.exec_max,
        },
        ServiceModel::Exponential => Dist::Exponential { mean: p.exec_avg },
        ServiceModel::Deterministic => Dist::Constant(p.exec_avg),
    };
    let exec = dist.sample(&mut w.rng);
    w.busy_time[i] += exec;
    let span = match &w.faults {
        None => startup + exec,
        Some(fr) => {
            w.last_exec[i] = exec;
            fr.extend(i, now.as_secs(), startup + exec)
        }
    };
    sim.schedule_in(Span::secs(span), move |sim| finish(sim, i));
    if i == 0 {
        resume_source(sim);
    } else {
        try_deliver(sim, i - 1);
    }
}

/// Deliver node `i`'s pending output downstream (or to the sink) if
/// space allows, then wake the two nodes the movement affects: `i`
/// (its output slot cleared) and `i + 1` (new input) — in that order,
/// matching the full scan's ascending start order at each wake.
fn try_deliver(sim: &mut Sim<S>, i: usize) {
    let Some(bytes) = sim.state.pending_out[i] else {
        return;
    };
    if i + 1 == sim.state.n() {
        deliver_to_sink(sim, bytes);
        sim.state.pending_out[i] = None;
        try_start(sim, i);
    } else if sim.state.queues[i + 1].can_put(bytes) {
        let now = sim.now();
        sim.state.queues[i + 1].put(now, bytes);
        sim.state.pending_out[i] = None;
        try_start(sim, i);
        try_start(sim, i + 1);
    }
}

/// Restart a source stalled on a full first queue once space appears.
fn resume_source(sim: &mut Sim<S>) {
    if sim.state.src_blocked && sim.state.queues[0].can_put(sim.state.src_chunk) {
        sim.state.src_blocked = false;
        source_emit(sim);
    }
}

/// Retry-policy outage check at completion time (mirrors
/// `crate::engine::World::try_retry`). Returns `true` when the
/// completion was swallowed by a retry.
fn try_retry(sim: &mut Sim<S>, i: usize) -> bool {
    let t = sim.now().as_secs();
    let span = {
        let w = &mut sim.state;
        let Some(fr) = &w.faults else { return false };
        let Some((base, cap)) = fr.retry_params(i) else {
            return false;
        };
        if !fr.in_outage(i, t) {
            w.cur_retry[i] = 0;
            return false;
        }
        let k = w.cur_retry[i].min(30);
        let backoff = (base * (1u64 << k) as f64).min(cap);
        w.cur_retry[i] = w.cur_retry[i].saturating_add(1);
        w.retries += 1;
        let exec = w.last_exec[i];
        w.busy_time[i] += exec;
        backoff + fr.extend(i, t + backoff, exec)
    };
    sim.schedule_in(Span::secs(span), move |sim| finish(sim, i));
    true
}

/// Node `i` finished a job: its output becomes pending delivery.
fn finish(sim: &mut Sim<S>, i: usize) {
    debug_assert!(sim.state.busy[i]);
    debug_assert!(sim.state.pending_out[i].is_none());
    if try_retry(sim, i) {
        return;
    }
    sim.state.busy[i] = false;
    sim.state.jobs_done[i] += 1;
    sim.state.pending_out[i] = Some(sim.state.params[i].job_out);
    try_deliver(sim, i);
}

/// Final-stage output reaches the sink: record throughput, delay, and
/// the stairstep trace.
fn deliver_to_sink(sim: &mut Sim<S>, local_bytes: u64) {
    let now = sim.now();
    let w = &mut sim.state;
    let out_norm = local_bytes as f64 * w.sink_norm;
    w.cum_out += out_norm;
    w.in_system.add(now, -out_norm);
    w.t_last_out = now.as_secs();

    // Virtual delay: when did this cumulative level enter the system?
    // The level only ever grows, so the stairstep inverse lookup is a
    // cursor that advances monotonically through `input_steps`.
    let level = (w.cum_out + w.dropped_norm).min(w.cum_in);
    debug_assert!(!w.input_steps.is_empty());
    while w.delay_cursor + 1 < w.input_steps.len() && w.input_steps[w.delay_cursor].1 < level - 1e-9
    {
        w.delay_cursor += 1;
    }
    let t_in = w.input_steps[w.delay_cursor].0;
    w.delays.record((now.as_secs() - t_in).max(0.0));

    if w.trace {
        w.trace_out.push((now.as_secs(), w.cum_out));
    }
}

//! Request-driven admission workload generator.
//!
//! Models the open-loop request stream an always-on admission engine
//! faces (in the style of serverless/FaaS trace simulators such as
//! dslab-faas): per-tenant Poisson flow arrivals over a heterogeneous
//! mix of flow classes (rate, burst, block size, deadline SLO), with
//! exponentially distributed holding times producing a matching
//! departure stream.
//!
//! Determinism is structured for parallel replay: every tenant draws
//! from its **own** counter-derived ChaCha8 stream, so a tenant's
//! request subsequence is a pure function of `(seed, tenant)` —
//! independent of how many tenants exist or how tenants are sharded
//! over workers. [`generate`] merges the per-tenant streams into one
//! globally sequenced trace; a sharded consumer can process each
//! tenant's subsequence independently and key results by [`Request::seq`]
//! to reproduce the serial output byte for byte.

use nc_core::num::Rat;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One heterogeneous flow class offered to the admission engine.
///
/// Rates and bursts are input-referred bytes/s and bytes (exact
/// rationals, matching `nc-core`); the stochastic parts of the
/// workload (arrival times, holding times) are `f64` seconds.
#[derive(Clone, Debug)]
pub struct FlowSpec {
    /// Class name (reporting only).
    pub name: &'static str,
    /// Sustained leaky-bucket rate (bytes/s).
    pub rate: Rat,
    /// Burst allowance (bytes).
    pub burst: Rat,
    /// Block size the consumer needs delivered whole (bytes).
    pub block: Rat,
    /// End-to-end delay SLO (seconds).
    pub deadline: Rat,
    /// Relative popularity in the arrival mix.
    pub weight: u32,
    /// Mean holding time (seconds) before the flow departs.
    pub hold_mean_s: f64,
}

/// Generator configuration.
#[derive(Clone, Debug)]
pub struct RequestConfig {
    /// Master seed; tenants derive independent streams from it.
    pub seed: u64,
    /// Number of tenants (each with its own pipeline in the consumer).
    pub tenants: usize,
    /// Flow arrivals generated per tenant.
    pub per_tenant: usize,
    /// Mean arrival rate per tenant (flows/s, Poisson).
    pub arrival_rate_hz: f64,
    /// Attachment stages are drawn uniformly from `0..stages`.
    pub stages: usize,
    /// The heterogeneous class mix (weighted).
    pub specs: Vec<FlowSpec>,
}

impl RequestConfig {
    /// A representative configuration over [`default_specs`].
    pub fn new(seed: u64, tenants: usize, per_tenant: usize, stages: usize) -> RequestConfig {
        RequestConfig {
            seed,
            tenants,
            per_tenant,
            arrival_rate_hz: 2.0,
            stages,
            specs: default_specs(),
        }
    }
}

/// What a request asks of the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReqKind {
    /// A new flow asks to be admitted.
    Arrive,
    /// The flow admitted by the tenant-local arrival number
    /// `arrive_ix` leaves (a no-op if that arrival was rejected).
    Depart {
        /// Tenant-local arrival index being vacated.
        arrive_ix: u32,
    },
}

/// One event of the request trace.
#[derive(Clone, Copy, Debug)]
pub struct Request {
    /// Global sequence number in merged time order (CSV row key).
    pub seq: u64,
    /// Event time (seconds since trace start).
    pub time_s: f64,
    /// Tenant the request targets.
    pub tenant: u32,
    /// Index into [`RequestConfig::specs`].
    pub class: u32,
    /// Requested attachment stage on the tenant's local pipeline.
    pub attach: u32,
    /// Arrival or departure.
    pub kind: ReqKind,
    /// Tenant-local arrival index (valid for [`ReqKind::Arrive`];
    /// departures repeat the index they vacate).
    pub arrive_ix: u32,
}

/// A default heterogeneous mix: tight-deadline telemetry, bursty
/// video, and bulk transfer classes (bytes and seconds).
pub fn default_specs() -> Vec<FlowSpec> {
    vec![
        FlowSpec {
            name: "telemetry",
            rate: Rat::int(64 << 10),
            burst: Rat::int(8 << 10),
            block: Rat::int(1 << 10),
            deadline: Rat::new(1, 2),
            weight: 5,
            hold_mean_s: 20.0,
        },
        FlowSpec {
            name: "video",
            rate: Rat::int(4 << 20),
            burst: Rat::int(2 << 20),
            block: Rat::int(64 << 10),
            deadline: Rat::int(2),
            weight: 3,
            hold_mean_s: 60.0,
        },
        FlowSpec {
            name: "bulk",
            rate: Rat::int(16 << 20),
            burst: Rat::int(8 << 20),
            block: Rat::int(1 << 20),
            deadline: Rat::int(30),
            weight: 2,
            hold_mean_s: 120.0,
        },
    ]
}

/// Per-tenant RNG stream: ChaCha8 keyed by a splitmix64 expansion of
/// `(seed, tenant)`, so streams are mutually independent and stable
/// under resharding.
fn tenant_rng(seed: u64, tenant: u64) -> ChaCha8Rng {
    fn splitmix64(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let mut x = seed ^ tenant.wrapping_mul(0xA076_1D64_78BD_642F);
    let mut key = [0u8; 32];
    for chunk in key.chunks_exact_mut(8) {
        chunk.copy_from_slice(&splitmix64(&mut x).to_le_bytes());
    }
    ChaCha8Rng::from_seed(key)
}

/// `Exp(1/mean)` sample; the uniform is clamped away from zero so the
/// log never sees it.
fn exp_sample(rng: &mut ChaCha8Rng, mean: f64) -> f64 {
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    -mean * u.ln()
}

/// Weighted class pick by cumulative weight.
fn pick_class(rng: &mut ChaCha8Rng, specs: &[FlowSpec]) -> u32 {
    let total: u32 = specs.iter().map(|s| s.weight).sum();
    let mut ball = rng.gen_range(0..total.max(1));
    for (i, s) in specs.iter().enumerate() {
        if ball < s.weight {
            return i as u32;
        }
        ball -= s.weight;
    }
    (specs.len() - 1) as u32
}

/// One tenant's request stream (arrivals and departures, time-sorted),
/// with `seq` left at 0 — a pure function of `(config.seed, tenant)`.
pub fn tenant_requests(config: &RequestConfig, tenant: usize) -> Vec<Request> {
    assert!(config.stages > 0 && !config.specs.is_empty());
    let mut rng = tenant_rng(config.seed, tenant as u64);
    let mut events = Vec::with_capacity(config.per_tenant * 2);
    let mut t = 0.0f64;
    for ix in 0..config.per_tenant {
        t += exp_sample(&mut rng, 1.0 / config.arrival_rate_hz);
        let class = pick_class(&mut rng, &config.specs);
        let attach = rng.gen_range(0..config.stages as u32);
        let hold = exp_sample(&mut rng, config.specs[class as usize].hold_mean_s);
        events.push(Request {
            seq: 0,
            time_s: t,
            tenant: tenant as u32,
            class,
            attach,
            kind: ReqKind::Arrive,
            arrive_ix: ix as u32,
        });
        events.push(Request {
            seq: 0,
            time_s: t + hold,
            tenant: tenant as u32,
            class,
            attach,
            kind: ReqKind::Depart {
                arrive_ix: ix as u32,
            },
            arrive_ix: ix as u32,
        });
    }
    // Deterministic time order; ties (measure-zero but possible) break
    // on (arrival-first, arrival index).
    events.sort_by(|a, b| {
        a.time_s
            .partial_cmp(&b.time_s)
            .expect("times are finite")
            .then_with(|| {
                let key = |r: &Request| (matches!(r.kind, ReqKind::Depart { .. }), r.arrive_ix);
                key(a).cmp(&key(b))
            })
    });
    events
}

/// The full merged trace: per-tenant streams interleaved in global
/// time order, `seq` assigned 0.. in that order. A sharded consumer
/// processing whole tenants in their local order and emitting results
/// keyed by `seq` reproduces the serial trace exactly.
pub fn generate(config: &RequestConfig) -> Vec<Request> {
    let mut all = Vec::with_capacity(config.tenants * config.per_tenant * 2);
    for tenant in 0..config.tenants {
        all.extend(tenant_requests(config, tenant));
    }
    // Stable global order: time, then tenant, then local tiebreak.
    all.sort_by(|a, b| {
        a.time_s
            .partial_cmp(&b.time_s)
            .expect("times are finite")
            .then_with(|| {
                let key = |r: &Request| {
                    (
                        r.tenant,
                        matches!(r.kind, ReqKind::Depart { .. }),
                        r.arrive_ix,
                    )
                };
                key(a).cmp(&key(b))
            })
    });
    for (seq, r) in all.iter_mut().enumerate() {
        r.seq = seq as u64;
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RequestConfig {
        RequestConfig::new(7, 4, 50, 3)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&cfg());
        let b = generate(&cfg());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.time_s, y.time_s);
            assert_eq!(
                (x.seq, x.tenant, x.class, x.attach, x.kind),
                (y.seq, y.tenant, y.class, y.attach, y.kind)
            );
        }
    }

    #[test]
    fn tenant_streams_are_independent_of_the_fleet_size() {
        let mut small = cfg();
        small.tenants = 2;
        let solo = tenant_requests(&small, 1);
        let in_fleet: Vec<Request> = generate(&cfg())
            .into_iter()
            .filter(|r| r.tenant == 1)
            .collect();
        assert_eq!(solo.len(), in_fleet.len());
        for (x, y) in solo.iter().zip(&in_fleet) {
            assert_eq!(x.time_s, y.time_s);
            assert_eq!((x.class, x.attach, x.kind), (y.class, y.attach, y.kind));
        }
    }

    #[test]
    fn merged_trace_is_time_ordered_with_dense_seqs() {
        let trace = generate(&cfg());
        assert_eq!(trace.len(), 4 * 50 * 2);
        for (i, w) in trace.windows(2).enumerate() {
            assert!(w[0].time_s <= w[1].time_s, "disorder at {i}");
            assert_eq!(w[1].seq, w[0].seq + 1);
        }
        assert_eq!(trace[0].seq, 0);
    }

    #[test]
    fn departures_follow_their_arrivals_and_classes_mix() {
        let trace = generate(&cfg());
        let mut seen = vec![std::collections::HashSet::new(); 4];
        let mut class_seen = std::collections::HashSet::new();
        for r in &trace {
            class_seen.insert(r.class);
            match r.kind {
                ReqKind::Arrive => {
                    assert!(seen[r.tenant as usize].insert(r.arrive_ix));
                }
                ReqKind::Depart { arrive_ix } => {
                    assert!(
                        seen[r.tenant as usize].contains(&arrive_ix),
                        "depart before arrive"
                    );
                }
            }
            assert!(r.attach < 3);
        }
        // All three default classes show up in 200 arrivals.
        assert_eq!(class_seen.len(), 3);
    }
}

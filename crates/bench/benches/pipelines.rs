//! End-to-end model benches: building the network-calculus models and
//! running the discrete-event simulations for both paper applications,
//! plus the DESIGN.md §6 ablations (packetized vs fluid curves,
//! bounded vs unbounded simulation queues, chunk-size sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use nc_apps::{bitw, blast};
use nc_core::num::Rat;
use nc_streamsim::{simulate, simulate_in, SimArena};

fn bench_model_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("model_build");
    g.bench_function("blast_isolated", |b| {
        let p = blast::isolated_pipeline();
        b.iter(|| black_box(p.build_model()))
    });
    g.bench_function("bitw_all_scenarios", |b| {
        b.iter(|| {
            black_box(bitw::pipeline(bitw::Scenario::Pessimistic).build_model());
            black_box(bitw::pipeline(bitw::Scenario::Average).build_model());
            black_box(bitw::pipeline(bitw::Scenario::Optimistic).build_model());
        })
    });
    g.finish();
}

fn bench_bounds_extraction(c: &mut Criterion) {
    let model = blast::isolated_pipeline().build_model();
    let mut g = c.benchmark_group("model_query");
    g.bench_function("blast_heuristic_bounds", |b| {
        b.iter(|| {
            black_box(model.heuristic_backlog());
            black_box(model.heuristic_delay());
        })
    });
    g.bench_function("blast_subset_analysis", |b| {
        b.iter(|| black_box(model.subset(3, 5)))
    });
    g.finish();
}

fn bench_simulations(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate");
    g.sample_size(10);
    g.bench_function("bitw_2MiB", |b| {
        let p = bitw::sim_pipeline();
        let cfg = bitw::sim_config(1);
        b.iter(|| black_box(simulate(&p, &cfg)))
    });
    g.bench_function("blast_64MiB", |b| {
        let p = blast::deployed_pipeline();
        let mut cfg = blast::sim_config(1);
        cfg.total_input = 64 << 20;
        b.iter(|| black_box(simulate(&p, &cfg)))
    });
    g.finish();
}

/// Fresh-storage vs arena-pooled replication on the 64 MiB BLAST run —
/// the Monte-Carlo inner loop benched both ways.
fn bench_arena_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_arena");
    g.sample_size(10);
    let p = blast::deployed_pipeline();
    let mut cfg = blast::sim_config(1);
    cfg.total_input = 64 << 20;
    g.bench_function("blast_64MiB_fresh", |b| {
        b.iter(|| black_box(simulate(&p, &cfg)))
    });
    g.bench_function("blast_64MiB_pooled", |b| {
        let mut arena = SimArena::new();
        b.iter(|| black_box(simulate_in(&mut arena, &p, &cfg)))
    });
    g.finish();
}

/// Ablation: bounded-queue backpressure vs the paper's unbounded
/// queues (simulation cost and behaviour differ).
fn bench_backpressure_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_queues");
    g.sample_size(10);
    let p = blast::deployed_pipeline();
    for bounded in [false, true] {
        g.bench_with_input(
            BenchmarkId::new("blast_32MiB_bounded", bounded),
            &bounded,
            |b, &bounded| {
                let mut cfg = blast::sim_config(1);
                cfg.total_input = 32 << 20;
                cfg.queue_capacities = if bounded {
                    Some(vec![
                        2 << 20,
                        512 << 10,
                        256 << 10,
                        768 << 10,
                        1536 << 10,
                        192 << 10,
                        384 << 10,
                        48 << 10,
                    ])
                } else {
                    None
                };
                b.iter(|| black_box(simulate(&p, &cfg)))
            },
        );
    }
    g.finish();
}

/// Ablation: the bump-in-the-wire chunk-size sweep (1 KiB paper
/// default) — smaller chunks mean more events per byte.
fn bench_chunk_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_chunk");
    g.sample_size(10);
    for chunk in [512u64, 1024, 4096] {
        g.bench_with_input(BenchmarkId::new("bitw_2MiB", chunk), &chunk, |b, &chunk| {
            let mut p = bitw::sim_pipeline();
            for n in &mut p.nodes {
                n.job_in = Rat::int(chunk as i64);
                n.job_out = Rat::int(chunk as i64);
            }
            let mut cfg = bitw::sim_config(1);
            cfg.source_chunk = Some(chunk);
            b.iter(|| black_box(simulate(&p, &cfg)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_model_build, bench_bounds_extraction, bench_simulations, bench_arena_ablation, bench_backpressure_ablation, bench_chunk_sweep
}
criterion_main!(benches);

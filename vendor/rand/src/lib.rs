//! Vendored subset of the `rand` crate's trait surface.
//!
//! The build environment has no registry access; this crate provides
//! the `RngCore`/`SeedableRng`/`Rng` traits with the sampling methods
//! the workspace uses (`gen`, `gen_range`, `gen_bool`) over the same
//! call-site syntax as upstream rand 0.8.

use core::ops::{Range, RangeInclusive};

/// Core source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64 (upstream rand's
    /// scheme), so identical `u64` seeds reproduce identical streams.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly over their full domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $src:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$src() as $t
            }
        }
    )*};
}

impl_standard_int! {
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
}

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform in `[0, 1)` with 53 random bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform in `[0, span)` without modulo bias.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// Types with a uniform sampler over `[low, high)` / `[low, high]`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw uniformly; `inclusive` selects the closed upper bound.
    fn sample_between<R: RngCore + ?Sized>(
        low: Self,
        high: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                low: $t,
                high: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span = (high as i128 - low as i128) as u64;
                if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (low as i128 + uniform_u64(rng, span + 1) as i128) as $t
                } else {
                    (low as i128 + uniform_u64(rng, span) as i128) as $t
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(
        low: f64,
        high: f64,
        _inclusive: bool,
        rng: &mut R,
    ) -> f64 {
        low + (high - low) * unit_f64(rng)
    }
}

impl SampleUniform for f32 {
    fn sample_between<R: RngCore + ?Sized>(
        low: f32,
        high: f32,
        _inclusive: bool,
        rng: &mut R,
    ) -> f32 {
        low + (high - low) * unit_f64(rng) as f32
    }
}

/// Range types usable with `rng.gen_range(..)`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        T::sample_between(start, end, true, rng)
    }
}

/// User-facing sampling methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    /// Uniform value over the type's full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Convenience re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

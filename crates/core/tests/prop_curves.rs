//! Property-based tests for the exact min-plus algebra.
//!
//! Random wide-sense-increasing piecewise-linear curves are generated
//! from integer seeds (so all coordinates are exact rationals), and the
//! algebraic laws of network calculus are checked exactly.

use nc_core::curve::{shapes, Curve};
use nc_core::num::{rat, Rat, Value};
use nc_core::ops::maxplus::{max_plus_conv, max_plus_conv_at};
use nc_core::ops::{conv_at, deconv_at, min_plus_conv, min_plus_deconv};
use nc_core::ops::{horizontal_deviation, vertical_deviation};
use nc_core::ops::{min_plus_conv_general, min_plus_deconv_general, subadditive_closure};
use proptest::prelude::*;

/// Strategy: a random wide-sense increasing, ultimately affine curve
/// with small rational coordinates, possibly with jumps.
fn arb_curve() -> impl Strategy<Value = Curve> {
    // Each piece: (dx in 1..=8 quarters, jump in 0..=8 quarters,
    // slope in 0..=12 quarters).
    let piece = (1i64..=8, 0i64..=8, 0i64..=12);
    (proptest::collection::vec(piece, 1..5), 0i64..=6).prop_map(|(pieces, v0)| {
        use nc_core::curve::Breakpoint;
        let q = |n: i64| rat(n as i128, 4);
        let mut bps = Vec::new();
        let mut x = Rat::ZERO;
        let mut v = q(v0);
        for (i, (dx, jump, slope)) in pieces.iter().enumerate() {
            let v_right = v + q(*jump);
            bps.push(Breakpoint {
                x,
                v: Value::finite(v),
                v_right: Value::finite(v_right),
                slope: q(*slope),
            });
            let dxr = q(*dx);
            v = v_right + q(*slope) * dxr;
            x += dxr;
            let _ = i;
        }
        Curve::from_breakpoints(bps).expect("generated curve valid")
    })
}

/// Strategy: a curve that vanishes at zero (a valid arrival/service
/// curve shape).
fn arb_zero_curve() -> impl Strategy<Value = Curve> {
    arb_curve().prop_map(|c| {
        let v0 = c.at_zero().unwrap_finite();
        if v0.is_zero() {
            c
        } else {
            // Shift down exactly to zero at origin.
            c.shift_up(-v0).pos()
        }
    })
}

fn sample_ts() -> Vec<Rat> {
    (0..60).map(|n| rat(n, 3)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_curves_are_increasing(c in arb_curve()) {
        prop_assert!(c.is_wide_sense_increasing());
    }

    #[test]
    fn min_max_add_pointwise(f in arb_curve(), g in arb_curve()) {
        let mn = f.min(&g);
        let mx = f.max(&g);
        let sum = f.add(&g);
        for t in sample_ts() {
            let (fv, gv) = (f.eval(t), g.eval(t));
            prop_assert_eq!(mn.eval(t), fv.min(gv));
            prop_assert_eq!(mx.eval(t), fv.max(gv));
            prop_assert_eq!(sum.eval(t), fv + gv);
        }
    }

    #[test]
    fn conv_is_commutative(f in arb_curve(), g in arb_curve()) {
        prop_assert_eq!(min_plus_conv(&f, &g), min_plus_conv(&g, &f));
    }

    #[test]
    fn conv_curve_matches_pointwise_inf(f in arb_curve(), g in arb_curve()) {
        let c = min_plus_conv(&f, &g);
        for t in sample_ts() {
            let exact = conv_at(&f, &g, t);
            prop_assert_eq!(c.eval(t), exact, "t = {:?}", t);
            // Inf dominated by every sampled decomposition.
            for k in 0..=24 {
                let s = t * rat(k, 24);
                prop_assert!(exact <= f.eval(s) + g.eval(t - s));
            }
        }
    }

    #[test]
    fn conv_is_increasing_and_below_operands(
        f in arb_zero_curve(),
        g in arb_zero_curve(),
    ) {
        let c = min_plus_conv(&f, &g);
        prop_assert!(c.is_wide_sense_increasing());
        // With f(0)=g(0)=0, conv ≤ min(f, g).
        for t in sample_ts() {
            prop_assert!(c.eval(t) <= f.eval(t).min(g.eval(t)));
        }
    }

    #[test]
    fn conv_with_delta_shifts(f in arb_curve(), shift in 0i64..6) {
        let d = shapes::delta(Rat::int(shift));
        let c = min_plus_conv(&f, &d);
        for t in sample_ts() {
            let expect = if t >= Rat::int(shift) {
                f.eval(t - Rat::int(shift))
            } else {
                f.eval(Rat::ZERO)
            };
            prop_assert_eq!(c.eval(t), expect);
        }
    }

    #[test]
    fn deconv_curve_matches_pointwise_sup(f in arb_zero_curve(), g in arb_zero_curve()) {
        let c = min_plus_deconv(&f, &g);
        for t in sample_ts().into_iter().take(30) {
            let exact = deconv_at(&f, &g, t);
            prop_assert_eq!(c.eval(t), exact, "t = {:?}", t);
            for k in 0..=24 {
                let u = rat(k, 2);
                if g.eval(u).is_infinite() { continue; }
                prop_assert!(exact >= f.eval(t + u) - g.eval(u));
            }
        }
    }

    #[test]
    fn deconv_undoes_conv_domination(f in arb_zero_curve(), g in arb_zero_curve()) {
        // (f ⊗ g) ⊘ g ≤ f  (min-plus "division" law, both sides ≥ f⊗g).
        let fg = min_plus_conv(&f, &g);
        let q = min_plus_deconv(&fg, &g);
        for t in sample_ts() {
            prop_assert!(q.eval(t) <= f.eval(t).max(f.eval_right(t)),
                "duality violated at t = {:?}", t);
        }
    }

    #[test]
    fn deviations_dominate_samples(f in arb_zero_curve(), g in arb_zero_curve()) {
        let v = vertical_deviation(&f, &g);
        let h = horizontal_deviation(&f, &g);
        for t in sample_ts() {
            let gv = g.eval(t);
            if !gv.is_infinite() {
                prop_assert!(v >= (f.eval(t) - gv).pos());
            }
            if let Value::Finite(hf) = h {
                // f(t) ≤ g(t + h + ε) for any ε > 0 (h is an infimum,
                // so equality may only hold in the limit at jumps).
                let eps = rat(1, 1000);
                prop_assert!(f.eval(t) <= g.eval(t + hf + eps),
                    "delay bound violated at t = {:?}", t);
            }
        }
    }

    #[test]
    fn backlog_delay_scale_with_y(f in arb_zero_curve(), g in arb_zero_curve(), k in 1i64..5) {
        // Scaling both curves by k scales the backlog by k and keeps
        // the delay unchanged.
        let kf = Rat::int(k);
        let v1 = vertical_deviation(&f, &g);
        let v2 = vertical_deviation(&f.scale_y(kf), &g.scale_y(kf));
        prop_assert_eq!(v2, v1.scale(kf));
        let h1 = horizontal_deviation(&f, &g);
        let h2 = horizontal_deviation(&f.scale_y(kf), &g.scale_y(kf));
        prop_assert_eq!(h1, h2);
    }

    #[test]
    fn conv_distributes_over_min(
        f in arb_zero_curve(),
        g in arb_zero_curve(),
        h in arb_zero_curve(),
    ) {
        // (f ∧ g) ⊗ h = (f ⊗ h) ∧ (g ⊗ h) — min-plus distributivity.
        let lhs = min_plus_conv(&f.min(&g), &h);
        let rhs = min_plus_conv(&f, &h).min(&min_plus_conv(&g, &h));
        for t in sample_ts() {
            prop_assert_eq!(lhs.eval(t), rhs.eval(t), "t = {:?}", t);
        }
    }

    #[test]
    fn conv_is_isotone(f in arb_zero_curve(), g in arb_zero_curve(), bump in 0i64..5) {
        // f ≤ f + c  ⇒  f ⊗ g ≤ (f + c) ⊗ g.
        let f_up = f.shift_up(Rat::int(bump));
        let lo = min_plus_conv(&f, &g);
        let hi = min_plus_conv(&f_up, &g);
        for t in sample_ts() {
            prop_assert!(lo.eval(t) <= hi.eval(t));
        }
    }

    #[test]
    fn packetization_monotone_in_packet_size(
        f in arb_zero_curve(),
        l1 in 0i64..6,
        l2 in 6i64..12,
    ) {
        use nc_core::packetizer::{packetize_arrival, packetize_service};
        // Bigger packets: looser arrival envelope, tighter service.
        let (a1, a2) = (packetize_arrival(&f, Rat::int(l1)), packetize_arrival(&f, Rat::int(l2)));
        let (s1, s2) = (packetize_service(&f, Rat::int(l1)), packetize_service(&f, Rat::int(l2)));
        for t in sample_ts() {
            prop_assert!(a1.eval(t) <= a2.eval(t));
            prop_assert!(s1.eval(t) >= s2.eval(t));
        }
    }

    #[test]
    fn max_plus_conv_commutative_and_dominating(
        f in arb_zero_curve(),
        g in arb_zero_curve(),
    ) {
        let fg = max_plus_conv(&f, &g);
        prop_assert_eq!(&fg, &max_plus_conv(&g, &f));
        for t in sample_ts() {
            let exact = max_plus_conv_at(&f, &g, t);
            prop_assert_eq!(fg.eval(t), exact, "t = {:?}", t);
            // The sup dominates every sampled split and both operands
            // (g(0) = f(0) = 0).
            prop_assert!(exact >= f.eval(t));
            prop_assert!(exact >= g.eval(t));
            for k in 0..=16 {
                let s = t * rat(k, 16);
                prop_assert!(exact >= f.eval(s) + g.eval(t - s));
            }
        }
    }

    #[test]
    fn max_plus_conv_dominates_min_plus(f in arb_zero_curve(), g in arb_zero_curve()) {
        let hi = max_plus_conv(&f, &g);
        let lo = min_plus_conv(&f, &g);
        for t in sample_ts() {
            prop_assert!(hi.eval(t) >= lo.eval(t));
        }
    }

    #[test]
    fn admissible_rate_is_sound(g in arb_zero_curve(), burst in 0i64..8, budget in 1i64..60) {
        use nc_core::bounds::max_admissible_rate;
        use nc_core::curve::shapes;
        use nc_core::ops::vertical_deviation;
        let (b, budget) = (Rat::int(burst), Rat::int(budget));
        if let Some(r) = max_admissible_rate(&g, b, budget) {
            let alpha = shapes::leaky_bucket(r, b);
            let x = vertical_deviation(&alpha, &g);
            prop_assert!(x <= Value::finite(budget),
                "rate {:?} gives backlog {:?} over budget {:?}", r, x, budget);
        } else {
            // Even a zero-rate source (pure burst) must overflow.
            let alpha = shapes::leaky_bucket(Rat::ZERO, b);
            let x = vertical_deviation(&alpha, &g);
            prop_assert!(x > Value::finite(budget) || b > budget);
        }
    }

    #[test]
    fn relax_up_sound_and_bounded(f in arb_curve(), max_den in 1i64..64) {
        let r = f.relax_up(max_den as i128);
        prop_assert!(r.is_wide_sense_increasing());
        for t in sample_ts() {
            prop_assert!(r.eval(t) >= f.eval(t), "t = {:?}", t);
        }
        for bp in r.breakpoints() {
            prop_assert!(bp.x.denom() <= max_den as i128);
        }
    }

    #[test]
    fn conv_fast_paths_equal_general(f in arb_curve(), g in arb_curve()) {
        // The dispatcher (convex/concave closed forms, pruned grid)
        // must be invisible: exact curve equality with the reference
        // envelope algorithm kept as the oracle.
        prop_assert_eq!(min_plus_conv(&f, &g), min_plus_conv_general(&f, &g));
    }

    #[test]
    fn deconv_fast_paths_equal_general(f in arb_zero_curve(), g in arb_zero_curve()) {
        prop_assert_eq!(min_plus_deconv(&f, &g), min_plus_deconv_general(&f, &g));
    }

    #[test]
    fn closure_fast_path_equals_general_iteration(f in arb_zero_curve()) {
        // Reference: the same fixpoint iteration driven by the general
        // convolution, with no up-front sub-additivity shortcut.
        let fast = subadditive_closure(&f, 8);
        let mut acc = shapes::delta(Rat::ZERO).min(&f);
        for _ in 0..8 {
            let next = acc.min(&min_plus_conv_general(&acc, &acc));
            if next == acc { break; }
            acc = next;
        }
        prop_assert_eq!(fast.curve, acc);
    }

    #[test]
    fn simplify_preserves_semantics(f in arb_curve(), g in arb_curve()) {
        // Any derived curve evaluates identically at dense points after
        // the internal simplification passes.
        let c = f.min(&g).add(&f).max(&g);
        for t in sample_ts() {
            let direct = f.eval(t).min(g.eval(t)) + f.eval(t);
            prop_assert_eq!(c.eval(t), direct.max(g.eval(t)));
        }
    }
}

// The cache-equivalence property runs in its own block with fewer
// cases: each case pays for two sub-additive closures on a random
// curve, by far the most expensive operator here, and 16 random
// operand pairs already exercise every memo map on both the miss and
// the hit path.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn cached_ops_equal_uncached(
        f in arb_zero_curve(),
        g in arb_zero_curve(),
        rate in 1i64..=64,
        latency in 0i64..=16,
        l_out in 0i64..=8,
    ) {
        // The hash-consed cache must be semantically invisible: every
        // CurveOps method agrees exactly with the direct algorithms,
        // both on the miss (first call) and on the memo hit (second
        // call) — and interning must hand back the same function.
        use nc_core::cache::{CurveCache, CurveOps, DirectOps};
        let mut cache = CurveCache::new();
        let mut direct = DirectOps;
        for _round in 0..2 {
            prop_assert_eq!(cache.conv(&f, &g), direct.conv(&f, &g));
            prop_assert_eq!(cache.deconv(&f, &g), direct.deconv(&f, &g));
            let (r, t, l) = (
                rat(rate as i128, 4),
                rat(latency as i128, 4),
                rat(l_out as i128, 4),
            );
            prop_assert_eq!(
                cache.packetized_service(r, t, l),
                direct.packetized_service(r, t, l)
            );
            prop_assert_eq!(cache.backlog(&f, &g), direct.backlog(&f, &g));
            prop_assert_eq!(cache.delay(&f, &g), direct.delay(&f, &g));
        }
        // Closure: one direct reference, two cached calls (miss + hit).
        let reference = subadditive_closure(&f, 4).curve;
        prop_assert_eq!(&cache.closure(&f, 4).curve, &reference);
        prop_assert_eq!(&cache.closure(&f, 4).curve, &reference);
        // Two rounds of five memoizable ops + a repeated closure: the
        // second pass must be all hits.
        let stats = cache.stats();
        prop_assert!(stats.op_hits() >= 6, "second round should hit: {:?}", stats);
        prop_assert_eq!(*cache.intern(&f).curve(), f.clone());
    }
}

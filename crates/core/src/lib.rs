//! # nc-core — deterministic network calculus for streaming pipelines
//!
//! Reproduction of the modeling layer of *"Application of Network
//! Calculus Models to Heterogeneous Streaming Applications"* (Faber &
//! Chamberlain): exact min-plus algebra over piecewise-linear curves,
//! the §3 performance bounds with packetizer and job-aggregation
//! extensions, and a pipeline model for heterogeneous streaming
//! applications (compute stages, PCIe hops, network links).
//!
//! ## Quick start
//!
//! ```
//! use nc_core::curve::shapes;
//! use nc_core::bounds;
//! use nc_core::num::{Rat, Value};
//!
//! // α(t) = 2t + 5 (leaky bucket), β(t) = 3(t − 4)⁺ (rate-latency).
//! let alpha = shapes::leaky_bucket(Rat::int(2), Rat::int(5));
//! let beta = shapes::rate_latency(Rat::int(3), Rat::int(4));
//!
//! // Backlog bound x ≤ b + R_α·T = 13; delay bound d ≤ T + b/R_β.
//! assert_eq!(bounds::backlog_bound(&alpha, &beta), Value::from(13));
//! let out = bounds::output_bound(&alpha, &beta);
//! assert!(out.is_wide_sense_increasing());
//! ```

#![warn(missing_docs)]

pub mod bounds;
pub mod cache;
pub mod curve;
pub mod fault;
pub mod num;
pub mod ops;
pub mod packetizer;
pub mod pipeline;
pub mod units;

pub use bounds::{analyze_node, NodeBounds, Regime};
pub use cache::{CacheStats, CurveCache, CurveOps, DirectOps};
pub use curve::{Breakpoint, Curve, CurveError};
pub use fault::FaultModel;
pub use num::{rat, Rat, Value};
pub use ops::{min_plus_conv, min_plus_deconv};

//! Exact numeric foundation: rationals and extended values.

mod rat;
mod value;

pub use rat::{rat, Rat};
pub use value::Value;

//! Figure 1 reproduction: the geometry of a leaky-bucket arrival curve
//! α, a rate-latency service curve β, a maximum service curve γ, and
//! the derived backlog x, virtual delay d, and output bound α*.

use nc_core::bounds;
use nc_core::curve::shapes;
use nc_core::num::Rat;

fn main() {
    // Illustrative parameters in the style of the paper's Figure 1.
    let alpha = shapes::leaky_bucket(Rat::int(1), Rat::int(4));
    let beta = shapes::rate_latency(Rat::int(2), Rat::int(2));
    let gamma = shapes::constant_rate(Rat::int(3));

    let x = bounds::backlog_bound(&alpha, &beta);
    let d = bounds::delay_bound(&alpha, &beta);
    let alpha_star = bounds::output_bound_with_max(&alpha, &gamma, &beta);

    let t_max = Rat::int(10);
    let n = 101;
    let mut csv = String::from("series,t,value\n");
    for (label, curve) in [
        ("alpha", &alpha),
        ("beta", &beta),
        ("gamma", &gamma),
        ("alpha_star", &alpha_star),
    ] {
        for (t, v) in curve.sample(t_max, n) {
            csv.push_str(&format!("{label},{},{}\n", t.to_f64(), v.to_f64()));
        }
    }
    nc_bench::emit("fig1.csv", &csv);

    let summary = format!(
        "Figure 1 (curve geometry)\n\
         \x20 alpha  = leaky bucket (R=1, b=4)\n\
         \x20 beta   = rate latency (R=2, T=2)\n\
         \x20 gamma  = max service  (R=3)\n\
         \x20 backlog bound x = {x:?}  (closed form b + R_a T = 6)\n\
         \x20 delay bound   d = {d:?}  (closed form T + b/R_b = 4)\n\
         \x20 alpha*(0+) = {:?} (burst grows by deconvolution)\n",
        alpha_star.eval_right(Rat::ZERO)
    );
    nc_bench::emit("fig1.txt", &summary);
    assert_eq!(x, nc_core::Value::from(6));
    assert_eq!(d, nc_core::Value::from(4));
}

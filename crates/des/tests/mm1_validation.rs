//! Engine validation: simulate an M/M/1 queue with the event kernel and
//! compare the steady-state statistics against the exact queueing
//! formulas (L = ρ/(1−ρ), W = 1/(µ−λ)). This exercises scheduling,
//! state mutation, distributions, and the collectors end to end — the
//! same combination the streaming-pipeline simulator relies on.

use nc_des::{Dist, Sim, Span, Tally, Time, TimeWeighted};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

struct Mm1 {
    rng: ChaCha8Rng,
    arrival: Dist,
    service: Dist,
    /// Arrival timestamps waiting for service (FIFO).
    queue: Vec<Time>,
    server_busy: bool,
    in_system: TimeWeighted,
    sojourn: Tally,
    completed: u64,
    max_jobs: u64,
}

fn arrive(sim: &mut Sim<Mm1>) {
    let now = sim.now();
    let s = &mut sim.state;
    s.in_system.add(now, 1.0);
    s.queue.push(now);
    if !s.server_busy {
        s.server_busy = true;
        start_service(sim);
    }
    let next = Span::secs(sim.state.arrival.sample(&mut sim.state.rng));
    sim.schedule_in(next, arrive);
}

fn start_service(sim: &mut Sim<Mm1>) {
    let dt = Span::secs(sim.state.service.sample(&mut sim.state.rng));
    sim.schedule_in(dt, depart);
}

fn depart(sim: &mut Sim<Mm1>) {
    let now = sim.now();
    let s = &mut sim.state;
    let arrived = s.queue.remove(0);
    s.sojourn.record((now - arrived).as_secs());
    s.in_system.add(now, -1.0);
    s.completed += 1;
    if s.completed >= s.max_jobs {
        // Stop generating load implicitly by draining: nothing to do;
        // the run loop checks `completed`.
    }
    if s.queue.is_empty() {
        s.server_busy = false;
    } else {
        start_service(sim);
    }
}

fn run_mm1(lambda: f64, mu: f64, jobs: u64, seed: u64) -> (f64, f64) {
    let state = Mm1 {
        rng: ChaCha8Rng::seed_from_u64(seed),
        arrival: Dist::Exponential { mean: 1.0 / lambda },
        service: Dist::Exponential { mean: 1.0 / mu },
        queue: Vec::new(),
        server_busy: false,
        in_system: TimeWeighted::new(Time::ZERO, 0.0),
        sojourn: Tally::new(),
        completed: 0,
        max_jobs: jobs,
    };
    let mut sim = Sim::new(state);
    sim.schedule_at(Time::ZERO, arrive);
    while sim.state.completed < sim.state.max_jobs && sim.step() {}
    let now = sim.now();
    (
        sim.state.in_system.time_avg(now),
        sim.state.sojourn.mean().unwrap(),
    )
}

#[test]
fn mm1_matches_theory_moderate_load() {
    let (lambda, mu) = (0.5, 1.0); // ρ = 0.5
    let (l_sim, w_sim) = run_mm1(lambda, mu, 200_000, 7);
    let rho: f64 = lambda / mu;
    let l_theory = rho / (1.0 - rho); // 1.0
    let w_theory = 1.0 / (mu - lambda); // 2.0
    assert!(
        (l_sim - l_theory).abs() / l_theory < 0.05,
        "L sim {l_sim} vs theory {l_theory}"
    );
    assert!(
        (w_sim - w_theory).abs() / w_theory < 0.05,
        "W sim {w_sim} vs theory {w_theory}"
    );
}

#[test]
fn mm1_matches_theory_high_load() {
    let (lambda, mu) = (0.8, 1.0); // ρ = 0.8
    let (l_sim, w_sim) = run_mm1(lambda, mu, 400_000, 11);
    let l_theory = 0.8 / 0.2; // 4.0
    let w_theory = 1.0 / 0.2; // 5.0
    assert!(
        (l_sim - l_theory).abs() / l_theory < 0.08,
        "L sim {l_sim} vs theory {l_theory}"
    );
    assert!(
        (w_sim - w_theory).abs() / w_theory < 0.08,
        "W sim {w_sim} vs theory {w_theory}"
    );
}

#[test]
fn mm1_little_law_holds() {
    // L = λ_effective · W must hold for *any* sampled run (Little's law
    // is distribution-free), tying the two collectors together.
    let (l_sim, w_sim) = run_mm1(0.6, 1.0, 100_000, 3);
    // Effective λ ≈ nominal for a long stable run.
    let ratio = l_sim / (0.6 * w_sim);
    assert!(
        (ratio - 1.0).abs() < 0.03,
        "Little's law violated: L/(λW) = {ratio}"
    );
}

#[test]
fn deterministic_given_seed() {
    let a = run_mm1(0.5, 1.0, 5_000, 42);
    let b = run_mm1(0.5, 1.0, 5_000, 42);
    assert_eq!(a, b);
    let c = run_mm1(0.5, 1.0, 5_000, 43);
    assert_ne!(a, c);
}

//! The paper's central validation, as a property: for any underloaded
//! pipeline, the discrete-event simulation must respect the
//! network-calculus guarantees — observed delay below the delay bound,
//! observed backlog below the backlog bound, cumulative output between
//! `α ⊗ β` and `α`, throughput inside the model's bracket.

use nc_core::curve::{Breakpoint, Curve};
use nc_core::num::{Rat, Value};
use nc_core::ops::min_plus_conv;
use nc_core::pipeline::{Node, NodeKind, Pipeline, Source, StageRates};
use nc_core::Regime;
use nc_streamsim::{simulate, SimConfig};
use proptest::prelude::*;

/// Build the exact cumulative-input staircase observed in the run.
fn input_staircase(steps: &[(f64, f64)]) -> Curve {
    let mut bps = Vec::with_capacity(steps.len() + 1);
    let mut level = 0.0f64;
    if steps.first().is_none_or(|s| s.0 > 0.0) {
        bps.push(Breakpoint::cont(Rat::ZERO, Value::ZERO, Rat::ZERO));
    }
    for &(t, cum) in steps {
        bps.push(Breakpoint {
            x: Rat::from_f64(t),
            v: Value::finite(Rat::from_f64(level)),
            v_right: Value::finite(Rat::from_f64(cum)),
            slope: Rat::ZERO,
        });
        level = cum;
    }
    Curve::from_breakpoints(bps).expect("staircase valid")
}

/// Relative slack for float↔rational conversions.
const EPS: f64 = 1e-6;

#[derive(Debug, Clone)]
struct NodeGen {
    rmin: i64,
    spread: i64,
    job_in_log2: u32,
    job_out_log2: u32,
    latency_ms: i64,
}

fn arb_pipeline() -> impl Strategy<Value = (Pipeline, u64)> {
    let node = (2_000i64..20_000, 0i64..5_000, 4u32..8, 4u32..8, 0i64..20).prop_map(
        |(rmin, spread, ji, jo, lat)| NodeGen {
            rmin,
            spread,
            job_in_log2: ji,
            job_out_log2: jo,
            latency_ms: lat,
        },
    );
    (
        proptest::collection::vec(node, 1..4),
        500i64..1_500, // source rate, below every stage's min rate after norm
        1u64..40,      // number of source chunks
    )
        .prop_map(|(gens, src_rate, chunks)| {
            let nodes: Vec<Node> = gens
                .iter()
                .enumerate()
                .map(|(i, g)| {
                    Node::new(
                        format!("n{i}"),
                        NodeKind::Compute,
                        StageRates::new(
                            Rat::int(g.rmin),
                            Rat::int(g.rmin + g.spread / 2),
                            Rat::int(g.rmin + g.spread),
                        ),
                        Rat::new(g.latency_ms as i128, 1000),
                        Rat::int(1 << g.job_in_log2),
                        Rat::int(1 << g.job_out_log2),
                    )
                })
                .collect();
            let chunk = 1u64 << gens[0].job_in_log2;
            let p = Pipeline::new(
                "prop",
                Source {
                    rate: Rat::int(src_rate),
                    burst: Rat::int(chunk as i64),
                },
                nodes,
            );
            (p, chunk * chunks)
        })
        .prop_filter("underloaded", |(p, _)| {
            let m = p.build_model();
            m.regime() == Regime::Underloaded
                && m.per_node.iter().all(|n| n.regime == Regime::Underloaded)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sim_respects_nc_bounds((p, total) in arb_pipeline(), seed in 0u64..1000) {
        let model = p.build_model();
        let cfg = SimConfig {
            seed,
            total_input: total,
            source_chunk: None,
            queue_capacity: None,
            queue_capacities: None,
            service_model: nc_streamsim::ServiceModel::Uniform,
            trace: true,
            fast_forward: true,
            faults: None,
            workers: None,
        };
        let r = simulate(&p, &cfg);

        // 1. Conservation: everything drains in an underloaded pipeline
        //    when the volume is job-aligned per stage… it may not be,
        //    so check out + residual ≈ in instead.
        prop_assert!((r.bytes_out + r.residual - total as f64).abs() < 1.0 + total as f64 * EPS);

        // 2. Delay containment (concatenated, packetization-aware β).
        let d_bound = model.delay_bound_concat();
        if let Some(d) = d_bound.as_finite() {
            prop_assert!(
                r.delay_max <= d.to_f64() * (1.0 + EPS) + 1e-9,
                "sim delay {} exceeds NC bound {}", r.delay_max, d.to_f64()
            );
        }

        // 3. Backlog containment.
        let x_bound = model.backlog_bound_concat();
        if let Some(x) = x_bound.as_finite() {
            prop_assert!(
                r.peak_backlog <= x.to_f64() * (1.0 + EPS) + 1e-9,
                "sim backlog {} exceeds NC bound {}", r.peak_backlog, x.to_f64()
            );
        }

        // 4. Trace containment: cumulative output never exceeds the
        //    arrival curve α (an upper envelope of the true input), and
        //    never falls below r ⊗ β — the service guarantee against
        //    the *actual* input staircase r.
        let alpha = &model.arrival;
        let beta = &model.service_concat;
        let input = input_staircase(&r.trace_in);
        let floor = min_plus_conv(&input, beta);
        for &(t, out) in &r.trace_out {
            let tr = Rat::from_f64(t);
            let hi = alpha.eval(tr).to_f64();
            prop_assert!(out <= hi * (1.0 + EPS) + 1.0,
                "output {} above α(t)={} at t={}", out, hi, t);
            let lo = floor.eval(tr).to_f64();
            prop_assert!(out >= lo * (1.0 - EPS) - 1.0,
                "output {} below (r⊗β)(t)={} at t={}", out, lo, t);
        }
    }
}

//! Communication-link models: the network and PCIe stages of the
//! paper's pipelines.
//!
//! The paper treats data movement as first-class pipeline nodes ("we
//! model two types of communication links, traditional network links
//! and PCIe buses"). A [`LinkModel`] captures the packet-level reality
//! behind a nominal bandwidth: MTU/TLP payload segmentation, per-packet
//! header overhead, and a base propagation/setup latency. From it we
//! derive the effective throughput and the `l_max` packetization term
//! the network-calculus model needs.

use serde::Serialize;

/// A store-and-forward link with per-packet overhead.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct LinkModel {
    /// Raw line rate in bytes/s.
    pub line_rate: f64,
    /// Maximum payload bytes per packet (MTU minus headers / TLP
    /// payload size).
    pub payload_per_packet: u64,
    /// Header/framing bytes transmitted per packet.
    pub overhead_per_packet: u64,
    /// Fixed latency per transfer, seconds (propagation + setup).
    pub base_latency: f64,
}

impl LinkModel {
    /// 10 GbE carrying TCP/IPv4 over standard 1500-byte MTU frames
    /// (the paper's FPGA TCP stack [15, 24]); ~94% payload efficiency.
    pub fn ten_gbe() -> LinkModel {
        LinkModel {
            line_rate: 10.0e9 / 8.0,
            // 1500 MTU − 20 IP − 20 TCP.
            payload_per_packet: 1460,
            // 14 Ethernet + 4 FCS + 8 preamble + 12 IFG + 40 TCP/IP.
            overhead_per_packet: 78,
            base_latency: 10.0e-6,
        }
    }

    /// PCIe Gen3 ×16: 128 b/130 b line coding already folded into the
    /// ~15.75 GB/s usable rate; 256-byte TLP payloads with ~24 bytes of
    /// TLP/DLLP framing.
    pub fn pcie_gen3_x16() -> LinkModel {
        LinkModel {
            line_rate: 15.75e9,
            payload_per_packet: 256,
            overhead_per_packet: 24,
            base_latency: 1.0e-6,
        }
    }

    /// Validate parameters.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.line_rate.is_finite() && self.line_rate > 0.0) {
            return Err("line_rate must be > 0".into());
        }
        if self.payload_per_packet == 0 {
            return Err("payload_per_packet must be > 0".into());
        }
        if !(self.base_latency.is_finite() && self.base_latency >= 0.0) {
            return Err("base_latency must be >= 0".into());
        }
        Ok(())
    }

    /// Packets needed for `bytes` of payload.
    pub fn packets_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.payload_per_packet)
    }

    /// Wire time for a transfer of `bytes`, including per-packet
    /// overhead and base latency.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        let packets = self.packets_for(bytes);
        let wire_bytes = bytes + packets * self.overhead_per_packet;
        self.base_latency + wire_bytes as f64 / self.line_rate
    }

    /// Effective payload throughput for `bytes`-sized transfers
    /// (asymptotically `line_rate · payload/(payload+overhead)`).
    pub fn effective_rate(&self, bytes: u64) -> f64 {
        assert!(bytes > 0);
        bytes as f64 / self.transfer_time(bytes)
    }

    /// Asymptotic payload efficiency (0, 1].
    pub fn efficiency(&self) -> f64 {
        self.payload_per_packet as f64 / (self.payload_per_packet + self.overhead_per_packet) as f64
    }

    /// Asymptotic effective rate, bytes/s.
    pub fn asymptotic_rate(&self) -> f64 {
        self.line_rate * self.efficiency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        assert!(LinkModel::ten_gbe().validate().is_ok());
        assert!(LinkModel::pcie_gen3_x16().validate().is_ok());
    }

    #[test]
    fn packet_math() {
        let l = LinkModel::ten_gbe();
        assert_eq!(l.packets_for(1), 1);
        assert_eq!(l.packets_for(1460), 1);
        assert_eq!(l.packets_for(1461), 2);
        assert_eq!(l.packets_for(14600), 10);
    }

    #[test]
    fn overhead_reduces_effective_rate() {
        let l = LinkModel::ten_gbe();
        let eff = l.effective_rate(100 << 20);
        assert!(eff < l.line_rate);
        assert!(eff > 0.9 * l.line_rate, "10GbE efficiency ~94%: {eff}");
        // Small transfers pay the base latency.
        assert!(l.effective_rate(64) < 0.01 * l.line_rate);
    }

    #[test]
    fn effective_rate_monotone_in_size() {
        let l = LinkModel::pcie_gen3_x16();
        let mut prev = 0.0;
        for bytes in [1u64 << 10, 1 << 14, 1 << 18, 1 << 22, 1 << 26] {
            let r = l.effective_rate(bytes);
            assert!(r > prev, "rate must grow with transfer size");
            prev = r;
        }
        // Asymptote from the efficiency formula.
        let asym = l.asymptotic_rate();
        assert!((l.effective_rate(1 << 30) - asym).abs() / asym < 0.01);
    }

    #[test]
    fn paper_scale_rates() {
        // The paper's Table 2 lists the network at 10 GiB/s and PCIe at
        // 11 GiB/s; our physical models land in the same regime (the
        // paper's figures are nominal link rates).
        let net = LinkModel::ten_gbe().asymptotic_rate();
        assert!(net > 1.0e9, "10GbE payload {net}");
        let pcie = LinkModel::pcie_gen3_x16().asymptotic_rate();
        assert!(pcie > 10.0e9, "PCIe payload {pcie}");
    }

    #[test]
    fn validation_catches_bad_params() {
        let mut l = LinkModel::ten_gbe();
        l.line_rate = 0.0;
        assert!(l.validate().is_err());
        let mut l = LinkModel::ten_gbe();
        l.payload_per_packet = 0;
        assert!(l.validate().is_err());
        let mut l = LinkModel::ten_gbe();
        l.base_latency = f64::NAN;
        assert!(l.validate().is_err());
    }
}

//! Stage-parallel stochastic engine: conservative PDES with NC-derived
//! lookahead (DESIGN.md §12).
//!
//! The sequential thinned engine ([`crate::engine`]) processes one
//! global `(time, seq)` agenda. This engine instead shards the pipeline
//! into per-stage **logical processes** (LPs) — one per stage plus one
//! for the source — connected by SPSC [`nc_des::link`] channels, and
//! synchronizes them conservatively: each LP processes an event at time
//! `t` only once every input channel's *frontier* (next buffered
//! message, else the producer's watermark promise) lies beyond `t`, so
//! no straggler can arrive in its past. There is no rollback.
//!
//! **Lookahead comes from the NC model.** A producer's watermark is how
//! far past its committed outputs consumers may advance, and the
//! network-calculus service model provides a provable window
//! ([`nc_core::pipeline::Pipeline::stage_lookaheads`]): a stage with
//! rate-latency service `β_n = R_n (t − T_n)⁺` that must aggregate
//! `b_n` bytes cannot emit before it has collected them — the missing
//! `k`-th upstream block arrives no earlier than `W_up + (k−1)·g_up`
//! (the upstream frontier plus its per-job pacing floor
//! `g = b/R_max`) — and then needs at least `T_n` (first job) plus its
//! own `b_n/R_max,n` of service. Fault schedules gate the window: the
//! promise is pushed through [`FaultRt::extend`], so an open
//! stall/outage freeze is never jumped over (a promise never lands
//! inside a window the real completion would be pushed out of).
//!
//! **Worker-count determinism.** Each LP owns a counter-derived RNG
//! stream keyed by `(seed, stage)` (splitmix64-expanded ChaCha8 key),
//! its own clock, queue, and statistics; message content and order on
//! every link are produced by exactly one LP; and scheduling only ever
//! decides *when* an LP may process, never *what* it computes. Results
//! are therefore bit-identical for any worker count and any thread
//! interleaving — `workers = Some(1)` equals `workers = Some(n)`
//! exactly, which `tests/prop_par.rs` pins. Sample paths differ from
//! the sequential engine (which draws all stages from one RNG), so
//! cross-engine agreement is statistical, not bitwise; volume
//! observables (`bytes_out`, `residual`, per-node `jobs`/`bytes_in`)
//! are RNG-free and match the sequential engine exactly on fault-free
//! runs.
//!
//! **Scope.** Queues must be unbounded (the paper's default): with no
//! backpressure a completed job is always deliverable, so no
//! credit/feedback channels are needed and the LP graph stays
//! feed-forward — which is also the deadlock-freedom argument: every
//! LP waits only on upstream frontiers, and the source never waits on
//! anything but wall-clock backlog caps, which consumers drain.
//! Bounded-queue configurations and `ServiceModel::Deterministic` fall
//! back to the sequential engines (see [`crate::engine::simulate_in`]).
//!
//! **Synchronization cost (DESIGN.md §12 addendum).** All cross-thread
//! state is touched once per *quantum*, not once per event: an LP polls
//! its inputs (two atomic loads when nothing changed), checks downstream
//! backlog (one atomic load), then processes every merged event strictly
//! below the now-frozen frontier with zero shared-memory traffic,
//! publishing its outputs and watermark once per `NC_PUB_QUANTUM` events
//! (default 256; `1` restores per-event publication, the ablation
//! baseline in `perfbase`). A stale frontier is always *sound* — the
//! cached watermark is a promise that only under-estimates how far the
//! consumer may advance — so batching affects liveness only, and the
//! staleness is bounded: an LP also publishes whenever its clock has
//! advanced more than `quantum` lookahead windows past its last
//! publication, so a consumer never lags its producer by more than one
//! quantum of NC-derived lookahead. With `workers = 1` every LP runs
//! round-robin on one thread and the amortized per-event cost approaches
//! the sequential engine's (the BENCH_6 overhead row).
//!
//! **Adaptive sharding.** With `workers > 1` the LP chain is first
//! partitioned by *expected* per-LP event counts, run for a warmup
//! window (1/8 of the expected events, clamped), then re-partitioned by
//! the *measured* per-LP event counts and run to completion. The
//! partition decides only which thread runs an LP, so the warmup
//! measurement — wall-clock noisy as it is — can never perturb a result
//! bit (`prop_par.rs` pins this with repartitioning active).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use nc_core::pipeline::Pipeline;
use nc_des::link::{link, LinkRx, LinkTx, ProgressGate};
use nc_des::{ByteQueue, Dist, StreamingTally, Time, TimeWeighted};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::config::{derive_params, NodeParams, ServiceModel, SimConfig};
use crate::engine::steady_slope;
use crate::faults::FaultRt;
use crate::result::SimResult;
use crate::ring::StepRing;

/// Soft per-link in-flight cap (messages). Bounds wall-clock memory of
/// a fast producer ahead of a slow consumer; has no effect on
/// simulation semantics (see `nc_des::link`).
const LINK_CAP: usize = 1 << 16;

/// Can this configuration run on the parallel engine? (Unbounded
/// queues only — see the module docs.)
pub(crate) fn supported(config: &SimConfig) -> bool {
    config.queue_capacity.is_none() && config.queue_capacities.is_none()
}

/// One source emission: `bytes` enter the first stage's queue at `t`.
#[derive(Clone, Copy, Debug)]
struct DataMsg {
    t: f64,
    bytes: u64,
}

/// Source stairstep entry for the sink's virtual-delay inverse lookup.
#[derive(Clone, Copy, Debug)]
struct StepMsg {
    t: f64,
    cum_in: f64,
}

/// A Drop-policy stage discarded a job carrying `norm` input-referred
/// bytes at `t` (the sink must debit `in_system` in merged time order).
#[derive(Clone, Copy, Debug)]
struct DropMsg {
    t: f64,
    norm: f64,
}

enum Run {
    /// Processed at least one event or published new output.
    Progress,
    /// Nothing processable until an input frontier moves.
    Blocked,
    /// This LP will never produce another event.
    Finished,
}

/// Outcome of one lock-free processing burst between synchronization
/// points (see [`StageLp::drain`]).
enum Drained {
    /// Processed at least one event.
    Worked,
    /// Nothing processable below the cached frontier.
    Idle,
    /// Every channel exhausted, nothing in flight: the LP is done.
    Finished,
}

/// The publication quantum: events processed by an LP between watermark
/// publications. `NC_PUB_QUANTUM=1` restores per-event publication (the
/// ablation baseline); the default batches 256 events per publication.
/// Publication timing affects liveness only, never results.
fn publish_quantum() -> u32 {
    std::env::var("NC_PUB_QUANTUM")
        .ok()
        .and_then(|s| s.trim().parse::<u32>().ok())
        .filter(|&q| q >= 1)
        .unwrap_or(256)
}

/// Per-LP RNG stream: a ChaCha8 key counter-derived from
/// `(seed, stage)` via a splitmix64 expansion, so streams are
/// independent of each other and of how many workers run them.
fn stage_rng(seed: u64, stage: u64) -> ChaCha8Rng {
    fn splitmix64(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let mut x = seed ^ stage.wrapping_mul(0xD1B5_4A32_D192_ED03);
    let mut key = [0u8; 32];
    for chunk in key.chunks_exact_mut(8) {
        chunk.copy_from_slice(&splitmix64(&mut x).to_le_bytes());
    }
    ChaCha8Rng::from_seed(key)
}

// ---------------------------------------------------------------------
// Source LP
// ---------------------------------------------------------------------

struct SourceLp {
    remaining: u64,
    chunk: u64,
    interval: f64,
    t_next: f64,
    t_last: f64,
    cum_in: f64,
    emissions: u64,
    data: LinkTx<DataMsg>,
    steps: LinkTx<StepMsg>,
    done: bool,
}

impl SourceLp {
    fn run(&mut self) -> Run {
        if self.done {
            return Run::Finished;
        }
        let mut progress = false;
        while self.remaining > 0 {
            if self.data.backlogged() || self.steps.backlogged() {
                // Always publish data *before* parking: the sink merge
                // can then keep draining, which is what frees us.
                self.data.flush();
                self.steps.flush();
                return if progress {
                    Run::Progress
                } else {
                    Run::Blocked
                };
            }
            let chunk = self.chunk.min(self.remaining);
            let t = self.t_next;
            self.remaining -= chunk;
            self.cum_in += chunk as f64; // norm_in[0] == 1 by construction
            self.data.send(DataMsg { t, bytes: chunk });
            self.steps.send(StepMsg {
                t,
                cum_in: self.cum_in,
            });
            self.emissions += 1;
            self.t_last = t;
            progress = true;
            if self.remaining > 0 {
                self.t_next = t + self.interval;
                // The source's lookahead is exact: emissions sit on a
                // fixed cadence, so the next one IS the watermark.
                self.data.set_watermark(self.t_next);
                self.steps.set_watermark(self.t_next);
            }
        }
        self.data.close();
        self.steps.close();
        self.done = true;
        Run::Finished
    }
}

// ---------------------------------------------------------------------
// Stage LP
// ---------------------------------------------------------------------

/// Where a stage's completed jobs go: the next stage, or (last stage
/// only) the in-process sink accounting.
enum StageOut {
    Link(LinkTx<DataMsg>),
    Sink(Box<SinkState>),
}

/// Sink-side statistics, owned by the last stage's LP. Mirrors the
/// sequential engine's sink accounting, fed by a deterministic k-way
/// merge over the source stairstep channel, the Drop-policy stages'
/// drop channels, and the stage's own completions.
struct SinkState {
    steps: LinkRx<StepMsg>,
    /// Drop channels from upstream Drop-policy stages, in stage order
    /// (empty on zero-fault runs: no channels, no overhead).
    drops: Vec<LinkRx<DropMsg>>,
    sink_norm: f64,
    cum_in: f64,
    cum_out: f64,
    /// Running input-referred bytes dropped anywhere, in merged order.
    dropped_norm: f64,
    in_system: TimeWeighted,
    delays: StreamingTally,
    input_steps: StepRing<(f64, f64)>,
    delay_cursor: usize,
    trace: bool,
    trace_out: Vec<(f64, f64)>,
    t_last_out: f64,
}

/// The event classes an LP merges, in fixed priority order for equal
/// timestamps (sink bookkeeping before completions before arrivals, so
/// a delivery at `t` sees every input step and drop at `t`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Class {
    Step,
    Drop(usize),
    Completion,
    Arrival,
}

struct StageLp {
    i: usize,
    p: NodeParams,
    model: ServiceModel,
    faults: Option<Arc<FaultRt>>,
    rng: ChaCha8Rng,

    input: LinkRx<DataMsg>,
    out: StageOut,
    /// Drop channel to the sink (Drop-policy stages that are not last).
    drop_tx: Option<LinkTx<DropMsg>>,

    /// Upstream pacing bound: messages carry at most `up_block` bytes
    /// and consecutive ones are at least `up_min_gap` apart — the NC
    /// per-job floor `b/R_max` of the upstream stage (zero under the
    /// Exponential model, whose service floor is zero), or the source
    /// cadence.
    up_block: u64,
    up_min_gap: f64,
    /// This stage's own NC service floor `b_n/R_max,n` (fault-derated).
    exec_floor: f64,

    queue: ByteQueue,
    busy_until: Option<f64>,
    started: bool,
    busy_time: f64,
    jobs: u64,
    completions: u64,
    cur_retry: u32,
    retries: u64,
    last_exec: f64,
    dropped_jobs: u64,
    dropped_norm: f64,
    now: f64,
    events_since_flush: u32,
    /// Publication quantum (events per watermark publication).
    quantum: u32,
    /// Bounded-staleness cap: publish when the LP clock has advanced
    /// this far past the last publication (`∞` when the stage has no
    /// positive pacing floor — the event-count quantum then bounds the
    /// batch instead).
    stale_cap: f64,
    /// LP clock at the last publication.
    last_pub_now: f64,
    /// Total merged events processed (the adaptive-sharding load
    /// measure).
    work: u64,
    done: bool,
}

impl StageLp {
    fn run(&mut self) -> Run {
        if self.done {
            return Run::Finished;
        }
        let mut progress = false;
        loop {
            // One synchronization point per burst, not per event: drain
            // the shared queues, refresh the cached watermarks (two
            // atomic loads per idle channel), check downstream backlog
            // (one atomic load), then process everything below the
            // now-frozen frontier with no shared-memory traffic at all.
            self.input.poll();
            if let StageOut::Sink(sink) = &mut self.out {
                sink.steps.poll();
                for d in &mut sink.drops {
                    d.poll();
                }
            }
            if let StageOut::Link(tx) = &self.out {
                if tx.backlogged() {
                    self.publish();
                    return if progress {
                        Run::Progress
                    } else {
                        Run::Blocked
                    };
                }
            }
            match self.drain() {
                Drained::Finished => {
                    self.finish_lp();
                    return Run::Finished;
                }
                Drained::Worked => progress = true,
                Drained::Idle => {
                    self.publish();
                    return if progress {
                        Run::Progress
                    } else {
                        Run::Blocked
                    };
                }
            }
        }
    }

    /// Process every merged event strictly below the *cached* input
    /// frontier — a pure in-cache loop between synchronization points.
    /// The cached watermarks only under-promise (staleness is sound),
    /// so any event this admits would also be admitted with fresh
    /// state; mid-burst publications follow the quantum/staleness
    /// policy so downstream LPs are never starved.
    fn drain(&mut self) -> Drained {
        match self.out {
            StageOut::Link(_) => self.drain_mid(),
            StageOut::Sink(_) => self.drain_last(),
        }
    }

    /// Mid-chain specialization of the merge: only two channels exist
    /// (own completion, upstream arrivals), so the k-way scan collapses
    /// to a three-armed branch with `+∞` sentinels. Semantics are
    /// exactly [`Self::drain_last`]'s generic merge restricted to those
    /// channels — Completion orders before Arrival at equal times, any
    /// event must lie strictly below the empty-inbox watermark bound.
    fn drain_mid(&mut self) -> Drained {
        let mut worked = false;
        loop {
            let busy = self.busy_until.unwrap_or(f64::INFINITY);
            // (event time, is-completion, bound gating it)
            let (t, completion, bound) = match self.input.front() {
                Some(m) if busy <= m.t => (busy, true, f64::INFINITY),
                Some(m) => (m.t, false, f64::INFINITY),
                None => (busy, true, self.input.watermark()),
            };
            if t >= bound {
                if t.is_infinite() && bound.is_infinite() {
                    // Nothing in flight, input exhausted: done forever.
                    return Drained::Finished;
                }
                return if worked {
                    Drained::Worked
                } else {
                    Drained::Idle
                };
            }
            debug_assert!(t >= self.now, "LP clock must be monotone");
            self.now = t;
            if completion {
                self.complete(t);
            } else {
                let m = self.input.pop().expect("arrival head");
                self.queue.put(Time::secs(t), m.bytes);
                self.try_start(t);
            }
            worked = true;
            self.work += 1;
            self.events_since_flush += 1;
            if self.events_since_flush >= self.quantum
                || self.now - self.last_pub_now >= self.stale_cap
            {
                self.publish();
                if let StageOut::Link(tx) = &self.out {
                    if tx.backlogged() {
                        // Let the caller's synchronization point park us.
                        return Drained::Worked;
                    }
                }
            }
        }
    }

    /// Last-stage merge: the stage's own two channels plus the sink's
    /// bookkeeping channels (source stairstep, upstream drop streams).
    fn drain_last(&mut self) -> Drained {
        let mut worked = false;
        loop {
            // The k-way merge: the earliest concrete event, and the
            // earliest frontier of a channel with nothing buffered
            // (below which an unseen event could still arrive).
            let mut best: Option<(f64, Class)> = None;
            let mut bound = f64::INFINITY;
            let mut consider = |t: Option<f64>, frontier: f64, class: Class| match t {
                Some(t) => {
                    if best.is_none_or(|b| (t, class) < b) {
                        best = Some((t, class));
                    }
                }
                None => bound = bound.min(frontier),
            };
            if let StageOut::Sink(sink) = &self.out {
                consider(
                    sink.steps.front().map(|m| m.t),
                    sink.steps.watermark(),
                    Class::Step,
                );
                for (k, d) in sink.drops.iter().enumerate() {
                    consider(d.front().map(|m| m.t), d.watermark(), Class::Drop(k));
                }
            }
            consider(self.busy_until, f64::INFINITY, Class::Completion);
            consider(
                self.input.front().map(|m| m.t),
                self.input.watermark(),
                Class::Arrival,
            );

            let Some((t, class)) = best else {
                if bound.is_infinite() && self.busy_until.is_none() {
                    // Every channel exhausted, nothing in flight.
                    return Drained::Finished;
                }
                return if worked {
                    Drained::Worked
                } else {
                    Drained::Idle
                };
            };
            // Strict: a message at exactly `bound` may still arrive,
            // and same-time events obey the class order above.
            if t >= bound {
                return if worked {
                    Drained::Worked
                } else {
                    Drained::Idle
                };
            }

            debug_assert!(t >= self.now, "LP clock must be monotone");
            self.now = t;
            match class {
                Class::Step => {
                    let sink = self.sink_mut();
                    let m = sink.steps.pop().expect("step head");
                    sink.record_step(m);
                }
                Class::Drop(k) => {
                    let sink = self.sink_mut();
                    let m = sink.drops[k].pop().expect("drop head");
                    sink.record_drop(m);
                }
                Class::Completion => self.complete(t),
                Class::Arrival => {
                    let m = self.input.pop().expect("arrival head");
                    self.queue.put(Time::secs(t), m.bytes);
                    self.try_start(t);
                }
            }
            worked = true;
            self.work += 1;
            self.events_since_flush += 1;
            if self.events_since_flush >= self.quantum
                || self.now - self.last_pub_now >= self.stale_cap
            {
                // Sink stages have no output link; this only resets the
                // quantum counters (drops are accounted inline).
                self.publish();
            }
        }
    }

    fn sink_mut(&mut self) -> &mut SinkState {
        match &mut self.out {
            StageOut::Sink(s) => s,
            StageOut::Link(_) => unreachable!("sink accounting on a non-last stage"),
        }
    }

    /// Completion event (mirrors `engine::World::finish`): retry-policy
    /// outage check, then the job's output departs — always deliverable
    /// (unbounded queues), either downstream or to the sink.
    fn complete(&mut self, t: f64) {
        self.completions += 1;
        if self.try_retry(t) {
            return;
        }
        if let Some(fr) = &self.faults {
            // Block-policy gating: curtailed completions land *at*
            // freeze-window ends, never strictly inside one.
            debug_assert!(
                fr.retry_params(self.i).is_some() || fr.drops(self.i) || !fr.in_outage(self.i, t),
                "Block-policy completion inside an outage window"
            );
        }
        self.busy_until = None;
        self.jobs += 1;
        let bytes = self.p.job_out;
        if matches!(self.out, StageOut::Sink(_)) {
            self.sink_deliver(bytes, t);
        } else if let StageOut::Link(tx) = &mut self.out {
            debug_assert!(t >= tx.watermark(), "emission before the published promise");
            tx.send(DataMsg { t, bytes });
        }
        self.try_start(t);
    }

    /// Mirror of `engine::World::try_retry`: a completion strictly
    /// inside an outage window of a Retry-policy stage fails and is
    /// re-run after capped exponential backoff.
    fn try_retry(&mut self, t: f64) -> bool {
        let Some(fr) = &self.faults else { return false };
        let Some((base, cap)) = fr.retry_params(self.i) else {
            return false;
        };
        if !fr.in_outage(self.i, t) {
            self.cur_retry = 0;
            return false;
        }
        let k = self.cur_retry.min(30);
        let backoff = (base * (1u64 << k) as f64).min(cap);
        self.cur_retry = self.cur_retry.saturating_add(1);
        self.retries += 1;
        let exec = self.last_exec;
        self.busy_time += exec;
        let span = backoff + fr.extend(self.i, t + backoff, exec);
        self.busy_until = Some(t + span);
        true
    }

    /// Mirror of `engine::World::try_start` under unbounded queues: the
    /// Drop-policy outage loop, then start one job if idle and a full
    /// job is queued.
    fn try_start(&mut self, t: f64) {
        while let Some(fr) = &self.faults {
            if !(fr.drops(self.i) && fr.in_outage(self.i, t)) {
                break;
            }
            if self.busy_until.is_some() || !self.queue.can_get(self.p.job_in) {
                break;
            }
            self.queue.get(Time::secs(t), self.p.job_in);
            let dn = self.p.job_in as f64 * self.p.norm_in;
            self.dropped_jobs += 1;
            self.dropped_norm += dn;
            match (&mut self.drop_tx, &mut self.out) {
                (Some(tx), _) => tx.send(DropMsg { t, norm: dn }),
                (None, StageOut::Sink(sink)) => {
                    // Last stage: its own drops are already in merged
                    // order — account directly.
                    sink.dropped_norm += dn;
                    sink.in_system.add(Time::secs(t), -dn);
                }
                (None, StageOut::Link(_)) => {
                    unreachable!("Drop-policy stage built without a drop channel")
                }
            }
        }
        if self.busy_until.is_some() || !self.queue.can_get(self.p.job_in) {
            return;
        }
        self.queue.get(Time::secs(t), self.p.job_in);
        let startup = if self.started {
            0.0
        } else {
            self.started = true;
            self.p.startup
        };
        let dist = match self.model {
            ServiceModel::Uniform => Dist::Uniform {
                lo: self.p.exec_min,
                hi: self.p.exec_max,
            },
            ServiceModel::Exponential => Dist::Exponential {
                mean: self.p.exec_avg,
            },
            ServiceModel::Deterministic => unreachable!("routed to the det engine"),
        };
        let exec = dist.sample(&mut self.rng);
        self.busy_time += exec;
        let span = match &self.faults {
            None => startup + exec,
            Some(fr) => {
                self.last_exec = exec;
                fr.extend(self.i, t, startup + exec)
            }
        };
        self.busy_until = Some(t + span);
    }

    /// Mirror of `engine::World::deliver_to_sink`.
    fn sink_deliver(&mut self, local_bytes: u64, t: f64) {
        let sink = match &mut self.out {
            StageOut::Sink(s) => s,
            StageOut::Link(_) => unreachable!(),
        };
        let out_norm = local_bytes as f64 * sink.sink_norm;
        sink.cum_out += out_norm;
        sink.in_system.add(Time::secs(t), -out_norm);
        sink.t_last_out = t;

        let level = (sink.cum_out + sink.dropped_norm).min(sink.cum_in);
        debug_assert!(!sink.input_steps.is_empty());
        while sink.delay_cursor + 1 < sink.input_steps.len()
            && sink.input_steps.get(sink.delay_cursor).1 < level - 1e-9
        {
            sink.delay_cursor += 1;
        }
        let t_in = sink.input_steps.get(sink.delay_cursor).0;
        sink.delays.record((t - t_in).max(0.0));

        if sink.trace {
            sink.trace_out.push((t, sink.cum_out));
        } else {
            sink.input_steps.prune_to(sink.delay_cursor);
        }
    }

    /// Publish buffered outputs and the current watermark promise.
    fn publish(&mut self) {
        self.events_since_flush = 0;
        self.last_pub_now = self.now;
        if matches!(self.out, StageOut::Link(_)) {
            let promise = self.promise();
            if let StageOut::Link(tx) = &mut self.out {
                tx.set_watermark(promise);
                tx.flush();
            }
        }
        if let Some(tx) = &mut self.drop_tx {
            // Future drops happen at future event times of this LP.
            let lbts = self
                .busy_until
                .unwrap_or(f64::INFINITY)
                .min(self.input.front().map_or(self.input.watermark(), |m| m.t));
            tx.set_watermark(lbts);
            tx.flush();
        }
    }

    /// The NC-derived lookahead promise: a sound lower bound on this
    /// stage's next emission time (DESIGN.md §12).
    ///
    /// Busy: the armed completion. Idle: walk the bytes still missing
    /// for one job through the concrete inbox, then charge unseen
    /// upstream blocks at the pacing floor (`k`-th future block ≥
    /// `W_up + (k−1)·g_up`, with blocks of at most `up_block` bytes —
    /// both bounds err on the sound side), then add startup (first job
    /// only) + the service floor `b_n/R_max,n`, all pushed through the
    /// fault freeze windows so an open outage is never jumped.
    fn promise(&self) -> f64 {
        if let Some(tc) = self.busy_until {
            return tc;
        }
        let have = self.queue.level();
        let t_start = if have >= self.p.job_in {
            self.now
        } else {
            let mut need = self.p.job_in - have;
            let mut covered = None;
            for m in self.input.buffered() {
                if m.bytes >= need {
                    covered = Some(m.t);
                    break;
                }
                need -= m.bytes;
            }
            match covered {
                Some(t) => t.max(self.now),
                None if self.input.exhausted() => return f64::INFINITY,
                None => {
                    let w = self.input.watermark().max(self.now);
                    let k = need.div_ceil(self.up_block).max(1);
                    w + (k - 1) as f64 * self.up_min_gap
                }
            }
        };
        let startup = if self.started { 0.0 } else { self.p.startup };
        let dur = startup + self.exec_floor;
        match &self.faults {
            None => t_start + dur,
            Some(fr) => t_start + fr.extend(self.i, t_start, dur),
        }
    }

    fn finish_lp(&mut self) {
        if let StageOut::Link(tx) = &mut self.out {
            tx.close();
        }
        if let Some(tx) = &mut self.drop_tx {
            tx.close();
        }
        self.done = true;
    }
}

impl SinkState {
    fn record_step(&mut self, m: StepMsg) {
        let delta = m.cum_in - self.cum_in;
        self.cum_in = m.cum_in;
        self.in_system.add(Time::secs(m.t), delta);
        self.input_steps.push((m.t, m.cum_in));
    }

    fn record_drop(&mut self, m: DropMsg) {
        self.dropped_norm += m.norm;
        self.in_system.add(Time::secs(m.t), -m.norm);
    }
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

enum Lp {
    Source(Box<SourceLp>),
    Stage(Box<StageLp>),
}

impl Lp {
    fn run(&mut self) -> Run {
        match self {
            Lp::Source(s) => s.run(),
            Lp::Stage(s) => s.run(),
        }
    }

    /// Events this LP has processed so far (the adaptive-sharding load
    /// measure; scheduling-independent by worker-count determinism).
    fn work(&self) -> u64 {
        match self {
            Lp::Source(s) => s.emissions,
            Lp::Stage(s) => s.work,
        }
    }

    fn done(&self) -> bool {
        match self {
            Lp::Source(s) => s.done,
            Lp::Stage(s) => s.done,
        }
    }
}

/// Shared warmup-window control for adaptive sharding. Workers add
/// their per-pass processed-event deltas to `counter`; whoever makes
/// the total cross `target` raises `stop` and bumps the gate so parked
/// peers wake, observe the flag at their loop top, and return. LPs
/// always publish before their `run` returns, so stopping between
/// passes leaves every channel consistent for the next phase.
struct Warmup {
    stop: AtomicBool,
    counter: AtomicU64,
    target: u64,
}

/// Run `lps` on the calling thread, parking on `gate` when every LP is
/// blocked; returns when all LPs finish, or (with `warmup`) as soon as
/// the fleet-wide warmup window closes. `solo` workers have nobody to
/// wait for: a fully blocked pass is a protocol bug, not a race.
fn run_worker(lps: &mut [Lp], gate: &ProgressGate, solo: bool, warmup: Option<&Warmup>) {
    loop {
        if let Some(w) = warmup {
            if w.stop.load(Ordering::Relaxed) {
                return;
            }
        }
        let seen = gate.generation();
        let before: u64 = match warmup {
            Some(_) => lps.iter().map(Lp::work).sum(),
            None => 0,
        };
        let mut progress = false;
        let mut all_done = true;
        for lp in lps.iter_mut() {
            match lp.run() {
                Run::Progress => {
                    progress = true;
                    all_done = false;
                }
                Run::Blocked => all_done = false,
                Run::Finished => {}
            }
        }
        if let Some(w) = warmup {
            let delta = lps.iter().map(Lp::work).sum::<u64>() - before;
            let crossed =
                delta > 0 && w.counter.fetch_add(delta, Ordering::Relaxed) + delta >= w.target;
            if crossed || all_done {
                // Window closed (or this shard finished outright, which
                // makes the static partition stale): end the phase.
                w.stop.store(true, Ordering::Relaxed);
                gate.bump();
                return;
            }
        }
        if all_done {
            return;
        }
        if !progress {
            assert!(!solo, "parallel engine stalled: no LP can progress");
            gate.wait_past(seen);
        }
    }
}

/// Split `lps` into up to `workers` contiguous shards with balanced
/// `weight` (thread assignment only — results are shard-independent).
fn partition_by(lps: Vec<Lp>, workers: usize, weight: impl Fn(&Lp) -> f64) -> Vec<Vec<Lp>> {
    let total: f64 = lps.iter().map(&weight).sum();
    let target = total / workers as f64;
    let mut shards: Vec<Vec<Lp>> = Vec::with_capacity(workers);
    let mut cur: Vec<Lp> = Vec::new();
    let mut acc = 0.0;
    for lp in lps {
        acc += weight(&lp);
        cur.push(lp);
        if acc >= target * (shards.len() + 1) as f64 && shards.len() + 1 < workers {
            shards.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        shards.push(cur);
    }
    shards
}

/// Run each shard on its own scoped thread; returns the LPs in their
/// original chain order (shards are contiguous, joins are in order).
fn run_shards(shards: Vec<Vec<Lp>>, gate: &ProgressGate, warmup: Option<&Warmup>) -> Vec<Lp> {
    std::thread::scope(|s| {
        let handles: Vec<_> = shards
            .into_iter()
            .map(|mut shard| {
                s.spawn(move || {
                    run_worker(&mut shard, gate, false, warmup);
                    shard
                })
            })
            .collect();
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().expect("worker panicked"));
        }
        all
    })
}

/// Stage-parallel simulation. Semantically mirrors
/// [`crate::engine::simulate_in`] for unbounded-queue stochastic
/// configurations; results are bit-identical across `workers` values.
pub(crate) fn simulate_par(pipeline: &Pipeline, config: &SimConfig, workers: usize) -> SimResult {
    debug_assert!(supported(config));
    debug_assert_ne!(config.service_model, ServiceModel::Deterministic);
    pipeline
        .validate()
        .unwrap_or_else(|e| panic!("simulate: invalid pipeline: {e}"));
    let mut params = derive_params(pipeline);
    let n = params.len();
    let faults = config.faults.as_ref().and_then(|fs| {
        fs.validate(n)
            .unwrap_or_else(|e| panic!("simulate: invalid fault schedule: {e}"));
        FaultRt::build(fs, n).map(Arc::new)
    });

    // NC lookahead table (fault-free): cross-check that the simulator's
    // derived per-job floor is exactly the model's b_n/R_max,n before
    // the fault derate scales it.
    let lookaheads = pipeline.stage_lookaheads();
    for (la, p) in lookaheads.iter().zip(&params) {
        debug_assert!(
            (la.min_job_time.to_f64() - p.exec_min).abs() <= 1e-9 * p.exec_min.abs().max(1.0),
            "stage '{}': NC min_job_time {} != derived exec_min {}",
            p.name,
            la.min_job_time.to_f64(),
            p.exec_min
        );
    }
    if let Some(fr) = &faults {
        fr.apply_derates(&mut params);
    }

    let src_chunk = config.source_chunk.unwrap_or(params[0].job_in).max(1);
    let src_rate = pipeline.source.rate.to_f64();
    assert!(src_rate > 0.0);
    let sink_norm = {
        let last = &params[n - 1];
        last.norm_in * last.job_in as f64 / last.job_out as f64
    };

    // The per-emission pacing floor of each producer, as seen by its
    // consumer: the NC b/R_max service floor (zero under Exponential,
    // whose distribution has no positive floor), fault-derated with the
    // execution parameters above.
    let gap_of = |p: &NodeParams| match config.service_model {
        ServiceModel::Uniform => p.exec_min,
        ServiceModel::Exponential => 0.0,
        ServiceModel::Deterministic => unreachable!(),
    };

    let quantum = publish_quantum();
    let gate = ProgressGate::new();
    let (mut src_data_tx, src_data_rx) = link::<DataMsg>(LINK_CAP, &gate);
    let (mut steps_tx, steps_rx) = link::<StepMsg>(LINK_CAP, &gate);
    src_data_tx.set_batch(quantum as usize);
    steps_tx.set_batch(quantum as usize);

    // Inter-stage data links and the Drop-policy stages' drop channels
    // to the sink (the last stage accounts its own drops inline).
    let mut inputs: Vec<LinkRx<DataMsg>> = vec![src_data_rx];
    let mut out_txs: Vec<Option<LinkTx<DataMsg>>> = Vec::with_capacity(n);
    let mut drop_txs: Vec<Option<LinkTx<DropMsg>>> = Vec::with_capacity(n);
    let mut drop_rxs: Vec<LinkRx<DropMsg>> = Vec::new();
    for i in 0..n {
        if i + 1 < n {
            let (mut tx, rx) = link::<DataMsg>(LINK_CAP, &gate);
            tx.set_batch(quantum as usize);
            out_txs.push(Some(tx));
            inputs.push(rx);
            if faults.as_ref().is_some_and(|fr| fr.drops(i)) {
                let (mut tx, rx) = link::<DropMsg>(LINK_CAP, &gate);
                tx.set_batch(quantum as usize);
                drop_txs.push(Some(tx));
                drop_rxs.push(rx);
            } else {
                drop_txs.push(None);
            }
        } else {
            out_txs.push(None);
            drop_txs.push(None);
        }
    }

    let src_interval = src_chunk as f64 / src_rate;
    let mut lps: Vec<Lp> = Vec::with_capacity(n + 1);
    lps.push(Lp::Source(Box::new(SourceLp {
        remaining: config.total_input,
        chunk: src_chunk,
        interval: src_interval,
        t_next: 0.0,
        t_last: 0.0,
        cum_in: 0.0,
        emissions: 0,
        data: src_data_tx,
        steps: steps_tx,
        done: false,
    })));
    let mut steps_rx = Some(steps_rx);
    let mut drop_rxs = Some(drop_rxs);
    for (i, (input, (out_tx, drop_tx))) in inputs
        .into_iter()
        .zip(out_txs.into_iter().zip(drop_txs))
        .enumerate()
    {
        let p = params[i].clone();
        let out = match out_tx {
            Some(tx) => StageOut::Link(tx),
            None => StageOut::Sink(Box::new(SinkState {
                steps: steps_rx.take().expect("one sink"),
                drops: drop_rxs.take().expect("one sink"),
                sink_norm,
                cum_in: 0.0,
                cum_out: 0.0,
                dropped_norm: 0.0,
                in_system: TimeWeighted::new(Time::ZERO, 0.0),
                delays: StreamingTally::new(),
                input_steps: StepRing::new(),
                delay_cursor: 0,
                trace: config.trace,
                trace_out: Vec::new(),
                t_last_out: 0.0,
            })),
        };
        let (up_block, up_min_gap) = if i == 0 {
            (src_chunk, src_interval)
        } else {
            (params[i - 1].job_out, gap_of(&params[i - 1]))
        };
        let exec_floor = gap_of(&p);
        // Staleness cap: `quantum` NC lookahead windows of simulated
        // time (infinite when the pacing floor is zero — the
        // event-count quantum then bounds the batch instead).
        let window = exec_floor + up_min_gap;
        let stale_cap = if window > 0.0 {
            quantum as f64 * window
        } else {
            f64::INFINITY
        };
        lps.push(Lp::Stage(Box::new(StageLp {
            i,
            model: config.service_model,
            faults: faults.clone(),
            rng: stage_rng(config.seed, i as u64 + 1),
            input,
            out,
            drop_tx,
            up_block,
            up_min_gap,
            exec_floor,
            queue: ByteQueue::unbounded(Time::ZERO),
            busy_until: None,
            started: false,
            busy_time: 0.0,
            jobs: 0,
            completions: 0,
            cur_retry: 0,
            retries: 0,
            last_exec: 0.0,
            dropped_jobs: 0,
            dropped_norm: 0.0,
            now: 0.0,
            events_since_flush: 0,
            quantum,
            stale_cap,
            last_pub_now: 0.0,
            work: 0,
            done: false,
            p,
        })));
    }

    // Contiguous worker shards. With one worker (or fewer workers than
    // LPs after clamping) LPs are merged onto threads round-robin-free:
    // a 1-worker run is the whole chain on the calling thread, paying
    // only the amortized atomic traffic above sequential cost. With
    // more workers, shard first by *expected* per-LP event counts, run
    // a warmup window, then re-shard by the *measured* counts (thread
    // assignment only — results are shard-independent, which
    // `prop_par.rs` pins with repartitioning active).
    let workers = workers.clamp(1, lps.len());
    if workers == 1 {
        run_worker(&mut lps, &gate, true, None);
    } else {
        let expected = |lp: &Lp| -> f64 {
            match lp {
                Lp::Source(_) => (config.total_input as f64 / src_chunk as f64).max(1.0),
                Lp::Stage(st) => {
                    let local_in = config.total_input as f64 / st.p.norm_in;
                    (local_in / st.p.job_in as f64).max(1.0)
                }
            }
        };
        // Warmup window: 1/8 of the expected events, clamped so tiny
        // runs barely notice it and huge runs don't over-commit to the
        // static guess.
        let target = ((lps.iter().map(expected).sum::<f64>() / 8.0) as u64).clamp(256, 500_000);
        let warmup = Warmup {
            stop: AtomicBool::new(false),
            counter: AtomicU64::new(0),
            target,
        };
        lps = run_shards(partition_by(lps, workers, expected), &gate, Some(&warmup));
        let measured = |lp: &Lp| -> f64 {
            if lp.done() {
                0.0
            } else {
                (lp.work() as f64).max(1.0)
            }
        };
        lps = run_shards(partition_by(lps, workers, measured), &gate, None);
    }

    assemble_par(lps, config)
}

/// Join the finished LPs into a [`SimResult`] (mirrors
/// `engine::assemble`; per-run quantities come from the single LP that
/// owns them, per-node rows from each stage LP).
fn assemble_par(lps: Vec<Lp>, config: &SimConfig) -> SimResult {
    let mut horizon = 0.0f64;
    let mut events = 0u64;
    let mut dropped_jobs = 0u64;
    let mut dropped_norm = 0.0f64;
    let mut retries = 0u64;
    let mut sink: Option<Box<SinkState>> = None;
    let mut stages: Vec<Box<StageLp>> = Vec::new();
    for lp in lps {
        match lp {
            Lp::Source(s) => {
                events += s.emissions;
                horizon = horizon.max(s.t_last);
            }
            Lp::Stage(mut st) => {
                events += st.completions;
                dropped_jobs += st.dropped_jobs;
                dropped_norm += st.dropped_norm;
                retries += st.retries;
                horizon = horizon.max(st.now);
                if matches!(st.out, StageOut::Sink(_)) {
                    // Take the sink stats out, leaving a stub link.
                    let stub = link::<DataMsg>(1, &ProgressGate::new()).0;
                    if let StageOut::Sink(s) = std::mem::replace(&mut st.out, StageOut::Link(stub))
                    {
                        sink = Some(s);
                    }
                }
                stages.push(st);
            }
        }
    }
    let sink = sink.expect("last stage owns the sink");

    let bytes_out = sink.cum_out;
    let makespan = sink.t_last_out;
    let throughput = if makespan > 0.0 {
        bytes_out / makespan
    } else {
        0.0
    };
    let horizon_s = horizon.max(f64::MIN_POSITIVE);
    let t_end = Time::secs(horizon_s);
    let residual: f64 = stages
        .iter()
        .map(|st| st.queue.level() as f64 * st.p.norm_in)
        .sum();
    let per_queue_peak = stages
        .iter()
        .map(|st| (st.p.name.clone(), st.queue.peak() * st.p.norm_in))
        .collect();
    let per_node = stages
        .iter()
        .map(|st| crate::result::NodeStats {
            name: st.p.name.clone(),
            utilization: (st.busy_time / horizon_s).min(1.0),
            jobs: st.jobs,
            bytes_in: st.jobs * st.p.job_in,
            avg_queue: st.queue.avg_occupancy(t_end) * st.p.norm_in,
        })
        .collect();
    SimResult {
        bytes_out,
        makespan,
        throughput,
        steady_throughput: steady_slope(&sink.trace_out).unwrap_or(throughput),
        delay_min: sink.delays.min().unwrap_or(0.0),
        delay_max: sink.delays.max().unwrap_or(0.0),
        delay_mean: sink.delays.mean().unwrap_or(0.0),
        peak_backlog: sink.in_system.max(),
        per_queue_peak,
        residual,
        trace_in: if config.trace {
            sink.input_steps.iter().collect()
        } else {
            Vec::new()
        },
        trace_out: sink.trace_out,
        per_node,
        events,
        dropped_jobs,
        dropped_bytes: dropped_norm,
        retries,
    }
}

//! Simulation time: finite, non-negative seconds with a total order.
//!
//! The engine orders events by `(time, sequence)`; a dedicated newtype
//! keeps NaN out of the calendar by construction and makes the unit
//! (seconds) explicit at API boundaries.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in seconds since simulation start.
///
/// Always finite and non-negative; constructors panic otherwise.
#[derive(Clone, Copy, PartialEq)]
pub struct Time(f64);

impl Time {
    /// Simulation epoch.
    pub const ZERO: Time = Time(0.0);

    /// A time `s` seconds after the epoch.
    ///
    /// # Panics
    /// Panics if `s` is negative, NaN, or infinite.
    pub fn secs(s: f64) -> Time {
        assert!(s.is_finite() && s >= 0.0, "invalid simulation time {s}");
        Time(s)
    }

    /// A time `ms` milliseconds after the epoch.
    pub fn millis(ms: f64) -> Time {
        Time::secs(ms * 1e-3)
    }

    /// A time `us` microseconds after the epoch.
    pub fn micros(us: f64) -> Time {
        Time::secs(us * 1e-6)
    }

    /// Seconds since the epoch.
    pub fn as_secs(self) -> f64 {
        self.0
    }
}

/// A non-negative span of simulated time, in seconds.
#[derive(Clone, Copy, PartialEq, PartialOrd)]
pub struct Span(f64);

impl Span {
    /// Zero-length span.
    pub const ZERO: Span = Span(0.0);

    /// A span of `s` seconds.
    ///
    /// # Panics
    /// Panics if `s` is negative, NaN, or infinite.
    pub fn secs(s: f64) -> Span {
        assert!(s.is_finite() && s >= 0.0, "invalid time span {s}");
        Span(s)
    }

    /// A span of `ms` milliseconds.
    pub fn millis(ms: f64) -> Span {
        Span::secs(ms * 1e-3)
    }

    /// A span of `us` microseconds.
    pub fn micros(us: f64) -> Span {
        Span::secs(us * 1e-6)
    }

    /// Seconds in the span.
    pub fn as_secs(self) -> f64 {
        self.0
    }
}

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> Ordering {
        // Values are finite by construction.
        self.0.total_cmp(&other.0)
    }
}

impl Add<Span> for Time {
    type Output = Time;
    fn add(self, rhs: Span) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Span> for Time {
    fn add_assign(&mut self, rhs: Span) {
        self.0 += rhs.0;
    }
}

impl Sub<Time> for Time {
    type Output = Span;
    /// # Panics
    /// Panics if `rhs` is later than `self`.
    fn sub(self, rhs: Time) -> Span {
        Span::secs(self.0 - rhs.0)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(Time::secs(1.5).as_secs(), 1.5);
        assert_eq!(Time::millis(2.0).as_secs(), 0.002);
        assert_eq!(Time::micros(3.0).as_secs(), 3.0e-6);
        assert_eq!(Span::millis(1.0).as_secs(), 1e-3);
    }

    #[test]
    #[should_panic(expected = "invalid simulation time")]
    fn negative_time_rejected() {
        let _ = Time::secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "invalid time span")]
    fn nan_span_rejected() {
        let _ = Span::secs(f64::NAN);
    }

    #[test]
    fn arithmetic_and_order() {
        let t = Time::secs(1.0) + Span::secs(0.5);
        assert_eq!(t, Time::secs(1.5));
        assert!(Time::secs(1.0) < Time::secs(1.5));
        assert_eq!(Time::secs(2.0) - Time::secs(0.5), Span::secs(1.5));
    }

    #[test]
    #[should_panic]
    fn negative_difference_panics() {
        let _ = Time::secs(1.0) - Time::secs(2.0);
    }
}

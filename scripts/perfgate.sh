#!/usr/bin/env bash
# Perf regression gate: re-run the perfbase snapshot into a temp file
# and flag any repro binary, simulation, admission, or parallel-engine
# row that is >25% slower than the newest committed BENCH_*.json
# baseline. Parallel-engine rows whose worker count exceeds this
# host's cpus are skipped with a printed notice — on a smaller box
# those rows measure oversubscription, not the engine.
#
# Default mode is warn-only — wall-clock noise on shared machines makes
# a hard gate flakier than it is useful, so the warning is the review
# signal. Set PERFGATE_STRICT=1 to make a >25% regression (or a failed
# perfbase run) fail the gate with a non-zero exit, for environments
# quiet enough to trust the numbers.
set -uo pipefail
cd "$(dirname "$0")/.."

strict="${PERFGATE_STRICT:-0}"

base=$(ls BENCH_*.json 2>/dev/null | sort -V | tail -1)
if [[ -z "${base}" ]]; then
    echo "perfgate: no BENCH_*.json baseline found — skipping"
    exit 0
fi

out=$(mktemp -t perfgate.XXXXXX.json)
# perfbase re-runs the repro bins, which rewrite results/ — all
# byte-deterministic except two: perfbase times the sweep's default
# 16x16 grid and the admit bin's default 32x250 fleet, while the
# committed artifacts are the check.sh smoke outputs. Snapshot and
# restore them so a check.sh run leaves the tree clean.
sweep_csv=results/sweep_bitw.csv
sweep_saved=$(mktemp -t perfgate.sweep.XXXXXX.csv)
if ! cp "$sweep_csv" "$sweep_saved" 2>/dev/null; then
    rm -f "$sweep_saved"
    sweep_saved=""
fi
admit_csv=results/admission.csv
admit_saved=$(mktemp -t perfgate.admit.XXXXXX.csv)
if ! cp "$admit_csv" "$admit_saved" 2>/dev/null; then
    rm -f "$admit_saved"
    admit_saved=""
fi
restore() {
    if [[ -n "$sweep_saved" && -f "$sweep_saved" ]]; then
        mv "$sweep_saved" "$sweep_csv"
    fi
    if [[ -n "$admit_saved" && -f "$admit_saved" ]]; then
        mv "$admit_saved" "$admit_csv"
    fi
    rm -f "$out"
}
trap restore EXIT
echo "perfgate: re-running perfbase (baseline: ${base}, strict=${strict})"
if ! PERFBASE_OUT="$out" cargo run --release -q -p nc-bench --bin perfbase >/dev/null; then
    if [[ "$strict" != "0" ]]; then
        echo "perfgate: FAIL — perfbase run failed (strict mode)"
        exit 1
    fi
    echo "perfgate: perfbase run failed — skipping comparison (warn-only)"
    exit 0
fi

PERFGATE_STRICT="$strict" python3 - "$base" "$out" <<'PY'
import json, os, sys

base_path, cur_path = sys.argv[1], sys.argv[2]
strict = os.environ.get("PERFGATE_STRICT", "0") != "0"
with open(base_path) as f:
    base = json.load(f)
with open(cur_path) as f:
    cur = json.load(f)

def rows(snapshot):
    r, workers = {}, {}
    for b in snapshot.get("bins", []):
        r[("bin", b["bin"])] = b["wall_s"]
    for s in snapshot.get("sims", []):
        r[("sim", s["what"])] = s["per_run_s"]
    for a in snapshot.get("admission", []):
        r[("adm", a["what"])] = a["per_decision_s"]
    for p in snapshot.get("par_scaling", []):
        name = f"{p['what']} workers={p['workers'] or 'seq'}"
        r[("par", name)] = p["per_run_s"]
        workers[name] = p["workers"]
    return r, workers

(old, old_workers), (new, _) = rows(base), rows(cur)
shared = sorted(old.keys() & new.keys())
# Rows present on only one side are informational, never a failure:
# a newly added row has no baseline yet (it gets one when the next
# BENCH_*.json is committed), and a removed/renamed row just drops
# out of the comparison.
for kind, name in sorted(new.keys() - old.keys()):
    print(f"perfgate: note — new row, no baseline: {kind} {name}")
for kind, name in sorted(old.keys() - new.keys()):
    print(f"perfgate: note — baseline row absent from this run: {kind} {name}")
host_cpus = cur.get("host_cpus") or 1
skipped = [k for k in shared if k[0] == "par" and old_workers.get(k[1], 0) > host_cpus]
if skipped:
    print(f"perfgate: note — skipping {len(skipped)} parallel-engine row(s) "
          f"whose worker count exceeds host_cpus={host_cpus}:")
    for _, name in skipped:
        print(f"  par  {name}")
    shared = [k for k in shared if k not in set(skipped)]
slow = [(k, old[k], new[k]) for k in shared if new[k] > old[k] * 1.25]

if slow:
    word = "FAIL" if strict else "WARNING"
    print(f"perfgate: {word} — {len(slow)} row(s) >25% slower than {base_path}:")
    for (kind, name), was, now in slow:
        print(f"  {kind:<4} {name:<44} {was:.3e}s -> {now:.3e}s ({now / was:.2f}x)")
    sys.exit(1 if strict else 0)
else:
    print(f"perfgate: ok — {len(shared)} rows compared against {base_path}, none >25% slower")
PY
status=$?
if [[ "$strict" != "0" && $status -ne 0 ]]; then
    exit "$status"
fi
exit 0

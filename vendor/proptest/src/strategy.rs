//! The `Strategy` trait and primitive strategies.

use crate::test_runner::TestRng;
use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

/// How many draws a `prop_filter` makes before giving up.
const FILTER_MAX_RETRIES: u32 = 10_000;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred`; `reason` names the filter in
    /// the exhaustion panic.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_MAX_RETRIES {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected {FILTER_MAX_RETRIES} consecutive values",
            self.reason
        );
    }
}

/// Strategy always producing a clone of one value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy choosing uniformly among boxed alternatives; built by the
/// `prop_oneof!` macro.
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Union over `arms`, each drawn with equal probability.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!arms.is_empty(), "empty union strategy");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.uniform(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// ------------------------------------------------------- range strategies

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let draw = if span > u64::MAX as u128 {
                    // i128 spans wider than 64 bits: combine two draws.
                    (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) % span
                } else {
                    rng.uniform(span as u64) as u128
                };
                (self.start as i128).wrapping_add(draw as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128).wrapping_sub(start as i128) as u128;
                if span >= u64::MAX as u128 {
                    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    return (start as i128).wrapping_add((wide % (span + 1)) as i128) as $t;
                }
                (start as i128).wrapping_add(rng.uniform(span as u64 + 1) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        start + (end - start) * unit
    }
}

// ------------------------------------------------------- tuple strategies

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

// -------------------------------------------------------------- any::<T>()

/// Types with a full-domain uniform strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw one value over the full domain.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's full domain.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The full-domain strategy for `T` (`any::<u8>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

//! The discrete-event simulation kernel.
//!
//! Functionally equivalent to the SimPy core the paper uses [29]: a
//! time-ordered event calendar with deterministic FIFO tie-breaking,
//! driven to completion or to a horizon. Events are closures over the
//! user's world state `S`; higher-level process abstractions (the
//! streaming pipeline nodes of `nc-streamsim`) are built on top.
//!
//! Determinism: two events at the same timestamp fire in scheduling
//! order (a strictly monotone sequence number breaks ties), so a run
//! with a fixed RNG seed is exactly reproducible.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use crate::time::{Span, Time};

/// An event closure: runs at its scheduled time with exclusive access
/// to the simulation (so it can mutate state and schedule more events).
pub type Event<S> = Box<dyn FnOnce(&mut Sim<S>)>;

struct Entry<S> {
    at: Time,
    seq: u64,
    run: Event<S>,
}

impl<S> PartialEq for Entry<S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<S> Eq for Entry<S> {}
impl<S> PartialOrd for Entry<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for Entry<S> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

/// A discrete-event simulation over world state `S`.
pub struct Sim<S> {
    now: Time,
    seq: u64,
    processed: u64,
    calendar: BinaryHeap<Reverse<Entry<S>>>,
    /// The user's world state (queues, node status, statistics…).
    pub state: S,
}

impl<S> Sim<S> {
    /// Create a simulation at time zero.
    pub fn new(state: S) -> Sim<S> {
        Sim {
            now: Time::ZERO,
            seq: 0,
            processed: 0,
            calendar: BinaryHeap::new(),
            state,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn events_pending(&self) -> usize {
        self.calendar.len()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past.
    pub fn schedule_at(&mut self, at: Time, event: impl FnOnce(&mut Sim<S>) + 'static) {
        assert!(at >= self.now, "cannot schedule into the past");
        let seq = self.seq;
        self.seq += 1;
        self.calendar.push(Reverse(Entry {
            at,
            seq,
            run: Box::new(event),
        }));
    }

    /// Schedule `event` after `delay`.
    pub fn schedule_in(&mut self, delay: Span, event: impl FnOnce(&mut Sim<S>) + 'static) {
        let at = self.now + delay;
        self.schedule_at(at, event);
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_next(&self) -> Option<Time> {
        self.calendar.peek().map(|Reverse(e)| e.at)
    }

    /// Execute the single next event. Returns `false` when the
    /// calendar is empty.
    pub fn step(&mut self) -> bool {
        match self.calendar.pop() {
            None => false,
            Some(Reverse(e)) => {
                debug_assert!(e.at >= self.now);
                self.now = e.at;
                self.processed += 1;
                (e.run)(self);
                true
            }
        }
    }

    /// Run until the calendar is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run every event scheduled at or before `horizon`, then set the
    /// clock to `horizon`. Later events stay pending.
    pub fn run_until(&mut self, horizon: Time) {
        while let Some(next) = self.peek_next() {
            if next > horizon {
                break;
            }
            self.step();
        }
        if self.now < horizon {
            self.now = horizon;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let log: Rc<RefCell<Vec<u32>>> = Rc::default();
        let mut sim = Sim::new(());
        for (t, id) in [(3.0, 3u32), (1.0, 1), (2.0, 2)] {
            let log = log.clone();
            sim.schedule_at(Time::secs(t), move |_| log.borrow_mut().push(id));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
        assert_eq!(sim.events_processed(), 3);
    }

    #[test]
    fn ties_break_fifo() {
        let log: Rc<RefCell<Vec<u32>>> = Rc::default();
        let mut sim = Sim::new(());
        for id in 0..10u32 {
            let log = log.clone();
            sim.schedule_at(Time::secs(5.0), move |_| log.borrow_mut().push(id));
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        // A ping-pong chain: each event schedules the next.
        let mut sim = Sim::new(0u32);
        fn chain(sim: &mut Sim<u32>) {
            sim.state += 1;
            if sim.state < 5 {
                sim.schedule_in(Span::secs(1.0), chain);
            }
        }
        sim.schedule_at(Time::ZERO, chain);
        sim.run();
        assert_eq!(sim.state, 5);
        assert_eq!(sim.now(), Time::secs(4.0));
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut sim = Sim::new(Vec::<f64>::new());
        for t in [1.0, 2.0, 3.0, 4.0] {
            sim.schedule_at(Time::secs(t), move |s: &mut Sim<Vec<f64>>| {
                let now = s.now().as_secs();
                s.state.push(now);
            });
        }
        sim.run_until(Time::secs(2.5));
        assert_eq!(sim.state, vec![1.0, 2.0]);
        assert_eq!(sim.now(), Time::secs(2.5));
        assert_eq!(sim.events_pending(), 2);
        sim.run();
        assert_eq!(sim.state, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Sim::new(());
        sim.schedule_at(Time::secs(1.0), |s| {
            s.schedule_at(Time::secs(0.5), |_| {});
        });
        sim.run();
    }

    #[test]
    fn peek_next_reports_earliest() {
        let mut sim = Sim::new(());
        assert_eq!(sim.peek_next(), None);
        sim.schedule_at(Time::secs(7.0), |_| {});
        sim.schedule_at(Time::secs(2.0), |_| {});
        assert_eq!(sim.peek_next(), Some(Time::secs(2.0)));
    }
}

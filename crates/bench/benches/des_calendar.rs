//! Microbenchmarks of the scaling layer's calendar structures
//! (DESIGN.md §10): the fixed-slot agenda that replaced the binary-heap
//! calendar on the streamsim hot path, head-to-head with the heap on
//! the same self-rescheduling event mix, plus the full streamsim inner
//! step on the BITW figure workload.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nc_des::{Sim, SlotAgenda, Span, Time};

const N: u64 = 50_000;

/// Arm/pop churn on a 4-slot agenda: each pop re-arms the next slot —
/// the steady-state pattern of a 3-node pipeline plus its source.
fn bench_slot_agenda(c: &mut Criterion) {
    c.bench_function("calendar/slot_agenda_arm_pop_50k", |b| {
        b.iter(|| {
            let mut a: SlotAgenda<Time> = SlotAgenda::new(4);
            a.arm(0, Time::ZERO);
            let mut popped = 0u64;
            while let Some((slot, at)) = a.pop() {
                popped += 1;
                if popped >= N {
                    break;
                }
                a.arm((slot + 1) % 4, at + Span::secs(1e-6));
            }
            black_box(popped)
        })
    });
}

/// The same churn through the binary-heap calendar, for the ablation.
fn bench_heap_calendar(c: &mut Criterion) {
    c.bench_function("calendar/heap_schedule_pop_50k", |b| {
        b.iter(|| {
            let mut sim = Sim::new(0u64);
            fn tick(sim: &mut Sim<u64>) {
                sim.state += 1;
                if sim.state < N {
                    sim.schedule_in(Span::secs(1e-6), tick);
                }
            }
            sim.schedule_at(Time::ZERO, tick);
            sim.run();
            black_box(sim.state)
        })
    });
}

/// The streamsim event loop end to end on the BITW figure workload —
/// the inner step this PR thinned (fused wakes, slot agenda, streaming
/// statistics, pruned input ring).
fn bench_streamsim_step(c: &mut Criterion) {
    let p = nc_apps::bitw::sim_pipeline();
    let mut cfg = nc_apps::bitw::sim_config(3);
    cfg.trace = false;
    let events = nc_streamsim::simulate(&p, &cfg).events;
    let mut arena = nc_streamsim::SimArena::new();
    c.bench_function(&format!("streamsim/bitw_inner_step_{events}_events"), |b| {
        b.iter(|| black_box(nc_streamsim::simulate_in(&mut arena, &p, &cfg)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_slot_agenda, bench_heap_calendar, bench_streamsim_step
}
criterion_main!(benches);

//! G/G/1 waiting-time approximation (Kingman's formula).
//!
//! The paper's critique of the M/M/1 baseline is its Markovian-service
//! assumption; the measured stages are closer to deterministic
//! arrivals with uniform service. Kingman's heavy-traffic formula
//!
//! ```text
//! Wq ≈ (ρ / (1 − ρ)) · ((c_a² + c_s²) / 2) · E[S]
//! ```
//!
//! handles arbitrary arrival/service variability through their squared
//! coefficients of variation, bridging the gap between the exact M/M/1
//! and M/G/1 results and the simulator's D/U/1-style stages.

use serde::Serialize;

use crate::mm1::QueueError;

/// Kingman approximation of a stable G/G/1 queue.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Gg1 {
    /// Arrival rate λ.
    pub lambda: f64,
    /// Mean service time E[S].
    pub mean_service: f64,
    /// Squared coefficient of variation of interarrival times.
    pub ca2: f64,
    /// Squared coefficient of variation of service times.
    pub cs2: f64,
    /// Utilization ρ.
    pub rho: f64,
    /// Approximate mean waiting time.
    pub wq: f64,
    /// Approximate mean time in system.
    pub w: f64,
    /// Approximate mean number in system (Little).
    pub l: f64,
    /// Approximate mean number waiting (Little).
    pub lq: f64,
}

impl Gg1 {
    /// Approximate a G/G/1 queue from rates and variability.
    pub fn new(lambda: f64, mean_service: f64, ca2: f64, cs2: f64) -> Result<Gg1, QueueError> {
        if !(lambda.is_finite()
            && mean_service.is_finite()
            && ca2.is_finite()
            && cs2.is_finite()
            && lambda > 0.0
            && mean_service > 0.0
            && ca2 >= 0.0
            && cs2 >= 0.0)
        {
            return Err(QueueError::BadParameters);
        }
        let rho = lambda * mean_service;
        if rho >= 1.0 {
            return Err(QueueError::Unstable);
        }
        let wq = rho / (1.0 - rho) * (ca2 + cs2) / 2.0 * mean_service;
        let w = wq + mean_service;
        Ok(Gg1 {
            lambda,
            mean_service,
            ca2,
            cs2,
            rho,
            wq,
            w,
            l: lambda * w,
            lq: lambda * wq,
        })
    }

    /// The paper's simulator regime: deterministic arrivals (chunks on
    /// a clock), uniform service on `[lo, hi]` — a D/U/1 queue.
    pub fn deterministic_uniform(lambda: f64, lo: f64, hi: f64) -> Result<Gg1, QueueError> {
        if !(lo.is_finite() && hi.is_finite() && lo >= 0.0 && lo <= hi) {
            return Err(QueueError::BadParameters);
        }
        let mean = 0.5 * (lo + hi);
        if mean <= 0.0 {
            return Err(QueueError::BadParameters);
        }
        let var = (hi - lo) * (hi - lo) / 12.0;
        Gg1::new(lambda, mean, 0.0, var / (mean * mean))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mm1::Mm1;

    #[test]
    fn reduces_to_mm1_at_unit_cvs() {
        // c_a² = c_s² = 1 recovers the exact M/M/1 waiting time.
        let g = Gg1::new(2.0, 0.2, 1.0, 1.0).unwrap();
        let m = Mm1::new(2.0, 5.0).unwrap();
        assert!((g.wq - m.wq).abs() < 1e-12);
        assert!((g.l - m.l).abs() < 1e-12);
    }

    #[test]
    fn deterministic_arrivals_halve_md1_class_waits() {
        // D/D/1 has no waiting at all.
        let g = Gg1::new(2.0, 0.2, 0.0, 0.0).unwrap();
        assert_eq!(g.wq, 0.0);
        assert!((g.w - 0.2).abs() < 1e-12);
    }

    #[test]
    fn du1_much_gentler_than_mm1() {
        // The simulator's D/U/1 stages queue far less than the M/M/1
        // baseline predicts — the quantitative core of the paper's
        // "queueing theory is optimistic about throughput but
        // pessimistic about Markovian burstiness" observation.
        let (lo, hi) = (0.15, 0.25);
        let du1 = Gg1::deterministic_uniform(4.0, lo, hi).unwrap();
        let mm1 = Mm1::new(4.0, 5.0).unwrap();
        assert!(du1.wq < 0.05 * mm1.wq, "du1 {} vs mm1 {}", du1.wq, mm1.wq);
    }

    #[test]
    fn waits_grow_with_variability_and_load() {
        let low = Gg1::new(2.0, 0.2, 0.2, 0.2).unwrap();
        let high = Gg1::new(2.0, 0.2, 2.0, 2.0).unwrap();
        assert!(high.wq > low.wq);
        let light = Gg1::new(1.0, 0.2, 1.0, 1.0).unwrap();
        let heavy = Gg1::new(4.5, 0.2, 1.0, 1.0).unwrap();
        assert!(heavy.wq > light.wq);
    }

    #[test]
    fn validation() {
        assert_eq!(
            Gg1::new(5.0, 0.2, 1.0, 1.0).unwrap_err(),
            QueueError::Unstable
        );
        assert_eq!(
            Gg1::new(1.0, 0.2, -0.1, 1.0).unwrap_err(),
            QueueError::BadParameters
        );
        assert_eq!(
            Gg1::deterministic_uniform(1.0, 0.3, 0.1).unwrap_err(),
            QueueError::BadParameters
        );
    }

    #[test]
    fn littles_law() {
        let g = Gg1::new(3.0, 0.25, 0.5, 1.5).unwrap();
        assert!((g.l - g.lambda * g.w).abs() < 1e-12);
        assert!((g.lq - g.lambda * g.wq).abs() < 1e-12);
    }
}

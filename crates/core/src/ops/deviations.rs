//! Vertical and horizontal deviations between curves.
//!
//! For an arrival curve `α` and service curve `β` these are the
//! fundamental performance bounds of §3 of the paper:
//!
//! * the **backlog bound** `x(t) ≤ sup_t {α(t) − β(t)}` (vertical
//!   deviation) — the maximum data resident in the system;
//! * the **virtual delay bound** `d(t) ≤ sup_t inf{d : α(t) ≤ β(t+d)}`
//!   (horizontal deviation) — the maximum time for the system to emit
//!   as much data as was sent.
//!
//! For the leaky-bucket/rate-latency pair these reduce to the paper's
//! closed forms `x ≤ b + R_α·T` and `d ≤ T + b/R_β` (tested below).

use crate::curve::pwl::Curve;
use crate::num::{Rat, Value};

/// Vertical deviation `sup_{t ≥ 0} { f(t) − g(t) }`.
///
/// Returns `+∞` when `f` outgrows `g` (in particular the overload case
/// `R_α > R_β`). Points where `g = +∞` impose no constraint.
pub fn vertical_deviation(f: &Curve, g: &Curve) -> Value {
    // Tail behaviour.
    match (f.ultimate_slope(), g.ultimate_slope()) {
        (Value::Finite(rf), Value::Finite(rg)) if rf > rg => return Value::Infinity,
        _ => {}
    }
    let t_star = f.last_breakpoint_x().max(g.last_breakpoint_x()) + Rat::ONE;

    let mut best = Value::NegInfinity;
    let mut probe = |fv: Value, gv: Value| {
        if gv.is_infinite() {
            return;
        }
        if fv.is_infinite() {
            best = Value::Infinity;
            return;
        }
        best = best.max(fv - gv);
    };
    let mut xs: Vec<Rat> = f
        .breakpoints()
        .iter()
        .chain(g.breakpoints())
        .map(|bp| bp.x)
        .collect();
    xs.push(t_star);
    xs.sort_unstable();
    xs.dedup();
    for &x in &xs {
        probe(f.eval(x), g.eval(x));
        probe(f.eval_right(x), g.eval_right(x));
        if x.is_positive() {
            probe(f.eval_left(x), g.eval_left(x));
        }
    }
    if best == Value::NegInfinity {
        // g infinite wherever probed: no constraint violated.
        Value::ZERO
    } else {
        best.pos()
    }
}

/// Horizontal deviation
/// `sup_{t ≥ 0} inf { d ≥ 0 : f(t) ≤ g(t + d) }`.
///
/// Computed through the lower pseudo-inverse `g⁻`: the delay at `t` is
/// `[g⁻(f(t)) − t]⁺`, and the supremum is attained at a breakpoint of
/// `f`, at a point where `f` crosses one of `g`'s breakpoint *levels*,
/// or in the common tail.
pub fn horizontal_deviation(f: &Curve, g: &Curve) -> Value {
    match (f.ultimate_slope(), g.ultimate_slope()) {
        (Value::Finite(rf), Value::Finite(rg)) if rf > rg => return Value::Infinity,
        (Value::Infinity, Value::Finite(_)) => return Value::Infinity,
        _ => {}
    }
    let t_star = f.last_breakpoint_x().max(g.last_breakpoint_x()) + Rat::ONE;

    // Candidate abscissas of f.
    let mut ts: Vec<Rat> = f.breakpoints().iter().map(|bp| bp.x).collect();
    // Points where f reaches (or leaves) one of g's breakpoint levels.
    for bg in g.breakpoints() {
        for level in [bg.v, bg.v_right] {
            if let Value::Finite(t) = f.lower_pseudo_inverse(level) {
                ts.push(t);
            }
            if let Value::Finite(t) = f.upper_pseudo_inverse(level) {
                ts.push(t);
            }
        }
    }
    ts.push(t_star);
    ts.sort_unstable();
    ts.dedup();

    // The delay profile D(t) = [g⁻(f(t)) − t]⁺ is affine between
    // candidates but may be discontinuous at them; the supremum is one
    // of: the value at a candidate, or a one-sided limit there. The
    // right limit goes through the *upper* pseudo-inverse because the
    // level approaches f(t⁺) from above.
    let mut best = Value::ZERO;
    for &t in &ts {
        best = best.max(delay_via(g.lower_pseudo_inverse(f.eval(t)), t));
        // Right limit: a finite level is approached from strictly above
        // (upper pseudo-inverse); an infinite level stays infinite and
        // is served once g itself diverges (lower pseudo-inverse).
        let vr = f.eval_right(t);
        let s = if vr.is_infinite() {
            g.lower_pseudo_inverse(vr)
        } else {
            g.upper_pseudo_inverse(vr)
        };
        best = best.max(delay_via(s, t));
        if t.is_positive() {
            best = best.max(delay_via(g.lower_pseudo_inverse(f.eval_left(t)), t));
        }
    }
    best
}

/// Delay `[s − t]⁺` for a pseudo-inverse result `s`.
fn delay_via(s: Value, t: Rat) -> Value {
    match s {
        Value::Infinity => Value::Infinity,
        Value::Finite(s) => Value::finite((s - t).max(Rat::ZERO)),
        Value::NegInfinity => Value::ZERO,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::shapes;
    use crate::num::rat;

    fn lb(r: i64, b: i64) -> Curve {
        shapes::leaky_bucket(Rat::int(r), Rat::int(b))
    }
    fn rl(r: i64, t: i64) -> Curve {
        shapes::rate_latency(Rat::int(r), Rat::int(t))
    }

    #[test]
    fn paper_closed_form_backlog() {
        // x ≤ b + R_α · T  for α = LB(R_α, b), β = RL(R_β, T), R_α ≤ R_β.
        let a = lb(2, 5);
        let b = rl(3, 4);
        assert_eq!(vertical_deviation(&a, &b), Value::from(5 + 2 * 4));
    }

    #[test]
    fn paper_closed_form_delay() {
        // d ≤ T + b / R_β.
        let a = lb(2, 5);
        let b = rl(3, 4);
        assert_eq!(
            horizontal_deviation(&a, &b),
            Value::finite(Rat::int(4) + rat(5, 3))
        );
    }

    #[test]
    fn equal_rates_still_finite() {
        let a = lb(3, 5);
        let b = rl(3, 4);
        assert_eq!(vertical_deviation(&a, &b), Value::from(5 + 3 * 4));
        assert_eq!(
            horizontal_deviation(&a, &b),
            Value::finite(Rat::int(4) + rat(5, 3))
        );
    }

    #[test]
    fn overload_diverges() {
        let a = lb(5, 1);
        let b = rl(3, 1);
        assert_eq!(vertical_deviation(&a, &b), Value::Infinity);
        assert_eq!(horizontal_deviation(&a, &b), Value::Infinity);
    }

    #[test]
    fn identical_curves_zero_deviation() {
        let a = lb(2, 5);
        assert_eq!(vertical_deviation(&a, &a), Value::ZERO);
        assert_eq!(horizontal_deviation(&a, &a), Value::ZERO);
    }

    #[test]
    fn service_above_arrival_zero() {
        let a = shapes::constant_rate(Rat::int(2));
        let b = shapes::constant_rate(Rat::int(5));
        assert_eq!(vertical_deviation(&a, &b), Value::ZERO);
        assert_eq!(horizontal_deviation(&a, &b), Value::ZERO);
    }

    #[test]
    fn delta_service_pure_delay() {
        // β = δ_T serves everything after delay T: hdev = T, vdev = α(T).
        let a = lb(2, 5);
        let d = shapes::delta(Rat::int(3));
        assert_eq!(horizontal_deviation(&a, &d), Value::from(3));
        // vdev: sup α(t) − δ(t) over t ≤ 3 (δ = 0 there, ∞ after) = α(3) = 11.
        assert_eq!(vertical_deviation(&a, &d), Value::from(11));
    }

    #[test]
    fn multi_segment_deviation() {
        // Dual token bucket vs rate-latency: the binding point is interior.
        let a = lb(6, 1).min(&lb(2, 9)); // crossing at t = 2
        let b = rl(3, 2);
        // vdev candidates: at t=2: α=13, β=0 → 13; later α grows at 2 < 3.
        assert_eq!(vertical_deviation(&a, &b), Value::from(13));
        // hdev at t=2⁻: α=13 → β reaches 13 at 2 + 13/3; minus t=2 → 13/3.
        assert_eq!(horizontal_deviation(&a, &b), Value::finite(rat(13, 3)));
    }

    #[test]
    fn deviation_vs_dense_sampling() {
        let a = lb(2, 3).min(&shapes::constant_rate(Rat::int(4)));
        let b = rl(3, 2).add(&rl(1, 1));
        let v = vertical_deviation(&a, &b);
        let h = horizontal_deviation(&a, &b);
        for num in 0..200 {
            let t = rat(num, 8);
            let av = a.eval(t);
            let bv = b.eval(t);
            if !bv.is_infinite() {
                assert!(v >= (av - bv).pos(), "vdev missed t={t:?}");
            }
            // hdev: the delay at this t never exceeds h.
            if let Value::Finite(hf) = h {
                assert!(a.eval(t) <= b.eval(t + hf), "hdev missed t={t:?}");
            }
        }
    }
}

//! Admission-engine throughput (ISSUE 6 tentpole): the steady-state
//! incremental decision path vs the cold-start full recomputation.
//!
//! * `decide_depart_pair` — one admit + one depart on a warm engine
//!   (the allocation-free scalar lane; the ≥10⁵ decisions/s target
//!   means ≤10 µs for the *pair*).
//! * `replay_1_tenant` — a full generated trace (arrivals, weighted
//!   class mix, departures) through one tenant, bookkeeping included.
//! * `oracle_full_recompute` — the same question answered from
//!   scratch through `Pipeline::build_model` and the general curve
//!   algebra: the ablation baseline the incremental engine is measured
//!   against.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nc_admit::oracle;
use nc_bench::admitload;

fn bench_admission(c: &mut Criterion) {
    let mut g = c.benchmark_group("admission");

    // Warm steady-state decision path: admit + depart, net-zero load.
    let cfg = admitload::request_config(42, 1, 200);
    let mut shard = admitload::build_shard(&cfg, &[0]);
    let tid = shard.tenants[0].1;
    let class = shard.classes[0];
    g.bench_function("decide_depart_pair", |b| {
        b.iter(|| {
            let d = shard.engine.decide(tid, class, 0).expect("in range");
            if let Some(p) = d.placement() {
                shard
                    .engine
                    .depart(tid, class, 0, p)
                    .expect("resident flow");
            }
            black_box(d)
        })
    });

    // Full request trace through one tenant (engine build excluded
    // from the loop would hide onboarding wins; it is cheap and
    // amortized over 400 requests).
    let trace_cfg = admitload::request_config(7, 1, 200);
    let trace = nc_workloads::requests::generate(&trace_cfg);
    g.bench_function("replay_1_tenant_400_requests", |b| {
        b.iter(|| black_box(admitload::replay_shard(&trace_cfg, &trace, &[0])))
    });

    // Cold-start ablation baseline: full model rebuild + general
    // curve algebra per decision, against a mid-load resident set.
    let classes = admitload::flow_classes(&cfg);
    let pipeline = admitload::tenant_pipeline(0);
    let budget = Some(admitload::tenant_budget(0));
    let resident = vec![(0usize, shard.classes[1]), (2usize, shard.classes[0])];
    g.bench_function("oracle_full_recompute", |b| {
        b.iter(|| {
            black_box(oracle::decide_full(
                &pipeline,
                budget,
                &classes,
                &resident,
                &classes[0],
                0,
            ))
            .ok()
        })
    });

    g.finish();
}

criterion_group!(benches, bench_admission);
criterion_main!(benches);

//! Service/arrival time distributions for simulation models.
//!
//! The paper's simulator draws execution times "from a uniform random
//! distribution using the minimum and maximum times as bounds"; the
//! queueing baseline assumes exponential (Markovian) stages. Both are
//! provided, plus deterministic and empirical distributions for
//! measured traces. All sampling is through a caller-supplied seeded
//! RNG so runs are reproducible.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A distribution over non-negative durations (seconds).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Dist {
    /// Always exactly `value`.
    Constant(f64),
    /// Uniform on `[lo, hi]` — the paper's simulation model.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (inclusive).
        hi: f64,
    },
    /// Exponential with the given mean — the M/M/1 baseline's stages.
    Exponential {
        /// Mean (= 1/λ).
        mean: f64,
    },
    /// Resample uniformly from measured values.
    Empirical(Vec<f64>),
}

impl Dist {
    /// Validate parameters.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            Dist::Constant(v) => {
                if !v.is_finite() || *v < 0.0 {
                    return Err(format!("Constant({v}) must be finite and >= 0"));
                }
            }
            Dist::Uniform { lo, hi } => {
                if !(lo.is_finite() && hi.is_finite() && *lo >= 0.0 && lo <= hi) {
                    return Err(format!("Uniform[{lo}, {hi}] must satisfy 0 <= lo <= hi"));
                }
            }
            Dist::Exponential { mean } => {
                if !(mean.is_finite() && *mean > 0.0) {
                    return Err(format!("Exponential mean {mean} must be > 0"));
                }
            }
            Dist::Empirical(vs) => {
                if vs.is_empty() {
                    return Err("Empirical distribution needs >= 1 sample".into());
                }
                if vs.iter().any(|v| !v.is_finite() || *v < 0.0) {
                    return Err("Empirical samples must be finite and >= 0".into());
                }
            }
        }
        Ok(())
    }

    /// Draw one sample.
    ///
    /// # Panics
    /// Panics (in debug builds) on invalid parameters; call
    /// [`Dist::validate`] first for a recoverable error.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        debug_assert!(self.validate().is_ok());
        match self {
            Dist::Constant(v) => *v,
            Dist::Uniform { lo, hi } => {
                if lo == hi {
                    *lo
                } else {
                    rng.gen_range(*lo..=*hi)
                }
            }
            Dist::Exponential { mean } => {
                // Inverse CDF; guard against ln(0).
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                -mean * u.ln()
            }
            Dist::Empirical(vs) => vs[rng.gen_range(0..vs.len())],
        }
    }

    /// Exact mean of the distribution.
    pub fn mean(&self) -> f64 {
        match self {
            Dist::Constant(v) => *v,
            Dist::Uniform { lo, hi } => 0.5 * (lo + hi),
            Dist::Exponential { mean } => *mean,
            Dist::Empirical(vs) => vs.iter().sum::<f64>() / vs.len() as f64,
        }
    }

    /// Smallest possible sample.
    pub fn min(&self) -> f64 {
        match self {
            Dist::Constant(v) => *v,
            Dist::Uniform { lo, .. } => *lo,
            Dist::Exponential { .. } => 0.0,
            Dist::Empirical(vs) => vs.iter().copied().fold(f64::INFINITY, f64::min),
        }
    }

    /// Largest possible sample (`+∞` for unbounded support).
    pub fn max(&self) -> f64 {
        match self {
            Dist::Constant(v) => *v,
            Dist::Uniform { hi, .. } => *hi,
            Dist::Exponential { .. } => f64::INFINITY,
            Dist::Empirical(vs) => vs.iter().copied().fold(0.0, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn validation() {
        assert!(Dist::Constant(1.0).validate().is_ok());
        assert!(Dist::Constant(-1.0).validate().is_err());
        assert!(Dist::Uniform { lo: 1.0, hi: 2.0 }.validate().is_ok());
        assert!(Dist::Uniform { lo: 3.0, hi: 2.0 }.validate().is_err());
        assert!(Dist::Exponential { mean: 0.0 }.validate().is_err());
        assert!(Dist::Empirical(vec![]).validate().is_err());
        assert!(Dist::Empirical(vec![1.0, 2.0]).validate().is_ok());
    }

    #[test]
    fn uniform_within_bounds_and_mean() {
        let d = Dist::Uniform { lo: 2.0, hi: 6.0 };
        let mut r = rng();
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = d.sample(&mut r);
            assert!((2.0..=6.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 4.0).abs() < 0.05, "uniform mean {mean}");
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Dist::Exponential { mean: 3.0 };
        let mut r = rng();
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "exponential mean {mean}");
    }

    #[test]
    fn constant_and_empirical() {
        let mut r = rng();
        assert_eq!(Dist::Constant(5.0).sample(&mut r), 5.0);
        let e = Dist::Empirical(vec![1.0, 2.0, 4.0]);
        for _ in 0..100 {
            let x = e.sample(&mut r);
            assert!(x == 1.0 || x == 2.0 || x == 4.0);
        }
        assert!((e.mean() - 7.0 / 3.0).abs() < 1e-12);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 4.0);
    }

    #[test]
    fn reproducible_with_seed() {
        let d = Dist::Uniform { lo: 0.0, hi: 1.0 };
        let a: Vec<f64> = {
            let mut r = rng();
            (0..10).map(|_| d.sample(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = rng();
            (0..10).map(|_| d.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}

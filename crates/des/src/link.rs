//! SPSC message links with watermark promises, for conservatively
//! synchronized parallel simulation (PDES).
//!
//! A [`link`] connects exactly one producer logical process (LP) to one
//! consumer LP. Besides timestamped messages, the producer publishes a
//! monotone **watermark**: a promise that every message it will ever
//! send in the future carries a timestamp `>=` the watermark. This is
//! the lower-bound-timestamp half of a classic null-message protocol
//! (Chandy–Misra–Bryant): the consumer may safely simulate up to the
//! minimum of its input watermarks, because no earlier event can still
//! arrive. How far a producer can push its watermark *past* its last
//! sent message is its **lookahead** — in `nc-streamsim` that window is
//! derived from the network-calculus service model (see
//! `Pipeline::stage_lookaheads` in `nc-core`).
//!
//! Design points:
//!
//! * **Batched handoff.** The producer accumulates messages in a local
//!   buffer and publishes them (plus the current watermark) under one
//!   mutex acquisition per [`LinkTx::flush`], so per-message cost stays
//!   lock-free. Producers must flush before blocking — an unpublished
//!   watermark can deadlock the consumer.
//! * **Soft capacity.** `capacity` bounds *wall-clock memory*, not
//!   simulation semantics: [`LinkTx::backlogged`] reports when the
//!   consumer has fallen behind, and the driving loop parks the
//!   producer until the consumer drains. A full link never drops or
//!   blocks inside `send`, so producers can always publish watermarks.
//! * **Progress gate.** All parties share one [`ProgressGate`] — a
//!   generation counter + condvar. Any publication (flush, close,
//!   consumer drain) bumps the generation; a blocked LP re-polls its
//!   inputs and waits for the generation to move past the value it saw
//!   before polling, which closes the classic poll/sleep race.
//!
//! Determinism: message *content and order* on a link are produced by a
//! single LP, and consumers take scheduling decisions only of the form
//! "may I process up to time `t` yet" — monotone questions whose answer
//! timing cannot change what is computed. Results are therefore
//! independent of thread count and interleaving by construction.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Messages buffered by the producer before one mutex-protected
/// publication.
const BATCH: usize = 256;

/// A shared generation counter + condvar: the "something changed
/// somewhere" signal for a set of LPs connected by links.
#[derive(Debug, Default)]
pub struct ProgressGate {
    generation: Mutex<u64>,
    cond: Condvar,
}

impl ProgressGate {
    /// A fresh gate at generation 0.
    pub fn new() -> Arc<ProgressGate> {
        Arc::new(ProgressGate::default())
    }

    /// The current generation. Read this *before* polling inputs; pass
    /// it to [`ProgressGate::wait_past`] if the poll found nothing.
    pub fn generation(&self) -> u64 {
        *self.generation.lock().expect("gate poisoned")
    }

    /// Announce progress: bump the generation and wake every waiter.
    pub fn bump(&self) {
        let mut g = self.generation.lock().expect("gate poisoned");
        *g = g.wrapping_add(1);
        self.cond.notify_all();
    }

    /// Block until the generation differs from `seen`. Returns
    /// immediately if progress already happened since `seen` was read —
    /// publications between the caller's poll and this wait are never
    /// missed.
    pub fn wait_past(&self, seen: u64) {
        let mut g = self.generation.lock().expect("gate poisoned");
        while *g == seen {
            g = self.cond.wait(g).expect("gate poisoned");
        }
    }
}

#[derive(Debug)]
struct Shared<T> {
    queue: VecDeque<T>,
    /// Promise: every future message has timestamp `>= watermark`.
    watermark: f64,
    closed: bool,
}

/// Producer half of a link.
#[derive(Debug)]
pub struct LinkTx<T> {
    shared: Arc<Mutex<Shared<T>>>,
    gate: Arc<ProgressGate>,
    buf: Vec<T>,
    watermark: f64,
    published_watermark: f64,
    capacity: usize,
    closed: bool,
}

/// Consumer half of a link.
#[derive(Debug)]
pub struct LinkRx<T> {
    shared: Arc<Mutex<Shared<T>>>,
    gate: Arc<ProgressGate>,
    /// Drained messages, consumed without locking.
    local: VecDeque<T>,
    watermark: f64,
    closed: bool,
}

/// Create a producer/consumer pair sharing `gate`. `capacity` is the
/// soft in-flight message bound reported by [`LinkTx::backlogged`].
pub fn link<T>(capacity: usize, gate: &Arc<ProgressGate>) -> (LinkTx<T>, LinkRx<T>) {
    assert!(capacity > 0, "link capacity must be positive");
    let shared = Arc::new(Mutex::new(Shared {
        queue: VecDeque::new(),
        watermark: 0.0,
        closed: false,
    }));
    (
        LinkTx {
            shared: Arc::clone(&shared),
            gate: Arc::clone(gate),
            buf: Vec::with_capacity(BATCH),
            watermark: 0.0,
            published_watermark: 0.0,
            capacity,
            closed: false,
        },
        LinkRx {
            shared,
            gate: Arc::clone(gate),
            local: VecDeque::new(),
            watermark: 0.0,
            closed: false,
        },
    )
}

impl<T> LinkTx<T> {
    /// Enqueue one message (auto-publishing a full batch). Never blocks.
    pub fn send(&mut self, msg: T) {
        debug_assert!(!self.closed, "send on a closed link");
        self.buf.push(msg);
        if self.buf.len() >= BATCH {
            self.flush();
        }
    }

    /// Raise the watermark promise to `w` (monotone: lower values are
    /// ignored — an older sound bound stays sound). Published on the
    /// next [`LinkTx::flush`].
    pub fn set_watermark(&mut self, w: f64) {
        if w > self.watermark {
            self.watermark = w;
        }
    }

    /// The current (possibly unpublished) watermark.
    pub fn watermark(&self) -> f64 {
        self.watermark
    }

    /// Publish buffered messages and the current watermark, announcing
    /// progress if anything new became visible.
    pub fn flush(&mut self) {
        if self.buf.is_empty() && self.watermark == self.published_watermark {
            return;
        }
        {
            let mut s = self.shared.lock().expect("link poisoned");
            s.queue.extend(self.buf.drain(..));
            s.watermark = self.watermark;
        }
        self.published_watermark = self.watermark;
        self.gate.bump();
    }

    /// `true` when in-flight messages exceed the soft capacity; the
    /// producer should flush and park until the consumer drains.
    pub fn backlogged(&self) -> bool {
        if self.buf.len() >= self.capacity {
            return true;
        }
        let s = self.shared.lock().expect("link poisoned");
        s.queue.len() + self.buf.len() >= self.capacity
    }

    /// Flush everything, promise no further messages (watermark `+∞`)
    /// and mark the link closed. Idempotent.
    pub fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        self.watermark = f64::INFINITY;
        {
            let mut s = self.shared.lock().expect("link poisoned");
            s.queue.extend(self.buf.drain(..));
            s.watermark = f64::INFINITY;
            s.closed = true;
        }
        self.published_watermark = f64::INFINITY;
        self.gate.bump();
    }
}

impl<T> LinkRx<T> {
    /// Drain newly published messages into the local buffer and refresh
    /// the cached watermark/closed state. Returns `true` if any message
    /// was taken (which also wakes a producer parked on backlog).
    pub fn poll(&mut self) -> bool {
        let took = {
            let mut s = self.shared.lock().expect("link poisoned");
            let took = !s.queue.is_empty();
            if took {
                self.local.extend(s.queue.drain(..));
            }
            self.watermark = s.watermark;
            self.closed = s.closed;
            took
        };
        if took {
            // A backlogged producer may be parked on the gate.
            self.gate.bump();
        }
        took
    }

    /// The next undelivered message, if any (after the last `poll`).
    pub fn front(&self) -> Option<&T> {
        self.local.front()
    }

    /// Remove and return the next message.
    pub fn pop(&mut self) -> Option<T> {
        self.local.pop_front()
    }

    /// Iterate the locally buffered (not yet consumed) messages.
    pub fn buffered(&self) -> impl Iterator<Item = &T> {
        self.local.iter()
    }

    /// The frontier below which no *new* message can appear: the cached
    /// producer watermark (`+∞` once closed). Messages already in the
    /// local buffer may of course carry earlier timestamps.
    pub fn watermark(&self) -> f64 {
        self.watermark
    }

    /// `true` once the producer closed the link and every message has
    /// been drained out of the shared queue (local buffer may still
    /// hold messages).
    pub fn closed(&self) -> bool {
        self.closed
    }

    /// `true` when no message is buffered and none can ever arrive.
    pub fn exhausted(&self) -> bool {
        self.closed && self.local.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_arrive_in_order_after_flush() {
        let gate = ProgressGate::new();
        let (mut tx, mut rx) = link::<u32>(1024, &gate);
        tx.send(1);
        tx.send(2);
        assert!(!rx.poll(), "nothing visible before flush");
        tx.flush();
        assert!(rx.poll());
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn watermark_is_monotone_and_published_on_flush() {
        let gate = ProgressGate::new();
        let (mut tx, mut rx) = link::<u32>(1024, &gate);
        tx.set_watermark(5.0);
        tx.set_watermark(3.0); // lower: ignored
        assert_eq!(tx.watermark(), 5.0);
        rx.poll();
        assert_eq!(rx.watermark(), 0.0, "unpublished until flush");
        tx.flush();
        rx.poll();
        assert_eq!(rx.watermark(), 5.0);
    }

    #[test]
    fn close_is_an_infinite_watermark() {
        let gate = ProgressGate::new();
        let (mut tx, mut rx) = link::<u32>(1024, &gate);
        tx.send(7);
        tx.close();
        rx.poll();
        assert!(rx.closed());
        assert_eq!(rx.watermark(), f64::INFINITY);
        assert!(!rx.exhausted(), "one message still buffered");
        assert_eq!(rx.pop(), Some(7));
        assert!(rx.exhausted());
        tx.close(); // idempotent
    }

    #[test]
    fn backlog_reflects_unconsumed_depth() {
        let gate = ProgressGate::new();
        let (mut tx, mut rx) = link::<u32>(4, &gate);
        for i in 0..4 {
            tx.send(i);
        }
        tx.flush();
        assert!(tx.backlogged());
        rx.poll(); // consumer drains the shared queue
        assert!(!tx.backlogged());
    }

    #[test]
    fn gate_wait_past_never_misses_a_bump() {
        let gate = ProgressGate::new();
        let seen = gate.generation();
        gate.bump();
        // Progress happened after `seen` was read: wait returns at once.
        gate.wait_past(seen);
        assert_ne!(gate.generation(), seen);
    }

    #[test]
    fn threaded_producer_consumer_round_trip() {
        let gate = ProgressGate::new();
        let (mut tx, mut rx) = link::<u64>(1 << 12, &gate);
        const N: u64 = 10_000;
        let g2 = Arc::clone(&gate);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                tx.send(i);
            }
            tx.close();
            drop(g2);
        });
        let mut got = Vec::new();
        loop {
            let seen = gate.generation();
            rx.poll();
            while let Some(x) = rx.pop() {
                got.push(x);
            }
            if rx.exhausted() {
                break;
            }
            gate.wait_past(seen);
        }
        producer.join().expect("producer");
        assert_eq!(got.len() as u64, N);
        assert!(got.iter().copied().eq(0..N));
    }
}

//! Every number the paper reports, as constants — the reproduction
//! harness prints these next to our measured/computed values, and
//! EXPERIMENTS.md records the comparison.

/// Table 1 — BLAST streaming data application throughput (MiB/s).
pub mod table1 {
    /// Network calculus upper bound.
    pub const NC_UPPER: f64 = 704.0;
    /// Network calculus lower bound.
    pub const NC_LOWER: f64 = 350.0;
    /// Discrete-event simulation model.
    pub const DES: f64 = 353.0;
    /// Queueing theory prediction [12].
    pub const QUEUEING: f64 = 500.0;
    /// Measured throughput [12].
    pub const MEASURED: f64 = 355.0;
}

/// §4.2 — BLAST delay/backlog findings.
pub mod blast_bounds {
    /// Modeled maximum virtual delay, seconds (46.9 ms).
    pub const DELAY_BOUND: f64 = 46.9e-3;
    /// Modeled backlog bound, bytes (20.6 MiB).
    pub const BACKLOG_BOUND: f64 = 20.6 * 1048576.0;
    /// Longest delay observed in the paper's simulator (46.4 ms).
    pub const SIM_DELAY_MAX: f64 = 46.4e-3;
    /// Shortest delay observed in the paper's simulator (40.7 ms).
    pub const SIM_DELAY_MIN: f64 = 40.7e-3;
    /// Peak backlog observed in the paper's simulator. The text prints
    /// "20.1 KiB" against a 20.6 MiB bound; we read it as a MiB typo
    /// (Little's law: 46 ms × 353 MiB/s ≈ 16 MiB resident).
    pub const SIM_BACKLOG: f64 = 20.1 * 1048576.0;
}

/// Table 2 — bump-in-the-wire stage throughputs (MiB/s, local rates)
/// and observed LZ4 compression ratios.
pub mod table2 {
    /// (average, minimum, maximum) observed compression ratios.
    pub const RATIOS: (f64, f64, f64) = (2.2, 1.0, 5.3);
    /// Compress kernel (avg, min, max).
    pub const COMPRESS: (f64, f64, f64) = (2662.0, 1181.0, 6386.0);
    /// Encrypt kernel.
    pub const ENCRYPT: (f64, f64, f64) = (68.0, 56.0, 75.0);
    /// Network kernel (10 GiB/s flat).
    pub const NETWORK: (f64, f64, f64) = (10240.0, 10240.0, 10240.0);
    /// Decrypt kernel.
    pub const DECRYPT: (f64, f64, f64) = (90.0, 77.0, 113.0);
    /// Decompress kernel.
    pub const DECOMPRESS: (f64, f64, f64) = (1495.0, 1426.0, 1543.0);
    /// PCIe link (11 GiB/s flat).
    pub const PCIE: (f64, f64, f64) = (11264.0, 11264.0, 11264.0);
}

/// Table 3 — bump-in-the-wire application throughput (MiB/s).
pub mod table3 {
    /// Network calculus upper bound.
    pub const NC_UPPER: f64 = 313.0;
    /// Network calculus lower bound.
    pub const NC_LOWER: f64 = 59.0;
    /// Discrete-event simulation model [34].
    pub const DES: f64 = 61.0;
    /// Queueing theory prediction.
    pub const QUEUEING: f64 = 151.0;
}

/// §5 — bump-in-the-wire delay/backlog findings.
pub mod bitw_bounds {
    /// Modeled maximum virtual delay, seconds (38 µs).
    pub const DELAY_BOUND: f64 = 38.0e-6;
    /// Modeled backlog bound, bytes (3 KiB).
    pub const BACKLOG_BOUND: f64 = 3.0 * 1024.0;
    /// Longest simulated delay (36.7 µs).
    pub const SIM_DELAY_MAX: f64 = 36.7e-6;
    /// Shortest simulated delay (25.7 µs).
    pub const SIM_DELAY_MIN: f64 = 25.7e-6;
    /// Peak simulated backlog (2 KiB).
    pub const SIM_BACKLOG: f64 = 2.0 * 1024.0;
}

//! Vendored micro-benchmark harness.
//!
//! The build environment has no registry access, so upstream
//! `criterion` cannot be fetched. This crate reimplements the
//! call-site API the benches use — `criterion_group!`/`criterion_main!`
//! with `name`/`config`/`targets`, benchmark groups, `BenchmarkId`,
//! `Throughput`, and `Bencher::iter` — timing with a
//! calibrate-then-sample scheme and printing `min/median/max`
//! per-iteration times. Passing `--test` (the `cargo test` /
//! criterion smoke convention) runs every benchmark body exactly once
//! without timing.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level harness handle; one per `criterion_group!` config.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let test_mode = std::env::args().any(|a| a == "--test" || a == "--list");
        Criterion {
            sample_size: 100,
            test_mode,
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            _criterion: self,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) {
        run_benchmark(id, self.sample_size, self.test_mode, f);
    }
}

/// Identifier `function_name/parameter` for parameterized benchmarks.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Work processed per iteration, for derived-rate reporting.
pub enum Throughput {
    /// Bytes handled per iteration.
    Bytes(u64),
    /// Abstract elements handled per iteration.
    Elements(u64),
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Record the per-iteration workload (accepted; reporting of
    /// derived rates is omitted in the vendored harness).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Benchmark a closure under `<group>/<id>`.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_benchmark(&full, self.sample_size, self.test_mode, f);
    }

    /// Benchmark a closure that receives `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, self.sample_size, self.test_mode, |b| f(b, input));
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Accepted `bench_function` identifiers (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Convert into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Timing driver handed to each benchmark body.
pub struct Bencher {
    sample_size: usize,
    test_mode: bool,
    /// (min, median, max) per-iteration time of the last `iter` call.
    result: Option<(Duration, Duration, Duration)>,
}

impl Bencher {
    /// Time `f`, calibrating the batch size so each sample runs long
    /// enough for the clock to resolve it.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        if self.test_mode {
            black_box(f());
            return;
        }

        // Calibrate: grow the batch until one batch takes >= 2 ms.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || batch >= 1 << 24 {
                break;
            }
            batch *= 2;
        }

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(start.elapsed() / batch as u32);
        }
        samples.sort();
        self.result = Some((
            samples[0],
            samples[samples.len() / 2],
            samples[samples.len() - 1],
        ));
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn run_benchmark(id: &str, sample_size: usize, test_mode: bool, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        sample_size,
        test_mode,
        result: None,
    };
    f(&mut bencher);
    if test_mode {
        println!("{id}: ok (smoke)");
    } else if let Some((min, median, max)) = bencher.result {
        println!(
            "{id:<50} time: [{} {} {}]",
            format_duration(min),
            format_duration(median),
            format_duration(max),
        );
    }
}

/// Define a benchmark group function from a config and target list.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

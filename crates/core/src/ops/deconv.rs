//! Min-plus deconvolution `⊘`.
//!
//! `(f ⊘ g)(t) = sup_{u ≥ 0} { f(t + u) − g(u) }` computes output
//! arrival bounds: the flow leaving a server with service curve `β` and
//! input constrained by `α` is constrained by `α ⊘ β` (§3 of the paper;
//! we implement the paper's output-flow bound `α* = (α ⊗ γ) ⊘ β`, see
//! [`crate::bounds`]).
//!
//! # Conventions
//!
//! * Candidates `u` where `g(u) = +∞` contribute nothing to the
//!   supremum (an infinite service imposes no constraint).
//! * If both operands' ultimate growth rates are finite and
//!   `rate(f) > rate(g)`, the supremum is `+∞` for every `t` — this is
//!   the paper's overload case `R_α > R_β` where bounds diverge.
//!
//! # Algorithm
//!
//! Mirrors [convolution](super::conv): result breakpoints lie among the
//! pairwise differences `{x_i − y_j} ∩ [0, ∞)`, and between candidates
//! the deconvolution is the *upper envelope* of finitely many affine
//! strategies (supremum pinned at a breakpoint of `g`, at `u = x_i − t`
//! for a breakpoint of `f`, or at the tail `u → ∞`).

use crate::curve::pwl::{Breakpoint, Curve};
use crate::num::{Rat, Value};

use super::conv::push_line;
use super::envelope::{upper_envelope, Line};

/// Exact min-plus deconvolution of two wide-sense increasing curves.
pub fn min_plus_deconv(f: &Curve, g: &Curve) -> Curve {
    debug_assert!(f.is_wide_sense_increasing());
    debug_assert!(g.is_wide_sense_increasing());

    // Overload: with both tails finite and f growing strictly faster
    // than g, the supremum diverges for every t.
    if let (Value::Finite(rf), Value::Finite(rg)) = (f.ultimate_slope(), g.ultimate_slope()) {
        if rf > rg {
            return infinite_curve();
        }
    }

    // Tail pin: beyond this u both operands are in their final piece,
    // so h(u) = f(t+u) − g(u) is affine in u with non-positive slope.
    let u_tail = f.last_breakpoint_x().max(g.last_breakpoint_x()) + Rat::ONE;

    // Candidate abscissas.
    let mut ts: Vec<Rat> = vec![Rat::ZERO];
    for bf in f.breakpoints() {
        for bg in g.breakpoints() {
            let d = bf.x - bg.x;
            if d.is_positive() {
                ts.push(d);
            }
        }
    }
    ts.sort_unstable();
    ts.dedup();

    let mut bps: Vec<Breakpoint> = Vec::with_capacity(ts.len());
    for (k, &a) in ts.iter().enumerate() {
        let v = deconv_at(f, g, a);
        let b = ts.get(k + 1).copied();
        match strategy_lines_deconv(f, g, a, b, u_tail) {
            None => {
                bps.push(Breakpoint {
                    x: a,
                    v,
                    v_right: Value::Infinity,
                    slope: Rat::ZERO,
                });
            }
            Some(lines) => {
                let env = upper_envelope(&lines, b.map(|b| b - a));
                bps.push(Breakpoint {
                    x: a,
                    v,
                    v_right: Value::finite(env[0].value),
                    slope: env[0].slope,
                });
                for piece in &env[1..] {
                    bps.push(Breakpoint::cont(
                        a + piece.start,
                        Value::finite(piece.value),
                        piece.slope,
                    ));
                }
            }
        }
    }
    Curve::from_breakpoints_unchecked(bps)
}

/// Exact value of `(f ⊘ g)(t)`.
pub fn deconv_at(f: &Curve, g: &Curve, t: Rat) -> Value {
    debug_assert!(!t.is_negative());
    // Diverging tails.
    if let (Value::Finite(rf), Value::Finite(rg)) = (f.ultimate_slope(), g.ultimate_slope()) {
        if rf > rg {
            return Value::Infinity;
        }
    }
    let u_tail = f.last_breakpoint_x().max(g.last_breakpoint_x()) + Rat::ONE;

    let mut grid: Vec<Rat> = vec![Rat::ZERO, u_tail];
    for bg in g.breakpoints() {
        grid.push(bg.x);
    }
    for bf in f.breakpoints() {
        let u = bf.x - t;
        if !u.is_negative() {
            grid.push(u);
        }
    }
    grid.sort_unstable();
    grid.dedup();

    let mut best = Value::NegInfinity;
    for &u in &grid {
        let s = t + u;
        // Exact point (skip where g is infinite: no constraint there).
        if !g.eval(u).is_infinite() {
            best = best.max(f.eval(s) - g.eval(u));
        }
        // Limit u ↓: f((t+u)⁺) − g(u⁺).
        if !g.eval_right(u).is_infinite() {
            best = best.max(f.eval_right(s) - g.eval_right(u));
        }
        // Limit u ↑ (u > 0): f((t+u)⁻) − g(u⁻).
        if u.is_positive() && !g.eval_left(u).is_infinite() {
            best = best.max(f.eval_left(s) - g.eval_left(u));
        }
    }
    // A supremum over a non-empty candidate family is at least f(t)−g(0)
    // unless g(0)=inf; degenerate case: g ≡ inf ⇒ no constraint at all.
    if best == Value::NegInfinity {
        Value::Infinity
    } else {
        best
    }
}

/// Build the affine strategies governing `(f ⊘ g)` on the open interval
/// `(a, b)`. Returns `None` when the supremum is `+∞` there.
fn strategy_lines_deconv(
    f: &Curve,
    g: &Curve,
    a: Rat,
    b: Option<Rat>,
    u_tail: Rat,
) -> Option<Vec<Line>> {
    let (m1, m2) = match b {
        Some(b) => {
            let d = (b - a) / Rat::int(3);
            (a + d, a + d + d)
        }
        None => (a + Rat::ONE, a + Rat::int(2)),
    };
    let mut lines = Vec::new();
    let mut infinite = false;

    // Strategies pinned at a breakpoint of g: u ≈ y_j, value
    // f(t + y_j) − L with L the smallest one-sided value of g at y_j.
    for bg in g.breakpoints() {
        let mut l = bg.v.min(bg.v_right);
        if bg.x.is_positive() {
            l = l.min(g.eval_left(bg.x));
        }
        if l.is_infinite() {
            continue;
        }
        let lf = l.unwrap_finite();
        // If f is infinite at the interior samples, the sup diverges.
        if f.eval(m1 + bg.x).is_infinite() {
            infinite = true;
            break;
        }
        push_line(&mut lines, m1, m2, a, |m| {
            f.eval(m + bg.x) - Value::finite(lf)
        });
    }
    // Strategies pinned at a breakpoint of f: u = x_i − t, value
    // K − g(x_i − t) with K the largest one-sided value of f at x_i.
    if !infinite {
        for bf in f.breakpoints() {
            // Need x_i − t ≥ 0 on the whole interval, i.e. x_i ≥ b; for the
            // unbounded tail no f-breakpoint qualifies.
            let qualifies = match b {
                Some(b) => bf.x >= b,
                None => false,
            };
            if !qualifies {
                continue;
            }
            let mut k = bf.v.max(bf.v_right);
            if bf.x.is_positive() {
                k = k.max(f.eval_left(bf.x));
            }
            if k.is_infinite() {
                // f jumps to +inf at x_i while g is finite just below it:
                // check g at the matching u.
                if !g.eval(bf.x - m1).is_infinite() {
                    infinite = true;
                    break;
                }
                continue;
            }
            let kf = k.unwrap_finite();
            if g.eval(bf.x - m1).is_infinite() {
                continue;
            }
            push_line(&mut lines, m1, m2, a, |m| {
                Value::finite(kf) - g.eval(bf.x - m)
            });
        }
    }
    // Tail strategy: u = u_tail (both operands in their final piece; the
    // supremum over larger u is dominated because the tail slope of h is
    // rate(f) − rate(g) ≤ 0 after the upfront overload check).
    if !infinite && !g.eval(u_tail).is_infinite() {
        if f.eval(m1 + u_tail).is_infinite() {
            infinite = true;
        } else {
            let gu = g.eval(u_tail);
            push_line(&mut lines, m1, m2, a, |m| f.eval(m + u_tail) - gu);
        }
    }

    if infinite {
        None
    } else if lines.is_empty() {
        // g infinite everywhere it matters: unconstrained output.
        None
    } else {
        Some(lines)
    }
}

/// The curve that is `+∞` everywhere (diverged bound).
pub fn infinite_curve() -> Curve {
    Curve::from_breakpoints_unchecked(vec![Breakpoint {
        x: Rat::ZERO,
        v: Value::Infinity,
        v_right: Value::Infinity,
        slope: Rat::ZERO,
    }])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::shapes;
    use crate::num::rat;
    use crate::ops::conv::min_plus_conv;

    fn lb(r: i64, b: i64) -> Curve {
        shapes::leaky_bucket(Rat::int(r), Rat::int(b))
    }
    fn rl(r: i64, t: i64) -> Curve {
        shapes::rate_latency(Rat::int(r), Rat::int(t))
    }

    fn check_against_sampling(f: &Curve, g: &Curve, c: &Curve, t_max: i128, denom: i128) {
        let u_hi = 40;
        for num in 0..(t_max * denom) {
            let t = rat(num, denom);
            let exact = deconv_at(f, g, t);
            assert_eq!(c.eval(t), exact, "curve disagrees with deconv_at at {t:?}");
            // The sup dominates every sampled candidate.
            for k in 0..=(u_hi * 4) {
                let u = rat(k, 4);
                if g.eval(u).is_infinite() {
                    continue;
                }
                let cand = f.eval(t + u) - g.eval(u);
                assert!(exact >= cand, "sup below sample at t={t:?}, u={u:?}");
            }
        }
    }

    #[test]
    fn lb_deconv_rl_closed_form() {
        // Classic output bound: LB(r,b) ⊘ RL(R,T) = LB(r, b + rT) for
        // r ≤ R and t > 0. At t = 0 the exact deconvolution equals the
        // vertical deviation sup_u {α(u) − β(u)} = b + rT (the textbook
        // closed form quietly redefines the value at 0).
        let a = lb(2, 5);
        let b = rl(3, 4);
        let out = min_plus_deconv(&a, &b);
        assert_eq!(out.eval(Rat::ZERO), Value::from(13));
        let expect = lb(2, 5 + 2 * 4);
        for num in 1..40 {
            let t = rat(num, 3);
            assert_eq!(out.eval(t), expect.eval(t), "t = {t:?}");
        }
        check_against_sampling(&a, &b, &out, 8, 2);
    }

    #[test]
    fn deconv_overload_diverges() {
        // Arrival rate exceeds service rate: R_α > R_β ⇒ infinite bound
        // (the paper's §3 overload discussion).
        let a = lb(5, 1);
        let b = rl(3, 1);
        let out = min_plus_deconv(&a, &b);
        assert_eq!(out.eval(Rat::ZERO), Value::Infinity);
        assert_eq!(out.eval(Rat::int(10)), Value::Infinity);
    }

    #[test]
    fn deconv_equal_rates_finite() {
        // R_α = R_β: finite bound with the full latency burst.
        let a = lb(3, 2);
        let b = rl(3, 4);
        let out = min_plus_deconv(&a, &b);
        assert_eq!(out.eval(Rat::ZERO), Value::from(14));
        let expect = lb(3, 2 + 3 * 4);
        for num in 1..30 {
            let t = rat(num, 2);
            assert_eq!(out.eval(t), expect.eval(t), "t = {t:?}");
        }
        check_against_sampling(&a, &b, &out, 8, 2);
    }

    #[test]
    fn deconv_by_delta_shifts_left() {
        // f ⊘ δ_T = f(t + T).
        let f = rl(2, 3);
        let out = min_plus_deconv(&f, &shapes::delta(Rat::int(1)));
        assert_eq!(out, rl(2, 2));
    }

    #[test]
    fn delta_deconv_delta() {
        // δ_2 ⊘ δ_1 = δ_1.
        let out = min_plus_deconv(&shapes::delta(Rat::int(2)), &shapes::delta(Rat::ONE));
        assert_eq!(out, shapes::delta(Rat::ONE));
    }

    #[test]
    fn deconv_self_is_subadditive_envelope() {
        // f ⊘ f for LB is LB itself (already subadditive).
        let a = lb(2, 5);
        let out = min_plus_deconv(&a, &a);
        assert_eq!(out, a);
    }

    #[test]
    fn deconv_concave_piecewise() {
        let a = lb(4, 1).min(&lb(2, 9)); // dual token bucket
        let b = rl(5, 2);
        let out = min_plus_deconv(&a, &b);
        assert!(out.is_wide_sense_increasing());
        check_against_sampling(&a, &b, &out, 10, 2);
    }

    #[test]
    fn deconv_staircase_arrival() {
        let s = shapes::truncated_staircase(Rat::int(2), Rat::ONE, 3);
        let b = rl(4, 1);
        let out = min_plus_deconv(&s, &b);
        assert!(out.is_wide_sense_increasing());
        check_against_sampling(&s, &b, &out, 8, 2);
    }

    #[test]
    fn output_bound_composition_property() {
        // (α ⊘ β1) ⊘ β2 == α ⊘ (β1 ⊗ β2) for rate-latency servers.
        let a = lb(2, 5);
        let b1 = rl(4, 1);
        let b2 = rl(3, 2);
        let lhs = min_plus_deconv(&min_plus_deconv(&a, &b1), &b2);
        let rhs = min_plus_deconv(&a, &min_plus_conv(&b1, &b2));
        assert_eq!(lhs, rhs);
    }
}

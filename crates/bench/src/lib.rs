//! # nc-bench — the reproduction harness
//!
//! One binary per table/figure of the paper:
//!
//! | Binary   | Paper artifact |
//! |----------|----------------|
//! | `fig1`   | Figure 1 — curve geometry (α, β, γ, backlog, delay, α*) |
//! | `table1` | Table 1 — BLAST throughput, plus the §4.2 d/x findings |
//! | `fig4`   | Figure 4 — BLAST curves + simulated stairstep |
//! | `table2` | Table 2 — bump-in-the-wire stage throughputs (our kernels measured in isolation vs the paper's FPGA kernels) |
//! | `table3` | Table 3 — bump-in-the-wire throughput, plus the §5 d/x findings |
//! | `fig10`  | Figure 10 — bump-in-the-wire curves + stairstep |
//! | `repro`  | everything above, writing `results/*.{txt,csv,json}` |
//!
//! Criterion microbenches cover the substrates: exact curve algebra
//! (`curve_ops`), the DES kernel (`des_engine`), the workload kernels
//! (`kernels` — the measurement side of Table 2), and full model
//! construction + simulation (`pipelines`).

#![warn(missing_docs)]

use std::fs;
use std::path::{Path, PathBuf};

/// Resolve (and create) the `results/` directory at the workspace root.
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench → workspace root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let dir = root.join("results");
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Write a text artifact into `results/`, echoing to stdout.
pub fn emit(name: &str, contents: &str) {
    let path = results_dir().join(name);
    fs::write(&path, contents).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("{contents}");
    println!("[written {}]", path.display());
}

/// Serialize a value as pretty JSON into `results/`.
pub fn emit_json<T: serde::Serialize>(name: &str, value: &T) {
    let path = results_dir().join(name);
    let json = serde_json::to_string_pretty(value).expect("serialize");
    fs::write(&path, json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("[written {}]", path.display());
}

/// The tracked BITW sweep workload shared by the `sweep` bin and the
/// `perfbase` cached-vs-uncached ablation: compressor block size
/// 256 B – 4 KiB × PCIe egress rate 16 – 256 MiB/s under the light
/// 40 MiB/s drive (the egress axis crosses the offered load, so the §3
/// regimes flip mid-surface), with throughput rows over a ten-step
/// horizon ladder (10 ms – 2 s, the paper's throughput-vs-window ramp).
/// `nx × ny` grid points, row-major with the egress axis fastest — the
/// varied stage is the last one, so within a row the analysis of the
/// five upstream stages is shared via the prefix memo.
pub fn bitw_sweep_spec(nx: usize, ny: usize) -> nc_sweep::SweepSpec {
    use nc_core::num::Rat;
    use nc_core::units::mib_per_s;
    use nc_sweep::{Axis, Param, SweepSpec};
    let mut base = nc_apps::bitw::pipeline(nc_apps::bitw::Scenario::Pessimistic);
    base.source = nc_apps::bitw::light_source();
    SweepSpec {
        base,
        axes: vec![
            Axis::linspace(Param::BlockSize(0), Rat::int(256), Rat::int(4096), nx),
            Axis::linspace(Param::Rate(5), mib_per_s(16.0), mib_per_s(256.0), ny),
        ],
        horizons: vec![
            Rat::new(1, 100),
            Rat::new(1, 50),
            Rat::new(3, 100),
            Rat::new(1, 20),
            Rat::new(1, 10),
            Rat::new(1, 5),
            Rat::new(3, 10),
            Rat::new(1, 2),
            Rat::int(1),
            Rat::int(2),
        ],
        sim: None,
    }
}

/// The `NC_THREADS` worker-count override, if set and valid.
///
/// One knob routes every data-parallel harness path (the Monte-Carlo
/// replication and the sweep fan-out): unset means the ambient rayon
/// pool (one worker per core), `NC_THREADS=n` pins the pool to `n`
/// workers. All artifact emitters are order-preserving reductions, so
/// the outputs are byte-identical for every value of the knob — the
/// `check.sh` smoke lane asserts this on the sweep CSV.
pub fn nc_threads() -> Option<usize> {
    let s = std::env::var("NC_THREADS").ok()?;
    match s.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => {
            eprintln!("NC_THREADS must be a positive integer; using the ambient pool");
            None
        }
    }
}

/// Run `f` under the [`nc_threads`] worker-count policy: inside a
/// dedicated rayon pool of `NC_THREADS` workers when the knob is set,
/// on the ambient pool otherwise.
pub fn with_nc_threads<T: Send>(f: impl FnOnce() -> T + Send) -> T {
    match nc_threads() {
        Some(n) => rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .expect("build NC_THREADS rayon pool")
            .install(f),
        None => f(),
    }
}

/// Format the bounds comparison section shared by `table1`/`table3`.
pub fn format_bounds(app: &str, b: &nc_apps::BoundsReport) -> String {
    use nc_core::num::Rat;
    use nc_core::units::{fmt_bytes, fmt_time};
    use nc_core::Value;
    let t = |x: f64| fmt_time(Value::finite(Rat::from_f64(x)));
    let by = |x: f64| fmt_bytes(Value::finite(Rat::from_f64(x)));
    format!(
        "{app} delay/backlog findings\n\
         \x20 virtual delay bound d        {:>12}   (paper {})\n\
         \x20 backlog bound x              {:>12}   (paper {})\n\
         \x20 sim observed delay           [{} .. {}]   (paper [{} .. {}])\n\
         \x20 sim peak backlog             {:>12}   (paper {})\n\
         \x20 sim within modeled bounds:   {}\n",
        t(b.delay_bound_s),
        t(b.paper_delay_bound_s),
        by(b.backlog_bound_bytes),
        by(b.paper_backlog_bound_bytes),
        t(b.sim_delay_min_s),
        t(b.sim_delay_max_s),
        t(b.paper_sim_delay_s.0),
        t(b.paper_sim_delay_s.1),
        by(b.sim_backlog_bytes),
        by(b.paper_sim_backlog_bytes),
        if b.sim_within_bounds() { "YES" } else { "NO" },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_exists() {
        let d = results_dir();
        assert!(d.is_dir());
        assert!(d.ends_with("results"));
    }
}

//! # nc-bench — the reproduction harness
//!
//! One binary per table/figure of the paper:
//!
//! | Binary   | Paper artifact |
//! |----------|----------------|
//! | `fig1`   | Figure 1 — curve geometry (α, β, γ, backlog, delay, α*) |
//! | `table1` | Table 1 — BLAST throughput, plus the §4.2 d/x findings |
//! | `fig4`   | Figure 4 — BLAST curves + simulated stairstep |
//! | `table2` | Table 2 — bump-in-the-wire stage throughputs (our kernels measured in isolation vs the paper's FPGA kernels) |
//! | `table3` | Table 3 — bump-in-the-wire throughput, plus the §5 d/x findings |
//! | `fig10`  | Figure 10 — bump-in-the-wire curves + stairstep |
//! | `repro`  | everything above, writing `results/*.{txt,csv,json}` |
//!
//! Criterion microbenches cover the substrates: exact curve algebra
//! (`curve_ops`), the DES kernel (`des_engine`), the workload kernels
//! (`kernels` — the measurement side of Table 2), and full model
//! construction + simulation (`pipelines`).

#![warn(missing_docs)]

use std::fs;
use std::path::{Path, PathBuf};

/// Resolve (and create) the `results/` directory at the workspace root.
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench → workspace root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let dir = root.join("results");
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Write a text artifact into `results/`, echoing to stdout.
pub fn emit(name: &str, contents: &str) {
    let path = results_dir().join(name);
    fs::write(&path, contents).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("{contents}");
    println!("[written {}]", path.display());
}

/// Serialize a value as pretty JSON into `results/`.
pub fn emit_json<T: serde::Serialize>(name: &str, value: &T) {
    let path = results_dir().join(name);
    let json = serde_json::to_string_pretty(value).expect("serialize");
    fs::write(&path, json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("[written {}]", path.display());
}

/// The tracked BITW sweep workload shared by the `sweep` bin and the
/// `perfbase` cached-vs-uncached ablation: compressor block size
/// 256 B – 4 KiB × PCIe egress rate 16 – 256 MiB/s under the light
/// 40 MiB/s drive (the egress axis crosses the offered load, so the §3
/// regimes flip mid-surface), with throughput rows over a ten-step
/// horizon ladder (10 ms – 2 s, the paper's throughput-vs-window ramp).
/// `nx × ny` grid points, row-major with the egress axis fastest — the
/// varied stage is the last one, so within a row the analysis of the
/// five upstream stages is shared via the prefix memo.
pub fn bitw_sweep_spec(nx: usize, ny: usize) -> nc_sweep::SweepSpec {
    use nc_core::num::Rat;
    use nc_core::units::mib_per_s;
    use nc_sweep::{Axis, Param, SweepSpec};
    let mut base = nc_apps::bitw::pipeline(nc_apps::bitw::Scenario::Pessimistic);
    base.source = nc_apps::bitw::light_source();
    SweepSpec {
        base,
        axes: vec![
            Axis::linspace(Param::BlockSize(0), Rat::int(256), Rat::int(4096), nx),
            Axis::linspace(Param::Rate(5), mib_per_s(16.0), mib_per_s(256.0), ny),
        ],
        horizons: vec![
            Rat::new(1, 100),
            Rat::new(1, 50),
            Rat::new(3, 100),
            Rat::new(1, 20),
            Rat::new(1, 10),
            Rat::new(1, 5),
            Rat::new(3, 10),
            Rat::new(1, 2),
            Rat::int(1),
            Rat::int(2),
        ],
        sim: None,
    }
}

/// The `NC_THREADS` worker-count override, if set and valid.
///
/// One knob routes every data-parallel harness path (the Monte-Carlo
/// replication and the sweep fan-out): unset means the ambient rayon
/// pool (one worker per core), `NC_THREADS=n` pins the pool to `n`
/// workers. All artifact emitters are order-preserving reductions, so
/// the outputs are byte-identical for every value of the knob — the
/// `check.sh` smoke lane asserts this on the sweep CSV.
pub fn nc_threads() -> Option<usize> {
    let s = std::env::var("NC_THREADS").ok()?;
    match s.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => {
            eprintln!("NC_THREADS must be a positive integer; using the ambient pool");
            None
        }
    }
}

/// Run `f` under the [`nc_threads`] worker-count policy: inside a
/// dedicated rayon pool of `NC_THREADS` workers when the knob is set,
/// on the ambient pool otherwise.
pub fn with_nc_threads<T: Send>(f: impl FnOnce() -> T + Send) -> T {
    match nc_threads() {
        Some(n) => rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .expect("build NC_THREADS rayon pool")
            .install(f),
        None => f(),
    }
}

/// Format the bounds comparison section shared by `table1`/`table3`.
pub fn format_bounds(app: &str, b: &nc_apps::BoundsReport) -> String {
    use nc_core::num::Rat;
    use nc_core::units::{fmt_bytes, fmt_time};
    use nc_core::Value;
    let t = |x: f64| fmt_time(Value::finite(Rat::from_f64(x)));
    let by = |x: f64| fmt_bytes(Value::finite(Rat::from_f64(x)));
    format!(
        "{app} delay/backlog findings\n\
         \x20 virtual delay bound d        {:>12}   (paper {})\n\
         \x20 backlog bound x              {:>12}   (paper {})\n\
         \x20 sim observed delay           [{} .. {}]   (paper [{} .. {}])\n\
         \x20 sim peak backlog             {:>12}   (paper {})\n\
         \x20 sim within modeled bounds:   {}\n",
        t(b.delay_bound_s),
        t(b.paper_delay_bound_s),
        by(b.backlog_bound_bytes),
        by(b.paper_backlog_bound_bytes),
        t(b.sim_delay_min_s),
        t(b.sim_delay_max_s),
        t(b.paper_sim_delay_s.0),
        t(b.paper_sim_delay_s.1),
        by(b.sim_backlog_bytes),
        by(b.paper_sim_backlog_bytes),
        if b.sim_within_bounds() { "YES" } else { "NO" },
    )
}

pub mod admitload {
    //! The shared admission-control workload: a heterogeneous tenant
    //! fleet of edge pipelines fed by the `nc-workloads` request
    //! generator, replayed through the `nc-admit` engine.
    //!
    //! Used by the `admit` bin (streams `results/admission.csv`), the
    //! `admission` criterion bench, and the `perfbase` throughput row.
    //! Decisions are independent across tenants (each tenant has its
    //! own path state; the model cache is only consulted at
    //! onboarding), so a sharded replay that processes whole tenants
    //! and keys rows by the trace's global [`Request::seq`] reproduces
    //! the serial output byte for byte — for any `NC_THREADS`.

    use nc_admit::{oracle, AdmissionEngine, ClassId, FlowClass, Placement, TenantId};
    use nc_core::num::Rat;
    use nc_core::pipeline::{Node, NodeKind, Pipeline, Source, StageRates};
    use nc_core::units::{mib_per_s, micros};
    use nc_workloads::requests::{tenant_requests, ReqKind, Request, RequestConfig};

    /// Stage count of every tenant's local pipeline.
    pub const STAGES: usize = 4;

    fn node(name: &str, rate_mib: f64, latency_us: f64, job: i64) -> Node {
        Node::new(
            name,
            NodeKind::Compute,
            StageRates::fixed(mib_per_s(rate_mib)),
            micros(latency_us),
            Rat::int(job),
            Rat::int(job),
        )
    }

    /// A tenant's local edge pipeline: capture → compress → encrypt →
    /// uplink, in three capacity tiers so the fleet is heterogeneous.
    /// All services are packetized rate-latency curves, so the engine's
    /// scalar lane represents them exactly.
    pub fn tenant_pipeline(tenant: usize) -> Pipeline {
        let tier = [1.0, 1.5, 2.25][tenant % 3];
        Pipeline::new(
            format!("edge-t{}", tenant % 3),
            Source {
                rate: mib_per_s(48.0 * tier),
                burst: Rat::int(64 << 10),
            },
            vec![
                node("capture", 96.0 * tier, 20.0, 4 << 10),
                node("compress", 56.0 * tier, 40.0, 4 << 10),
                node("encrypt", 48.0 * tier, 30.0, 4 << 10),
                node("uplink", 64.0 * tier, 120.0, 64 << 10),
            ],
        )
    }

    /// Per-stage backlog budget of a tenant's local pipeline (bytes):
    /// tight enough that bursty classes hit it under load.
    pub fn tenant_budget(tenant: usize) -> Rat {
        Rat::int((24 << 20) * [1, 2, 3][tenant % 3])
    }

    /// The shared datacenter offload path: a wide-area uplink into an
    /// over-provisioned processing tier — higher capacity, more fixed
    /// latency. Every odd tenant gets one.
    pub fn remote_pipeline() -> Pipeline {
        Pipeline::new(
            "datacenter",
            Source {
                rate: mib_per_s(256.0),
                burst: Rat::int(256 << 10),
            },
            vec![
                node("wan-uplink", 128.0, 4000.0, 64 << 10),
                node("ingest", 512.0, 200.0, 64 << 10),
                node("process", 256.0, 100.0, 16 << 10),
            ],
        )
    }

    /// The request-trace configuration for `tenants` tenants.
    pub fn request_config(seed: u64, tenants: usize, per_tenant: usize) -> RequestConfig {
        RequestConfig::new(seed, tenants, per_tenant, STAGES)
    }

    /// One replayed request, keyed for deterministic CSV assembly.
    pub struct DecisionRow {
        /// Global trace sequence number (the CSV sort key).
        pub seq: u64,
        /// Event time in the trace, seconds.
        pub time_s: f64,
        /// Tenant index.
        pub tenant: u32,
        /// Class index into the spec list.
        pub class: u32,
        /// Requested attachment stage.
        pub attach: u32,
        /// `"arrive"` or `"depart"`.
        pub event: &'static str,
        /// Decision label (`admit`, `admit-remote`, a rejection
        /// reason), or `vacate`/`noop` for departures.
        pub outcome: &'static str,
        /// Certified delay bound for admissions (exact rational).
        pub bound: Option<Rat>,
    }

    impl DecisionRow {
        /// One CSV line (no trailing newline). Bounds are exact
        /// rationals, so the text is identical on every host.
        pub fn to_csv(&self) -> String {
            let bound = match self.bound {
                Some(b) => format!("{}/{}", b.numer(), b.denom()),
                None => String::new(),
            };
            format!(
                "{},{:.9},{},{},{},{},{},{}",
                self.seq,
                self.time_s,
                self.tenant,
                self.class,
                self.attach,
                self.event,
                self.outcome,
                bound
            )
        }

        /// The CSV header line.
        pub fn csv_header() -> &'static str {
            "seq,time_s,tenant,class,attach,event,outcome,bound"
        }
    }

    /// Map the generator's flow specs to engine flow classes.
    pub fn flow_classes(config: &RequestConfig) -> Vec<FlowClass> {
        config
            .specs
            .iter()
            .map(|s| FlowClass {
                name: s.name.into(),
                rate: s.rate,
                burst: s.burst,
                block: s.block,
                deadline: s.deadline,
            })
            .collect()
    }

    /// An engine loaded with a shard of the tenant fleet.
    pub struct Shard {
        /// The engine owning this shard's tenants.
        pub engine: AdmissionEngine,
        /// Engine handle per global tenant index in the shard.
        pub tenants: Vec<(usize, TenantId)>,
        /// Registered class handles, index-aligned with the specs.
        pub classes: Vec<ClassId>,
    }

    /// Onboard the given tenants (one engine, shared model cache).
    pub fn build_shard(config: &RequestConfig, tenant_ixs: &[usize]) -> Shard {
        let mut engine = AdmissionEngine::new();
        let classes = flow_classes(config)
            .into_iter()
            .map(|c| engine.register_class(c).expect("valid class"))
            .collect();
        let tenants = tenant_ixs
            .iter()
            .map(|&ix| {
                let t = engine
                    .add_tenant(tenant_pipeline(ix), Some(tenant_budget(ix)))
                    .expect("valid tenant pipeline");
                if ix % 2 == 1 {
                    engine
                        .set_remote(t, remote_pipeline(), None)
                        .expect("valid remote pipeline");
                }
                (ix, t)
            })
            .collect();
        Shard {
            engine,
            tenants,
            classes,
        }
    }

    /// Replay one tenant's request subsequence (trace order) through
    /// the shard's engine, returning one row per request.
    ///
    /// Departures vacate the flow admitted by the referenced arrival
    /// (`noop` if it was rejected); the admission identity — class,
    /// requested attach, placement — is tracked per arrival index.
    pub fn replay_tenant(
        shard: &mut Shard,
        tenant_id: TenantId,
        requests: &[Request],
    ) -> Vec<DecisionRow> {
        let mut admitted: Vec<Option<(ClassId, usize, Placement)>> = Vec::new();
        let mut rows = Vec::with_capacity(requests.len());
        for r in requests {
            let class = shard.classes[r.class as usize];
            let (event, outcome, bound) = match r.kind {
                ReqKind::Arrive => {
                    let d = shard
                        .engine
                        .decide(tenant_id, class, r.attach as usize)
                        .expect("trace stays in range");
                    if admitted.len() <= r.arrive_ix as usize {
                        admitted.resize(r.arrive_ix as usize + 1, None);
                    }
                    admitted[r.arrive_ix as usize] =
                        d.placement().map(|p| (class, r.attach as usize, p));
                    ("arrive", d.label(), d.bound())
                }
                ReqKind::Depart { arrive_ix } => {
                    match admitted.get_mut(arrive_ix as usize).and_then(Option::take) {
                        Some((c, attach, placement)) => {
                            shard
                                .engine
                                .depart(tenant_id, c, attach, placement)
                                .expect("resident flow departs cleanly");
                            ("depart", "vacate", None)
                        }
                        None => ("depart", "noop", None),
                    }
                }
            };
            rows.push(DecisionRow {
                seq: r.seq,
                time_s: r.time_s,
                tenant: r.tenant,
                class: r.class,
                attach: r.attach,
                event,
                outcome,
                bound,
            });
        }
        rows
    }

    /// Replay a shard of the globally sequenced trace (from
    /// [`nc_workloads::requests::generate`]): each listed tenant's
    /// subsequence, rows in shard-local order — merge by
    /// [`DecisionRow::seq`] for the global CSV.
    pub fn replay_shard(
        config: &RequestConfig,
        trace: &[Request],
        tenant_ixs: &[usize],
    ) -> (Vec<DecisionRow>, nc_admit::EngineStats) {
        let mut shard = build_shard(config, tenant_ixs);
        let mut rows = Vec::new();
        let pairs: Vec<(usize, TenantId)> = shard.tenants.clone();
        for (ix, tid) in pairs {
            let reqs: Vec<Request> = trace
                .iter()
                .filter(|r| r.tenant as usize == ix)
                .copied()
                .collect();
            rows.extend(replay_tenant(&mut shard, tid, &reqs));
        }
        (rows, shard.engine.stats())
    }

    /// Time the cold-start baseline: the same decision answered by
    /// [`nc_admit::oracle::decide_full`] (full model rebuild + general
    /// curve algebra) against a mid-load resident population. Returns
    /// seconds per decision (best of `passes` batches of `iters`).
    pub fn oracle_per_decision_s(config: &RequestConfig, tenant: usize, iters: u32) -> f64 {
        // Build a representative resident population by shadow-replay.
        let mut shard = build_shard(config, &[tenant]);
        let tid = shard.tenants[0].1;
        let mut resident: Vec<(usize, ClassId)> = Vec::new();
        for r in tenant_requests(config, tenant) {
            if let ReqKind::Arrive = r.kind {
                let class = shard.classes[r.class as usize];
                if let Ok(d) = shard.engine.decide(tid, class, r.attach as usize) {
                    if d.placement() == Some(Placement::Local) {
                        resident.push((r.attach as usize, class));
                    }
                }
            }
        }
        let pipeline = tenant_pipeline(tenant);
        let budget = Some(tenant_budget(tenant));
        let classes = flow_classes(config);
        let candidate = &classes[0];
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t = std::time::Instant::now();
            for _ in 0..iters {
                std::hint::black_box(oracle::decide_full(
                    &pipeline, budget, &classes, &resident, candidate, 0,
                ))
                .ok();
            }
            best = best.min(t.elapsed().as_secs_f64() / iters as f64);
        }
        best
    }

    /// Partition tenants round-robin over `workers` shards.
    pub fn shard_tenants(tenants: usize, workers: usize) -> Vec<Vec<usize>> {
        let workers = workers.max(1).min(tenants.max(1));
        let mut shards = vec![Vec::new(); workers];
        for t in 0..tenants {
            shards[t % workers].push(t);
        }
        shards
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn sharded_replay_reproduces_serial_rows() {
            let cfg = request_config(11, 6, 40);
            let trace = nc_workloads::requests::generate(&cfg);
            let (mut serial, _) = replay_shard(&cfg, &trace, &(0..6).collect::<Vec<_>>());
            serial.sort_by_key(|r| r.seq);
            let mut sharded = Vec::new();
            for shard in shard_tenants(6, 3) {
                sharded.extend(replay_shard(&cfg, &trace, &shard).0);
            }
            sharded.sort_by_key(|r| r.seq);
            assert_eq!(serial.len(), sharded.len());
            for (a, b) in serial.iter().zip(&sharded) {
                assert_eq!(a.to_csv(), b.to_csv());
            }
            // The trace actually exercises the interesting outcomes.
            let admits = serial.iter().filter(|r| r.outcome == "admit").count();
            let departs = serial.iter().filter(|r| r.outcome == "vacate").count();
            assert!(admits > 0 && departs > 0, "degenerate trace");
        }

        #[test]
        fn remote_offload_occurs_for_odd_tenants() {
            let cfg = request_config(11, 2, 400);
            let trace = nc_workloads::requests::generate(&cfg);
            let (rows, stats) = replay_shard(&cfg, &trace, &[1]);
            assert!(stats.decisions > 0);
            assert!(
                rows.iter().any(|r| r.outcome == "admit-remote"),
                "expected at least one remote offload under overload"
            );
        }
    }
}

pub mod fleet {
    //! Striped fleet simulation: many independent seeded tenant
    //! pipelines batch-simulated across `NC_THREADS` OS workers.
    //!
    //! The fleet loop is embarrassingly parallel — each tenant's run
    //! depends only on its own seed — so tenants are striped
    //! round-robin over the workers, each worker owns one pooled
    //! [`SimArena`] (allocations amortize within a stripe exactly as
    //! they do in the serial loop), and the per-tenant rows are merged
    //! back in tenant order. The merged CSV is therefore **byte
    //! identical for any `NC_THREADS`**, which `scripts/check.sh`
    //! asserts; wall time is the only thing the worker count changes.

    use nc_apps::bitw;
    use nc_streamsim::{simulate_in, SimArena, SimResult};

    /// Fleet shape, from the environment: `FLEET_TENANTS` (default
    /// 1000) seeded tenants pushing `FLEET_INPUT_KIB` (default 256)
    /// KiB each through the bump-in-the-wire pipeline.
    #[derive(Clone, Copy, Debug)]
    pub struct FleetConfig {
        /// Number of seeded tenants.
        pub tenants: u64,
        /// Input volume per tenant, bytes.
        pub input_bytes: u64,
    }

    impl FleetConfig {
        /// Read the fleet shape from `FLEET_TENANTS`/`FLEET_INPUT_KIB`.
        pub fn from_env() -> Self {
            let get = |k: &str, default: u64| {
                std::env::var(k)
                    .ok()
                    .and_then(|s| s.trim().parse::<u64>().ok())
                    .filter(|&v| v >= 1)
                    .unwrap_or(default)
            };
            FleetConfig {
                tenants: get("FLEET_TENANTS", 1000),
                input_bytes: get("FLEET_INPUT_KIB", 256) << 10,
            }
        }
    }

    /// One tenant's volume/latency observables (the RNG-free fields
    /// plus the delay tally — everything `SimResult` reports that a
    /// fleet operator would chart).
    #[derive(Clone, Debug)]
    pub struct TenantRow {
        /// Tenant index (also seeds the run as `tenant + 1`).
        pub tenant: u64,
        /// Events processed by the engine for this tenant.
        pub events: u64,
        /// Input-referred bytes delivered.
        pub bytes_out: f64,
        /// Last output time, seconds.
        pub makespan: f64,
        /// Mean virtual delay, seconds.
        pub delay_mean: f64,
        /// Peak input-referred backlog, bytes.
        pub peak_backlog: f64,
    }

    impl TenantRow {
        fn from_result(tenant: u64, r: &SimResult) -> Self {
            TenantRow {
                tenant,
                events: r.events,
                bytes_out: r.bytes_out,
                makespan: r.makespan,
                delay_mean: r.delay_mean,
                peak_backlog: r.peak_backlog,
            }
        }

        /// CSV serialization (float `Display` is exact-shortest, so
        /// equal results serialize to equal bytes).
        pub fn to_csv(&self) -> String {
            format!(
                "{},{},{},{},{},{}",
                self.tenant,
                self.events,
                self.bytes_out,
                self.makespan,
                self.delay_mean,
                self.peak_backlog
            )
        }

        /// Header matching [`Self::to_csv`].
        pub fn csv_header() -> &'static str {
            "tenant,events,bytes_out,makespan_s,delay_mean_s,peak_backlog_bytes"
        }
    }

    /// Simulate one stripe of tenants through one pooled arena.
    pub fn replay_stripe(
        cfg: &FleetConfig,
        tenants: &[u64],
        arena: &mut SimArena,
    ) -> Vec<TenantRow> {
        let pipeline = bitw::sim_pipeline();
        tenants
            .iter()
            .map(|&tenant| {
                let mut c = bitw::sim_config(tenant + 1);
                c.trace = false;
                c.total_input = cfg.input_bytes;
                TenantRow::from_result(tenant, &simulate_in(arena, &pipeline, &c))
            })
            .collect()
    }

    /// Run the whole fleet striped over `workers` OS threads (one
    /// arena per worker) and merge the rows back in tenant order.
    pub fn run_striped(cfg: &FleetConfig, workers: usize) -> Vec<TenantRow> {
        let workers = workers.clamp(1, cfg.tenants.max(1) as usize);
        if workers == 1 {
            let mut arena = SimArena::default();
            return replay_stripe(cfg, &(0..cfg.tenants).collect::<Vec<_>>(), &mut arena);
        }
        let stripes: Vec<Vec<u64>> = {
            let mut s = vec![Vec::new(); workers];
            for t in 0..cfg.tenants {
                s[(t % workers as u64) as usize].push(t);
            }
            s
        };
        let mut rows: Vec<TenantRow> = std::thread::scope(|scope| {
            let handles: Vec<_> = stripes
                .iter()
                .map(|stripe| {
                    scope.spawn(move || {
                        let mut arena = SimArena::default();
                        replay_stripe(cfg, stripe, &mut arena)
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("fleet worker panicked"))
                .collect()
        });
        rows.sort_by_key(|r| r.tenant);
        rows
    }

    /// Render the merged rows as the `fleet.csv` artifact body.
    pub fn to_csv(rows: &[TenantRow]) -> String {
        let mut out = String::from(TenantRow::csv_header());
        out.push('\n');
        for r in rows {
            out.push_str(&r.to_csv());
            out.push('\n');
        }
        out
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn striped_fleet_is_worker_count_invariant() {
            let cfg = FleetConfig {
                tenants: 7,
                input_bytes: 64 << 10,
            };
            let serial = to_csv(&run_striped(&cfg, 1));
            for workers in [2, 3, 7] {
                assert_eq!(
                    serial,
                    to_csv(&run_striped(&cfg, workers)),
                    "workers={workers}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_exists() {
        let d = results_dir();
        assert!(d.is_dir());
        assert!(d.ends_with("results"));
    }
}

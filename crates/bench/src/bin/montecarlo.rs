//! Monte-Carlo replication of the paper's simulations: run both
//! applications over many seeds in parallel (rayon) and report
//! mean ± spread for every simulated quantity, demonstrating that the
//! single-seed numbers in Tables 1/3 are representative. Also runs the
//! service-model ablation (uniform vs exponential vs deterministic
//! stages) across the replication set.
//!
//! Artifacts: `results/montecarlo.txt` and `results/montecarlo.json`.

use nc_apps::{bitw, blast};
use nc_streamsim::{simulate_in, ServiceModel, SimArena, SimResult};
use rayon::prelude::*;
use serde::Serialize;

const MIB: f64 = 1048576.0;
const SEEDS: u64 = 32;

#[derive(Clone, Debug, Serialize)]
struct Summary {
    what: String,
    n: usize,
    mean: f64,
    min: f64,
    max: f64,
    stddev: f64,
}

fn summarize(what: &str, xs: &[f64]) -> Summary {
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0).max(1.0);
    Summary {
        what: what.into(),
        n,
        mean,
        min: xs.iter().copied().fold(f64::INFINITY, f64::min),
        max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        stddev: var.sqrt(),
    }
}

fn fmt(s: &Summary, unit: &str, scale: f64) -> String {
    format!(
        "  {:<44} {:>9.2} ± {:>6.3} {unit}  (range [{:.2}, {:.2}], n={})",
        s.what,
        s.mean * scale,
        s.stddev * scale,
        s.min * scale,
        s.max * scale,
        s.n
    )
}

fn main() {
    let mut out = String::from("Monte-Carlo replication (parallel over seeds)\n\n");
    let mut all: Vec<Summary> = Vec::new();

    // --- BLAST (shorter runs than the headline config for 32x). ---
    // Each worker thread keeps one SimArena, so replications after the
    // first reuse the grown event calendar instead of reallocating.
    let blast_runs: Vec<SimResult> = (0..SEEDS)
        .into_par_iter()
        .map_init(SimArena::new, |arena, seed| {
            let mut cfg = blast::sim_config(seed);
            cfg.total_input = 256 << 20;
            simulate_in(arena, &blast::deployed_pipeline(), &cfg)
        })
        .collect();
    let thr: Vec<f64> = blast_runs.iter().map(|r| r.throughput / MIB).collect();
    let dmax: Vec<f64> = blast_runs.iter().map(|r| r.delay_max * 1e3).collect();
    let backlog: Vec<f64> = blast_runs.iter().map(|r| r.peak_backlog / MIB).collect();
    let s = summarize("BLAST sim throughput (paper 353 MiB/s)", &thr);
    out.push_str(&fmt(&s, "MiB/s", 1.0));
    out.push('\n');
    all.push(s);
    let s = summarize("BLAST sim max delay (paper 46.4 ms)", &dmax);
    out.push_str(&fmt(&s, "ms", 1.0));
    out.push('\n');
    all.push(s);
    let s = summarize("BLAST sim peak backlog (paper ~20 MiB)", &backlog);
    out.push_str(&fmt(&s, "MiB", 1.0));
    out.push('\n');
    all.push(s);

    // --- Bump in the wire. ---
    let bitw_runs: Vec<(SimResult, SimResult)> = (0..SEEDS)
        .into_par_iter()
        .map_init(SimArena::new, |arena, seed| {
            (
                simulate_in(arena, &bitw::sim_pipeline(), &bitw::sim_config(seed)),
                simulate_in(
                    arena,
                    &bitw::light_pipeline(),
                    &bitw::sim_config(seed ^ 0xABCD),
                ),
            )
        })
        .collect();
    let thr: Vec<f64> = bitw_runs.iter().map(|(r, _)| r.throughput / MIB).collect();
    let dmax: Vec<f64> = bitw_runs.iter().map(|(_, l)| l.delay_max * 1e6).collect();
    let s = summarize("BITW sim throughput (paper 61 MiB/s)", &thr);
    out.push_str(&fmt(&s, "MiB/s", 1.0));
    out.push('\n');
    all.push(s);
    let s = summarize("BITW light-load max delay (paper 36.7 us)", &dmax);
    out.push_str(&fmt(&s, "us", 1.0));
    out.push('\n');
    all.push(s);

    // --- Service-model ablation on the BITW bottleneck. ---
    out.push_str("\nservice-model ablation (BITW, same load, 8 seeds each):\n");
    for model in [
        ServiceModel::Deterministic,
        ServiceModel::Uniform,
        ServiceModel::Exponential,
    ] {
        let runs: Vec<SimResult> = (0..8u64)
            .into_par_iter()
            .map_init(SimArena::new, |arena, seed| {
                let mut cfg = bitw::sim_config(seed);
                cfg.service_model = model;
                simulate_in(arena, &bitw::light_pipeline(), &cfg)
            })
            .collect();
        let dm: Vec<f64> = runs.iter().map(|r| r.delay_max * 1e6).collect();
        let s = summarize(&format!("{model:?} service, max delay"), &dm);
        out.push_str(&fmt(&s, "us", 1.0));
        out.push('\n');
        all.push(s);
    }
    out.push_str(
        "\nExponential (Markovian) stages queue hardest — the M/M/1 baseline's\n\
         assumption — while the paper's uniform model sits near deterministic:\n\
         the measured-variability gap behind the queueing prediction's optimism.\n",
    );

    nc_bench::emit("montecarlo.txt", &out);
    nc_bench::emit_json("montecarlo.json", &all);
}

//! Deterministic fault injection for the simulation engines.
//!
//! A [`FaultSchedule`] is the *simulation-side* realization of the
//! analysis-side `nc_core::FaultModel` (DESIGN.md §11): seeded, fully
//! deterministic, serde-round-trippable as part of
//! [`SimConfig`](crate::SimConfig). Per stage it can carry
//!
//! * a **periodic stall** `(budget, period)` — the stage freezes for
//!   `budget` seconds once per `period`, at a phase offset drawn
//!   deterministically from the schedule seed (so the analysis-side
//!   worst-case-phase bound must cover every realization);
//! * a **rate derate** `δ` — every execution time is scaled by
//!   `1/(1 − δ)` before sampling/quantization;
//! * **transient outage windows** `[start, start + duration)` whose
//!   effect depends on the stage's [`RecoveryPolicy`]:
//!   - [`Block`](RecoveryPolicy::Block): the window freezes the stage
//!     (execution is curtailed across it; data waits — the
//!     backpressure semantics the NC containment bound covers),
//!   - [`Drop`](RecoveryPolicy::Drop): any job the stage *would start*
//!     inside the window is consumed and discarded, counted in
//!     `SimResult::{dropped_jobs, dropped_bytes}`,
//!   - [`Retry`](RecoveryPolicy::Retry): an attempt whose completion
//!     lands inside the window fails and is re-executed after a capped
//!     exponential backoff (the network-stage retransmission model).
//!
//! Stalls always freeze, regardless of policy; derates always scale.
//!
//! **Zero-fault identity.** A schedule with no effective faults is
//! detected at setup and the engines take the exact fault-free code
//! path, so `faults: Some(FaultSchedule::none(n))` is bit-identical to
//! `faults: None`.
//!
//! **Engine equivalence.** The thinned and reference engines call the
//! same f64 [`FaultRt`] curtailment at the same points in the event
//! protocol, so their bitwise equivalence is preserved under faults;
//! the deterministic engine uses the integer-tick [`FaultRtTicks`]
//! mirror and gates cycle-jump fast-forward on the *fault horizon* —
//! the tick after which no window can ever apply — because a
//! fingerprint recurrence is only a valid steady-state witness when
//! the future is time-shift invariant.

use nc_core::pipeline::Pipeline;
use nc_des::Dist;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::config::NodeParams;

/// A deterministic, seeded fault injection plan: one entry per stage.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// Seed for fault placement (stall phase offsets). Independent of
    /// the simulation seed, so the service-time draw sequence is
    /// untouched by fault injection.
    pub seed: u64,
    /// Per-stage fault description, in pipeline order. Must have
    /// exactly one entry per pipeline stage.
    pub stages: Vec<StageFault>,
}

/// Faults applied to one stage.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StageFault {
    /// Fractional rate loss (`0 ≤ derate < 1`): execution times scale
    /// by `1/(1 − derate)`.
    #[serde(default)]
    pub derate: f64,
    /// Periodic stall specification, if any.
    #[serde(default)]
    pub stall: Option<StallSpec>,
    /// Transient outage windows (need not be sorted; must not overlap).
    #[serde(default)]
    pub outages: Vec<Outage>,
    /// What the stage does about outage windows.
    #[serde(default)]
    pub recovery: RecoveryPolicy,
}

/// A periodic stall: the stage freezes `budget` seconds per `period`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StallSpec {
    /// Stalled seconds per period (`0 ≤ budget < period`).
    pub budget: f64,
    /// Period in seconds (`> 0`).
    pub period: f64,
}

/// One transient outage window `[start, start + duration)`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Outage {
    /// Window start, seconds (`≥ 0`).
    pub start: f64,
    /// Window length, seconds (`≥ 0`; zero-length windows are no-ops).
    pub duration: f64,
}

/// Per-stage reaction to an outage window.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize, Default)]
pub enum RecoveryPolicy {
    /// Freeze: execution is suspended across the window and data waits
    /// (backpressure). The NC degraded-bound containment property is
    /// stated for this policy.
    #[default]
    Block,
    /// Discard: jobs the stage would start inside the window are
    /// consumed and dropped (counted, input-referred).
    Drop,
    /// Re-execute: an attempt completing inside the window fails and
    /// retries after capped exponential backoff
    /// `min(base · 2^k, cap)`.
    Retry {
        /// First backoff, seconds (`> 0`).
        base: f64,
        /// Backoff ceiling, seconds (`≥ base`).
        cap: f64,
    },
}

impl Default for StageFault {
    fn default() -> Self {
        StageFault {
            derate: 0.0,
            stall: None,
            outages: Vec::new(),
            recovery: RecoveryPolicy::Block,
        }
    }
}

/// Typed validation errors for simulation/sweep configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// The fault schedule's stage count does not match the pipeline.
    FaultStageCount {
        /// Stages in the pipeline.
        expected: usize,
        /// Entries in the schedule.
        got: usize,
    },
    /// A derate is outside `[0, 1)`.
    BadDerate {
        /// Offending stage index.
        stage: usize,
    },
    /// A stall period is zero or negative.
    ZeroStallPeriod {
        /// Offending stage index.
        stage: usize,
    },
    /// A stall budget is negative.
    NegativeStall {
        /// Offending stage index.
        stage: usize,
    },
    /// A stall budget is ≥ its period (the stage would never run).
    StallExceedsPeriod {
        /// Offending stage index.
        stage: usize,
    },
    /// An outage has a negative start or duration, or a non-finite
    /// bound.
    BadOutage {
        /// Offending stage index.
        stage: usize,
    },
    /// Two outage windows on the same stage overlap.
    OverlappingOutages {
        /// Offending stage index.
        stage: usize,
    },
    /// Retry backoff parameters violate `0 < base ≤ cap`.
    BadRetryBackoff {
        /// Offending stage index.
        stage: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::FaultStageCount { expected, got } => write!(
                f,
                "fault schedule has {got} stage entries for a {expected}-stage pipeline"
            ),
            ConfigError::BadDerate { stage } => {
                write!(f, "stage {stage}: rate derate must satisfy 0 <= derate < 1")
            }
            ConfigError::ZeroStallPeriod { stage } => {
                write!(f, "stage {stage}: stall period must be positive")
            }
            ConfigError::NegativeStall { stage } => {
                write!(f, "stage {stage}: stall budget must be non-negative")
            }
            ConfigError::StallExceedsPeriod { stage } => {
                write!(f, "stage {stage}: stall budget must be < period")
            }
            ConfigError::BadOutage { stage } => write!(
                f,
                "stage {stage}: outage start/duration must be finite and non-negative"
            ),
            ConfigError::OverlappingOutages { stage } => {
                write!(f, "stage {stage}: overlapping outage windows")
            }
            ConfigError::BadRetryBackoff { stage } => write!(
                f,
                "stage {stage}: retry backoff must satisfy 0 < base <= cap"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

impl FaultSchedule {
    /// A schedule with no faults on any of `n` stages (bit-identical to
    /// running with no schedule at all).
    pub fn none(n: usize) -> FaultSchedule {
        FaultSchedule {
            seed: 0,
            stages: vec![StageFault::default(); n],
        }
    }

    /// Validate against a pipeline with `n_stages` stages.
    pub fn validate(&self, n_stages: usize) -> Result<(), ConfigError> {
        if self.stages.len() != n_stages {
            return Err(ConfigError::FaultStageCount {
                expected: n_stages,
                got: self.stages.len(),
            });
        }
        for (stage, s) in self.stages.iter().enumerate() {
            if !s.derate.is_finite() || s.derate < 0.0 || s.derate >= 1.0 {
                return Err(ConfigError::BadDerate { stage });
            }
            if let Some(sp) = &s.stall {
                if !sp.period.is_finite() || sp.period <= 0.0 {
                    return Err(ConfigError::ZeroStallPeriod { stage });
                }
                if !sp.budget.is_finite() || sp.budget < 0.0 {
                    return Err(ConfigError::NegativeStall { stage });
                }
                if sp.budget >= sp.period {
                    return Err(ConfigError::StallExceedsPeriod { stage });
                }
            }
            let mut ws: Vec<(f64, f64)> = Vec::with_capacity(s.outages.len());
            for o in &s.outages {
                if !o.start.is_finite()
                    || !o.duration.is_finite()
                    || o.start < 0.0
                    || o.duration < 0.0
                {
                    return Err(ConfigError::BadOutage { stage });
                }
                if o.duration > 0.0 {
                    ws.push((o.start, o.start + o.duration));
                }
            }
            ws.sort_by(|a, b| a.0.total_cmp(&b.0));
            if ws.windows(2).any(|w| w[0].1 > w[1].0) {
                return Err(ConfigError::OverlappingOutages { stage });
            }
            if let RecoveryPolicy::Retry { base, cap } = s.recovery {
                if !(base.is_finite() && cap.is_finite() && base > 0.0 && cap >= base) {
                    return Err(ConfigError::BadRetryBackoff { stage });
                }
            }
        }
        Ok(())
    }

    /// True when no stage has any effective fault (all derates zero, no
    /// positive stall budget, no positive-length outage).
    pub fn is_trivial(&self) -> bool {
        self.stages.iter().all(|s| {
            s.derate == 0.0
                && s.stall.is_none_or(|sp| sp.budget == 0.0)
                && s.outages.iter().all(|o| o.duration == 0.0)
        })
    }

    /// Bridge from the analysis side: realize each stage's
    /// `nc_core::FaultModel` as concrete simulation faults, placing the
    /// free parameters (outage start times) deterministically from
    /// `seed` within `[0, horizon_hint]`. All stages use the
    /// [`RecoveryPolicy::Block`] semantics the degraded bounds cover.
    pub fn from_pipeline(p: &Pipeline, seed: u64, horizon_hint: f64) -> FaultSchedule {
        use nc_core::fault::FaultModel;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let stages = p
            .nodes
            .iter()
            .map(|n| {
                let mut s = StageFault::default();
                match n.fault {
                    None => {}
                    Some(FaultModel::PeriodicStall { budget, period }) => {
                        s.stall = Some(StallSpec {
                            budget: budget.to_f64(),
                            period: period.to_f64(),
                        });
                    }
                    Some(FaultModel::RateDerate { delta }) => {
                        s.derate = delta.to_f64();
                    }
                    Some(FaultModel::TransientOutage { duration }) => {
                        let d = duration.to_f64();
                        let span = (horizon_hint - d).max(0.0);
                        let start = Dist::Uniform { lo: 0.0, hi: span }.sample(&mut rng);
                        s.outages.push(Outage { start, duration: d });
                    }
                }
                s
            })
            .collect();
        FaultSchedule { seed, stages }
    }
}

// ---------------------------------------------------------------------
// Runtime (engine-facing) representation.
// ---------------------------------------------------------------------

/// Periodic stall with its seeded phase offset resolved.
#[derive(Clone, Copy, Debug)]
struct Stall {
    off: f64,
    budget: f64,
    period: f64,
}

/// Per-stage runtime fault state, f64 seconds (stochastic engines).
#[derive(Clone, Debug)]
pub(crate) struct StageRt {
    /// Execution-time scale `1/(1 − derate)`.
    scale: f64,
    stall: Option<Stall>,
    /// Sorted windows that *freeze* the stage: all outages when the
    /// policy is `Block`, none otherwise.
    freezes: Vec<(f64, f64)>,
    /// Sorted outage windows (policy checks for `Drop`/`Retry`).
    outages: Vec<(f64, f64)>,
    drop_on_outage: bool,
    retry: Option<(f64, f64)>,
}

impl StageRt {
    fn has_windows(&self) -> bool {
        self.stall.is_some() || !self.freezes.is_empty()
    }
}

/// Runtime fault schedule shared by the thinned and reference engines.
/// Construction is deterministic in the schedule (offsets come from
/// `FaultSchedule::seed`, not the simulation RNG).
#[derive(Clone, Debug)]
pub(crate) struct FaultRt {
    stages: Vec<StageRt>,
}

impl FaultRt {
    /// Build the runtime form, or `None` when the schedule is trivial —
    /// the engines then take the exact fault-free code path, which is
    /// what makes the zero-fault bit-identity hold by construction.
    ///
    /// The schedule must already be validated.
    pub(crate) fn build(schedule: &FaultSchedule, n_stages: usize) -> Option<FaultRt> {
        debug_assert_eq!(schedule.stages.len(), n_stages);
        if schedule.is_trivial() {
            return None;
        }
        let stages = schedule
            .stages
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let stall = s.stall.filter(|sp| sp.budget > 0.0).map(|sp| {
                    // Phase offset in [0, period − budget]: windows sit
                    // whole inside periods, so any interval of length t
                    // overlaps at most ⌊t/p⌋ + 1 windows — the premise
                    // of the degraded-curve derivation.
                    let mut rng = ChaCha8Rng::seed_from_u64(
                        schedule.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let off = Dist::Uniform {
                        lo: 0.0,
                        hi: sp.period - sp.budget,
                    }
                    .sample(&mut rng);
                    Stall {
                        off,
                        budget: sp.budget,
                        period: sp.period,
                    }
                });
                let mut outages: Vec<(f64, f64)> = s
                    .outages
                    .iter()
                    .filter(|o| o.duration > 0.0)
                    .map(|o| (o.start, o.start + o.duration))
                    .collect();
                outages.sort_by(|a, b| a.0.total_cmp(&b.0));
                let freezes = if matches!(s.recovery, RecoveryPolicy::Block) {
                    outages.clone()
                } else {
                    Vec::new()
                };
                StageRt {
                    scale: 1.0 / (1.0 - s.derate),
                    stall,
                    freezes,
                    outages,
                    drop_on_outage: matches!(s.recovery, RecoveryPolicy::Drop),
                    retry: match s.recovery {
                        RecoveryPolicy::Retry { base, cap } => Some((base, cap)),
                        _ => None,
                    },
                }
            })
            .collect();
        Some(FaultRt { stages })
    }

    /// Scale every stage's execution-time parameters by its derate
    /// factor (before sampling/quantization, so all engines agree).
    pub(crate) fn apply_derates(&self, params: &mut [NodeParams]) {
        for (p, s) in params.iter_mut().zip(&self.stages) {
            p.exec_min *= s.scale;
            p.exec_max *= s.scale;
            p.exec_avg *= s.scale;
        }
    }

    /// Total occupancy duration of work of length `dur` started at
    /// `t0`, extended across every freeze window it straddles. With no
    /// windows this returns exactly `dur` (same f64 value), preserving
    /// the fault-free arithmetic per stage.
    pub(crate) fn extend(&self, i: usize, t0: f64, dur: f64) -> f64 {
        let st = &self.stages[i];
        if !st.has_windows() {
            return dur;
        }
        let mut t = t0;
        let mut work = dur;
        let mut total = 0.0f64;
        loop {
            if let Some(end) = freeze_end(st, t) {
                total += end - t;
                t = end;
                continue;
            }
            let nxt = next_freeze_start(st, t);
            if t + work <= nxt {
                return total + work;
            }
            total += nxt - t;
            work -= nxt - t;
            t = nxt;
        }
    }

    /// Is `t` inside one of stage `i`'s outage windows?
    pub(crate) fn in_outage(&self, i: usize, t: f64) -> bool {
        self.stages[i].outages.iter().any(|&(s, e)| t >= s && t < e)
    }

    /// Does stage `i` drop jobs during outages?
    pub(crate) fn drops(&self, i: usize) -> bool {
        self.stages[i].drop_on_outage
    }

    /// Retry backoff `(base, cap)` if stage `i` retries on outage.
    pub(crate) fn retry_params(&self, i: usize) -> Option<(f64, f64)> {
        self.stages[i].retry
    }

    /// Quantize to the integer-tick mirror used by the deterministic
    /// engine. `q` is the engine's seconds→ticks quantizer.
    pub(crate) fn to_ticks(&self, q: impl Fn(f64) -> u64) -> FaultRtTicks {
        let mut horizon = 0u64;
        let stages = self
            .stages
            .iter()
            .map(|s| {
                let stall = s.stall.and_then(|sp| {
                    let b = q(sp.budget);
                    if b == 0 {
                        return None;
                    }
                    horizon = u64::MAX; // recurring forever: never jump
                    Some((q(sp.off), b, q(sp.period).max(b + 1)))
                });
                let win = |v: &[(f64, f64)]| -> Vec<(u64, u64)> {
                    v.iter()
                        .map(|&(ws, we)| (q(ws), q(we)))
                        .filter(|&(ws, we)| we > ws)
                        .collect()
                };
                let freezes = win(&s.freezes);
                let outages = win(&s.outages);
                for &(_, we) in freezes.iter().chain(&outages) {
                    if horizon != u64::MAX && we > horizon {
                        horizon = we;
                    }
                }
                StageRtTicks {
                    freezes,
                    outages,
                    stall,
                    drop_on_outage: s.drop_on_outage,
                    retry: s.retry.map(|(b, c)| (q(b).max(1), q(c).max(1))),
                }
            })
            .collect();
        FaultRtTicks { stages, horizon }
    }
}

/// Latest end among freeze windows containing `t` (stall + outages).
fn freeze_end(st: &StageRt, t: f64) -> Option<f64> {
    let mut end: Option<f64> = None;
    if let Some(s) = &st.stall {
        if t >= s.off {
            let k = ((t - s.off) / s.period).floor();
            let start = s.off + k * s.period;
            if t < start + s.budget {
                end = Some(start + s.budget);
            }
        }
    }
    for &(ws, we) in &st.freezes {
        if t >= ws && t < we && end.is_none_or(|e| we > e) {
            end = Some(we);
        }
    }
    end
}

/// Earliest freeze-window start strictly after `t`.
fn next_freeze_start(st: &StageRt, t: f64) -> f64 {
    let mut nxt = f64::INFINITY;
    if let Some(s) = &st.stall {
        let mut cand = if t < s.off {
            s.off
        } else {
            let k = ((t - s.off) / s.period).floor();
            s.off + k * s.period
        };
        // Strict advance: `floor` rounding can land one period low and
        // `c + period` can round back to exactly `t`, which would stall
        // the curtailment loop. Step until strictly ahead.
        while cand <= t {
            cand += s.period;
        }
        nxt = cand;
    }
    for &(ws, _) in &st.freezes {
        if ws > t {
            nxt = nxt.min(ws);
            break;
        }
    }
    nxt
}

// ---------------------------------------------------------------------
// Integer-tick mirror (deterministic engine).
// ---------------------------------------------------------------------

/// Per-stage fault state in ticks.
#[derive(Clone, Debug)]
pub(crate) struct StageRtTicks {
    stall: Option<(u64, u64, u64)>, // (off, budget, period)
    freezes: Vec<(u64, u64)>,
    outages: Vec<(u64, u64)>,
    drop_on_outage: bool,
    retry: Option<(u64, u64)>,
}

impl StageRtTicks {
    fn has_windows(&self) -> bool {
        self.stall.is_some() || !self.freezes.is_empty()
    }
}

/// Integer-tick fault schedule for `det.rs`, plus the *fault horizon*:
/// the first tick after which no fault can ever apply (`u64::MAX` for
/// periodic stalls, which recur forever). Cycle-jump fast-forward is
/// gated on `now ≥ horizon`: beyond it the evolution is time-shift
/// invariant again, so fingerprint recurrences are sound.
#[derive(Clone, Debug)]
pub(crate) struct FaultRtTicks {
    stages: Vec<StageRtTicks>,
    pub(crate) horizon: u64,
}

impl FaultRtTicks {
    /// Tick analogue of [`FaultRt::extend`]: exact integer arithmetic.
    pub(crate) fn extend(&self, i: usize, t0: u64, dur: u64) -> u64 {
        let st = &self.stages[i];
        if !st.has_windows() {
            return dur;
        }
        let mut t = t0;
        let mut work = dur;
        let mut total = 0u64;
        loop {
            if let Some(end) = tick_freeze_end(st, t) {
                total += end - t;
                t = end;
                continue;
            }
            let nxt = tick_next_freeze_start(st, t);
            if nxt.is_none_or(|n| t + work <= n) {
                return total + work;
            }
            let n = nxt.unwrap();
            total += n - t;
            work -= n - t;
            t = n;
        }
    }

    pub(crate) fn in_outage(&self, i: usize, t: u64) -> bool {
        self.stages[i].outages.iter().any(|&(s, e)| t >= s && t < e)
    }

    pub(crate) fn drops(&self, i: usize) -> bool {
        self.stages[i].drop_on_outage
    }

    pub(crate) fn retry_params(&self, i: usize) -> Option<(u64, u64)> {
        self.stages[i].retry
    }

    /// Any stage dropping jobs during an outage (enables the scaled
    /// in-flight denominator in the deterministic engine).
    pub(crate) fn any_drops(&self) -> bool {
        self.stages
            .iter()
            .any(|s| s.drop_on_outage && !s.outages.is_empty())
    }
}

fn tick_freeze_end(st: &StageRtTicks, t: u64) -> Option<u64> {
    let mut end: Option<u64> = None;
    if let Some((off, b, p)) = st.stall {
        if t >= off {
            let start = off + (t - off) / p * p;
            if t < start + b {
                end = Some(start + b);
            }
        }
    }
    for &(ws, we) in &st.freezes {
        if t >= ws && t < we && end.is_none_or(|e| we > e) {
            end = Some(we);
        }
    }
    end
}

fn tick_next_freeze_start(st: &StageRtTicks, t: u64) -> Option<u64> {
    let mut nxt: Option<u64> = None;
    if let Some((off, _, p)) = st.stall {
        let cand = if t < off {
            off
        } else {
            let c = off + (t - off) / p * p;
            if c <= t {
                c + p
            } else {
                c
            }
        };
        nxt = Some(cand);
    }
    for &(ws, _) in &st.freezes {
        if ws > t {
            nxt = Some(nxt.map_or(ws, |n| n.min(ws)));
            break;
        }
    }
    nxt
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(stage: StageFault) -> FaultRt {
        FaultRt::build(
            &FaultSchedule {
                seed: 42,
                stages: vec![stage],
            },
            1,
        )
        .expect("non-trivial")
    }

    #[test]
    fn trivial_schedule_builds_to_none() {
        assert!(FaultRt::build(&FaultSchedule::none(3), 3).is_none());
        let mut s = FaultSchedule::none(2);
        s.stages[1].outages.push(Outage {
            start: 1.0,
            duration: 0.0,
        });
        assert!(s.is_trivial());
        assert!(FaultRt::build(&s, 2).is_none());
        s.stages[0].derate = 0.25;
        assert!(FaultRt::build(&s, 2).is_some());
    }

    #[test]
    fn extend_without_windows_is_exact_identity() {
        let fr = one(StageFault {
            derate: 0.5,
            ..StageFault::default()
        });
        let dur = 0.123_456_789_f64;
        assert_eq!(fr.extend(0, 7.77, dur), dur);
    }

    #[test]
    fn extend_straddles_block_outage() {
        let fr = one(StageFault {
            outages: vec![Outage {
                start: 10.0,
                duration: 2.0,
            }],
            ..StageFault::default()
        });
        // Work [9, 10) runs, freezes [10, 12), finishes at 12.5:
        // total occupancy 3.5 for 1.5 s of work.
        assert!((fr.extend(0, 9.0, 1.5) - 3.5).abs() < 1e-12);
        // Started inside the window: frozen to 12, then works.
        assert!((fr.extend(0, 11.0, 0.5) - 1.5).abs() < 1e-12);
        // Entirely before or after: identity.
        assert_eq!(fr.extend(0, 0.0, 1.0), 1.0);
        assert_eq!(fr.extend(0, 12.0, 1.0), 1.0);
        // Completion exactly at the window start is allowed.
        assert_eq!(fr.extend(0, 9.0, 1.0), 1.0);
    }

    #[test]
    fn extend_accumulates_periodic_stalls() {
        // budget 1 per period 10; work of 25 s starting at the offset
        // crosses at least two further windows.
        let fr = one(StageFault {
            stall: Some(StallSpec {
                budget: 1.0,
                period: 10.0,
            }),
            ..StageFault::default()
        });
        let total = fr.extend(0, 0.0, 25.0);
        assert!(
            (27.0 - 1e-9..=28.0 + 1e-9).contains(&total),
            "total {total}"
        );
        // And the worst-case bound s·(t/p + 1) is respected.
        assert!(total - 25.0 <= 1.0 * (25.0 / 10.0 + 1.0) + 1e-9);
    }

    #[test]
    fn outage_checks_respect_policy() {
        let fr = one(StageFault {
            outages: vec![Outage {
                start: 5.0,
                duration: 1.0,
            }],
            recovery: RecoveryPolicy::Drop,
            ..StageFault::default()
        });
        assert!(fr.drops(0));
        assert!(fr.in_outage(0, 5.5));
        assert!(!fr.in_outage(0, 6.0)); // half-open
        assert!(fr.retry_params(0).is_none());
        // Drop-policy outages do not freeze execution.
        assert_eq!(fr.extend(0, 4.5, 1.0), 1.0);
    }

    #[test]
    fn tick_mirror_matches_f64_semantics() {
        let fr = one(StageFault {
            stall: Some(StallSpec {
                budget: 0.5,
                period: 4.0,
            }),
            outages: vec![Outage {
                start: 20.0,
                duration: 3.0,
            }],
            ..StageFault::default()
        });
        let q = |s: f64| (s * 1024.0).round() as u64; // coarse test quantizer
        let ft = fr.to_ticks(q);
        assert_eq!(ft.horizon, u64::MAX); // stall present: never jump
        for (t0, dur) in [(0.0, 10.0), (19.0, 4.0), (21.0, 0.25)] {
            let f = fr.extend(0, t0, dur);
            let t = ft.extend(0, q(t0), q(dur));
            assert!(
                (f - t as f64 / 1024.0).abs() < 0.01,
                "t0={t0} dur={dur}: {f} vs {}",
                t as f64 / 1024.0
            );
        }
        assert!(ft.in_outage(0, q(21.0)));
        assert!(!ft.in_outage(0, q(23.0)));
    }

    #[test]
    fn horizon_is_last_outage_end_without_stalls() {
        let fr = one(StageFault {
            outages: vec![
                Outage {
                    start: 5.0,
                    duration: 1.0,
                },
                Outage {
                    start: 30.0,
                    duration: 2.0,
                },
            ],
            ..StageFault::default()
        });
        let q = |s: f64| (s * 1024.0).round() as u64;
        assert_eq!(fr.to_ticks(q).horizon, q(32.0));
        // Derate-only schedules have horizon 0: jumping allowed always.
        let dr = one(StageFault {
            derate: 0.1,
            ..StageFault::default()
        });
        assert_eq!(dr.to_ticks(q).horizon, 0);
    }

    #[test]
    fn validation_catches_each_error_class() {
        let mut s = FaultSchedule::none(2);
        assert_eq!(
            s.validate(3),
            Err(ConfigError::FaultStageCount {
                expected: 3,
                got: 2
            })
        );
        s.stages[0].derate = 1.0;
        assert_eq!(s.validate(2), Err(ConfigError::BadDerate { stage: 0 }));
        s.stages[0].derate = 0.0;
        s.stages[1].stall = Some(StallSpec {
            budget: 2.0,
            period: 2.0,
        });
        assert_eq!(
            s.validate(2),
            Err(ConfigError::StallExceedsPeriod { stage: 1 })
        );
        s.stages[1].stall = Some(StallSpec {
            budget: 0.1,
            period: 0.0,
        });
        assert_eq!(
            s.validate(2),
            Err(ConfigError::ZeroStallPeriod { stage: 1 })
        );
        s.stages[1].stall = None;
        s.stages[0].outages = vec![
            Outage {
                start: 0.0,
                duration: 2.0,
            },
            Outage {
                start: 1.0,
                duration: 1.0,
            },
        ];
        assert_eq!(
            s.validate(2),
            Err(ConfigError::OverlappingOutages { stage: 0 })
        );
        s.stages[0].outages.clear();
        s.stages[0].recovery = RecoveryPolicy::Retry {
            base: 0.0,
            cap: 1.0,
        };
        assert_eq!(
            s.validate(2),
            Err(ConfigError::BadRetryBackoff { stage: 0 })
        );
        s.stages[0].recovery = RecoveryPolicy::Block;
        assert_eq!(s.validate(2), Ok(()));
    }

    #[test]
    fn serde_roundtrip_with_sparse_json() {
        // Sparse JSON: defaults fill derate/stall/outages/recovery.
        let js = r#"{"seed": 7, "stages": [{}, {"derate": 0.25,
            "stall": {"budget": 0.001, "period": 0.01},
            "outages": [{"start": 1.0, "duration": 0.5}],
            "recovery": {"Retry": {"base": 0.001, "cap": 0.008}}}]}"#;
        let s: FaultSchedule = serde_json::from_str(js).unwrap();
        assert_eq!(s.stages[0], StageFault::default());
        assert_eq!(s.stages[1].derate, 0.25);
        assert!(matches!(s.stages[1].recovery, RecoveryPolicy::Retry { .. }));
        let back: FaultSchedule =
            serde_json::from_str(&serde_json::to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
        assert_eq!(s.validate(2), Ok(()));
    }
}

//! Cross-model integration tests: network calculus, queueing theory,
//! and the discrete-event simulator must agree wherever their
//! assumptions overlap — each model checks the others.

use streamcalc::core::num::Rat;
use streamcalc::core::pipeline::{Node, NodeKind, Pipeline, Source, StageRates};
use streamcalc::core::Regime;
use streamcalc::queueing::{analyze_tandem, Mg1, Mm1, TandemStage};
use streamcalc::streamsim::{simulate, SimConfig};

fn single_stage(rate_min: i64, rate_max: i64, source: i64, job: i64) -> Pipeline {
    Pipeline::new(
        "cross",
        Source {
            rate: Rat::int(source),
            burst: Rat::int(job),
        },
        vec![Node::new(
            "stage",
            NodeKind::Compute,
            StageRates::new(
                Rat::int(rate_min),
                Rat::int((rate_min + rate_max) / 2),
                Rat::int(rate_max),
            ),
            Rat::ZERO,
            Rat::int(job),
            Rat::int(job),
        )],
    )
}

#[test]
fn all_three_models_agree_on_the_bottleneck() {
    // Underloaded: throughput = offered rate in every model.
    let p = single_stage(900, 1100, 500, 1000);
    let m = p.build_model();
    assert_eq!(m.regime(), Regime::Underloaded);

    let tandem = analyze_tandem(
        500.0,
        &[TandemStage {
            name: "stage".into(),
            rate: 1000.0,
        }],
        1000.0,
    )
    .unwrap();
    assert_eq!(tandem.roofline, 500.0);

    let sim = simulate(
        &p,
        &SimConfig {
            seed: 3,
            total_input: 1_000_000,
            source_chunk: Some(1000),
            queue_capacity: None,
            queue_capacities: None,
            service_model: nc_streamsim::ServiceModel::Uniform,
            trace: false,
            fast_forward: true,
        },
    );
    assert!(
        (sim.throughput - 500.0).abs() / 500.0 < 0.05,
        "{}",
        sim.throughput
    );
    // NC throughput bracket contains both.
    let tb = m.throughput_over(Rat::int(100));
    assert!(tb.lower.to_f64() <= sim.throughput * 1.02);
    assert!(tb.upper.to_f64() >= sim.throughput * 0.98);
}

#[test]
fn mm1_and_mg1_bracket_uniform_service_sim() {
    // A single stage with uniform service, Poisson-ish offered load is
    // approximated by deterministic arrivals in our sim; the M/G/1
    // P-K mean number in system for uniform service must be *below*
    // M/M/1's (less service variability). Cross-check the formulas.
    let lambda = 0.8;
    let (lo, hi) = (0.8, 1.2); // mean service 1.0
    let mm1 = Mm1::new(lambda, 1.0).unwrap();
    let mu1 = Mg1::uniform(lambda, lo, hi).unwrap();
    let md1 = Mg1::deterministic(lambda, 1.0).unwrap();
    assert!(md1.l < mu1.l && mu1.l < mm1.l);
    // All obey Little's law.
    for (l, w) in [(mm1.l, mm1.w), (mu1.l, mu1.w), (md1.l, md1.w)] {
        assert!((l - lambda * w).abs() < 1e-9);
    }
}

#[test]
fn nc_overload_matches_queueing_instability() {
    // R_α > R_β in NC ⟺ ρ > 1 in queueing: both diverge.
    let p = single_stage(900, 1100, 1500, 1000);
    let m = p.build_model();
    assert_eq!(m.regime(), Regime::Overloaded);
    assert!(m.backlog_bound().is_infinite());
    assert!(Mm1::new(1500.0 / 1000.0, 1.0).is_err());
}

#[test]
fn queueing_roofline_equals_nc_avg_bottleneck() {
    // On the BLAST model, the [12] roofline equals the min normalized
    // average rate that nc-core computes.
    let m = streamcalc::apps::blast::isolated_pipeline().build_model();
    let stages: Vec<TandemStage> = m
        .per_node
        .iter()
        .map(|n| TandemStage {
            name: n.name.clone(),
            rate: n.rate_avg.to_f64(),
        })
        .collect();
    let t = analyze_tandem(1e15, &stages, 1048576.0).unwrap();
    assert!((t.roofline - m.bottleneck_rate_avg.to_f64()).abs() < 1.0);
    assert_eq!(t.bottleneck, "seed_match");
}

#[test]
fn des_validates_nc_delay_on_deterministic_stage() {
    // Deterministic service: NC delay bound should be nearly tight.
    let p = single_stage(1000, 1000, 900, 1000);
    let m = p.build_model();
    let sim = simulate(
        &p,
        &SimConfig {
            seed: 1,
            total_input: 500_000,
            source_chunk: Some(1000),
            queue_capacity: None,
            queue_capacities: None,
            service_model: nc_streamsim::ServiceModel::Uniform,
            trace: false,
            fast_forward: true,
        },
    );
    let bound = m.delay_bound_concat().to_f64();
    assert!(sim.delay_max <= bound * (1.0 + 1e-9));
    // Tightness: the bound is within 3x of the observed worst case
    // (it covers the full burst; the sim feeds steadily).
    assert!(
        bound <= sim.delay_max * 3.0,
        "bound {bound} vs sim {}",
        sim.delay_max
    );
}

//! Hash-consed curve interning and memoized min-plus operators.
//!
//! Parameter sweeps evaluate the same pipeline model at hundreds of
//! grid points that differ in one or two stage parameters; most of the
//! expensive min-plus work (`⊗`, `⊘`, closures) is re-done on operands
//! that are *identical curves*. This module removes that redundancy in
//! two layers:
//!
//! 1. **Hash-consing**: [`CurveCache::intern`] maps every structurally
//!    distinct [`Curve`] to a unique `Arc<Curve>` ([`CurveRef`]). Two
//!    curves that are the same function — regardless of how they were
//!    produced — intern to the same allocation, so identity (pointer)
//!    comparison afterwards is exact function equality.
//! 2. **Memoization**: [`CurveCache::conv`], [`CurveCache::deconv`] and
//!    [`CurveCache::closure`] key a memo table on the operands'
//!    *identities*. Because identity implies structural equality (the
//!    interner holds every `Arc` alive for the cache's lifetime, so
//!    pointers are never reused for different curves), a memo hit is
//!    guaranteed to return exactly what the underlying exact algorithm
//!    would compute — there is no approximation anywhere in this layer,
//!    a property the `prop_curves` suite checks on random curves.
//!
//! Caches are deliberately `!Sync`: parallel sweeps give each worker
//! thread its own cache (e.g. via `rayon`'s `map_init`), which avoids
//! lock contention on the hot path and keeps results independent of
//! thread scheduling — sweep output is byte-identical under any
//! `RAYON_NUM_THREADS`.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};
use std::ops::Deref;
use std::sync::Arc;

use crate::bounds::{backlog_bound, delay_bound};
use crate::curve::{shapes, Curve};
use crate::num::{Rat, Value};
use crate::ops::closure::{subadditive_closure, Closure};
use crate::ops::{min_plus_conv, min_plus_deconv};
use crate::packetizer;

/// A fast, non-cryptographic hasher (the multiply-rotate scheme used by
/// `rustc`'s FxHash). The cache maps are hot — every memoized operator
/// call hashes its operand curves — and need no DoS resistance, so the
/// default SipHash is pure overhead here.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_ne_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_ne_bytes(buf));
        }
    }
    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add(n as u64);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]-backed maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A hash-consed handle to an interned curve: cheap to clone, and equal
/// identities ⇔ equal curves (within one [`CurveCache`]).
#[derive(Clone)]
pub struct CurveRef(Arc<Curve>);

impl CurveRef {
    /// Identity of the interned allocation. Stable for the lifetime of
    /// the cache that produced this handle.
    pub fn id(&self) -> usize {
        Arc::as_ptr(&self.0) as usize
    }

    /// The underlying curve.
    pub fn curve(&self) -> &Curve {
        &self.0
    }
}

impl Deref for CurveRef {
    type Target = Curve;
    fn deref(&self) -> &Curve {
        &self.0
    }
}

impl PartialEq for CurveRef {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}
impl Eq for CurveRef {}

impl std::fmt::Debug for CurveRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CurveRef#{:x}({:?})", self.id(), self.0)
    }
}

/// Hit/miss counters for every memoized operator, plus the interner and
/// pipeline-prefix statistics. Aggregate across per-thread caches with
/// [`CacheStats::merge`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct CacheStats {
    /// Structurally distinct curves interned.
    pub interned: u64,
    /// `conv` results served from the memo table.
    pub conv_hits: u64,
    /// `conv` results computed by the underlying algorithm.
    pub conv_misses: u64,
    /// `deconv` results served from the memo table.
    pub deconv_hits: u64,
    /// `deconv` results computed.
    pub deconv_misses: u64,
    /// `closure` results served from the memo table.
    pub closure_hits: u64,
    /// `closure` results computed.
    pub closure_misses: u64,
    /// Packetized service curves served from the memo table.
    pub pack_hits: u64,
    /// Packetized service curves constructed.
    pub pack_misses: u64,
    /// Backlog/delay bound values served from the memo table.
    pub bound_hits: u64,
    /// Backlog/delay bound values computed.
    pub bound_misses: u64,
    /// Scalar-keyed canonical shapes (`lb_ref`/`rl_ref`) served from the
    /// memo table — the admission decision path's fast lane.
    pub shape_hits: u64,
    /// Scalar-keyed canonical shapes constructed and interned.
    pub shape_misses: u64,
    /// Pipeline cascade prefixes reused by
    /// [`crate::pipeline::Pipeline::build_model_cached`].
    pub prefix_hits: u64,
    /// Pipeline cascade prefixes analyzed from scratch.
    pub prefix_misses: u64,
}

impl CacheStats {
    /// Total memo hits across all operators (prefix reuse excluded).
    pub fn op_hits(&self) -> u64 {
        self.conv_hits
            + self.deconv_hits
            + self.closure_hits
            + self.pack_hits
            + self.bound_hits
            + self.shape_hits
    }

    /// Total memo misses across all operators.
    pub fn op_misses(&self) -> u64 {
        self.conv_misses
            + self.deconv_misses
            + self.closure_misses
            + self.pack_misses
            + self.bound_misses
            + self.shape_misses
    }

    /// Element-wise sum, for aggregating per-thread caches.
    pub fn merge(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            interned: self.interned + other.interned,
            conv_hits: self.conv_hits + other.conv_hits,
            conv_misses: self.conv_misses + other.conv_misses,
            deconv_hits: self.deconv_hits + other.deconv_hits,
            deconv_misses: self.deconv_misses + other.deconv_misses,
            closure_hits: self.closure_hits + other.closure_hits,
            closure_misses: self.closure_misses + other.closure_misses,
            pack_hits: self.pack_hits + other.pack_hits,
            pack_misses: self.pack_misses + other.pack_misses,
            bound_hits: self.bound_hits + other.bound_hits,
            bound_misses: self.bound_misses + other.bound_misses,
            shape_hits: self.shape_hits + other.shape_hits,
            shape_misses: self.shape_misses + other.shape_misses,
            prefix_hits: self.prefix_hits + other.prefix_hits,
            prefix_misses: self.prefix_misses + other.prefix_misses,
        }
    }
}

/// Provider of the min-plus operators used by model construction.
///
/// [`DirectOps`] computes every call from scratch; [`CurveCache`]
/// interns the operands and memoizes. Both return exactly the same
/// curves, so callers can be written once and run either way.
pub trait CurveOps {
    /// Min-plus convolution `f ⊗ g`.
    fn conv(&mut self, f: &Curve, g: &Curve) -> Curve;
    /// Min-plus deconvolution `f ⊘ g`.
    fn deconv(&mut self, f: &Curve, g: &Curve) -> Curve;
    /// Packetized rate-latency service curve
    /// `β'(t) = [rate · (t − latency) − l_out]⁺`
    /// (see [`crate::packetizer::packetize_service`]). Memoizable on the
    /// three scalars, which recur heavily across sweep grid points.
    fn packetized_service(&mut self, rate: Rat, latency: Rat, l_out: Rat) -> Curve;
    /// Backlog bound `sup (f − g)` (see [`crate::bounds::backlog_bound`]).
    fn backlog(&mut self, f: &Curve, g: &Curve) -> Value;
    /// Delay bound (horizontal deviation; see
    /// [`crate::bounds::delay_bound`]).
    fn delay(&mut self, f: &Curve, g: &Curve) -> Value;
}

fn packetize_direct(rate: Rat, latency: Rat, l_out: Rat) -> Curve {
    packetizer::packetize_service(&shapes::rate_latency(rate, latency), l_out)
}

/// The uncached operator provider: every call runs the exact algorithm.
#[derive(Clone, Copy, Debug, Default)]
pub struct DirectOps;

impl CurveOps for DirectOps {
    fn conv(&mut self, f: &Curve, g: &Curve) -> Curve {
        min_plus_conv(f, g)
    }
    fn deconv(&mut self, f: &Curve, g: &Curve) -> Curve {
        min_plus_deconv(f, g)
    }
    fn packetized_service(&mut self, rate: Rat, latency: Rat, l_out: Rat) -> Curve {
        packetize_direct(rate, latency, l_out)
    }
    fn backlog(&mut self, f: &Curve, g: &Curve) -> Value {
        backlog_bound(f, g)
    }
    fn delay(&mut self, f: &Curve, g: &Curve) -> Value {
        delay_bound(f, g)
    }
}

/// Hash-consing interner plus memo tables for `⊗`, `⊘` and the
/// sub-additive closure. See the module docs for the soundness
/// argument; intended use is one cache per worker thread.
#[derive(Default)]
pub struct CurveCache {
    interner: HashSet<Arc<Curve>, FxBuildHasher>,
    conv: HashMap<(usize, usize), CurveRef, FxBuildHasher>,
    deconv: HashMap<(usize, usize), CurveRef, FxBuildHasher>,
    closure: HashMap<(usize, usize), (CurveRef, bool, usize), FxBuildHasher>,
    pack: HashMap<(Rat, Rat, Rat), CurveRef, FxBuildHasher>,
    lb: HashMap<(Rat, Rat), CurveRef, FxBuildHasher>,
    rl: HashMap<(Rat, Rat), CurveRef, FxBuildHasher>,
    backlog: HashMap<(usize, usize), Value, FxBuildHasher>,
    delay: HashMap<(usize, usize), Value, FxBuildHasher>,
    stats: CacheStats,
}

impl CurveCache {
    /// An empty cache.
    pub fn new() -> CurveCache {
        CurveCache::default()
    }

    /// Intern a curve: returns the unique shared handle for this exact
    /// function, cloning the curve only the first time it is seen.
    pub fn intern(&mut self, c: &Curve) -> CurveRef {
        if let Some(existing) = self.interner.get(c) {
            return CurveRef(Arc::clone(existing));
        }
        let arc = Arc::new(c.clone());
        self.interner.insert(Arc::clone(&arc));
        self.stats.interned += 1;
        CurveRef(arc)
    }

    /// Memoized `f ⊗ g` on interned handles. Convolution is
    /// commutative, so the key is order-normalized and `g ⊗ f` hits the
    /// same entry.
    pub fn conv_ref(&mut self, f: &CurveRef, g: &CurveRef) -> CurveRef {
        let (a, b) = (f.id().min(g.id()), f.id().max(g.id()));
        if let Some(r) = self.conv.get(&(a, b)) {
            self.stats.conv_hits += 1;
            return r.clone();
        }
        self.stats.conv_misses += 1;
        let out = min_plus_conv(f.curve(), g.curve());
        let r = self.intern(&out);
        self.conv.insert((a, b), r.clone());
        r
    }

    /// Memoized `f ⊘ g` on interned handles (not commutative: the key
    /// is ordered).
    pub fn deconv_ref(&mut self, f: &CurveRef, g: &CurveRef) -> CurveRef {
        let key = (f.id(), g.id());
        if let Some(r) = self.deconv.get(&key) {
            self.stats.deconv_hits += 1;
            return r.clone();
        }
        self.stats.deconv_misses += 1;
        let out = min_plus_deconv(f.curve(), g.curve());
        let r = self.intern(&out);
        self.deconv.insert(key, r.clone());
        r
    }

    /// Memoized sub-additive closure, keyed on `(curve, max_iter)`.
    pub fn closure_ref(&mut self, f: &CurveRef, max_iter: usize) -> Closure {
        let key = (f.id(), max_iter);
        if let Some((c, converged, iterations)) = self.closure.get(&key) {
            self.stats.closure_hits += 1;
            return Closure {
                curve: c.curve().clone(),
                converged: *converged,
                iterations: *iterations,
            };
        }
        self.stats.closure_misses += 1;
        let out = subadditive_closure(f.curve(), max_iter);
        let r = self.intern(&out.curve);
        self.closure.insert(key, (r, out.converged, out.iterations));
        out
    }

    /// Convenience: intern-then-closure on a plain curve.
    pub fn closure(&mut self, f: &Curve, max_iter: usize) -> Closure {
        let fr = self.intern(f);
        self.closure_ref(&fr, max_iter)
    }

    /// Interned leaky bucket `γ_{r,b}` keyed on the two scalars — the
    /// admission decision path's fast lane. A hit costs one small-key
    /// map probe plus an `Arc` clone: no curve is constructed, hashed,
    /// or allocated, unlike [`CurveCache::intern`], which must hash the
    /// full breakpoint vector of an already-built curve.
    pub fn lb_ref(&mut self, rate: Rat, burst: Rat) -> CurveRef {
        if let Some(r) = self.lb.get(&(rate, burst)) {
            self.stats.shape_hits += 1;
            return r.clone();
        }
        self.stats.shape_misses += 1;
        let r = self.intern(&shapes::leaky_bucket(rate, burst));
        self.lb.insert((rate, burst), r.clone());
        r
    }

    /// Interned rate-latency `β_{R,T}` keyed on the two scalars (see
    /// [`CurveCache::lb_ref`]). This is how the admission engine builds
    /// suffix service concatenations: `RL(R₁,T₁) ⊗ RL(R₂,T₂) =
    /// RL(min R, T₁+T₂)` in closed form, skipping the general `⊗`
    /// strategy grid entirely.
    pub fn rl_ref(&mut self, rate: Rat, latency: Rat) -> CurveRef {
        if let Some(r) = self.rl.get(&(rate, latency)) {
            self.stats.shape_hits += 1;
            return r.clone();
        }
        self.stats.shape_misses += 1;
        let r = self.intern(&shapes::rate_latency(rate, latency));
        self.rl.insert((rate, latency), r.clone());
        r
    }

    /// Memoized backlog bound on interned handles: identity-keyed, so a
    /// hit never re-hashes curve contents.
    pub fn backlog_ref(&mut self, f: &CurveRef, g: &CurveRef) -> Value {
        let key = (f.id(), g.id());
        if let Some(&v) = self.backlog.get(&key) {
            self.stats.bound_hits += 1;
            return v;
        }
        self.stats.bound_misses += 1;
        let v = backlog_bound(f.curve(), g.curve());
        self.backlog.insert(key, v);
        v
    }

    /// Memoized delay bound on interned handles (see
    /// [`CurveCache::backlog_ref`]).
    pub fn delay_ref(&mut self, f: &CurveRef, g: &CurveRef) -> Value {
        let key = (f.id(), g.id());
        if let Some(&v) = self.delay.get(&key) {
            self.stats.bound_hits += 1;
            return v;
        }
        self.stats.bound_misses += 1;
        let v = delay_bound(f.curve(), g.curve());
        self.delay.insert(key, v);
        v
    }

    /// Counters accumulated since construction.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Mutable access to the counters (used by the pipeline prefix memo
    /// to account its hits alongside the operator counters).
    pub(crate) fn stats_mut(&mut self) -> &mut CacheStats {
        &mut self.stats
    }
}

impl CurveOps for CurveCache {
    fn conv(&mut self, f: &Curve, g: &Curve) -> Curve {
        let (fr, gr) = (self.intern(f), self.intern(g));
        self.conv_ref(&fr, &gr).curve().clone()
    }
    fn deconv(&mut self, f: &Curve, g: &Curve) -> Curve {
        let (fr, gr) = (self.intern(f), self.intern(g));
        self.deconv_ref(&fr, &gr).curve().clone()
    }
    fn packetized_service(&mut self, rate: Rat, latency: Rat, l_out: Rat) -> Curve {
        let key = (rate, latency, l_out);
        if let Some(r) = self.pack.get(&key) {
            self.stats.pack_hits += 1;
            return r.curve().clone();
        }
        self.stats.pack_misses += 1;
        let out = packetize_direct(rate, latency, l_out);
        let r = self.intern(&out);
        self.pack.insert(key, r);
        out
    }
    fn backlog(&mut self, f: &Curve, g: &Curve) -> Value {
        let (fr, gr) = (self.intern(f), self.intern(g));
        self.backlog_ref(&fr, &gr)
    }
    fn delay(&mut self, f: &Curve, g: &Curve) -> Value {
        let (fr, gr) = (self.intern(f), self.intern(g));
        self.delay_ref(&fr, &gr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::shapes;
    use crate::num::Rat;

    fn lb(r: i64, b: i64) -> Curve {
        shapes::leaky_bucket(Rat::int(r), Rat::int(b))
    }
    fn rl(r: i64, t: i64) -> Curve {
        shapes::rate_latency(Rat::int(r), Rat::int(t))
    }

    #[test]
    fn interning_dedups_structural_equals() {
        let mut cache = CurveCache::new();
        let a = cache.intern(&lb(2, 5));
        let b = cache.intern(&lb(2, 5)); // built independently
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        let c = cache.intern(&lb(2, 6));
        assert_ne!(a, c);
        assert_eq!(cache.stats().interned, 2);
    }

    #[test]
    fn conv_memo_hits_and_matches_direct() {
        let mut cache = CurveCache::new();
        let (f, g) = (lb(2, 5), rl(3, 4));
        let first = cache.conv(&f, &g);
        assert_eq!(first, min_plus_conv(&f, &g));
        let again = cache.conv(&f, &g);
        assert_eq!(first, again);
        // Commutative: the swapped order hits the same entry.
        let swapped = cache.conv(&g, &f);
        assert_eq!(first, swapped);
        let s = cache.stats();
        assert_eq!((s.conv_misses, s.conv_hits), (1, 2));
    }

    #[test]
    fn deconv_key_is_ordered() {
        let mut cache = CurveCache::new();
        let (f, g) = (lb(2, 5), rl(3, 4));
        assert_eq!(cache.deconv(&f, &g), min_plus_deconv(&f, &g));
        assert_eq!(cache.deconv(&g, &f), min_plus_deconv(&g, &f));
        let s = cache.stats();
        assert_eq!((s.deconv_misses, s.deconv_hits), (2, 0));
    }

    #[test]
    fn shape_fast_lane_interns_and_memoizes() {
        let mut cache = CurveCache::new();
        let a1 = cache.lb_ref(Rat::int(2), Rat::int(5));
        let a2 = cache.lb_ref(Rat::int(2), Rat::int(5));
        assert_eq!(a1, a2);
        assert_eq!(a1.curve(), &lb(2, 5));
        let b = cache.rl_ref(Rat::int(3), Rat::int(4));
        assert_eq!(b.curve(), &rl(3, 4));
        let s = cache.stats();
        assert_eq!((s.shape_misses, s.shape_hits), (2, 1));
        // The fast lane shares the interner: building the same shape
        // the slow way resolves to the same identity.
        assert_eq!(cache.intern(&lb(2, 5)).id(), a1.id());

        // Identity-keyed bounds on the interned handles agree with the
        // direct computation and hit on repetition.
        let d1 = cache.delay_ref(&a1, &b);
        assert_eq!(d1, crate::bounds::delay_bound(&lb(2, 5), &rl(3, 4)));
        let x1 = cache.backlog_ref(&a1, &b);
        assert_eq!(x1, crate::bounds::backlog_bound(&lb(2, 5), &rl(3, 4)));
        let before = cache.stats().bound_hits;
        let _ = cache.delay_ref(&a1, &b);
        let _ = cache.backlog_ref(&a1, &b);
        assert_eq!(cache.stats().bound_hits, before + 2);
    }

    #[test]
    fn closure_memoized_with_iteration_budget() {
        let mut cache = CurveCache::new();
        let b = rl(3, 2);
        let c1 = cache.closure(&b, 16);
        let c2 = cache.closure(&b, 16);
        assert_eq!(c1.curve, c2.curve);
        assert_eq!(c1.converged, c2.converged);
        assert_eq!(c1.iterations, c2.iterations);
        // A different budget is a different entry.
        let _ = cache.closure(&b, 1);
        let s = cache.stats();
        assert_eq!((s.closure_misses, s.closure_hits), (2, 1));
    }

    #[test]
    fn interned_results_are_shared() {
        let mut cache = CurveCache::new();
        let (f, g) = (cache.intern(&lb(2, 5)), cache.intern(&rl(3, 4)));
        let c1 = cache.conv_ref(&f, &g);
        // The memoized result is itself interned: re-deriving the same
        // curve through a different route reuses the allocation.
        let c2 = cache.intern(&min_plus_conv(&f, &g));
        assert_eq!(c1.id(), c2.id());
    }
}

//! Loom-free stress test for `reconfigure_stage` + `invalidate_suffix`
//! under admission load.
//!
//! The engine API is `&mut self`, so "concurrency" here is the
//! adversarial *interleaving* of operations, not OS threads: a seeded
//! deterministic schedule mixes admission decisions, departures, and
//! stage reconfigurations, and after **every** reconfiguration the
//! engine's incremental state (rebuilt prefixes, suffix-invalidated
//! cache, re-adopted resident flows) is checked for oracle equality —
//! each `peek` must equal a from-scratch, uncached recomputation
//! through the general curve algebra on a shadow copy of the pipeline
//! ([`nc_admit::oracle::decide_full`]). Failed reconfigurations
//! (onboarding rejects the new provisioning) must leave the engine
//! exactly as it was, which the same probe asserts against the
//! unchanged shadow.

use nc_admit::{oracle, AdmissionEngine, ClassId, Decision, FlowClass, Placement};
use nc_core::num::{rat, Rat};
use nc_core::pipeline::{Node, NodeKind, Pipeline, Source, StageRates};

/// splitmix64: deterministic, dependency-free stream of pseudo-random
/// words for the op schedule.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn node(i: usize, rate: i64, job: i64, latency_q: i64) -> Node {
    Node::new(
        format!("s{i}"),
        NodeKind::Compute,
        StageRates::fixed(Rat::int(rate)),
        rat(latency_q as i128, 4),
        Rat::int(job),
        Rat::int(job),
    )
}

fn pipeline(stage_rates: &[i64]) -> Pipeline {
    let nodes = stage_rates
        .iter()
        .enumerate()
        .map(|(i, &r)| node(i, r, 1 + (i as i64 % 3), (i as i64) % 4))
        .collect();
    Pipeline::new(
        "stress",
        Source {
            rate: Rat::int(4),
            burst: Rat::int(8),
        },
        nodes,
    )
}

fn classes() -> Vec<FlowClass> {
    [(2, 3, 40), (5, 1, 12), (1, 8, 96)]
        .into_iter()
        .enumerate()
        .map(|(i, (rate_q, burst_q, dl_q))| FlowClass {
            name: format!("c{i}"),
            rate: rat(rate_q, 4),
            burst: rat(burst_q, 4),
            block: rat(1, 4),
            deadline: rat(dl_q, 4),
        })
        .collect()
}

/// Every `peek` the engine can answer equals the oracle on the shadow
/// pipeline and shadow resident set (local-only tenant: a rejection
/// has no remote fallback to mirror).
#[allow(clippy::too_many_arguments)]
fn assert_oracle_equal(
    engine: &mut AdmissionEngine,
    tenant: nc_admit::TenantId,
    shadow: &Pipeline,
    budget: Option<Rat>,
    classes: &[FlowClass],
    ids: &[ClassId],
    residents: &[(usize, ClassId)],
    context: &str,
) {
    for (ci, &class) in ids.iter().enumerate() {
        for attach in 0..shadow.nodes.len() {
            let got = engine.peek(tenant, class, attach).unwrap();
            let want =
                match oracle::decide_full(shadow, budget, classes, residents, &classes[ci], attach)
                {
                    Ok(bound) => Decision::Admit { bound },
                    Err(reason) => Decision::Reject { reason },
                };
            assert_eq!(
                got, want,
                "{context}: class {ci} attach {attach} diverged from the oracle"
            );
        }
    }
}

/// Returns `(successful, failed)` reconfiguration counts so callers
/// can assert their schedule reached the arm they exist to cover.
fn stress_one_seed(seed: u64, budget_extra: Option<i64>) -> (u32, u32) {
    let mut rng = Rng(seed);
    let local = pipeline(&[24, 9, 16, 30]);
    let n = local.nodes.len();
    let budget = budget_extra.map(|x| local.source.burst + Rat::int(x));

    let mut engine = AdmissionEngine::new();
    let tenant = engine.add_tenant(local.clone(), budget).unwrap();
    let classes = classes();
    let ids: Vec<ClassId> = classes
        .iter()
        .map(|c| engine.register_class(c.clone()).unwrap())
        .collect();

    // Shadow state the oracle sees: the pipeline as reconfigured so
    // far, and the resident (attach, class) pairs in admission order.
    let mut shadow = local;
    let mut residents: Vec<(usize, ClassId)> = Vec::new();
    let mut reconfigs = 0u32;
    let mut failed_reconfigs = 0u32;

    for step in 0..200 {
        match rng.below(5) {
            // Admission decision (committing): engine result must match
            // the oracle, and an admit joins the resident set.
            0..=2 => {
                let ci = rng.below(ids.len() as u64) as usize;
                let attach = rng.below(n as u64) as usize;
                let got = engine.decide(tenant, ids[ci], attach).unwrap();
                let want = match oracle::decide_full(
                    &shadow,
                    budget,
                    &classes,
                    &residents,
                    &classes[ci],
                    attach,
                ) {
                    Ok(bound) => Decision::Admit { bound },
                    Err(reason) => Decision::Reject { reason },
                };
                assert_eq!(got, want, "seed {seed} step {step}: decide diverged");
                if got.is_admitted() {
                    residents.push((attach, ids[ci]));
                }
            }
            // Departure of a random resident.
            3 => {
                if residents.is_empty() {
                    continue;
                }
                let ix = rng.below(residents.len() as u64) as usize;
                let (attach, class) = residents.remove(ix);
                engine
                    .depart(tenant, class, attach, Placement::Local)
                    .unwrap();
            }
            // Reconfiguration: replace a random stage with a random
            // re-provisioning, then probe full oracle equality. One
            // draw in six proposes a degenerate zero-rate stage, which
            // onboarding must reject without touching the engine.
            _ => {
                let stage = rng.below(n as u64) as usize;
                let rate = if rng.below(6) == 0 {
                    0
                } else {
                    4 + rng.below(37) as i64
                };
                let job = 1 + rng.below(8) as i64;
                let lat = rng.below(4) as i64;
                let next = node(stage, rate, job, lat);
                match engine.reconfigure_stage(tenant, stage, next.clone()) {
                    Ok(_evicted) => {
                        shadow.nodes[stage] = next;
                        reconfigs += 1;
                        assert_oracle_equal(
                            &mut engine,
                            tenant,
                            &shadow,
                            budget,
                            &classes,
                            &ids,
                            &residents,
                            &format!("seed {seed} step {step} (after reconfigure)"),
                        );
                    }
                    Err(_) => {
                        // Rejected provisioning (a zero-rate stage is
                        // not a valid pipeline): the engine must be
                        // untouched — the unchanged shadow still agrees.
                        failed_reconfigs += 1;
                        assert_eq!(rate, 0, "only the degenerate node may be rejected");
                        assert_oracle_equal(
                            &mut engine,
                            tenant,
                            &shadow,
                            budget,
                            &classes,
                            &ids,
                            &residents,
                            &format!("seed {seed} step {step} (failed reconfigure)"),
                        );
                    }
                }
            }
        }
    }
    assert!(
        reconfigs >= 10,
        "seed {seed}: degenerate schedule, only {reconfigs} reconfigurations"
    );
    (reconfigs, failed_reconfigs)
}

#[test]
fn reconfigure_under_admission_load_matches_oracle() {
    let (_, failed_a) = stress_one_seed(7, None);
    let (_, failed_b) = stress_one_seed(23, Some(24));
    assert!(
        failed_a + failed_b > 0,
        "no schedule exercised a rejected reconfiguration"
    );
}

#[test]
fn reconfigure_with_tight_budget_matches_oracle() {
    // A small budget makes placement-cap and budget rejections
    // reachable in the decision probes after each reconfiguration.
    stress_one_seed(101, Some(2));
}

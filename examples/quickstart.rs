//! Quickstart: model a single heterogeneous stage with network
//! calculus, read off its §3 bounds, then chain stages and check the
//! model against the discrete-event simulator.
//!
//! Run with `cargo run --example quickstart`.

use streamcalc::core::bounds;
use streamcalc::core::curve::shapes;
use streamcalc::core::num::Rat;
use streamcalc::core::pipeline::{Node, NodeKind, Pipeline, Source, StageRates};
use streamcalc::core::units::{fmt_bytes, fmt_rate, fmt_time, mib, mib_per_s};
use streamcalc::streamsim::{simulate, SimConfig};

fn main() {
    // ----- 1. A single node, by hand -------------------------------
    // Arrival: up to 100 MiB/s sustained with 4 MiB bursts.
    let alpha = shapes::leaky_bucket(mib_per_s(100.0), mib(4));
    // Service: a kernel measured at 150 MiB/s that needs 10 ms to spin up.
    let beta = shapes::rate_latency(mib_per_s(150.0), Rat::new(1, 100));
    // Best case: 200 MiB/s.
    let gamma = shapes::constant_rate(mib_per_s(200.0));

    let nb = bounds::analyze_node(&alpha, &beta, Some(&gamma));
    println!("single node ({:?}):", nb.regime);
    println!("  backlog bound x = {}", fmt_bytes(nb.backlog));
    println!("  delay bound   d = {}", fmt_time(nb.delay));
    println!(
        "  output burst    = {}",
        fmt_bytes(nb.output.eval_right(Rat::ZERO))
    );

    // ----- 2. A three-stage pipeline from isolated measurements ----
    let pipeline = Pipeline::new(
        "quickstart",
        Source {
            rate: mib_per_s(100.0),
            burst: mib(1),
        },
        vec![
            // A decoder that compresses volume 2:1.
            Node::new(
                "decode",
                NodeKind::Compute,
                StageRates::new(mib_per_s(300.0), mib_per_s(340.0), mib_per_s(380.0)),
                Rat::new(1, 1000),
                mib(1),
                mib(1) / Rat::int(2),
            ),
            // A PCIe hop.
            Node::new(
                "pcie",
                NodeKind::PcieLink,
                StageRates::fixed(mib_per_s(11.0 * 1024.0)),
                Rat::new(1, 100_000),
                mib(1) / Rat::int(2),
                mib(1) / Rat::int(2),
            ),
            // The accelerator kernel (local rates on compressed data).
            Node::new(
                "kernel",
                NodeKind::Compute,
                StageRates::new(mib_per_s(70.0), mib_per_s(80.0), mib_per_s(90.0)),
                Rat::new(2, 1000),
                mib(1) / Rat::int(2),
                mib(1) / Rat::int(2),
            ),
        ],
    );
    pipeline.validate().expect("valid pipeline");

    let model = pipeline.build_model();
    println!("\npipeline model ({:?}):", model.regime());
    println!(
        "  normalized bottleneck (min/avg/max): {} / {} / {}",
        fmt_rate(streamcalc::core::Value::finite(model.bottleneck_rate_min)),
        fmt_rate(streamcalc::core::Value::finite(model.bottleneck_rate_avg)),
        fmt_rate(streamcalc::core::Value::finite(model.bottleneck_rate_max)),
    );
    // Two service-curve models: the paper's single-node reduction
    // (bottleneck rate + aggregated latency) and the exact per-node
    // concatenation with packetizer corrections — the latter is the
    // hard guarantee.
    println!(
        "  backlog bound = {} (aggregate) / {} (concatenated)",
        fmt_bytes(model.backlog_bound()),
        fmt_bytes(model.backlog_bound_concat())
    );
    println!(
        "  delay bound   = {} (aggregate) / {} (concatenated)",
        fmt_time(model.delay_bound()),
        fmt_time(model.delay_bound_concat())
    );
    for (name, x) in model.per_node_backlogs() {
        println!("    buffer for {name:<8} {}", fmt_bytes(x));
    }

    // ----- 3. Validate with the discrete-event simulator -----------
    let sim = simulate(
        &pipeline,
        &SimConfig {
            seed: 7,
            total_input: 128 << 20,
            ..SimConfig::default()
        },
    );
    println!("\nsimulation (128 MiB):");
    println!("  throughput   = {:.1} MiB/s", sim.throughput / 1048576.0);
    println!(
        "  delay range  = [{:.2}, {:.2}] ms",
        sim.delay_min * 1e3,
        sim.delay_max * 1e3
    );
    println!("  peak backlog = {:.2} MiB", sim.peak_backlog / 1048576.0);

    // The concatenated (packetization-aware) guarantees hold on the
    // simulated run.
    let d = model.delay_bound_concat().to_f64();
    let x = model.backlog_bound_concat().to_f64();
    assert!(sim.delay_max <= d, "sim delay exceeds NC bound");
    assert!(sim.peak_backlog <= x, "sim backlog exceeds NC bound");
    println!("\nNC bounds contain the simulation: OK");
}

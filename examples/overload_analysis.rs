//! Overload analysis: the paper's §3 question — what happens when
//! `R_α > R_β`? The exact bounds diverge (as queueing theory's do at
//! ρ ≥ 1), and the paper hypothesizes the closed-form values remain
//! useful as queue-sizing estimates. This example sweeps the offered
//! load across the three regimes and checks the hypothesis against the
//! simulator.
//!
//! Run with `cargo run --release --example overload_analysis`.

use streamcalc::core::bounds::Regime;
use streamcalc::core::num::Rat;
use streamcalc::core::pipeline::{Node, NodeKind, Pipeline, Source, StageRates};
use streamcalc::core::units::mib_per_s;
use streamcalc::streamsim::{simulate, SimConfig};

fn pipeline(offered_mib_s: f64) -> Pipeline {
    Pipeline::new(
        "overload sweep",
        Source {
            rate: mib_per_s(offered_mib_s),
            burst: Rat::int(64 << 10),
        },
        vec![Node::new(
            "kernel",
            NodeKind::Compute,
            StageRates::new(mib_per_s(95.0), mib_per_s(100.0), mib_per_s(105.0)),
            Rat::new(1, 1000),
            Rat::int(64 << 10),
            Rat::int(64 << 10),
        )],
    )
}

fn main() {
    const MIB: f64 = 1048576.0;
    println!(
        "{:>9} {:>13} {:>14} {:>14} {:>12} {:>12} {:>14}",
        "offered", "regime", "exact x", "heuristic x", "sim thr", "sim peak x", "sim delay max"
    );
    for offered in [60.0, 80.0, 94.9, 95.0, 100.0, 120.0, 150.0] {
        let p = pipeline(offered);
        let m = p.build_model();
        let exact_x = m.backlog_bound();
        let heur_x = m.heuristic_backlog().to_f64() / MIB;
        let sim = simulate(
            &p,
            &SimConfig {
                seed: 5,
                total_input: 64 << 20,
                source_chunk: Some(64 << 10),
                queue_capacity: None,
                queue_capacities: None,
                service_model: streamcalc::streamsim::ServiceModel::Uniform,
                trace: false,
                fast_forward: true,
                faults: None,
                workers: None,
            },
        );
        println!(
            "{:>7.1}MB {:>13} {:>14} {:>11.3}MiB {:>9.1}MiB {:>9.3}MiB {:>11.2}ms",
            offered,
            format!("{:?}", m.regime()),
            match exact_x {
                streamcalc::core::Value::Finite(x) => format!("{:.3} MiB", x.to_f64() / MIB),
                _ => "inf".to_string(),
            },
            heur_x,
            sim.throughput / MIB,
            sim.peak_backlog / MIB,
            sim.delay_max * 1e3,
        );

        // Invariants per regime.
        match m.regime() {
            Regime::Underloaded => {
                assert!(exact_x.is_finite());
                // The hard bound contains the simulation.
                assert!(sim.peak_backlog <= m.backlog_bound_concat().to_f64() * (1.0 + 1e-9));
            }
            Regime::Critical => {
                // At R_α = R_β exactly, the deviation is still finite
                // (b + R·T) — the knife edge before divergence.
                assert!(exact_x.is_finite());
            }
            Regime::Overloaded => {
                assert!(exact_x.is_infinite(), "bounds must diverge at overload");
                // Throughput is still capped by the service rate.
                assert!(sim.throughput <= mib_per_s(105.0).to_f64() * 1.02);
            }
        }
    }

    println!(
        "\nAs the paper notes: exact bounds go infinite at R_a > R_b (like queueing\n\
         theory at rho >= 1), while the closed-form heuristic stays finite and tracks\n\
         the *early-horizon* queue growth — usable for sizing, not a guarantee."
    );
}

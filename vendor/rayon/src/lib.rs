//! Vendored parallel-iterator subset.
//!
//! The build environment has no registry access, so upstream `rayon`
//! cannot be fetched. This crate provides the
//! `into_par_iter().map(..).collect()` surface the workspace uses,
//! executing the mapped closure on `std::thread::scope` worker threads
//! (one chunk per available core) and preserving input order in the
//! collected output.

use std::cell::Cell;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`] on
    /// the calling thread (the chunking decision is made there).
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Worker-thread count for the next parallel pipeline: an installed
/// [`ThreadPool`]'s size, else `RAYON_NUM_THREADS` (upstream rayon's
/// env knob), else the machine's available parallelism.
fn configured_threads() -> usize {
    if let Some(n) = POOL_THREADS.with(Cell::get) {
        return n.max(1);
    }
    if let Ok(s) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Error building a [`ThreadPool`] (never produced by this subset;
/// kept for upstream signature compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring upstream `rayon::ThreadPoolBuilder` for the
/// `num_threads` + `build` + `install` pattern.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A builder with default (machine-sized) parallelism.
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Fix the worker-thread count.
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = Some(n);
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(configured_threads).max(1),
        })
    }
}

/// A scoped thread-count configuration. This subset spawns fresh scoped
/// threads per pipeline, so the "pool" only pins how many workers each
/// pipeline started under [`ThreadPool::install`] uses.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `f` with this pool's thread count governing any parallel
    /// pipelines it starts on this thread.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|c| c.replace(Some(self.num_threads)));
        let out = f();
        POOL_THREADS.with(|c| c.set(prev));
        out
    }
}

/// The number of worker threads the next parallel pipeline on this
/// thread will use (upstream `rayon::current_num_threads`).
pub fn current_num_threads() -> usize {
    configured_threads()
}

/// Types convertible into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;

    /// Start a parallel pipeline over `self`'s elements.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_into_par_iter_range {
    ($($t:ty),* $(,)?) => {$(
        impl IntoParallelIterator for core::ops::Range<$t> {
            type Item = $t;

            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

impl_into_par_iter_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A materialized parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Map each element with `f` on worker threads.
    pub fn map<O: Send, F: Fn(T) -> O + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Map with per-worker scratch state: `init` runs once on each
    /// worker thread and the resulting value is passed to every `f`
    /// call that worker makes (upstream rayon's `map_init`).
    pub fn map_init<I, O, N, F>(self, init: N, f: F) -> ParMapInit<T, N, F>
    where
        O: Send,
        N: Fn() -> I + Sync,
        F: Fn(&mut I, T) -> O + Sync,
    {
        ParMapInit {
            items: self.items,
            init,
            f,
        }
    }
}

/// The result of [`ParIter::map_init`]; terminal `collect` runs the
/// work.
pub struct ParMapInit<T, N, F> {
    items: Vec<T>,
    init: N,
    f: F,
}

impl<T, I, O, N, F> ParMapInit<T, N, F>
where
    T: Send,
    O: Send,
    N: Fn() -> I + Sync,
    F: Fn(&mut I, T) -> O + Sync,
{
    /// Run the map on worker threads (one `init` state per chunk) and
    /// collect results in input order.
    pub fn collect<C: FromIterator<O>>(self) -> C {
        let threads = configured_threads().min(self.items.len().max(1));
        let init = &self.init;
        let f = &self.f;

        let n = self.items.len();
        let chunk = n.div_ceil(threads.max(1)).max(1);
        let mut chunks: Vec<Vec<T>> = Vec::new();
        let mut items = self.items;
        while !items.is_empty() {
            let rest = items.split_off(items.len().min(chunk));
            chunks.push(std::mem::replace(&mut items, rest));
        }

        let mut outputs: Vec<Vec<O>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    scope.spawn(move || {
                        let mut state = init();
                        chunk
                            .into_iter()
                            .map(|t| f(&mut state, t))
                            .collect::<Vec<O>>()
                    })
                })
                .collect();
            for handle in handles {
                outputs.push(handle.join().expect("rayon worker panicked"));
            }
        });
        outputs.into_iter().flatten().collect()
    }
}

/// The result of [`ParIter::map`]; terminal `collect` runs the work.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, O: Send, F: Fn(T) -> O + Sync> ParMap<T, F> {
    /// Run the map on worker threads and collect results in input order.
    pub fn collect<C: FromIterator<O>>(self) -> C {
        let threads = configured_threads().min(self.items.len().max(1));
        let f = &self.f;

        let n = self.items.len();
        let chunk = n.div_ceil(threads.max(1)).max(1);
        // Keep per-chunk output order: spawn one worker per chunk,
        // then flatten in chunk order.
        let mut chunks: Vec<Vec<T>> = Vec::new();
        let mut items = self.items;
        while !items.is_empty() {
            let rest = items.split_off(items.len().min(chunk));
            chunks.push(std::mem::replace(&mut items, rest));
        }

        let mut outputs: Vec<Vec<O>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<O>>()))
                .collect();
            for handle in handles {
                outputs.push(handle.join().expect("rayon worker panicked"));
            }
        });
        outputs.into_iter().flatten().collect()
    }
}

/// Glob import mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::IntoParallelIterator;
}

//! Min-plus algebra operators on curves.

pub mod closure;
pub mod conv;
pub mod deconv;
pub mod deviations;
pub mod envelope;

pub use closure::{is_subadditive, subadditive_closure, Closure};
pub use conv::{conv_at, min_plus_conv, min_plus_conv_general};
pub use deconv::{deconv_at, infinite_curve, min_plus_deconv, min_plus_deconv_general};
pub use deviations::{horizontal_deviation, vertical_deviation};

pub mod maxplus;
pub use maxplus::{max_plus_conv, max_plus_deconv};

//! The query 8-mer hash table of the BLASTN pipeline.
//!
//! §4.1: "each byte-aligned 8-mer (8-base word) of the database is
//! checked to see whether it appears in a hash table (stored in GPU
//! DRAM) constructed from all 8-mers of the query sequence."
//!
//! An 8-mer in 2-bit encoding is exactly 16 bits, so the "hash table"
//! is a direct-indexed table of 2¹⁶ buckets — the same structure the
//! GPU implementation uses, and collision-free by construction.

use crate::fasta::base_at;

/// Number of bases per seed word.
pub const SEED_LEN: usize = 8;
/// Number of distinct 8-mers (4⁸).
pub const NUM_KMERS: usize = 1 << (2 * SEED_LEN);

/// Direct-indexed table from 8-mer code to query positions.
pub struct QueryIndex {
    /// `buckets[code]` = all query positions where the 8-mer occurs.
    buckets: Vec<Vec<u32>>,
    query_len: usize,
    distinct: usize,
}

/// Compute the 16-bit code of the 8-mer starting at base `i` of a
/// packed 2-bit sequence.
#[inline]
pub fn kmer_code(packed: &[u8], i: usize) -> u16 {
    let mut code = 0u16;
    for k in 0..SEED_LEN {
        code |= (base_at(packed, i + k) as u16) << (2 * k);
    }
    code
}

impl QueryIndex {
    /// Build the index over every (overlapping) 8-mer of the packed
    /// query.
    ///
    /// # Panics
    /// Panics if the query is shorter than 8 bases.
    pub fn build(query_packed: &[u8], query_len: usize) -> QueryIndex {
        assert!(query_len >= SEED_LEN, "query shorter than a seed");
        assert!(query_len <= query_packed.len() * 4);
        let mut buckets = vec![Vec::new(); NUM_KMERS];
        for q in 0..=(query_len - SEED_LEN) {
            buckets[kmer_code(query_packed, q) as usize].push(q as u32);
        }
        let distinct = buckets.iter().filter(|b| !b.is_empty()).count();
        QueryIndex {
            buckets,
            query_len,
            distinct,
        }
    }

    /// `true` iff the 8-mer code occurs anywhere in the query — the
    /// *seed match* predicate.
    #[inline]
    pub fn contains(&self, code: u16) -> bool {
        !self.buckets[code as usize].is_empty()
    }

    /// All query positions of an 8-mer — the *seed enumeration* lookup.
    #[inline]
    pub fn positions(&self, code: u16) -> &[u32] {
        &self.buckets[code as usize]
    }

    /// Query length in bases.
    pub fn query_len(&self) -> usize {
        self.query_len
    }

    /// Number of distinct 8-mers present (selectivity of the filter:
    /// `distinct / 65536` is the expected pass rate on random data).
    pub fn distinct_kmers(&self) -> usize {
        self.distinct
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fasta::fa2bit;

    #[test]
    fn finds_all_occurrences() {
        // Query with a repeated 8-mer: ACGTACGT appears at 0 and 8.
        let q = b"ACGTACGTACGTACGT";
        let packed = fa2bit(q);
        let idx = QueryIndex::build(&packed, q.len());
        let code = kmer_code(&packed, 0);
        // ACGTACGT occurs at 0, 4, and 8 (period-4 repeat).
        assert_eq!(idx.positions(code), &[0, 4, 8]);
        assert!(idx.contains(code));
    }

    #[test]
    fn absent_kmers_rejected() {
        let q = b"AAAAAAAAAAAA";
        let packed = fa2bit(q);
        let idx = QueryIndex::build(&packed, q.len());
        let all_t = fa2bit(b"TTTTTTTT");
        assert!(!idx.contains(kmer_code(&all_t, 0)));
        assert!(idx.positions(kmer_code(&all_t, 0)).is_empty());
        assert_eq!(idx.distinct_kmers(), 1);
    }

    #[test]
    fn code_is_position_sensitive() {
        let packed = fa2bit(b"ACGTACGTT");
        assert_ne!(kmer_code(&packed, 0), kmer_code(&packed, 1));
    }

    #[test]
    #[should_panic(expected = "shorter than a seed")]
    fn short_query_rejected() {
        let packed = fa2bit(b"ACGT");
        let _ = QueryIndex::build(&packed, 4);
    }
}

//! Sub-additive closure.
//!
//! The sub-additive closure `f* = min(δ_0, f, f⊗f, f⊗f⊗f, …)` is the
//! tightest sub-additive curve below `f` and plays two roles: it turns
//! an arbitrary measured envelope into a valid arrival curve, and it
//! characterizes the service of feedback/window flow-control systems.
//!
//! For the ultimately-affine curves used in this crate the iteration
//! reaches a fixpoint quickly (a leaky bucket is already sub-additive;
//! a rate-latency curve closes after a handful of iterations into a
//! staircase-like shape that we truncate at `max_iter`).

use crate::curve::pwl::Curve;
use crate::curve::shapes;
use crate::num::Rat;

use super::conv::{is_concave, min_plus_conv};

/// Result of a (possibly truncated) closure computation.
#[derive(Clone, Debug)]
pub struct Closure {
    /// The computed curve: exact if `converged`, otherwise an upper
    /// bound on the true closure (safe for arrival curves).
    pub curve: Curve,
    /// Whether a fixpoint was reached within the iteration budget.
    pub converged: bool,
    /// Number of convolution iterations performed.
    pub iterations: usize,
}

/// Compute the sub-additive closure of `f` by iterated convolution,
/// stopping at a fixpoint or after `max_iter` rounds.
pub fn subadditive_closure(f: &Curve, max_iter: usize) -> Closure {
    // Start from min(δ_0, f): the closure always passes through 0 at 0.
    let mut acc = shapes::delta(Rat::ZERO).min(f);
    // Fast path: a concave curve through the origin is already
    // sub-additive, so the iteration is a fixpoint from the start.
    if acc.starts_at_zero() && is_concave(&acc) {
        return Closure {
            curve: acc,
            converged: true,
            iterations: 0,
        };
    }
    for i in 0..max_iter {
        let next = acc.min(&min_plus_conv(&acc, &acc));
        if next == acc {
            return Closure {
                curve: acc,
                converged: true,
                iterations: i,
            };
        }
        acc = next;
    }
    Closure {
        curve: acc,
        converged: false,
        iterations: max_iter,
    }
}

/// `true` iff `f` is sub-additive (`f(s+t) ≤ f(s) + f(t)`), verified
/// exactly via `f ⊗ f ≥ f` for curves with `f(0) = 0`.
pub fn is_subadditive(f: &Curve) -> bool {
    let ff = min_plus_conv(f, f);
    ff.min(f) == *f && f.starts_at_zero()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::shapes;
    use crate::num::{Rat, Value};

    #[test]
    fn leaky_bucket_already_closed() {
        let a = shapes::leaky_bucket(Rat::int(2), Rat::int(5));
        assert!(is_subadditive(&a));
        let c = subadditive_closure(&a, 8);
        assert!(c.converged);
        // Closure of a sub-additive curve is itself (beyond t = 0).
        assert_eq!(c.curve.eval(Rat::int(3)), a.eval(Rat::int(3)));
    }

    #[test]
    fn rate_latency_not_subadditive() {
        let b = shapes::rate_latency(Rat::int(3), Rat::int(2));
        assert!(!is_subadditive(&b));
        let c = subadditive_closure(&b, 16);
        // Closure stays below the original and below any doubling.
        for n in 0..20 {
            let t = Rat::int(n);
            assert!(c.curve.eval(t) <= b.eval(t));
        }
        // β(8) = 18 but β*(8) ≤ β(4) + β(4) = 12.
        assert!(c.curve.eval(Rat::int(8)) <= Value::from(12));
    }

    #[test]
    fn closure_is_idempotent_when_converged() {
        let b = shapes::rate_latency(Rat::int(1), Rat::ONE)
            .min(&shapes::leaky_bucket(Rat::ONE, Rat::int(2)));
        let c = subadditive_closure(&b, 32);
        if c.converged {
            assert!(is_subadditive(&c.curve));
            let again = subadditive_closure(&c.curve, 4);
            assert!(again.converged);
            assert_eq!(again.curve, c.curve);
        }
    }
}

//! E10 artifact: the overload sweep (the paper's §6 future-work
//! direction). Sweeps the offered load across the three §3 regimes and
//! records, per point: the exact backlog bound (diverging at overload),
//! the closed-form heuristic, and the simulator's observations.

use nc_core::num::Rat;
use nc_core::pipeline::{Node, NodeKind, Pipeline, Source, StageRates};
use nc_core::units::mib_per_s;
use nc_streamsim::{simulate, SimConfig};

fn pipeline(offered_mib_s: f64) -> Pipeline {
    Pipeline::new(
        "overload sweep",
        Source {
            rate: mib_per_s(offered_mib_s),
            burst: Rat::int(64 << 10),
        },
        vec![Node::new(
            "kernel",
            NodeKind::Compute,
            StageRates::new(mib_per_s(95.0), mib_per_s(100.0), mib_per_s(105.0)),
            Rat::new(1, 1000),
            Rat::int(64 << 10),
            Rat::int(64 << 10),
        )],
    )
}

fn main() {
    const MIB: f64 = 1048576.0;
    let mut csv =
        String::from("offered_mib_s,regime,exact_backlog_mib,heuristic_backlog_mib,sim_throughput_mib_s,sim_peak_backlog_mib,sim_delay_max_ms,bottleneck_utilization\n");
    let mut load = 40.0;
    while load <= 160.0 + 1e-9 {
        let p = pipeline(load);
        let m = p.build_model();
        let sim = simulate(
            &p,
            &SimConfig {
                seed: 5,
                total_input: 64 << 20,
                source_chunk: Some(64 << 10),
                queue_capacity: None,
                queue_capacities: None,
                service_model: nc_streamsim::ServiceModel::Uniform,
                trace: false,
            },
        );
        let exact = match m.backlog_bound() {
            nc_core::Value::Finite(x) => format!("{:.4}", x.to_f64() / MIB),
            _ => "inf".into(),
        };
        csv.push_str(&format!(
            "{load},{:?},{exact},{:.4},{:.2},{:.4},{:.3},{:.3}\n",
            m.regime(),
            m.heuristic_backlog().to_f64() / MIB,
            sim.throughput / MIB,
            sim.peak_backlog / MIB,
            sim.delay_max * 1e3,
            sim.per_node[0].utilization,
        ));
        load += 5.0;
    }
    nc_bench::emit("overload_sweep.csv", &csv);
}

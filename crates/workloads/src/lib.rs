//! # nc-workloads — the streaming kernels behind the paper's pipelines
//!
//! Every computational stage the paper's two applications depend on,
//! built from scratch so the full measurement-to-model methodology can
//! run end to end on a CPU:
//!
//! * [`fasta`] — synthetic DNA, FASTA I/O, and the DIBS `fa2bit`
//!   2-bit packer (the paper's FPGA pre-processing stage);
//! * [`blast`] — the BLASTN stages (seed match, seed enumeration,
//!   small extension, ungapped extension) of Figure 2;
//! * [`lz4`] — an LZ4 block-format codec (the Vitis compression
//!   kernel of §5);
//! * [`aes`] — AES-256-CBC (the Vitis cryptography kernel of §5);
//! * [`link`] — 10 GbE and PCIe link models with packet overheads;
//! * [`measure`] — the isolation measurement harness producing the
//!   min/avg/max throughput triples of Table 2;
//! * [`requests`] — a seeded request-driven admission workload
//!   (Poisson flow arrivals over heterogeneous classes) feeding the
//!   `nc-admit` engine.
//!
//! These kernels are deliberately *measurable* stand-ins for the
//! paper's FPGA/GPU deployments: the models in `nc-core` consume only
//! per-stage rates, latencies, and job ratios (see DESIGN.md for the
//! substitution argument).

#![warn(missing_docs)]

pub mod aes;
pub mod blast;
pub mod fasta;
pub mod link;
pub mod lz4;
pub mod lz4frame;
pub mod measure;
pub mod requests;
pub mod xxhash;

pub use link::LinkModel;
pub use measure::{measure_repeated, measure_stage, StageMeasurement};

//! # nc-des — a discrete-event simulation engine
//!
//! A SimPy-equivalent kernel (the paper validates its network-calculus
//! models against a SimPy simulator [29]): a deterministic event
//! calendar with FIFO tie-breaking, seconds-based simulation time,
//! seeded distributions, byte queues with occupancy accounting, and
//! the statistics collectors the paper's evaluation reads out (peak
//! backlog, min/max observed delay, throughput).
//!
//! The streaming-pipeline model built on this engine lives in
//! `nc-streamsim`; this crate is application-agnostic.
//!
//! ## Quick start
//!
//! ```
//! use nc_des::{Sim, Span, Time};
//!
//! // Count arrivals every second for five seconds.
//! let mut sim = Sim::new(0u32);
//! fn arrival(sim: &mut Sim<u32>) {
//!     sim.state += 1;
//!     if sim.state < 5 {
//!         sim.schedule_in(Span::secs(1.0), arrival);
//!     }
//! }
//! sim.schedule_at(Time::ZERO, arrival);
//! sim.run();
//! assert_eq!(sim.state, 5);
//! assert_eq!(sim.now(), Time::secs(4.0));
//! ```

#![warn(missing_docs)]

pub mod agenda;
pub mod engine;
pub mod link;
pub mod queue;
pub mod random;
pub mod resource;
pub mod stats;
pub mod time;

pub use agenda::SlotAgenda;
pub use engine::{Event, Sim, SimPool};
pub use link::{link, LinkRx, LinkTx, ProgressGate};
pub use queue::ByteQueue;
pub use random::Dist;
pub use resource::Resource;
pub use stats::{Counter, StreamingTally, Tally, TimeWeighted};
pub use time::{Span, Time};

//! High-throughput admission control over a heterogeneous tenant
//! fleet: the seeded request trace from `nc-workloads` replayed
//! through the incremental `nc-admit` engine.
//!
//! Tenants are sharded over the `NC_THREADS` pool (decisions are
//! independent across tenants), rows are merged by the trace's global
//! sequence number, and the resulting `results/admission.csv` is
//! byte-identical for every worker count — `check.sh` asserts this.
//!
//! `ADMIT_FLEET=t` / `ADMIT_REQS=n` size the trace (default 32×250).

use rayon::prelude::*;
use std::time::Instant;

use nc_bench::admitload;

fn env_size(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("{name} must be a positive integer; using {default}");
                default
            }
        },
        Err(_) => default,
    }
}

fn main() {
    let tenants = env_size("ADMIT_FLEET", 32);
    let per_tenant = env_size("ADMIT_REQS", 250);
    let cfg = admitload::request_config(11, tenants, per_tenant);
    let trace = nc_workloads::requests::generate(&cfg);

    let workers = nc_bench::nc_threads().unwrap_or_else(rayon::current_num_threads);
    let shards = admitload::shard_tenants(tenants, workers);
    let t0 = Instant::now();
    let per_shard: Vec<_> = nc_bench::with_nc_threads(|| {
        shards
            .clone()
            .into_par_iter()
            .map(|shard| admitload::replay_shard(&cfg, &trace, &shard))
            .collect()
    });
    let dt = t0.elapsed();

    let mut rows = Vec::with_capacity(trace.len());
    let mut stats = nc_admit::EngineStats::default();
    for (shard_rows, s) in per_shard {
        rows.extend(shard_rows);
        stats.decisions += s.decisions;
        stats.admitted += s.admitted;
        stats.admitted_remote += s.admitted_remote;
        stats.rejected += s.rejected;
        stats.cheap_admits += s.cheap_admits;
        stats.tight_evals += s.tight_evals;
        stats.prefilter_rejects += s.prefilter_rejects;
    }
    rows.sort_by_key(|r| r.seq);

    let mut csv = String::with_capacity(rows.len() * 48);
    csv.push_str(admitload::DecisionRow::csv_header());
    csv.push('\n');
    for r in &rows {
        csv.push_str(&r.to_csv());
        csv.push('\n');
    }
    nc_bench::emit("admission.csv", &csv);

    let events = rows.len();
    println!(
        "admission: {events} events ({} decisions) over {tenants} tenants in {dt:.2?} \
         [{} shard(s)]",
        stats.decisions,
        shards.len()
    );
    println!(
        "  outcomes: {} local, {} remote, {} rejected ({} prefilter short-circuits)",
        stats.admitted, stats.admitted_remote, stats.rejected, stats.prefilter_rejects
    );
    println!(
        "  bound path: {} cheap-certified admits, {} tight fallbacks",
        stats.cheap_admits, stats.tight_evals
    );
    if stats.decisions > 0 {
        println!(
            "  throughput: {:.0} events/s wall ({:.2} us/decision amortized)",
            events as f64 / dt.as_secs_f64(),
            dt.as_secs_f64() * 1e6 / stats.decisions as f64
        );
    }
}

//! The long-lived admission engine: frozen per-tenant service scalars,
//! incremental per-stage load state, and the allocation-free decision
//! procedure (`DESIGN.md` §13).

use nc_core::bounds;
use nc_core::cache::CurveRef;
use nc_core::num::Rat;
use nc_core::pipeline::{ModelCache, Node, Pipeline};

use crate::{AdmitError, ClassId, Decision, FlowClass, Placement, RejectReason};

/// Handle to an onboarded tenant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub usize);

/// Decision counters, monotone over the engine's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests answered by [`AdmissionEngine::decide`].
    pub decisions: u64,
    /// Flows admitted on their local pipeline.
    pub admitted: u64,
    /// Flows offloaded to a remote pipeline.
    pub admitted_remote: u64,
    /// Requests rejected on every configured path.
    pub rejected: u64,
    /// Admissions certified by the cheap per-stage bound alone (no
    /// concatenation evaluated).
    pub cheap_admits: u64,
    /// Evaluations that fell through to the tight segmented
    /// concatenation bound.
    pub tight_evals: u64,
    /// Rejections short-circuited by the placement pre-filter's rate
    /// caps.
    pub prefilter_rejects: u64,
}

/// The scalar parameters of one flow-class candidate on the hot path
/// (`Copy`, so no class lookup survives into the per-stage loops).
#[derive(Clone, Copy)]
struct ClassParams {
    rate: Rat,
    burst: Rat,
    deadline: Rat,
}

/// Outcome of a non-committing path evaluation.
struct EvalOut {
    bound: Rat,
    used_tight: bool,
}

/// One admission path (a tenant's local pipeline, or its remote
/// offload pipeline): the frozen service-side scalars plus the
/// incrementally maintained load-side state.
struct PathState {
    pipeline: Pipeline,
    budget: Option<Rat>,

    // ---- frozen at onboarding (service side) ----
    /// Guaranteed service rate `R_j` of each stage's packetized
    /// rate-latency curve (input-referred bytes/s).
    serv_rate: Vec<Rat>,
    /// Effective latency `T_j` of each stage (dispatch + collection +
    /// packetization `l_j/R_j`), seconds.
    serv_lat: Vec<Rat>,
    /// The provisioned source burst, charged as a standing burst
    /// allowance entering stage 0.
    base_burst: Rat,
    /// Placement pre-filter rate caps per attachment stage (`None`
    /// when no backlog budget is configured).
    caps: Vec<Option<Rat>>,
    /// Interned per-stage packetized service curves (shared cache).
    #[allow(dead_code)] // held so the scalars' backing curves stay interned
    service_refs: Vec<CurveRef>,
    /// Interned suffix service concatenations `RL(min R, ΣT)`.
    #[allow(dead_code)] // read in debug assertions; held for interning
    suffix_refs: Vec<CurveRef>,

    // ---- incrementally maintained (load side) ----
    /// Resident flow counts per `[attach stage][class]`.
    counts: Vec<Vec<u32>>,
    /// Σ rates of flows attached at each stage.
    attach_rate: Vec<Rat>,
    /// Σ bursts of flows attached at each stage.
    attach_burst: Vec<Rat>,
    /// Tightest deadline among resident flows per attachment stage.
    slo_min: Vec<Option<Rat>>,
    /// Aggregate arrival rate entering stage `j` (cumulative over
    /// attachment stages `≤ j`).
    r_in: Vec<Rat>,
    /// Aggregate burst entering stage `j` (hop-by-hop inflation
    /// `b → b + r·T` plus newly attached bursts).
    b_in: Vec<Rat>,
    /// Per-stage delay bound `d_j = T_j + b_in[j]/R_j`.
    d_stage: Vec<Rat>,

    // ---- preallocated scratch (allocation-free decide) ----
    s_r: Vec<Rat>,
    s_b: Vec<Rat>,
    s_d: Vec<Rat>,
    s_suffix: Vec<Rat>,
}

impl PathState {
    fn len(&self) -> usize {
        self.serv_rate.len()
    }

    /// Build a path from a pipeline: one cached model build, scalar
    /// extraction, suffix concatenation in closed form, and the
    /// placement pre-filter caps.
    fn onboard(
        pipeline: Pipeline,
        budget: Option<Rat>,
        cache: &mut ModelCache,
    ) -> Result<PathState, AdmitError> {
        pipeline
            .validate()
            .map_err(|e| AdmitError::InvalidPipeline(e.to_string()))?;
        let base_burst = pipeline.source.burst;
        if let Some(bud) = budget {
            // Zero-load backlog is the standing source burst at every
            // stage; a budget below it can never admit anything.
            if base_burst > bud {
                return Err(AdmitError::BudgetInfeasible);
            }
        }
        let model = pipeline.build_model_cached(cache);
        let n = model.per_node.len();
        let mut serv_rate = Vec::with_capacity(n);
        let mut serv_lat = Vec::with_capacity(n);
        let mut service_refs = Vec::with_capacity(n);
        for nm in model.per_node.iter() {
            let (r, t) = nm
                .service
                .as_rate_latency()
                .filter(|(r, _)| r.is_positive())
                .ok_or_else(|| AdmitError::UnsupportedService(nm.name.clone()))?;
            serv_rate.push(r);
            serv_lat.push(t);
            service_refs.push(cache.curves().intern(&nm.service));
        }

        // Suffix service concatenations via the closed form
        // `RL(R₁,T₁) ⊗ RL(R₂,T₂) = RL(min R, T₁+T₂)`, interned through
        // the scalar fast lane — no general ⊗ runs here.
        let mut suffix_refs: Vec<CurveRef> = Vec::with_capacity(n);
        let mut rmin = serv_rate[n - 1];
        let mut tsum = Rat::ZERO;
        for k in (0..n).rev() {
            rmin = rmin.min(serv_rate[k]);
            tsum += serv_lat[k];
            suffix_refs.push(cache.curves().rl_ref(rmin, tsum));
        }
        suffix_refs.reverse();
        // The closed form must agree with the general operator — the
        // identity the whole scalar lane rests on.
        #[cfg(debug_assertions)]
        {
            let mut acc = service_refs[n - 1].clone();
            for j in (0..n - 1).rev() {
                acc = cache.curves().conv_ref(&service_refs[j], &acc);
            }
            debug_assert_eq!(acc.curve(), suffix_refs[0].curve());
        }

        // Placement pre-filter: the largest aggregate rate the suffix
        // concatenation can absorb within the backlog budget. Stage 0
        // additionally takes the whole-pipeline
        // `PipelineModel::max_admissible_rate` cap, which charges the
        // provisioned source burst.
        let caps: Vec<Option<Rat>> = (0..n)
            .map(|k| {
                budget.map(|bud| {
                    let mut cap =
                        bounds::max_admissible_rate(suffix_refs[k].curve(), Rat::ZERO, bud)
                            .expect("zero burst fits any budget");
                    if k == 0 {
                        let whole = model
                            .max_admissible_rate(bud)
                            .expect("zero-load budget feasibility was checked");
                        cap = cap.min(whole);
                    }
                    cap
                })
            })
            .collect();

        let mut path = PathState {
            pipeline,
            budget,
            serv_rate,
            serv_lat,
            base_burst,
            caps,
            service_refs,
            suffix_refs,
            counts: vec![Vec::new(); n],
            attach_rate: vec![Rat::ZERO; n],
            attach_burst: vec![Rat::ZERO; n],
            slo_min: vec![None; n],
            r_in: vec![Rat::ZERO; n],
            b_in: vec![Rat::ZERO; n],
            d_stage: vec![Rat::ZERO; n],
            s_r: vec![Rat::ZERO; n],
            s_b: vec![Rat::ZERO; n],
            s_d: vec![Rat::ZERO; n],
            s_suffix: vec![Rat::ZERO; n],
        };
        path.recompute_suffix(0);
        Ok(path)
    }

    /// Recompute the committed load-side suffix from stage `a` on —
    /// the incremental update: everything before `a` is untouched.
    fn recompute_suffix(&mut self, a: usize) {
        for j in a..self.len() {
            let (prev_r, prev_b) = if j == 0 {
                (Rat::ZERO, self.base_burst)
            } else {
                (
                    self.r_in[j - 1],
                    self.b_in[j - 1] + self.r_in[j - 1] * self.serv_lat[j - 1],
                )
            };
            self.r_in[j] = prev_r + self.attach_rate[j];
            self.b_in[j] = prev_b + self.attach_burst[j];
            self.d_stage[j] = self.serv_lat[j] + self.b_in[j] / self.serv_rate[j];
        }
    }

    /// Evaluate a candidate without committing: the allocation-free
    /// hot path. Returns the certified bound or the first failing
    /// check, in the fixed procedure order (pre-filter, rate
    /// feasibility + budget per stage, cheap deadline pass, tight
    /// fallback).
    fn evaluate(&mut self, p: ClassParams, a: usize) -> Result<EvalOut, RejectReason> {
        let n = self.len();
        debug_assert!(a < n);

        // 1. Placement pre-filter: suffix rate caps (sound fast
        // rejects — a violated cap implies a violated exact check).
        for k in a..n {
            if let Some(cap) = self.caps[k] {
                if self.r_in[k] + p.rate > cap {
                    return Err(RejectReason::PlacementCap);
                }
            }
        }

        // 2. Stage pass over the affected suffix: rates, inflated
        // bursts, per-stage delay bounds, backlog budget.
        for j in a..n {
            let r = self.r_in[j] + p.rate;
            if r > self.serv_rate[j] {
                return Err(RejectReason::RateInfeasible);
            }
            let upstream = if j == 0 {
                self.base_burst
            } else if j == a {
                self.b_in[j - 1] + self.r_in[j - 1] * self.serv_lat[j - 1]
            } else {
                self.s_b[j - 1] + self.s_r[j - 1] * self.serv_lat[j - 1]
            };
            let mut b = upstream + self.attach_burst[j];
            if j == a {
                b += p.burst;
            }
            self.s_r[j] = r;
            self.s_b[j] = b;
            self.s_d[j] = self.serv_lat[j] + b / self.serv_rate[j];
            if let Some(bud) = self.budget {
                if b + r * self.serv_lat[j] > bud {
                    return Err(RejectReason::BudgetExceeded);
                }
            }
        }

        // 3. Cheap bound: suffix sums of per-stage delay bounds
        // (committed below `a`, candidate state at and after).
        let mut acc = Rat::ZERO;
        for j in (0..n).rev() {
            acc += if j >= a { self.s_d[j] } else { self.d_stage[j] };
            self.s_suffix[j] = acc;
        }

        // 4. Deadline checks for the candidate and every protected
        // attachment stage; the tight segmented concatenation bound is
        // evaluated only where the cheap bound fails (cheap ≥ tight,
        // so a cheap pass certifies).
        let mut used_tight = false;
        for k in 0..n {
            let Some(limit) = self.limit_at(k, p, a) else {
                continue;
            };
            if self.s_suffix[k] <= limit {
                continue;
            }
            used_tight = true;
            if self.tight_bound(p, a, k) > limit {
                return Err(RejectReason::DeadlineExceeded);
            }
        }

        let limit_a = self
            .limit_at(a, p, a)
            .expect("candidate stage always has a limit");
        let bound = if self.s_suffix[a] <= limit_a {
            self.s_suffix[a]
        } else {
            self.tight_bound(p, a, a)
        };
        Ok(EvalOut { bound, used_tight })
    }

    /// The deadline limit protecting attachment stage `k` while
    /// deciding a candidate `(p, a)`.
    fn limit_at(&self, k: usize, p: ClassParams, a: usize) -> Option<Rat> {
        let slo = self.slo_min[k];
        if k == a {
            Some(slo.map_or(p.deadline, |s| s.min(p.deadline)))
        } else {
            slo
        }
    }

    /// Tight delay bound from stage `k` to the sink under the
    /// candidate `(p, a)`: the suffix is split into maximal
    /// attachment-free segments; each segment's concatenation
    /// `RL(min R, ΣT)` pays the entry burst once (`d = ΣT + B/R_min`),
    /// and bursts inflate between segments exactly as per stage
    /// (`b → b + r·T` — the rate is constant within a segment).
    fn tight_bound(&self, p: ClassParams, a: usize, k: usize) -> Rat {
        let n = self.len();
        let b_at = |j: usize| if j >= a { self.s_b[j] } else { self.b_in[j] };
        let attach_b = |j: usize| {
            let mut b = self.attach_burst[j];
            if j == a {
                b += p.burst;
            }
            b
        };
        let mut total = Rat::ZERO;
        let mut seg_start = k;
        let mut rmin = self.serv_rate[k];
        let mut t = self.serv_lat[k];
        for j in k + 1..=n {
            if j == n || attach_b(j).is_positive() {
                total = total + t + b_at(seg_start) / rmin;
                if j < n {
                    seg_start = j;
                    rmin = self.serv_rate[j];
                    t = self.serv_lat[j];
                }
            } else {
                rmin = rmin.min(self.serv_rate[j]);
                t += self.serv_lat[j];
            }
        }
        total
    }

    /// Commit an admitted candidate: bump the attachment aggregates
    /// and refresh the affected suffix.
    fn commit(&mut self, class: ClassId, p: ClassParams, a: usize) {
        if self.counts[a].len() <= class.0 {
            self.counts[a].resize(class.0 + 1, 0);
        }
        self.counts[a][class.0] += 1;
        self.attach_rate[a] += p.rate;
        self.attach_burst[a] += p.burst;
        self.slo_min[a] = Some(self.slo_min[a].map_or(p.deadline, |s| s.min(p.deadline)));
        self.recompute_suffix(a);
    }

    /// Remove one resident flow of `(class, a)` and refresh the
    /// affected suffix.
    fn depart(
        &mut self,
        classes: &[FlowClass],
        class: ClassId,
        a: usize,
    ) -> Result<(), AdmitError> {
        if a >= self.len() {
            return Err(AdmitError::BadAttach);
        }
        match self.counts[a].get_mut(class.0) {
            Some(slot) if *slot > 0 => *slot -= 1,
            _ => return Err(AdmitError::NoSuchFlow),
        }
        let c = &classes[class.0];
        self.attach_rate[a] -= c.rate;
        self.attach_burst[a] -= c.burst;
        let mut min: Option<Rat> = None;
        for (ci, &cnt) in self.counts[a].iter().enumerate() {
            if cnt > 0 {
                let d = classes[ci].deadline;
                min = Some(min.map_or(d, |m| m.min(d)));
            }
        }
        self.slo_min[a] = min;
        self.recompute_suffix(a);
        Ok(())
    }

    /// Carry resident-flow state over from a pre-reconfiguration path
    /// with the same stage count, then recompute all bounds.
    fn adopt_flows(&mut self, old: &PathState) {
        debug_assert_eq!(self.len(), old.len());
        self.counts = old.counts.clone();
        self.attach_rate = old.attach_rate.clone();
        self.attach_burst = old.attach_burst.clone();
        self.slo_min = old.slo_min.clone();
        self.recompute_suffix(0);
    }

    /// Total resident flows.
    fn resident(&self) -> u64 {
        self.counts
            .iter()
            .flat_map(|per_class| per_class.iter())
            .map(|&c| c as u64)
            .sum()
    }
}

/// The long-lived admission-control engine: a fleet of tenant
/// pipelines sharing one [`ModelCache`], answering
/// admit / reject / admit-remote requests by incremental NC
/// recomputation. See the crate docs for the architecture and
/// `DESIGN.md` §13 for the soundness argument.
pub struct AdmissionEngine {
    classes: Vec<FlowClass>,
    tenants: Vec<Tenant>,
    cache: ModelCache,
    stats: EngineStats,
}

struct Tenant {
    local: PathState,
    remote: Option<PathState>,
}

impl Default for AdmissionEngine {
    fn default() -> Self {
        AdmissionEngine::new()
    }
}

impl AdmissionEngine {
    /// An empty engine.
    pub fn new() -> AdmissionEngine {
        AdmissionEngine {
            classes: Vec::new(),
            tenants: Vec::new(),
            cache: ModelCache::new(),
            stats: EngineStats::default(),
        }
    }

    /// Register a flow class for later requests.
    pub fn register_class(&mut self, class: FlowClass) -> Result<ClassId, AdmitError> {
        class.validate()?;
        self.classes.push(class);
        Ok(ClassId(self.classes.len() - 1))
    }

    /// The registered classes, indexed by [`ClassId`].
    pub fn classes(&self) -> &[FlowClass] {
        &self.classes
    }

    /// Onboard a tenant pipeline: one cached model build (shared
    /// prefixes across structurally equal tenants hit the memo), after
    /// which decisions against this tenant are pure scalar updates.
    /// `budget` is an optional per-stage backlog budget in bytes.
    pub fn add_tenant(
        &mut self,
        pipeline: Pipeline,
        budget: Option<Rat>,
    ) -> Result<TenantId, AdmitError> {
        let local = PathState::onboard(pipeline, budget, &mut self.cache)?;
        self.tenants.push(Tenant {
            local,
            remote: None,
        });
        Ok(TenantId(self.tenants.len() - 1))
    }

    /// Attach a remote offload pipeline to a tenant (the
    /// "stream to the datacenter" alternative: uplink stages first,
    /// then the remote processing stages). Flows rejected locally are
    /// re-evaluated here at attachment stage 0.
    pub fn set_remote(
        &mut self,
        tenant: TenantId,
        pipeline: Pipeline,
        budget: Option<Rat>,
    ) -> Result<(), AdmitError> {
        if self
            .tenants
            .get(tenant.0)
            .ok_or(AdmitError::UnknownTenant)?
            .remote
            .is_some()
        {
            return Err(AdmitError::RemoteConfig);
        }
        let path = PathState::onboard(pipeline, budget, &mut self.cache)?;
        self.tenants[tenant.0].remote = Some(path);
        Ok(())
    }

    fn class_params(&self, class: ClassId) -> Result<ClassParams, AdmitError> {
        let c = self.classes.get(class.0).ok_or(AdmitError::UnknownClass)?;
        Ok(ClassParams {
            rate: c.rate,
            burst: c.burst,
            deadline: c.deadline,
        })
    }

    /// Answer one admission request and commit its effect: a flow of
    /// `class` asking to attach at stage `attach` of `tenant`'s local
    /// pipeline. On local rejection the tenant's remote pipeline (if
    /// configured) is tried at attachment stage 0. Admitted flows stay
    /// resident until [`AdmissionEngine::depart`].
    pub fn decide(
        &mut self,
        tenant: TenantId,
        class: ClassId,
        attach: usize,
    ) -> Result<Decision, AdmitError> {
        let p = self.class_params(class)?;
        let t = self
            .tenants
            .get_mut(tenant.0)
            .ok_or(AdmitError::UnknownTenant)?;
        if attach >= t.local.len() {
            return Err(AdmitError::BadAttach);
        }
        self.stats.decisions += 1;
        match t.local.evaluate(p, attach) {
            Ok(out) => {
                t.local.commit(class, p, attach);
                self.stats.admitted += 1;
                if out.used_tight {
                    self.stats.tight_evals += 1;
                } else {
                    self.stats.cheap_admits += 1;
                }
                Ok(Decision::Admit { bound: out.bound })
            }
            Err(reason) => {
                if let Some(remote) = t.remote.as_mut() {
                    if let Ok(out) = remote.evaluate(p, 0) {
                        remote.commit(class, p, 0);
                        self.stats.admitted_remote += 1;
                        if out.used_tight {
                            self.stats.tight_evals += 1;
                        }
                        return Ok(Decision::AdmitRemote { bound: out.bound });
                    }
                }
                self.stats.rejected += 1;
                if reason == RejectReason::PlacementCap {
                    self.stats.prefilter_rejects += 1;
                }
                Ok(Decision::Reject { reason })
            }
        }
    }

    /// What [`AdmissionEngine::decide`] would answer, without
    /// committing anything (and without touching the counters).
    pub fn peek(
        &mut self,
        tenant: TenantId,
        class: ClassId,
        attach: usize,
    ) -> Result<Decision, AdmitError> {
        let p = self.class_params(class)?;
        let t = self
            .tenants
            .get_mut(tenant.0)
            .ok_or(AdmitError::UnknownTenant)?;
        if attach >= t.local.len() {
            return Err(AdmitError::BadAttach);
        }
        match t.local.evaluate(p, attach) {
            Ok(out) => Ok(Decision::Admit { bound: out.bound }),
            Err(reason) => {
                if let Some(remote) = t.remote.as_mut() {
                    if let Ok(out) = remote.evaluate(p, 0) {
                        return Ok(Decision::AdmitRemote { bound: out.bound });
                    }
                }
                Ok(Decision::Reject { reason })
            }
        }
    }

    /// Remove one resident flow, identified by its admission identity:
    /// tenant, class, *requested* attachment stage, and the placement
    /// the admitting [`Decision`] reported (remote flows are resident
    /// at stage 0 of the remote pipeline regardless of the requested
    /// stage). Flows of one `(class, attach)` pair are fungible.
    pub fn depart(
        &mut self,
        tenant: TenantId,
        class: ClassId,
        attach: usize,
        placement: Placement,
    ) -> Result<(), AdmitError> {
        if class.0 >= self.classes.len() {
            return Err(AdmitError::UnknownClass);
        }
        let classes = &self.classes;
        let t = self
            .tenants
            .get_mut(tenant.0)
            .ok_or(AdmitError::UnknownTenant)?;
        match placement {
            Placement::Local => t.local.depart(classes, class, attach),
            Placement::Remote => t
                .remote
                .as_mut()
                .ok_or(AdmitError::RemoteConfig)?
                .depart(classes, class, 0),
        }
    }

    /// Replace stage `stage` of a tenant's local pipeline (rates,
    /// latency, job sizes — a reprovisioning event). The model cache's
    /// prefixes up to `stage` are reused by the rebuild; the stale
    /// entries past it are evicted via
    /// [`ModelCache::invalidate_suffix`] (returned: the eviction
    /// count). Resident flows are carried over and their bounds
    /// recomputed — the engine does not evict flows whose SLOs the new
    /// provisioning violates, but subsequent decisions hold them to
    /// the recomputed bounds.
    pub fn reconfigure_stage(
        &mut self,
        tenant: TenantId,
        stage: usize,
        node: Node,
    ) -> Result<usize, AdmitError> {
        let (old_pipeline, budget) = {
            let t = self
                .tenants
                .get(tenant.0)
                .ok_or(AdmitError::UnknownTenant)?;
            if stage >= t.local.len() {
                return Err(AdmitError::BadAttach);
            }
            (t.local.pipeline.clone(), t.local.budget)
        };
        let mut pipeline = old_pipeline.clone();
        pipeline.nodes[stage] = node;
        let mut fresh = PathState::onboard(pipeline, budget, &mut self.cache)?;
        let evicted = self.cache.invalidate_suffix(&old_pipeline, stage);
        let t = self.tenants.get_mut(tenant.0).expect("checked above");
        fresh.adopt_flows(&t.local);
        t.local = fresh;
        Ok(evicted)
    }

    /// The placement pre-filter's rate cap for one attachment stage of
    /// a tenant's local pipeline: the largest aggregate arrival rate
    /// the suffix service concatenation can absorb within the backlog
    /// budget (`None` when the tenant has no budget). Derived from
    /// [`nc_core::bounds::max_admissible_rate`] /
    /// [`nc_core::pipeline::PipelineModel::max_admissible_rate`] at
    /// onboarding.
    pub fn placement_cap(
        &self,
        tenant: TenantId,
        attach: usize,
    ) -> Result<Option<Rat>, AdmitError> {
        let t = self
            .tenants
            .get(tenant.0)
            .ok_or(AdmitError::UnknownTenant)?;
        t.local
            .caps
            .get(attach)
            .copied()
            .ok_or(AdmitError::BadAttach)
    }

    /// Resident flow counts `(local, remote)` for a tenant.
    pub fn resident(&self, tenant: TenantId) -> Result<(u64, u64), AdmitError> {
        let t = self
            .tenants
            .get(tenant.0)
            .ok_or(AdmitError::UnknownTenant)?;
        Ok((
            t.local.resident(),
            t.remote.as_ref().map_or(0, |r| r.resident()),
        ))
    }

    /// Decision counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Counters of the shared model cache (interning, memo hits,
    /// prefix reuse).
    pub fn cache_stats(&self) -> nc_core::cache::CacheStats {
        self.cache.stats()
    }

    /// Number of memoized pipeline prefixes currently held by the
    /// shared cache.
    pub fn cache_prefix_entries(&self) -> usize {
        self.cache.prefix_entries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use nc_core::num::rat;
    use nc_core::pipeline::{NodeKind, Source, StageRates};

    fn node(name: &str, rate: i64, job: i64) -> Node {
        Node::new(
            name,
            NodeKind::Compute,
            StageRates::fixed(Rat::int(rate)),
            Rat::ZERO,
            Rat::int(job),
            Rat::int(job),
        )
    }

    /// Stage services: a = RL(10, 4/5), b = RL(6, 4/3) (packetization
    /// latency l/R; the source burst of 8 covers both jobs, so no
    /// collection latency).
    fn two_stage() -> Pipeline {
        Pipeline::new(
            "local",
            Source {
                rate: Rat::int(4),
                burst: Rat::int(8),
            },
            vec![node("a", 10, 8), node("b", 6, 8)],
        )
    }

    fn fast_remote() -> Pipeline {
        Pipeline::new(
            "remote",
            Source {
                rate: Rat::int(4),
                burst: Rat::int(8),
            },
            vec![node("uplink", 100, 8), node("dc", 100, 8)],
        )
    }

    fn class(rate: i64, burst: i64, deadline: Rat) -> FlowClass {
        FlowClass {
            name: "c".into(),
            rate: Rat::int(rate),
            burst: Rat::int(burst),
            block: Rat::ONE,
            deadline,
        }
    }

    #[test]
    fn class_validation_rejects_bad_parameters() {
        let mut e = AdmissionEngine::new();
        let mut c = class(1, 2, Rat::int(10));
        c.burst = rat(1, 2); // below block
        assert_eq!(e.register_class(c), Err(AdmitError::BadClass));
    }

    #[test]
    fn budget_below_standing_burst_is_infeasible() {
        let mut e = AdmissionEngine::new();
        assert_eq!(
            e.add_tenant(two_stage(), Some(Rat::int(7))),
            Err(AdmitError::BudgetInfeasible)
        );
    }

    #[test]
    fn admits_with_exact_cheap_bound() {
        let mut e = AdmissionEngine::new();
        let t = e.add_tenant(two_stage(), None).unwrap();
        let c = e.register_class(class(1, 2, Rat::int(10))).unwrap();
        // b₀ = 8+2 = 10: d₀ = 4/5 + 10/10 = 9/5; b₁ = 10 + 1·(4/5):
        // d₁ = 4/3 + (54/5)/6 = 47/15; cheap = 74/15.
        let d = e.decide(t, c, 0).unwrap();
        assert_eq!(d, Decision::Admit { bound: rat(74, 15) });
        assert_eq!(
            oracle::decide_full(
                &two_stage(),
                None,
                e.classes(),
                &[],
                &class(1, 2, Rat::int(10)),
                0
            ),
            Ok(rat(74, 15))
        );
        let s = e.stats();
        assert_eq!(
            (s.decisions, s.admitted, s.cheap_admits, s.tight_evals),
            (1, 1, 1, 0)
        );
        assert_eq!(e.resident(t).unwrap(), (1, 0));
    }

    #[test]
    fn rejects_rate_infeasible_at_the_bottleneck() {
        let mut e = AdmissionEngine::new();
        let t = e.add_tenant(two_stage(), None).unwrap();
        let c = e.register_class(class(7, 8, Rat::int(100))).unwrap();
        assert_eq!(
            e.decide(t, c, 0).unwrap(),
            Decision::Reject {
                reason: RejectReason::RateInfeasible
            }
        );
        assert_eq!(e.resident(t).unwrap(), (0, 0));
    }

    #[test]
    fn tight_bound_rescues_what_the_cheap_bound_rejects() {
        // Cheap bound 74/15 ≈ 4.93; tight (one segment, burst paid
        // once) = 32/15 + 10/6 = 19/5 = 3.8.
        let mut e = AdmissionEngine::new();
        let t = e.add_tenant(two_stage(), None).unwrap();
        let c = e.register_class(class(1, 2, rat(19, 5))).unwrap();
        let d = e.decide(t, c, 0).unwrap();
        assert_eq!(d, Decision::Admit { bound: rat(19, 5) });
        assert_eq!(e.stats().tight_evals, 1);
        assert_eq!(
            oracle::decide_full(
                &two_stage(),
                None,
                e.classes(),
                &[],
                &class(1, 2, rat(19, 5)),
                0
            ),
            Ok(rat(19, 5))
        );
    }

    #[test]
    fn rejects_when_even_the_tight_bound_misses_the_deadline() {
        let mut e = AdmissionEngine::new();
        let t = e.add_tenant(two_stage(), None).unwrap();
        let c = e.register_class(class(1, 2, rat(37, 10))).unwrap();
        assert_eq!(
            e.decide(t, c, 0).unwrap(),
            Decision::Reject {
                reason: RejectReason::DeadlineExceeded
            }
        );
    }

    #[test]
    fn placement_prefilter_short_circuits() {
        let mut e = AdmissionEngine::new();
        // Budget 10: stage-0 cap = min(suffix cap, whole-pipeline cap
        // (10−8)/(32/15)) = 15/16.
        let t = e.add_tenant(two_stage(), Some(Rat::int(10))).unwrap();
        assert_eq!(e.placement_cap(t, 0).unwrap(), Some(rat(15, 16)));
        let c = e.register_class(class(1, 2, Rat::int(10))).unwrap();
        assert_eq!(
            e.decide(t, c, 0).unwrap(),
            Decision::Reject {
                reason: RejectReason::PlacementCap
            }
        );
        assert_eq!(e.stats().prefilter_rejects, 1);
    }

    #[test]
    fn burst_can_overflow_the_budget_past_the_prefilter() {
        let mut e = AdmissionEngine::new();
        let t = e.add_tenant(two_stage(), Some(Rat::int(10))).unwrap();
        let c = e
            .register_class(FlowClass {
                name: "bursty".into(),
                rate: rat(1, 2),
                burst: Rat::int(4),
                block: Rat::ONE,
                deadline: Rat::int(10),
            })
            .unwrap();
        // Rate 1/2 passes the 15/16 cap, but b₀ = 8+4 = 12 > 10.
        assert_eq!(
            e.decide(t, c, 0).unwrap(),
            Decision::Reject {
                reason: RejectReason::BudgetExceeded
            }
        );
    }

    #[test]
    fn local_reject_offloads_to_the_remote_pipeline() {
        let mut e = AdmissionEngine::new();
        let t = e.add_tenant(two_stage(), None).unwrap();
        e.set_remote(t, fast_remote(), None).unwrap();
        let c = e.register_class(class(1, 2, rat(37, 10))).unwrap();
        let d = e.decide(t, c, 0).unwrap();
        assert_eq!(
            d,
            Decision::AdmitRemote {
                bound: rat(451, 1250)
            }
        );
        assert_eq!(d.placement(), Some(Placement::Remote));
        assert_eq!(e.resident(t).unwrap(), (0, 1));
        assert_eq!(e.stats().admitted_remote, 1);
        // The remote bound matches the oracle on the remote pipeline.
        assert_eq!(
            oracle::decide_full(
                &fast_remote(),
                None,
                e.classes(),
                &[],
                &class(1, 2, rat(37, 10)),
                0
            ),
            Ok(rat(451, 1250))
        );
    }

    #[test]
    fn depart_restores_admissibility() {
        let mut e = AdmissionEngine::new();
        let t = e.add_tenant(two_stage(), None).unwrap();
        let c = e.register_class(class(2, 2, Rat::int(100))).unwrap();
        for _ in 0..3 {
            assert!(e.decide(t, c, 0).unwrap().is_admitted());
        }
        // Aggregate rate would hit 8 > 6 at the bottleneck.
        assert_eq!(
            e.decide(t, c, 0).unwrap(),
            Decision::Reject {
                reason: RejectReason::RateInfeasible
            }
        );
        e.depart(t, c, 0, Placement::Local).unwrap();
        assert_eq!(e.resident(t).unwrap(), (2, 0));
        assert!(e.decide(t, c, 0).unwrap().is_admitted());
        // Nothing left to depart beyond the three resident flows.
        e.depart(t, c, 0, Placement::Local).unwrap();
        e.depart(t, c, 0, Placement::Local).unwrap();
        e.depart(t, c, 0, Placement::Local).unwrap();
        assert_eq!(
            e.depart(t, c, 0, Placement::Local),
            Err(AdmitError::NoSuchFlow)
        );
    }

    #[test]
    fn peek_does_not_commit() {
        let mut e = AdmissionEngine::new();
        let t = e.add_tenant(two_stage(), None).unwrap();
        let c = e.register_class(class(1, 2, Rat::int(10))).unwrap();
        let peeked = e.peek(t, c, 0).unwrap();
        assert_eq!(e.resident(t).unwrap(), (0, 0));
        assert_eq!(e.stats().decisions, 0);
        assert_eq!(e.decide(t, c, 0).unwrap(), peeked);
    }

    #[test]
    fn attachment_mid_pipeline_skips_upstream_stages() {
        let mut e = AdmissionEngine::new();
        let t = e.add_tenant(two_stage(), None).unwrap();
        let c = e.register_class(class(1, 2, Rat::int(10))).unwrap();
        // Attached at stage 1: b₁ = (8 + 0·4/5) + 2 = 10;
        // bound = 4/3 + 10/6 = 3.
        let d = e.decide(t, c, 1).unwrap();
        assert_eq!(d, Decision::Admit { bound: Rat::int(3) });
        assert_eq!(
            oracle::decide_full(
                &two_stage(),
                None,
                e.classes(),
                &[],
                &class(1, 2, Rat::int(10)),
                1
            ),
            Ok(Rat::int(3))
        );
        assert_eq!(e.decide(t, c, 2).unwrap_err(), AdmitError::BadAttach);
    }

    #[test]
    fn reconfigure_evicts_stale_prefixes_and_applies_new_rates() {
        let mut e = AdmissionEngine::new();
        let t = e.add_tenant(two_stage(), None).unwrap();
        let slow = e.register_class(class(7, 8, Rat::int(100))).unwrap();
        let keep = e.register_class(class(1, 2, Rat::int(100))).unwrap();
        assert!(e.decide(t, keep, 0).unwrap().is_admitted());
        assert!(!e.decide(t, slow, 0).unwrap().is_admitted());

        // Upgrade the bottleneck stage; the shared cache held prefixes
        // of lengths 1 and 2, and only the stale length-2 entry goes.
        let entries_before = e.cache_prefix_entries();
        let evicted = e.reconfigure_stage(t, 1, node("b2", 20, 8)).unwrap();
        assert_eq!(evicted, 1);
        assert_eq!(e.cache_prefix_entries(), entries_before); // new len-2 entry replaced the stale one

        // Resident flows survived; the upgraded stage admits what the
        // old one rejected.
        assert_eq!(e.resident(t).unwrap(), (1, 0));
        assert!(e.decide(t, slow, 0).unwrap().is_admitted());
    }

    #[test]
    fn decisions_match_the_oracle_with_resident_flows() {
        let mut e = AdmissionEngine::new();
        let t = e.add_tenant(two_stage(), None).unwrap();
        let c0 = e.register_class(class(1, 2, Rat::int(10))).unwrap();
        let c1 = e.register_class(class(2, 3, Rat::int(8))).unwrap();
        let mut resident: Vec<(usize, ClassId)> = Vec::new();
        for (class_id, attach) in [(c0, 0), (c1, 1), (c1, 0), (c0, 1)] {
            let got = e.decide(t, class_id, attach).unwrap();
            let want = oracle::decide_full(
                &two_stage(),
                None,
                e.classes(),
                &resident,
                &e.classes()[class_id.0].clone(),
                attach,
            );
            match (got, want) {
                (Decision::Admit { bound }, Ok(w)) => assert_eq!(bound, w),
                (Decision::Reject { reason }, Err(w)) => assert_eq!(reason, w),
                (g, w) => panic!("engine {g:?} vs oracle {w:?}"),
            }
            if got.is_admitted() {
                resident.push((attach, class_id));
            }
        }
    }
}

//! SPSC message links with watermark promises, for conservatively
//! synchronized parallel simulation (PDES).
//!
//! A [`link`] connects exactly one producer logical process (LP) to one
//! consumer LP. Besides timestamped messages, the producer publishes a
//! monotone **watermark**: a promise that every message it will ever
//! send in the future carries a timestamp `>=` the watermark. This is
//! the lower-bound-timestamp half of a classic null-message protocol
//! (Chandy–Misra–Bryant): the consumer may safely simulate up to the
//! minimum of its input watermarks, because no earlier event can still
//! arrive. How far a producer can push its watermark *past* its last
//! sent message is its **lookahead** — in `nc-streamsim` that window is
//! derived from the network-calculus service model (see
//! `Pipeline::stage_lookaheads` in `nc-core`).
//!
//! Design points:
//!
//! * **Batched handoff.** The producer accumulates messages in a local
//!   buffer and publishes them (plus the current watermark) under one
//!   mutex acquisition per [`LinkTx::flush`], so per-message cost stays
//!   lock-free. The auto-flush threshold is the link's *batch*
//!   ([`LinkTx::set_batch`]) — the consumer-visible publication quantum.
//!   Producers must flush before blocking — an unpublished watermark
//!   can deadlock the consumer.
//! * **Lock-free steady state.** The shared side keeps two
//!   cache-line-padded atomics next to the mutex-protected queue: the
//!   published message `depth` and the published watermark bits. An
//!   idle consumer's [`LinkRx::poll`] and a producer's
//!   [`LinkTx::backlogged`] read only the atomics; the mutex is touched
//!   only when messages actually change hands. The watermark store is
//!   `Release` inside the producer's critical section and the
//!   consumer's fast path loads it `Acquire` *before* the depth, so a
//!   watermark can never be observed ahead of the messages it covers
//!   (messages published before the observed watermark would make the
//!   subsequently-loaded depth nonzero).
//! * **Soft capacity.** `capacity` bounds *wall-clock memory*, not
//!   simulation semantics: [`LinkTx::backlogged`] reports when the
//!   consumer has fallen behind, and the driving loop parks the
//!   producer until the consumer drains. A full link never drops or
//!   blocks inside `send`, so producers can always publish watermarks.
//! * **Progress gate.** All parties share one [`ProgressGate`] — an
//!   atomic generation counter with a spin-then-park waiter. Any
//!   publication (flush, close, consumer drain) bumps the generation; a
//!   blocked LP re-polls its inputs and waits for the generation to
//!   move past the value it saw before polling. The waiter spins
//!   (bounded, `NC_SPIN_US` microseconds, exponentially growing
//!   spin-hint batches) before parking on a condvar, so the common
//!   short waits of a well-balanced run never pay a syscall; the parked
//!   path counts waiters so an uncontested [`ProgressGate::bump`] is
//!   two uncontended atomics and no mutex.
//!
//! Determinism: message *content and order* on a link are produced by a
//! single LP, and consumers take scheduling decisions only of the form
//! "may I process up to time `t` yet" — monotone questions whose answer
//! timing cannot change what is computed. Results are therefore
//! independent of thread count and interleaving by construction —
//! including the batch size and any staleness of the published
//! watermark, which affect *liveness* (how soon a consumer may advance)
//! but never *what* it computes.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Default auto-flush threshold of [`LinkTx::send`] (messages buffered
/// before one mutex-protected publication). Override per link with
/// [`LinkTx::set_batch`].
const BATCH: usize = 256;

/// Pads (and alignes) a value to a 64-byte cache line so two hot
/// fields written by different threads never share a line (false
/// sharing turns every write into cross-core traffic).
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T>(pub T);

/// Bounded spin budget before a [`ProgressGate`] waiter parks:
/// `NC_SPIN_US` microseconds (default 20, `0` disables spinning). Read
/// once per process.
fn spin_budget() -> Duration {
    static BUDGET: OnceLock<Duration> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        let us = std::env::var("NC_SPIN_US")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .unwrap_or(20);
        Duration::from_micros(us)
    })
}

/// Process-wide count of link publications (flushes and closes that
/// made new state visible). Instrumentation for the batched-watermark
/// ablation in `perfbase`; one relaxed increment per publication.
static PUBLISHES: AtomicU64 = AtomicU64::new(0);

/// Read and reset the process-wide publication counter.
pub fn take_publish_count() -> u64 {
    PUBLISHES.swap(0, Ordering::Relaxed)
}

/// A shared generation counter + condvar: the "something changed
/// somewhere" signal for a set of LPs connected by links.
#[derive(Debug, Default)]
pub struct ProgressGate {
    generation: CachePadded<AtomicU64>,
    waiters: AtomicU32,
    lock: Mutex<()>,
    cond: Condvar,
}

impl ProgressGate {
    /// A fresh gate at generation 0.
    pub fn new() -> Arc<ProgressGate> {
        Arc::new(ProgressGate::default())
    }

    /// The current generation. Read this *before* polling inputs; pass
    /// it to [`ProgressGate::wait_past`] if the poll found nothing.
    pub fn generation(&self) -> u64 {
        self.generation.0.load(Ordering::Acquire)
    }

    /// Announce progress: bump the generation and wake every waiter.
    /// With nobody parked this is two uncontended atomics — no mutex.
    pub fn bump(&self) {
        self.generation.0.fetch_add(1, Ordering::SeqCst);
        if self.waiters.load(Ordering::SeqCst) != 0 {
            // Notify while holding the lock: a waiter is either already
            // in `cond.wait` (woken now) or will re-check the
            // generation under the lock and see this bump.
            drop(self.lock.lock().expect("gate poisoned"));
            self.cond.notify_all();
        }
    }

    /// Block until the generation differs from `seen`. Returns
    /// immediately if progress already happened since `seen` was read —
    /// publications between the caller's poll and this wait are never
    /// missed. Spins (bounded by `NC_SPIN_US`, exponentially growing
    /// spin batches with a yield once the batch saturates) before
    /// parking on the condvar.
    pub fn wait_past(&self, seen: u64) {
        // Spin phase: cheap for the short waits of a balanced run.
        let budget = spin_budget();
        if !budget.is_zero() {
            let start = Instant::now();
            let mut batch: u32 = 1;
            loop {
                for _ in 0..batch {
                    std::hint::spin_loop();
                }
                if self.generation.0.load(Ordering::Acquire) != seen {
                    return;
                }
                if batch < 1 << 10 {
                    batch <<= 1;
                } else {
                    // Saturated: be polite to an oversubscribed host.
                    std::thread::yield_now();
                }
                if start.elapsed() >= budget {
                    break;
                }
            }
        }
        // Park phase. The waiter count is raised before the locked
        // re-check, and `bump` increments the generation before loading
        // the count (both SeqCst), so either `bump` sees a waiter and
        // notifies under the lock, or this thread's re-check sees the
        // new generation — a wakeup is never lost.
        self.waiters.fetch_add(1, Ordering::SeqCst);
        let mut g = self.lock.lock().expect("gate poisoned");
        while self.generation.0.load(Ordering::SeqCst) == seen {
            g = self.cond.wait(g).expect("gate poisoned");
        }
        drop(g);
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }
}

#[derive(Debug)]
struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    /// Published-but-undrained message count (consistent with `queue`
    /// whenever the mutex is held; lock-free readers may see it stale,
    /// which only delays them by one poll).
    depth: CachePadded<AtomicUsize>,
    /// Published watermark as `f64` bits (monotone; `+∞` once closed).
    wm_bits: CachePadded<AtomicU64>,
}

/// Producer half of a link.
#[derive(Debug)]
pub struct LinkTx<T> {
    shared: Arc<Shared<T>>,
    gate: Arc<ProgressGate>,
    buf: Vec<T>,
    watermark: f64,
    published_watermark: f64,
    capacity: usize,
    batch: usize,
    closed: bool,
}

/// Consumer half of a link.
#[derive(Debug)]
pub struct LinkRx<T> {
    shared: Arc<Shared<T>>,
    gate: Arc<ProgressGate>,
    /// Drained messages, consumed without locking.
    local: VecDeque<T>,
    watermark: f64,
    closed: bool,
}

/// Create a producer/consumer pair sharing `gate`. `capacity` is the
/// soft in-flight message bound reported by [`LinkTx::backlogged`].
pub fn link<T>(capacity: usize, gate: &Arc<ProgressGate>) -> (LinkTx<T>, LinkRx<T>) {
    assert!(capacity > 0, "link capacity must be positive");
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        depth: CachePadded(AtomicUsize::new(0)),
        wm_bits: CachePadded(AtomicU64::new(0.0f64.to_bits())),
    });
    (
        LinkTx {
            shared: Arc::clone(&shared),
            gate: Arc::clone(gate),
            buf: Vec::with_capacity(BATCH),
            watermark: 0.0,
            published_watermark: 0.0,
            capacity,
            batch: BATCH,
            closed: false,
        },
        LinkRx {
            shared,
            gate: Arc::clone(gate),
            local: VecDeque::new(),
            watermark: 0.0,
            closed: false,
        },
    )
}

impl<T> LinkTx<T> {
    /// Enqueue one message (auto-publishing a full batch). Never blocks.
    pub fn send(&mut self, msg: T) {
        debug_assert!(!self.closed, "send on a closed link");
        self.buf.push(msg);
        if self.buf.len() >= self.batch {
            self.flush();
        }
    }

    /// Set the auto-flush threshold of [`LinkTx::send`] — the
    /// publication quantum. `1` publishes every message (the ablation
    /// baseline); larger values amortize the mutex and the gate bump
    /// over the batch. Clamped to `[1, capacity]`.
    pub fn set_batch(&mut self, batch: usize) {
        self.batch = batch.clamp(1, self.capacity);
    }

    /// Raise the watermark promise to `w` (monotone: lower values are
    /// ignored — an older sound bound stays sound). Published on the
    /// next [`LinkTx::flush`].
    pub fn set_watermark(&mut self, w: f64) {
        if w > self.watermark {
            self.watermark = w;
        }
    }

    /// The current (possibly unpublished) watermark.
    pub fn watermark(&self) -> f64 {
        self.watermark
    }

    /// Publish buffered messages and the current watermark, announcing
    /// progress if anything new became visible.
    pub fn flush(&mut self) {
        if self.buf.is_empty() && self.watermark == self.published_watermark {
            return;
        }
        {
            let mut q = self.shared.queue.lock().expect("link poisoned");
            let k = self.buf.len();
            q.extend(self.buf.drain(..));
            if k > 0 {
                self.shared.depth.0.fetch_add(k, Ordering::Release);
            }
            // Release inside the critical section: a consumer that
            // Acquire-loads this watermark observes the messages (and
            // depth) published before it.
            self.shared
                .wm_bits
                .0
                .store(self.watermark.to_bits(), Ordering::Release);
        }
        self.published_watermark = self.watermark;
        PUBLISHES.fetch_add(1, Ordering::Relaxed);
        self.gate.bump();
    }

    /// `true` when in-flight messages exceed the soft capacity; the
    /// producer should flush and park until the consumer drains.
    /// Lock-free (reads the published depth).
    pub fn backlogged(&self) -> bool {
        self.shared.depth.0.load(Ordering::Relaxed) + self.buf.len() >= self.capacity
    }

    /// Flush everything, promise no further messages (watermark `+∞`)
    /// and mark the link closed. Idempotent.
    pub fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        self.watermark = f64::INFINITY;
        self.flush();
    }
}

impl<T> LinkRx<T> {
    /// Drain newly published messages into the local buffer and refresh
    /// the cached watermark/closed state. Returns `true` if any message
    /// was taken (which also wakes a producer parked on backlog). When
    /// nothing was published since the last poll this is two atomic
    /// loads — no lock.
    pub fn poll(&mut self) -> bool {
        let s = &*self.shared;
        // Watermark first, depth second (both Acquire, not reorderable):
        // any message covered by the observed watermark was published
        // before it and would make this depth load nonzero.
        let wm = f64::from_bits(s.wm_bits.0.load(Ordering::Acquire));
        if s.depth.0.load(Ordering::Acquire) == 0 {
            if wm > self.watermark {
                self.watermark = wm;
                self.closed = wm.is_infinite();
            }
            return false;
        }
        let took;
        {
            let mut q = s.queue.lock().expect("link poisoned");
            let k = q.len();
            took = k > 0;
            if took {
                self.local.extend(q.drain(..));
                s.depth.0.fetch_sub(k, Ordering::Release);
            }
            // Under the lock, watermark and queue are mutually
            // consistent (the producer stores both in its critical
            // section).
            let wm = f64::from_bits(s.wm_bits.0.load(Ordering::Acquire));
            if wm > self.watermark {
                self.watermark = wm;
                self.closed = wm.is_infinite();
            }
        }
        if took {
            // A backlogged producer may be parked on the gate.
            self.gate.bump();
        }
        took
    }

    /// The next undelivered message, if any (after the last `poll`).
    pub fn front(&self) -> Option<&T> {
        self.local.front()
    }

    /// Remove and return the next message.
    pub fn pop(&mut self) -> Option<T> {
        self.local.pop_front()
    }

    /// Iterate the locally buffered (not yet consumed) messages.
    pub fn buffered(&self) -> impl Iterator<Item = &T> {
        self.local.iter()
    }

    /// The frontier below which no *new* message can appear: the cached
    /// producer watermark (`+∞` once closed). Messages already in the
    /// local buffer may of course carry earlier timestamps.
    pub fn watermark(&self) -> f64 {
        self.watermark
    }

    /// `true` once the producer closed the link and every message has
    /// been drained out of the shared queue (local buffer may still
    /// hold messages).
    pub fn closed(&self) -> bool {
        self.closed
    }

    /// `true` when no message is buffered and none can ever arrive.
    pub fn exhausted(&self) -> bool {
        self.closed && self.local.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_arrive_in_order_after_flush() {
        let gate = ProgressGate::new();
        let (mut tx, mut rx) = link::<u32>(1024, &gate);
        tx.send(1);
        tx.send(2);
        assert!(!rx.poll(), "nothing visible before flush");
        tx.flush();
        assert!(rx.poll());
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn watermark_is_monotone_and_published_on_flush() {
        let gate = ProgressGate::new();
        let (mut tx, mut rx) = link::<u32>(1024, &gate);
        tx.set_watermark(5.0);
        tx.set_watermark(3.0); // lower: ignored
        assert_eq!(tx.watermark(), 5.0);
        rx.poll();
        assert_eq!(rx.watermark(), 0.0, "unpublished until flush");
        tx.flush();
        rx.poll();
        assert_eq!(rx.watermark(), 5.0);
    }

    #[test]
    fn close_is_an_infinite_watermark() {
        let gate = ProgressGate::new();
        let (mut tx, mut rx) = link::<u32>(1024, &gate);
        tx.send(7);
        tx.close();
        rx.poll();
        assert!(rx.closed());
        assert_eq!(rx.watermark(), f64::INFINITY);
        assert!(!rx.exhausted(), "one message still buffered");
        assert_eq!(rx.pop(), Some(7));
        assert!(rx.exhausted());
        tx.close(); // idempotent
    }

    #[test]
    fn backlog_reflects_unconsumed_depth() {
        let gate = ProgressGate::new();
        let (mut tx, mut rx) = link::<u32>(4, &gate);
        for i in 0..4 {
            tx.send(i);
        }
        tx.flush();
        assert!(tx.backlogged());
        rx.poll(); // consumer drains the shared queue
        assert!(!tx.backlogged());
    }

    #[test]
    fn batch_of_one_publishes_every_send() {
        let gate = ProgressGate::new();
        let (mut tx, mut rx) = link::<u32>(1024, &gate);
        tx.set_batch(1);
        take_publish_count();
        tx.send(1);
        tx.send(2);
        assert!(rx.poll(), "batch=1 publishes without an explicit flush");
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
        assert!(take_publish_count() >= 2, "one publication per send");
    }

    #[test]
    fn gate_wait_past_never_misses_a_bump() {
        let gate = ProgressGate::new();
        let seen = gate.generation();
        gate.bump();
        // Progress happened after `seen` was read: wait returns at once.
        gate.wait_past(seen);
        assert_ne!(gate.generation(), seen);
    }

    #[test]
    fn threaded_producer_consumer_round_trip() {
        let gate = ProgressGate::new();
        let (mut tx, mut rx) = link::<u64>(1 << 12, &gate);
        const N: u64 = 10_000;
        let g2 = Arc::clone(&gate);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                tx.send(i);
            }
            tx.close();
            drop(g2);
        });
        let mut got = Vec::new();
        loop {
            let seen = gate.generation();
            rx.poll();
            while let Some(x) = rx.pop() {
                got.push(x);
            }
            if rx.exhausted() {
                break;
            }
            gate.wait_past(seen);
        }
        producer.join().expect("producer");
        assert_eq!(got.len() as u64, N);
        assert!(got.iter().copied().eq(0..N));
    }

    #[test]
    fn threaded_parked_consumer_is_woken() {
        // Force the park path (no spin budget would need env control;
        // instead outlast it): the consumer waits on a gate while the
        // producer sleeps past any reasonable spin budget, then
        // publishes. The wait must return.
        let gate = ProgressGate::new();
        let (mut tx, mut rx) = link::<u32>(64, &gate);
        let seen = gate.generation();
        let producer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            tx.send(9);
            tx.flush();
        });
        gate.wait_past(seen);
        assert!(rx.poll());
        assert_eq!(rx.pop(), Some(9));
        producer.join().expect("producer");
    }
}

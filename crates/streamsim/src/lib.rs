//! # nc-streamsim — discrete-event simulation of streaming pipelines
//!
//! The validation arm of the paper's methodology: every
//! network-calculus prediction (throughput bounds, virtual delay,
//! backlog) is checked against a discrete-event simulation of the same
//! pipeline (§4.2, §5). This crate turns an `nc_core`
//! [`Pipeline`](nc_core::pipeline::Pipeline) into an event-driven model
//! on the `nc-des` kernel, with per-stage uniform(min,max) execution
//! times, job-granular data movement, optional bounded queues with
//! blocking backpressure, and the trace/statistics outputs the paper's
//! figures and tables report.
//!
//! ## Quick start
//!
//! ```
//! use nc_core::num::Rat;
//! use nc_core::pipeline::{Node, NodeKind, Pipeline, Source, StageRates};
//! use nc_streamsim::{simulate, SimConfig};
//!
//! let p = Pipeline::new(
//!     "demo",
//!     Source { rate: Rat::int(1000), burst: Rat::int(64) },
//!     vec![Node::new(
//!         "stage",
//!         NodeKind::Compute,
//!         StageRates::new(Rat::int(400), Rat::int(500), Rat::int(600)),
//!         Rat::ZERO,
//!         Rat::int(64),
//!         Rat::int(64),
//!     )],
//! );
//! let r = simulate(&p, &SimConfig {
//!     total_input: 64 * 100,
//!     ..SimConfig::default()
//! });
//! assert!(r.throughput > 350.0 && r.throughput < 650.0);
//! ```

#![warn(missing_docs)]

mod config;
mod det;
mod engine;
mod faults;
mod par;
mod reference;
mod result;
mod ring;

pub use config::{ServiceModel, SimConfig};
pub use engine::{simulate, simulate_in, SimArena};
pub use faults::{ConfigError, FaultSchedule, Outage, RecoveryPolicy, StageFault, StallSpec};
pub use reference::simulate_reference;
pub use result::{NodeStats, SimResult};

//! Exact rational arithmetic over `i128`.
//!
//! Network-calculus bounds are *guarantees*; computing them in floating
//! point turns exact statements ("the backlog never exceeds `b + R·T`")
//! into approximate ones. All curve coordinates in this crate are
//! therefore exact rationals. `i128` numerators/denominators with
//! aggressive GCD reduction comfortably cover the dynamic range of the
//! paper's workloads (rates up to tens of GiB/s, times from nanoseconds
//! to hours) without ever allocating.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number `num/den` with `den > 0`, always stored in
/// lowest terms.
///
/// Arithmetic panics on `i128` overflow (far outside the intended
/// dynamic range) and on division by zero, mirroring integer semantics.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128,
}

/// Greatest common divisor (always non-negative).
fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rat {
    /// Zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// One.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Construct `num/den`, reducing to lowest terms.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "Rat::new: zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den);
        if g == 0 {
            return Rat::ZERO;
        }
        Rat {
            num: sign * (num / g),
            den: (den / g).abs(),
        }
    }

    /// Construct from an integer.
    pub const fn int(n: i64) -> Rat {
        Rat {
            num: n as i128,
            den: 1,
        }
    }

    /// Numerator (lowest terms; carries the sign).
    pub const fn numer(self) -> i128 {
        self.num
    }

    /// Denominator (lowest terms; always positive).
    pub const fn denom(self) -> i128 {
        self.den
    }

    /// Best rational approximation of `x` with denominator at most
    /// `max_den`, via continued fractions.
    ///
    /// Used to ingest measured (floating-point) rates; the default
    /// `max_den = 10^6` (relative error well under 10⁻⁹ for typical
    /// magnitudes) keeps denominators small enough that long chains of
    /// curve operations stay inside `i128`. Use
    /// [`Rat::from_f64_with_den`] when more precision is genuinely
    /// needed.
    ///
    /// # Panics
    /// Panics if `x` is not finite.
    pub fn from_f64(x: f64) -> Rat {
        Rat::from_f64_with_den(x, 1_000_000)
    }

    /// As [`Rat::from_f64`] with an explicit denominator bound.
    pub fn from_f64_with_den(x: f64, max_den: i128) -> Rat {
        assert!(x.is_finite(), "Rat::from_f64: non-finite input {x}");
        assert!(max_den >= 1);
        let neg = x < 0.0;
        let mut x = x.abs();
        // Continued-fraction convergents p/q.
        let (mut p0, mut q0, mut p1, mut q1) = (0i128, 1i128, 1i128, 0i128);
        loop {
            let a = x.floor();
            if a > i64::MAX as f64 {
                break;
            }
            let ai = a as i128;
            let p2 = match ai.checked_mul(p1).and_then(|v| v.checked_add(p0)) {
                Some(v) => v,
                None => break,
            };
            let q2 = match ai.checked_mul(q1).and_then(|v| v.checked_add(q0)) {
                Some(v) => v,
                None => break,
            };
            if q2 > max_den {
                break;
            }
            p0 = p1;
            q0 = q1;
            p1 = p2;
            q1 = q2;
            let frac = x - a;
            if frac < 1e-15 {
                break;
            }
            x = 1.0 / frac;
        }
        if q1 == 0 {
            return Rat::ZERO;
        }
        let r = Rat::new(p1, q1);
        if neg {
            -r
        } else {
            r
        }
    }

    /// Convert to `f64` (may round).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// `true` iff the value is an integer.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Sign: `-1`, `0`, or `1`.
    pub fn signum(self) -> i32 {
        self.num.signum() as i32
    }

    /// `true` iff zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// `true` iff strictly positive.
    pub fn is_positive(self) -> bool {
        self.num > 0
    }

    /// `true` iff strictly negative.
    pub fn is_negative(self) -> bool {
        self.num < 0
    }

    /// Absolute value.
    pub fn abs(self) -> Rat {
        Rat {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics on zero.
    pub fn recip(self) -> Rat {
        assert!(self.num != 0, "Rat::recip of zero");
        // Lowest terms are preserved by swapping the components; only
        // the sign needs to move to the numerator.
        if self.num > 0 {
            Rat {
                num: self.den,
                den: self.num,
            }
        } else if self.num == i128::MIN {
            Rat::new(self.den, self.num)
        } else {
            Rat {
                num: -self.den,
                den: -self.num,
            }
        }
    }

    /// Minimum of two rationals.
    pub fn min(self, other: Rat) -> Rat {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two rationals.
    pub fn max(self, other: Rat) -> Rat {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Clamp into `[lo, hi]`.
    pub fn clamp(self, lo: Rat, hi: Rat) -> Rat {
        debug_assert!(lo <= hi);
        self.max(lo).min(hi)
    }

    /// Floor to integer.
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Ceiling to integer.
    pub fn ceil(self) -> i128 {
        -(-self.num).div_euclid(self.den)
    }

    /// `true` iff both components fit in `i64`, in which case every
    /// cross product in add/mul/cmp stays below `2^126` and `i128`
    /// arithmetic cannot overflow.
    #[inline]
    const fn fits_i64(self) -> bool {
        self.num as i64 as i128 == self.num && self.den as i64 as i128 == self.den
    }

    /// Normalize `num/den` when `den > 0` is already known, spending at
    /// most one gcd (vs. the sign handling in [`Rat::new`]).
    #[inline]
    fn reduced(num: i128, den: i128) -> Rat {
        debug_assert!(den > 0);
        if num == 0 {
            return Rat::ZERO;
        }
        if den == 1 {
            return Rat { num, den: 1 };
        }
        let g = gcd(num, den);
        Rat {
            num: num / g,
            den: den / g,
        }
    }

    /// Overflow-checked addition.
    ///
    /// Always takes the full-width reference route that the operator
    /// fast lane falls back to, making it usable as an oracle for the
    /// fast lane in tests.
    pub fn checked_add(self, rhs: Rat) -> Option<Rat> {
        self.checked_add_impl(rhs)
    }

    /// Overflow-checked multiplication (reference route; see
    /// [`Rat::checked_add`]).
    pub fn checked_mul(self, rhs: Rat) -> Option<Rat> {
        self.checked_mul_impl(rhs)
    }

    fn checked_add_impl(self, rhs: Rat) -> Option<Rat> {
        // Reduce cross-terms first to delay overflow: a/b + c/d with
        // g = gcd(b, d): (a*(d/g) + c*(b/g)) / (b/g*d).
        let g = gcd(self.den, rhs.den);
        let lhs_scaled = self.num.checked_mul(rhs.den / g)?;
        let rhs_scaled = rhs.num.checked_mul(self.den / g)?;
        let num = lhs_scaled.checked_add(rhs_scaled)?;
        let den = (self.den / g).checked_mul(rhs.den)?;
        Some(Rat::new(num, den))
    }

    fn checked_mul_impl(self, rhs: Rat) -> Option<Rat> {
        // Cross-reduce before multiplying.
        let g1 = gcd(self.num, rhs.den);
        let g2 = gcd(rhs.num, self.den);
        let num = (self.num / g1).checked_mul(rhs.num / g2)?;
        let den = (self.den / g2).checked_mul(rhs.den / g1)?;
        Some(Rat::new(num, den))
    }
}

impl Default for Rat {
    fn default() -> Self {
        Rat::ZERO
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Self) -> Ordering {
        // Fast lane: i64-sized components cross-multiply without any
        // gcds or overflow checks.
        if self.fits_i64() && other.fits_i64() {
            return (self.num * other.den).cmp(&(other.num * self.den));
        }
        // a/b vs c/d  <=>  a*d vs c*b (b, d > 0). Cross-reduce first.
        let g1 = gcd(self.num, other.num);
        let g2 = gcd(self.den, other.den);
        if g1 != 0 {
            let l = (self.num / g1)
                .checked_mul(other.den / g2)
                .expect("Rat::cmp overflow");
            let r = (other.num / g1)
                .checked_mul(self.den / g2)
                .expect("Rat::cmp overflow");
            // Dividing both sides by positive g1 keeps order only if g1 > 0;
            // gcd is non-negative and nonzero here, so order is preserved.
            l.cmp(&r)
        } else {
            // Both numerators zero.
            Ordering::Equal
        }
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        // Fast lane: i64-sized operands need no overflow checks, and the
        // shape of the denominators decides how much gcd work remains.
        // Results wider than i64 are still valid `Rat`s; they simply take
        // the checked lane in later operations.
        if self.fits_i64() && rhs.fits_i64() {
            let Rat { num: a, den: b } = self;
            let Rat { num: c, den: d } = rhs;
            return if b == d {
                if b == 1 {
                    Rat { num: a + c, den: 1 }
                } else {
                    Rat::reduced(a + c, b)
                }
            } else if b == 1 {
                // gcd(a·d + c, d) = gcd(c, d) = 1: already lowest terms.
                Rat {
                    num: a * d + c,
                    den: d,
                }
            } else if d == 1 {
                Rat {
                    num: a + c * b,
                    den: b,
                }
            } else {
                Rat::reduced(a * d + c * b, b * d)
            };
        }
        self.checked_add_impl(rhs).expect("Rat add overflow")
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        if self.fits_i64() && rhs.fits_i64() {
            // The add fast lane cannot overflow for i64-sized operands.
            return self + (-rhs);
        }
        self.checked_add_impl(-rhs).expect("Rat sub overflow")
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        if self.fits_i64() && rhs.fits_i64() {
            let Rat { num: a, den: b } = self;
            let Rat { num: c, den: d } = rhs;
            if b == 1 && d == 1 {
                return Rat { num: a * c, den: 1 };
            }
            // Cross-reduce: (a/g1)·(c/g2) over (b/g2)·(d/g1) is already
            // in lowest terms, so no trailing normalization is needed.
            let g1 = gcd(a, d);
            let g2 = gcd(c, b);
            return Rat {
                num: (a / g1) * (c / g2),
                den: (b / g2) * (d / g1),
            };
        }
        self.checked_mul_impl(rhs).expect("Rat mul overflow")
    }
}

impl Div for Rat {
    type Output = Rat;
    fn div(self, rhs: Rat) -> Rat {
        assert!(rhs.num != 0, "Rat division by zero");
        if self.fits_i64() && rhs.fits_i64() {
            return self * rhs.recip();
        }
        self.checked_mul_impl(rhs.recip())
            .expect("Rat div overflow")
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rat {
    fn add_assign(&mut self, rhs: Rat) {
        *self = *self + rhs;
    }
}
impl SubAssign for Rat {
    fn sub_assign(&mut self, rhs: Rat) {
        *self = *self - rhs;
    }
}
impl MulAssign for Rat {
    fn mul_assign(&mut self, rhs: Rat) {
        *self = *self * rhs;
    }
}
impl DivAssign for Rat {
    fn div_assign(&mut self, rhs: Rat) {
        *self = *self / rhs;
    }
}

impl From<i64> for Rat {
    fn from(n: i64) -> Rat {
        Rat::int(n)
    }
}

impl From<u32> for Rat {
    fn from(n: u32) -> Rat {
        Rat::int(n as i64)
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl serde::Serialize for Rat {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        // Serialize as f64 for downstream plotting/JSON consumers.
        s.serialize_f64(self.to_f64())
    }
}

impl<'de> serde::Deserialize<'de> for Rat {
    /// Accepts a JSON number (converted by continued-fraction
    /// approximation, exact for integers and dyadic fractions) or a
    /// two-element `[num, den]` array for exact rationals.
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Rat, D::Error> {
        use serde::de::{Error, SeqAccess, Visitor};
        struct RatVisitor;
        impl<'de> Visitor<'de> for RatVisitor {
            type Value = Rat;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a number or [numerator, denominator]")
            }
            fn visit_f64<E: Error>(self, v: f64) -> Result<Rat, E> {
                if !v.is_finite() {
                    return Err(E::custom("rational must be finite"));
                }
                Ok(Rat::from_f64(v))
            }
            fn visit_i64<E: Error>(self, v: i64) -> Result<Rat, E> {
                Ok(Rat::int(v))
            }
            fn visit_u64<E: Error>(self, v: u64) -> Result<Rat, E> {
                i64::try_from(v)
                    .map(Rat::int)
                    .map_err(|_| E::custom("integer out of range"))
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Rat, A::Error> {
                let num: i64 = seq
                    .next_element()?
                    .ok_or_else(|| Error::custom("missing numerator"))?;
                let den: i64 = seq
                    .next_element()?
                    .ok_or_else(|| Error::custom("missing denominator"))?;
                if den == 0 {
                    return Err(Error::custom("zero denominator"));
                }
                Ok(Rat::new(num as i128, den as i128))
            }
        }
        d.deserialize_any(RatVisitor)
    }
}

/// Convenience constructor: `rat(3, 4)` is `3/4`.
pub fn rat(num: i128, den: i128) -> Rat {
    Rat::new(num, den)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_to_lowest_terms() {
        assert_eq!(Rat::new(6, 4), Rat::new(3, 2));
        assert_eq!(Rat::new(-6, 4), Rat::new(-3, 2));
        assert_eq!(Rat::new(6, -4), Rat::new(-3, 2));
        assert_eq!(Rat::new(-6, -4), Rat::new(3, 2));
        assert_eq!(Rat::new(0, 7), Rat::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let a = rat(1, 2);
        let b = rat(1, 3);
        assert_eq!(a + b, rat(5, 6));
        assert_eq!(a - b, rat(1, 6));
        assert_eq!(a * b, rat(1, 6));
        assert_eq!(a / b, rat(3, 2));
        assert_eq!(-a, rat(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(rat(1, 3) < rat(1, 2));
        assert!(rat(-1, 2) < rat(-1, 3));
        assert!(rat(2, 4) == rat(1, 2));
        assert_eq!(rat(7, 3).max(rat(5, 2)), rat(5, 2));
        assert_eq!(rat(7, 3).min(rat(5, 2)), rat(7, 3));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(rat(7, 2).floor(), 3);
        assert_eq!(rat(7, 2).ceil(), 4);
        assert_eq!(rat(-7, 2).floor(), -4);
        assert_eq!(rat(-7, 2).ceil(), -3);
        assert_eq!(rat(4, 2).floor(), 2);
        assert_eq!(rat(4, 2).ceil(), 2);
    }

    #[test]
    fn from_f64_exact_small() {
        assert_eq!(Rat::from_f64(0.5), rat(1, 2));
        assert_eq!(Rat::from_f64(0.25), rat(1, 4));
        assert_eq!(Rat::from_f64(3.0), Rat::int(3));
        assert_eq!(Rat::from_f64(-2.5), rat(-5, 2));
        assert_eq!(Rat::from_f64(0.0), Rat::ZERO);
    }

    #[test]
    fn from_f64_approximates() {
        let pi = Rat::from_f64(std::f64::consts::PI);
        assert!((pi.to_f64() - std::f64::consts::PI).abs() < 1e-9);
        // Measured-rate style number.
        let r = Rat::from_f64(2662.0 * 1024.0 * 1024.0);
        assert_eq!(r, Rat::int(2662 * 1024 * 1024));
    }

    #[test]
    fn recip_and_division_by_zero() {
        assert_eq!(rat(3, 4).recip(), rat(4, 3));
        assert_eq!(rat(-3, 4).recip(), rat(-4, 3));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = Rat::ONE / Rat::ZERO;
    }

    #[test]
    fn fast_lane_matches_checked_reference() {
        // Components at and around the i64 boundary: the lane predicate
        // must route wide values to the checked path and the two paths
        // must agree wherever both are defined.
        let m = i64::MAX as i128;
        let vals = [
            Rat::ZERO,
            Rat::ONE,
            rat(-3, 7),
            rat(5, 6),
            rat(m, 1),
            rat(-m, 1),
            rat(m, m - 1),
            rat(m - 1, m),
            rat(1, m),
            rat(-1, m),
            rat(m, 2) * rat(m, 3), // wide: forces the checked lane
            rat(7, 3) * rat(m, 1),
        ];
        for &a in &vals {
            for &b in &vals {
                if let Some(s) = a.checked_add(b) {
                    assert_eq!(a + b, s, "{a} + {b}");
                    assert_eq!(a - (-b), s, "{a} - -{b}");
                }
                if let Some(p) = a.checked_mul(b) {
                    assert_eq!(a * b, p, "{a} * {b}");
                    if !b.is_zero() {
                        assert_eq!(p / b, a, "{a}*{b} / {b}");
                    }
                }
                // cmp agrees with the sign of the checked difference.
                if let Some(d) = a.checked_add(-b) {
                    assert_eq!(a.cmp(&b), d.signum().cmp(&0), "{a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn fast_lane_results_stay_in_lowest_terms() {
        // Eq/Hash derive on the raw fields, so every lane must
        // normalize. Exercise each denominator shape.
        let cases = [
            (rat(1, 4) + rat(1, 4), rat(1, 2)),
            (rat(1, 6) + rat(1, 3), rat(1, 2)),
            (Rat::int(2) + rat(3, 4), rat(11, 4)),
            (rat(3, 4) + Rat::int(2), rat(11, 4)),
            (Rat::int(6) * rat(5, 3), Rat::int(10)),
            (rat(4, 9) * rat(3, 2), rat(2, 3)),
            (rat(5, 6) - rat(1, 6), rat(2, 3)),
            (rat(2, 3) / rat(4, 3), rat(1, 2)),
        ];
        for (got, want) in cases {
            assert_eq!(got, want);
            assert_eq!(got.numer(), want.numer());
            assert_eq!(got.denom(), want.denom());
        }
        assert_eq!(rat(-3, 4).recip(), rat(-4, 3));
        assert_eq!(rat(-3, 4).recip().denom(), 3);
    }

    #[test]
    fn large_values_no_overflow() {
        // 11 GiB/s in bytes/s times an hour in seconds.
        let rate = Rat::int(11) * Rat::int(1 << 30);
        let t = Rat::int(3600);
        let bytes = rate * t;
        assert_eq!(bytes, Rat::int(11 * 3600) * Rat::int(1 << 30));
    }
}

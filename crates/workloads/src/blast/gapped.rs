//! Host-side gapped extension — the stage the paper's GPU pipeline
//! omits ("Our implementation does not presently perform gapped
//! extension [1], but for BLASTN, that stage takes negligible time
//! compared to the rest of the pipeline and would be implemented on the
//! host processor").
//!
//! We implement it as a banded Needleman–Wunsch-style local extension
//! with affine-free gap costs and X-drop termination, seeded by an
//! ungapped alignment: the standard BLASTN post-processing step.

use crate::fasta::base_at;

use super::index::SEED_LEN;
use super::stages::Extension;

/// Scoring for gapped extension.
#[derive(Clone, Copy, Debug)]
pub struct GappedParams {
    /// Match reward (BLASTN default +1).
    pub match_score: i32,
    /// Mismatch penalty (default −3).
    pub mismatch_score: i32,
    /// Per-base gap penalty (linear; default −5).
    pub gap_score: i32,
    /// Band half-width around the seed diagonal.
    pub band: usize,
    /// Maximum extension length per direction.
    pub window: usize,
    /// X-drop: stop a direction once its running best falls this far.
    pub x_drop: i32,
}

impl Default for GappedParams {
    fn default() -> Self {
        GappedParams {
            match_score: 1,
            mismatch_score: -3,
            gap_score: -5,
            band: 5,
            window: 256,
            x_drop: 20,
        }
    }
}

/// A gapped alignment result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GappedAlignment {
    /// The ungapped candidate this extends.
    pub from: Extension,
    /// Total score including both gapped flanks and the seed.
    pub score: i32,
}

/// Banded DP extension in one direction. `db_iter`/`q_iter` yield bases
/// walking away from the seed; returns the best score achieved.
fn extend_dir(
    db: impl Fn(usize) -> Option<u8>,
    q: impl Fn(usize) -> Option<u8>,
    p: &GappedParams,
) -> i32 {
    let band = p.band;
    let width = 2 * band + 1;
    const NEG: i32 = i32::MIN / 4;
    // dp[k] = score ending at offset diag k−band on the current row.
    let mut prev = vec![NEG; width];
    prev[band] = 0;
    let mut best = 0i32;
    for i in 1..=p.window {
        let mut cur = vec![NEG; width];
        let mut row_best = NEG;
        for k in 0..width {
            // Cell (i, j) with j = i + k − band.
            let j = i as isize + k as isize - band as isize;
            if j < 1 {
                continue;
            }
            let j = j as usize;
            let (Some(a), Some(b)) = (db(i - 1), q(j - 1)) else {
                // Outside either sequence: only gap moves possible, and
                // they never improve a local extension — skip.
                continue;
            };
            let sub = if a == b {
                p.match_score
            } else {
                p.mismatch_score
            };
            let diag = prev[k] + sub;
            let up = if k + 1 < width {
                prev[k + 1] + p.gap_score
            } else {
                NEG
            };
            let left = if k >= 1 {
                cur[k - 1] + p.gap_score
            } else {
                NEG
            };
            let val = diag.max(up).max(left);
            cur[k] = val;
            row_best = row_best.max(val);
        }
        best = best.max(row_best);
        if row_best < best - p.x_drop || row_best <= NEG / 2 {
            break;
        }
        prev = cur;
    }
    best.max(0)
}

/// Gapped-extend each above-threshold ungapped alignment in both
/// directions; returns the (typically slightly improved) scores.
pub fn gapped_extension(
    db_packed: &[u8],
    db_len: usize,
    query_packed: &[u8],
    query_len: usize,
    candidates: &[Extension],
    params: &GappedParams,
) -> Vec<GappedAlignment> {
    candidates
        .iter()
        .map(|&c| {
            let s = c.seed;
            // Right flank starts after the ungapped right extent.
            let dbr = s.p as usize + SEED_LEN + c.right as usize;
            let qr = s.q as usize + SEED_LEN + c.right as usize;
            let right = extend_dir(
                |i| {
                    let idx = dbr + i;
                    (idx < db_len).then(|| base_at(db_packed, idx))
                },
                |j| {
                    let idx = qr + j;
                    (idx < query_len).then(|| base_at(query_packed, idx))
                },
                params,
            );
            // Left flank walks backwards before the ungapped left extent.
            let dbl = s.p as usize - c.left as usize;
            let ql = s.q as usize - c.left as usize;
            let left = extend_dir(
                |i| dbl.checked_sub(i + 1).map(|idx| base_at(db_packed, idx)),
                |j| ql.checked_sub(j + 1).map(|idx| base_at(query_packed, idx)),
                params,
            );
            GappedAlignment {
                from: c,
                score: c.score + left + right,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blast::stages::SeedMatch;
    use crate::fasta::{fa2bit, random_dna};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn ext(p: u32, q: u32, score: i32) -> Extension {
        Extension {
            seed: SeedMatch { p, q },
            left: 0,
            right: 0,
            score,
        }
    }

    #[test]
    fn gapped_never_scores_below_ungapped() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let query = random_dna(300, &mut rng);
        let db = random_dna(600, &mut rng);
        let qp = fa2bit(&query);
        let dbp = fa2bit(&db);
        let cands = [ext(100, 50, 8), ext(200, 120, 8)];
        let out = gapped_extension(
            &dbp,
            db.len(),
            &qp,
            query.len(),
            &cands,
            &GappedParams::default(),
        );
        for g in &out {
            assert!(
                g.score >= g.from.score,
                "gapped {} < ungapped {}",
                g.score,
                g.from.score
            );
        }
    }

    #[test]
    fn gap_bridges_an_insertion() {
        // Database = query with a single inserted base after the seed:
        // ungapped extension dies at the frameshift, gapped bridges it.
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let core = random_dna(120, &mut rng);
        let query = core.clone();
        let mut db = core[..40].to_vec();
        db.push(b'A'); // insertion
        db.extend_from_slice(&core[40..]);
        let qp = fa2bit(&query);
        let dbp = fa2bit(&db);
        // Seed inside the first aligned region (byte-aligned at 16).
        let cand = ext(16, 16, 8);
        let gapped = gapped_extension(
            &dbp,
            db.len(),
            &qp,
            query.len(),
            &[cand],
            &GappedParams::default(),
        );
        let ungapped_only = super::super::stages::ungapped_extension(
            &dbp,
            db.len(),
            &qp,
            query.len(),
            &[cand],
            &super::super::stages::UngappedParams {
                threshold: 0,
                ..Default::default()
            },
        );
        // Past the insertion there are ~70 more matching bases the
        // gapped pass can claim (cost: one gap).
        assert!(
            gapped[0].score > ungapped_only[0].score + 20,
            "gapped {} vs ungapped {}",
            gapped[0].score,
            ungapped_only[0].score
        );
    }

    #[test]
    fn identical_flanks_score_their_length() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let seq = random_dna(200, &mut rng);
        let packed = fa2bit(&seq);
        // Self-alignment seeded mid-sequence: both flanks fully match.
        let cand = ext(100, 100, 8);
        let out = gapped_extension(
            &packed,
            seq.len(),
            &packed,
            seq.len(),
            &[cand],
            &GappedParams::default(),
        );
        // Left flank ≈ 100 matches, right ≈ 92 (window-capped at 256).
        assert!(out[0].score >= 8 + 180, "score {}", out[0].score);
    }
}

//! Common reproduction report types: throughput tables, bound
//! comparisons, and figure series, with paper-vs-ours formatting.

use serde::Serialize;

/// One row of a throughput table: a source of a prediction/measurement
/// and its value, next to the paper's.
#[derive(Clone, Debug, Serialize)]
pub struct ThroughputRow {
    /// Prediction source (e.g. "Network calculus lower bound").
    pub source: String,
    /// Our reproduced value, MiB/s.
    pub ours_mib_s: f64,
    /// The paper's value, MiB/s (`None` when the paper has no
    /// counterpart, e.g. extra diagnostics we add).
    pub paper_mib_s: Option<f64>,
}

impl ThroughputRow {
    /// Relative error vs the paper (`None` without a paper value).
    pub fn rel_error(&self) -> Option<f64> {
        self.paper_mib_s.map(|p| (self.ours_mib_s - p) / p)
    }
}

/// Delay/backlog bound comparison (model vs simulation vs paper).
#[derive(Clone, Debug, Serialize)]
pub struct BoundsReport {
    /// Our modeled virtual-delay bound, seconds.
    pub delay_bound_s: f64,
    /// Our modeled backlog bound, bytes (input-referred).
    pub backlog_bound_bytes: f64,
    /// Our simulator's shortest observed delay, seconds.
    pub sim_delay_min_s: f64,
    /// Our simulator's longest observed delay, seconds.
    pub sim_delay_max_s: f64,
    /// Our simulator's peak backlog, bytes.
    pub sim_backlog_bytes: f64,
    /// Paper's modeled delay bound, seconds.
    pub paper_delay_bound_s: f64,
    /// Paper's modeled backlog bound, bytes.
    pub paper_backlog_bound_bytes: f64,
    /// Paper's simulated delay range, seconds.
    pub paper_sim_delay_s: (f64, f64),
    /// Paper's simulated peak backlog, bytes.
    pub paper_sim_backlog_bytes: f64,
}

impl BoundsReport {
    /// The paper's corroboration claim: simulated delay and backlog
    /// stay within the modeled bounds.
    pub fn sim_within_bounds(&self) -> bool {
        self.sim_delay_max_s <= self.delay_bound_s
            && self.sim_backlog_bytes <= self.backlog_bound_bytes
    }
}

/// Data series for one figure (Figures 1, 4, and 10): cumulative data
/// (bytes) against time (seconds).
#[derive(Clone, Debug, Serialize)]
pub struct FigureSeries {
    /// Figure identifier ("fig4", …).
    pub name: String,
    /// Arrival curve α(t) samples.
    pub alpha: Vec<(f64, f64)>,
    /// Service curve β(t) samples (lower bound).
    pub beta: Vec<(f64, f64)>,
    /// Output flow bound α*(t) samples.
    pub alpha_star: Vec<(f64, f64)>,
    /// Simulated cumulative-output stairstep.
    pub sim: Vec<(f64, f64)>,
}

impl FigureSeries {
    /// Emit a CSV with one column per series, suitable for plotting.
    pub fn to_csv(&self) -> String {
        let mut s = String::from("series,t_seconds,bytes\n");
        for (label, pts) in [
            ("alpha", &self.alpha),
            ("beta", &self.beta),
            ("alpha_star", &self.alpha_star),
            ("sim", &self.sim),
        ] {
            for (t, v) in pts {
                s.push_str(&format!("{label},{t},{v}\n"));
            }
        }
        s
    }

    /// Figure-4/10 sanity: the sim stairstep must lie between β and
    /// α* wherever defined.
    pub fn sim_between_bounds(&self, tolerance: f64) -> bool {
        self.sim.iter().all(|&(t, v)| {
            let beta_at = interp(&self.beta, t);
            let star_at = interp(&self.alpha_star, t);
            v + tolerance >= beta_at && v <= star_at + tolerance
        })
    }
}

/// Linear interpolation over a sampled series (clamped at the ends).
pub fn interp(series: &[(f64, f64)], t: f64) -> f64 {
    if series.is_empty() {
        return 0.0;
    }
    if t <= series[0].0 {
        return series[0].1;
    }
    for w in series.windows(2) {
        let (t0, v0) = w[0];
        let (t1, v1) = w[1];
        if t <= t1 {
            if t1 == t0 {
                return v1;
            }
            return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
        }
    }
    series[series.len() - 1].1
}

/// Render rows as an aligned text table.
pub fn format_table(title: &str, rows: &[ThroughputRow]) -> String {
    let mut s = format!("{title}\n");
    s.push_str(&format!(
        "  {:<38} {:>12} {:>12} {:>8}\n",
        "Source", "Ours", "Paper", "Err"
    ));
    for r in rows {
        let paper = r
            .paper_mib_s
            .map(|p| format!("{p:.0} MiB/s"))
            .unwrap_or_else(|| "-".into());
        let err = r
            .rel_error()
            .map(|e| format!("{:+.1}%", e * 100.0))
            .unwrap_or_else(|| "-".into());
        s.push_str(&format!(
            "  {:<38} {:>7.0} MiB/s {:>12} {:>8}\n",
            r.source, r.ours_mib_s, paper, err
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_error() {
        let r = ThroughputRow {
            source: "x".into(),
            ours_mib_s: 110.0,
            paper_mib_s: Some(100.0),
        };
        assert!((r.rel_error().unwrap() - 0.1).abs() < 1e-12);
        let r2 = ThroughputRow {
            source: "y".into(),
            ours_mib_s: 1.0,
            paper_mib_s: None,
        };
        assert_eq!(r2.rel_error(), None);
    }

    #[test]
    fn interpolation() {
        let s = vec![(0.0, 0.0), (1.0, 10.0), (2.0, 10.0)];
        assert_eq!(interp(&s, -1.0), 0.0);
        assert_eq!(interp(&s, 0.5), 5.0);
        assert_eq!(interp(&s, 1.5), 10.0);
        assert_eq!(interp(&s, 5.0), 10.0);
        assert_eq!(interp(&[], 1.0), 0.0);
    }

    #[test]
    fn csv_has_all_series() {
        let f = FigureSeries {
            name: "t".into(),
            alpha: vec![(0.0, 1.0)],
            beta: vec![(0.0, 0.0)],
            alpha_star: vec![(0.0, 2.0)],
            sim: vec![(0.0, 0.5)],
        };
        let csv = f.to_csv();
        for label in ["alpha,", "beta,", "alpha_star,", "sim,"] {
            assert!(csv.contains(label), "missing {label}");
        }
    }

    #[test]
    fn bounds_check() {
        let f = FigureSeries {
            name: "t".into(),
            alpha: vec![],
            beta: vec![(0.0, 0.0), (1.0, 10.0)],
            alpha_star: vec![(0.0, 5.0), (1.0, 30.0)],
            sim: vec![(0.5, 6.0)],
        };
        assert!(f.sim_between_bounds(0.0));
        let g = FigureSeries {
            sim: vec![(0.5, 2.0)], // below beta(0.5) = 5
            ..f
        };
        assert!(!g.sim_between_bounds(0.0));
    }
}

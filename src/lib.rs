//! # streamcalc
//!
//! Network calculus for heterogeneous streaming applications — a full
//! reproduction of *"Application of Network Calculus Models to
//! Heterogeneous Streaming Applications"* (Faber & Chamberlain) as a
//! Rust workspace:
//!
//! * [`core`](nc_core) — exact min-plus algebra over piecewise-linear
//!   curves, §3 bounds, packetizers, and the heterogeneous pipeline
//!   model (the paper's contribution);
//! * [`des`](nc_des) — a SimPy-equivalent discrete-event kernel;
//! * [`streamsim`](nc_streamsim) — the §4.2 pipeline simulator;
//! * [`queueing`](nc_queueing) — M/M/1 / M/M/c / M/G/1 baselines and
//!   the roofline flow analysis of Faber et al. [12];
//! * [`workloads`](nc_workloads) — from-scratch BLASTN stages, LZ4,
//!   AES-256-CBC, link models, and the isolation measurement harness;
//! * [`apps`](nc_apps) — the BLAST (§4) and bump-in-the-wire (§5)
//!   evaluations wired end to end;
//! * [`admit`](nc_admit) — a high-throughput admission-control engine
//!   answering admit/reject/offload by incremental recomputation of
//!   the §3 bounds.
//!
//! ## One-minute tour
//!
//! ```
//! use streamcalc::core::curve::shapes;
//! use streamcalc::core::num::{Rat, Value};
//! use streamcalc::core::bounds;
//!
//! // A stage constrained by a leaky bucket, served at rate-latency.
//! let alpha = shapes::leaky_bucket(Rat::int(2), Rat::int(5));
//! let beta = shapes::rate_latency(Rat::int(3), Rat::int(4));
//! assert_eq!(bounds::backlog_bound(&alpha, &beta), Value::from(13));
//! ```
//!
//! Reproduce the paper: `cargo run -p nc-bench --bin repro --release`.

#![warn(missing_docs)]

/// Deterministic network calculus (re-export of `nc-core`).
pub use nc_core as core;

/// Discrete-event simulation kernel (re-export of `nc-des`).
pub use nc_des as des;

/// Streaming-pipeline simulator (re-export of `nc-streamsim`).
pub use nc_streamsim as streamsim;

/// Queueing-theory baselines (re-export of `nc-queueing`).
pub use nc_queueing as queueing;

/// Workload kernels (re-export of `nc-workloads`).
pub use nc_workloads as workloads;

/// Paper applications (re-export of `nc-apps`).
pub use nc_apps as apps;

/// Cached parameter-sweep engine (re-export of `nc-sweep`).
pub use nc_sweep as sweep;

/// Incremental admission-control engine (re-export of `nc-admit`).
pub use nc_admit as admit;

//! Piecewise-linear, ultimately-affine functions on `[0, ∞)`.
//!
//! This is the common representation for every network-calculus curve in
//! the crate: arrival curves `α`, service curves `β`, maximum service
//! curves `γ`, and all derived bounds. The representation supports
//! upward jumps (bursts such as the leaky-bucket discontinuity at `t=0`,
//! and packetizer steps) and regions where the function is `+∞` (pure
//! delay elements `δ_T`).
//!
//! # Representation
//!
//! A curve is a sorted list of [`Breakpoint`]s. Breakpoint `i` states:
//!
//! * the exact value at its abscissa: `f(x_i) = v_i`;
//! * the behaviour on the open interval to the next breakpoint (or to
//!   `∞` for the last one): `f(t) = v_right_i + slope_i · (t − x_i)` for
//!   `t ∈ (x_i, x_{i+1})`.
//!
//! `v_right_i` is the right-limit at `x_i`, so `v_right_i > v_i` encodes
//! a jump *after* `x_i`, and a next breakpoint with `v_{i+1}` above the
//! left-limit encodes a jump *at* `x_{i+1}`. An infinite `v_right`
//! makes the rest of the curve `+∞` (enforced by construction).

use core::fmt;

use crate::num::{Rat, Value};

/// One breakpoint of a piecewise-linear curve; see the module docs for
/// the exact semantics.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Breakpoint {
    /// Abscissa. The first breakpoint always has `x = 0`.
    pub x: Rat,
    /// Exact value `f(x)`.
    pub v: Value,
    /// Right-limit `f(x⁺)`; the affine piece to the right starts here.
    pub v_right: Value,
    /// Slope of the affine piece on `(x, next_x)` (ignored while
    /// `v_right` is `+∞`).
    pub slope: Rat,
}

impl Breakpoint {
    /// Convenience constructor for a continuous breakpoint (no jump).
    pub fn cont(x: Rat, v: Value, slope: Rat) -> Breakpoint {
        Breakpoint {
            x,
            v,
            v_right: v,
            slope,
        }
    }
}

/// Errors detected when validating a breakpoint list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CurveError {
    /// The breakpoint list was empty.
    Empty,
    /// The first breakpoint does not start at `x = 0`.
    DoesNotStartAtZero,
    /// Breakpoint abscissas are not strictly increasing.
    NonMonotoneAbscissa,
    /// A value was `-∞`, which curves never hold.
    NegInfiniteValue,
    /// A finite value follows an infinite `v_right` region.
    FiniteAfterInfinity,
}

impl fmt::Display for CurveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            CurveError::Empty => "curve must have at least one breakpoint",
            CurveError::DoesNotStartAtZero => "first breakpoint must be at x = 0",
            CurveError::NonMonotoneAbscissa => "breakpoint abscissas must strictly increase",
            CurveError::NegInfiniteValue => "curve values must not be -inf",
            CurveError::FiniteAfterInfinity => "curve cannot become finite again after +inf",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for CurveError {}

/// A piecewise-linear, ultimately-affine function on `[0, ∞)`.
///
/// Equality and hashing are structural over the simplified breakpoint
/// list, so two curves compare (and hash) equal exactly when they are
/// the same function — the property the hash-consing interner in
/// [`crate::cache`] relies on.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Curve {
    bps: Vec<Breakpoint>,
}

impl Curve {
    /// Build a curve from breakpoints, validating the representation
    /// invariants (see [`CurveError`]). The list is simplified: redundant
    /// collinear breakpoints are merged.
    pub fn from_breakpoints(bps: Vec<Breakpoint>) -> Result<Curve, CurveError> {
        if bps.is_empty() {
            return Err(CurveError::Empty);
        }
        if !bps[0].x.is_zero() {
            return Err(CurveError::DoesNotStartAtZero);
        }
        let mut seen_inf = false;
        for (i, bp) in bps.iter().enumerate() {
            if bp.v == Value::NegInfinity || bp.v_right == Value::NegInfinity {
                return Err(CurveError::NegInfiniteValue);
            }
            if i > 0 && bps[i - 1].x >= bp.x {
                return Err(CurveError::NonMonotoneAbscissa);
            }
            if seen_inf && (bp.v.is_finite() || bp.v_right.is_finite()) {
                return Err(CurveError::FiniteAfterInfinity);
            }
            if bp.v_right.is_infinite() {
                seen_inf = true;
            }
        }
        let mut c = Curve { bps };
        c.simplify();
        Ok(c)
    }

    /// Build a curve, panicking on invalid input. Intended for curve
    /// shapes whose validity is structural.
    pub(crate) fn from_breakpoints_unchecked(bps: Vec<Breakpoint>) -> Curve {
        match Curve::from_breakpoints(bps) {
            Ok(c) => c,
            Err(e) => panic!("invalid curve construction: {e}"),
        }
    }

    /// The breakpoints, sorted by abscissa.
    pub fn breakpoints(&self) -> &[Breakpoint] {
        &self.bps
    }

    /// Number of breakpoints.
    pub fn len(&self) -> usize {
        self.bps.len()
    }

    /// Always `false`: a valid curve has at least one breakpoint.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Index of the breakpoint governing `t`: the last `i` with `x_i ≤ t`.
    fn seg_index(&self, t: Rat) -> usize {
        debug_assert!(!t.is_negative(), "curves are defined on [0, inf)");
        // Binary search over breakpoint abscissas.
        match self.bps.binary_search_by(|bp| bp.x.cmp(&t)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }

    /// Evaluate `f(t)` exactly.
    ///
    /// # Panics
    /// Panics (in debug builds) if `t < 0`.
    pub fn eval(&self, t: Rat) -> Value {
        let i = self.seg_index(t);
        let bp = &self.bps[i];
        if bp.x == t {
            bp.v
        } else {
            match bp.v_right {
                Value::Infinity => Value::Infinity,
                v => v + Value::finite(bp.slope * (t - bp.x)),
            }
        }
    }

    /// Right-limit `f(t⁺)`.
    pub fn eval_right(&self, t: Rat) -> Value {
        let i = self.seg_index(t);
        let bp = &self.bps[i];
        if bp.x == t {
            bp.v_right
        } else {
            self.eval(t)
        }
    }

    /// Left-limit `f(t⁻)` for `t > 0`.
    ///
    /// # Panics
    /// Panics (in debug builds) if `t ≤ 0`.
    pub fn eval_left(&self, t: Rat) -> Value {
        debug_assert!(t.is_positive(), "left limit needs t > 0");
        let i = self.seg_index(t);
        let bp = &self.bps[i];
        if bp.x == t {
            // Limit from the previous segment.
            let prev = &self.bps[i - 1];
            match prev.v_right {
                Value::Infinity => Value::Infinity,
                v => v + Value::finite(prev.slope * (t - prev.x)),
            }
        } else {
            self.eval(t)
        }
    }

    /// Value at `0`.
    pub fn at_zero(&self) -> Value {
        self.bps[0].v
    }

    /// Largest breakpoint abscissa. Beyond it the curve is a single
    /// affine piece (or constant `+∞`).
    pub fn last_breakpoint_x(&self) -> Rat {
        self.bps[self.bps.len() - 1].x
    }

    /// Ultimate growth rate: the slope of the final affine piece, or
    /// `+∞` if the curve ends at `+∞`.
    pub fn ultimate_slope(&self) -> Value {
        let last = &self.bps[self.bps.len() - 1];
        if last.v_right.is_infinite() {
            Value::Infinity
        } else {
            Value::finite(last.slope)
        }
    }

    /// Recognize the rate-latency shape `β(t) = [R·(t − T)]⁺` and
    /// return `(R, T)` (a pure rate `R·t` reports `T = 0`).
    ///
    /// This is exactly the shape [`crate::curve::shapes::rate_latency`]
    /// and the packetizer `[R(t − T) − l]⁺ = RL(R, T + l/R)` produce,
    /// so it covers every service curve a pipeline stage feeds into the
    /// bounds — the detector behind the closed-form deviation fast
    /// paths and the admission engine's scalar decision lane.
    pub fn as_rate_latency(&self) -> Option<(Rat, Rat)> {
        let zero = |bp: &Breakpoint| bp.v == Value::ZERO && bp.v_right == Value::ZERO;
        match self.breakpoints() {
            [b0] if b0.x.is_zero() && zero(b0) && !b0.slope.is_negative() => {
                Some((b0.slope, Rat::ZERO))
            }
            [b0, b1] if b0.x.is_zero() && zero(b0) && b0.slope.is_zero() && zero(b1) => {
                Some((b1.slope, b1.x))
            }
            _ => None,
        }
    }

    /// `true` iff the curve is finite for every `t ≥ 0`.
    pub fn is_finite_everywhere(&self) -> bool {
        self.bps
            .iter()
            .all(|bp| bp.v.is_finite() && bp.v_right.is_finite())
    }

    /// `true` iff the curve is wide-sense increasing (never decreases),
    /// the standing assumption for arrival and service curves.
    pub fn is_wide_sense_increasing(&self) -> bool {
        for (i, bp) in self.bps.iter().enumerate() {
            if bp.v > bp.v_right {
                return false;
            }
            if bp.v_right.is_finite() && bp.slope.is_negative() {
                return false;
            }
            if i > 0 {
                let left = self.eval_left(bp.x);
                if left > bp.v {
                    return false;
                }
            }
        }
        true
    }

    /// `true` iff `f(0) = 0`, required of arrival and service curves.
    pub fn starts_at_zero(&self) -> bool {
        self.bps[0].v == Value::ZERO
    }

    /// Merge redundant breakpoints: a breakpoint is redundant when it is
    /// exactly the continuation of its predecessor's affine piece.
    pub fn simplify(&mut self) {
        let mut out: Vec<Breakpoint> = Vec::with_capacity(self.bps.len());
        for bp in self.bps.drain(..) {
            if let Some(prev) = out.last() {
                let redundant = match prev.v_right {
                    Value::Infinity => bp.v.is_infinite() && bp.v_right.is_infinite(),
                    pv => {
                        let cont = pv + Value::finite(prev.slope * (bp.x - prev.x));
                        bp.v == cont && bp.v_right == cont && bp.slope == prev.slope
                    }
                };
                if redundant {
                    continue;
                }
            }
            out.push(bp);
        }
        self.bps = out;
    }

    /// Pointwise addition `f + g`.
    pub fn add(&self, g: &Curve) -> Curve {
        combine(self, g, CombineOp::Add)
    }

    /// Pointwise subtraction `f − g`.
    ///
    /// # Panics
    /// Panics if the result would be `-∞` anywhere (i.e. `g` is `+∞`
    /// where `f` is finite); use the deviation operators for bounds that
    /// must tolerate infinities.
    pub fn sub(&self, g: &Curve) -> Curve {
        combine(self, g, CombineOp::Sub)
    }

    /// Pointwise minimum `min(f, g)`.
    pub fn min(&self, g: &Curve) -> Curve {
        combine(self, g, CombineOp::Min)
    }

    /// Pointwise maximum `max(f, g)`.
    pub fn max(&self, g: &Curve) -> Curve {
        combine(self, g, CombineOp::Max)
    }

    /// Positive part `[f]⁺ = max(f, 0)`.
    pub fn pos(&self) -> Curve {
        self.max(&crate::curve::shapes::zero())
    }

    /// Vertical scaling `t ↦ k · f(t)` for `k ≥ 0`.
    ///
    /// Used for the paper's data normalization: a stage that processes
    /// compressed data at rate `R` serves input-referred data at rate
    /// `c · R` for compression ratio `c` (§5).
    pub fn scale_y(&self, k: Rat) -> Curve {
        assert!(!k.is_negative(), "scale_y needs k >= 0");
        let bps = self
            .bps
            .iter()
            .map(|bp| Breakpoint {
                x: bp.x,
                v: bp.v.scale(k),
                v_right: bp.v_right.scale(k),
                slope: bp.slope * k,
            })
            .collect();
        Curve::from_breakpoints_unchecked(bps)
    }

    /// Horizontal scaling `t ↦ f(t / k)` for `k > 0` (time dilation).
    pub fn scale_x(&self, k: Rat) -> Curve {
        assert!(k.is_positive(), "scale_x needs k > 0");
        let bps = self
            .bps
            .iter()
            .map(|bp| Breakpoint {
                x: bp.x * k,
                v: bp.v,
                v_right: bp.v_right,
                slope: bp.slope / k,
            })
            .collect();
        Curve::from_breakpoints_unchecked(bps)
    }

    /// Vertical shift `f + c` (may make `f(0)` non-zero).
    pub fn shift_up(&self, c: Rat) -> Curve {
        let cv = Value::finite(c);
        let bps = self
            .bps
            .iter()
            .map(|bp| Breakpoint {
                x: bp.x,
                v: bp.v + cv,
                v_right: bp.v_right + cv,
                slope: bp.slope,
            })
            .collect();
        Curve::from_breakpoints_unchecked(bps)
    }

    /// Right shift by `T ≥ 0` under min-plus semantics: the result
    /// equals `f ⊗ δ_T`, i.e. `f(t − T)` for `t ≥ T` and `f(0)` before.
    pub fn shift_right(&self, t_shift: Rat) -> Curve {
        assert!(!t_shift.is_negative(), "shift_right needs T >= 0");
        if t_shift.is_zero() {
            return self.clone();
        }
        let f0 = self.at_zero();
        let mut bps = Vec::with_capacity(self.bps.len() + 1);
        bps.push(Breakpoint {
            x: Rat::ZERO,
            v: f0,
            v_right: f0,
            slope: Rat::ZERO,
        });
        for (i, bp) in self.bps.iter().enumerate() {
            let x = bp.x + t_shift;
            if i == 0 {
                // f(T) must equal f(0) (the plateau's right end), then
                // jump to f(0⁺).
                bps.push(Breakpoint {
                    x,
                    v: f0,
                    v_right: bp.v_right,
                    slope: bp.slope,
                });
            } else {
                bps.push(Breakpoint { x, ..*bp });
            }
        }
        Curve::from_breakpoints_unchecked(bps)
    }

    /// Lower pseudo-inverse `f⁻(y) = inf { t ≥ 0 : f(t) ≥ y }`, the tool
    /// behind horizontal deviations (delay bounds).
    ///
    /// Returns `+∞` when `f` never reaches `y`.
    pub fn lower_pseudo_inverse(&self, y: Value) -> Value {
        if self.eval(Rat::ZERO) >= y {
            return Value::ZERO;
        }
        // Scan segments for the first time the curve reaches y.
        for (i, bp) in self.bps.iter().enumerate() {
            if bp.v >= y {
                return Value::finite(bp.x);
            }
            // Within (x_i, x_{i+1}): v_right + slope (t - x) >= y.
            let end = self.bps.get(i + 1).map(|n| n.x);
            match bp.v_right {
                Value::Infinity => {
                    // Jump to +inf right after x_i reaches any finite y,
                    // but no finite t < x_i did; inf of {t > x_i} = x_i
                    // (not attained).
                    return Value::finite(bp.x);
                }
                vr => {
                    if vr >= y {
                        return Value::finite(bp.x);
                    }
                    if bp.slope.is_positive() {
                        let y_f = match y {
                            Value::Finite(r) => r,
                            Value::Infinity => continue,
                            Value::NegInfinity => return Value::ZERO,
                        };
                        let t = bp.x + (y_f - vr.unwrap_finite()) / bp.slope;
                        let within = match end {
                            Some(e) => t < e,
                            None => true,
                        };
                        if within {
                            return Value::finite(t);
                        }
                    }
                }
            }
        }
        Value::Infinity
    }

    /// Conservative coordinate relaxation: returns a curve that is
    /// everywhere `≥ self`, with every coordinate's denominator bounded
    /// by `max_den`. Returns an unmodified clone when all coordinates
    /// already fit (so exact models stay exact).
    ///
    /// Sound for curves used as *upper* bounds (arrival curves, output
    /// bounds): loosening an upper envelope keeps every derived bound
    /// valid. Chained operations (the per-node cascade of a long
    /// pipeline) multiply denominators; without this safety valve the
    /// exact `i128` arithmetic could overflow on measured, near-coprime
    /// rates.
    pub fn relax_up(&self, max_den: i128) -> Curve {
        assert!(max_den >= 1);
        let fits = |r: Rat| r.denom() <= max_den;
        let all_fit = self.bps.iter().all(|bp| {
            fits(bp.x)
                && bp.v.as_finite().is_none_or(fits)
                && bp.v_right.as_finite().is_none_or(fits)
                && fits(bp.slope)
        });
        if all_fit {
            return self.clone();
        }
        // Round abscissas down, values and slopes up: every segment of
        // the result dominates the original pointwise.
        let down = |r: Rat| {
            let scaled = r * Rat::new(max_den, 1);
            Rat::new(scaled.floor(), max_den)
        };
        let up = |r: Rat| {
            let scaled = r * Rat::new(max_den, 1);
            Rat::new(scaled.ceil(), max_den)
        };
        let up_v = |v: Value| match v {
            Value::Finite(r) => Value::finite(up(r)),
            other => other,
        };
        let mut bps: Vec<Breakpoint> = Vec::with_capacity(self.bps.len());
        for bp in &self.bps {
            let x = down(bp.x).max(Rat::ZERO);
            let cand = Breakpoint {
                x,
                v: up_v(bp.v),
                v_right: up_v(bp.v_right),
                slope: up(bp.slope),
            };
            match bps.last_mut() {
                Some(prev) if prev.x == cand.x => {
                    // Collided on the coarser grid: keep the upper
                    // envelope of the two.
                    prev.v = prev.v.max(cand.v);
                    prev.v_right = prev.v_right.max(cand.v_right);
                    prev.slope = prev.slope.max(cand.slope);
                }
                _ => bps.push(cand),
            }
        }
        // Restore wide-sense monotonicity: a rounded-up slope may make
        // a segment end above the next breakpoint's (rounded) value;
        // lifting the later values keeps the curve both increasing and
        // `≥` the original.
        for i in 1..bps.len() {
            let prev = bps[i - 1];
            if let Value::Finite(pv) = prev.v_right {
                let end = Value::finite(pv + prev.slope * (bps[i].x - prev.x));
                bps[i].v = bps[i].v.max(end);
            } else {
                bps[i].v = Value::Infinity;
            }
            bps[i].v_right = bps[i].v_right.max(bps[i].v);
        }
        Curve::from_breakpoints_unchecked(bps)
    }

    /// Upper pseudo-inverse `f⁻⁺(y) = inf { t ≥ 0 : f(t) > y }`, the
    /// right-continuous companion of [`Curve::lower_pseudo_inverse`].
    /// Needed for exact horizontal deviations: the delay supremum can
    /// be approached through levels just above a service-curve jump.
    ///
    /// Returns `+∞` when `f` never exceeds `y`.
    pub fn upper_pseudo_inverse(&self, y: Value) -> Value {
        if y.is_infinite() {
            return Value::Infinity;
        }
        if self.eval(Rat::ZERO) > y {
            return Value::ZERO;
        }
        for (i, bp) in self.bps.iter().enumerate() {
            if bp.v > y {
                return Value::finite(bp.x);
            }
            match bp.v_right {
                Value::Infinity => return Value::finite(bp.x),
                vr => {
                    if vr > y {
                        return Value::finite(bp.x);
                    }
                    if bp.slope.is_positive() {
                        let y_f = match y {
                            Value::Finite(r) => r,
                            _ => unreachable!("infinite y handled above"),
                        };
                        let t = bp.x + (y_f - vr.unwrap_finite()) / bp.slope;
                        let end = self.bps.get(i + 1).map(|n| n.x);
                        let within = match end {
                            Some(e) => t < e,
                            None => true,
                        };
                        if within {
                            return Value::finite(t.max(bp.x));
                        }
                    }
                }
            }
        }
        Value::Infinity
    }

    /// Sample the curve at evenly spaced points on `[0, t_max]` for
    /// export/plotting. Returns `(t, f(t))` pairs.
    pub fn sample(&self, t_max: Rat, n: usize) -> Vec<(Rat, Value)> {
        assert!(n >= 2);
        let step = t_max / Rat::int(n as i64 - 1);
        (0..n)
            .map(|i| {
                let t = step * Rat::int(i as i64);
                (t, self.eval(t))
            })
            .collect()
    }
}

/// Amortized-`O(1)` evaluation over a non-decreasing sequence of query
/// abscissas.
///
/// [`Curve::eval`] binary-searches the breakpoint list on every call;
/// grid sweeps (pointwise combination, convolution candidate scans,
/// sampling) evaluate at sorted abscissas, where remembering the last
/// segment makes the whole sweep linear. Queries that move backwards
/// fall back to a binary search, so the cursor is always correct.
pub struct EvalCursor<'a> {
    curve: &'a Curve,
    idx: usize,
}

impl<'a> EvalCursor<'a> {
    /// Start a cursor at the first segment.
    pub fn new(curve: &'a Curve) -> EvalCursor<'a> {
        EvalCursor { curve, idx: 0 }
    }

    /// Position `idx` on the segment governing `t`.
    fn seek(&mut self, t: Rat) {
        debug_assert!(!t.is_negative(), "curves are defined on [0, inf)");
        let bps = &self.curve.bps;
        if bps[self.idx].x > t {
            // Backwards query: restart with a binary search.
            self.idx = self.curve.seg_index(t);
            return;
        }
        while self.idx + 1 < bps.len() && bps[self.idx + 1].x <= t {
            self.idx += 1;
        }
    }

    /// Evaluate `f(t)` exactly; equal to [`Curve::eval`].
    pub fn eval(&mut self, t: Rat) -> Value {
        self.seek(t);
        let bp = &self.curve.bps[self.idx];
        if bp.x == t {
            bp.v
        } else {
            match bp.v_right {
                Value::Infinity => Value::Infinity,
                v => v + Value::finite(bp.slope * (t - bp.x)),
            }
        }
    }

    /// Right-limit `f(t⁺)`; equal to [`Curve::eval_right`].
    pub fn eval_right(&mut self, t: Rat) -> Value {
        self.seek(t);
        let bp = &self.curve.bps[self.idx];
        if bp.x == t {
            bp.v_right
        } else {
            match bp.v_right {
                Value::Infinity => Value::Infinity,
                v => v + Value::finite(bp.slope * (t - bp.x)),
            }
        }
    }

    /// Slope of the affine piece governing `t` (to the right of it).
    pub fn slope(&mut self, t: Rat) -> Rat {
        self.seek(t);
        self.curve.bps[self.idx].slope
    }
}

impl fmt::Debug for Curve {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Curve[")?;
        for (i, bp) in self.bps.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if bp.v == bp.v_right {
                write!(f, "({:?}: {:?}, +{:?}/t)", bp.x, bp.v, bp.slope)?;
            } else {
                write!(
                    f,
                    "({:?}: {:?}^{:?}, +{:?}/t)",
                    bp.x, bp.v, bp.v_right, bp.slope
                )?;
            }
        }
        write!(f, "]")
    }
}

/// Pointwise combination operators used by [`combine`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum CombineOp {
    Add,
    Sub,
    Min,
    Max,
}

impl CombineOp {
    fn apply(self, a: Value, b: Value) -> Value {
        match self {
            CombineOp::Add => a + b,
            CombineOp::Sub => {
                let r = a - b;
                assert!(
                    r != Value::NegInfinity,
                    "Curve::sub would produce -inf; use deviation operators instead"
                );
                r
            }
            CombineOp::Min => a.min(b),
            CombineOp::Max => a.max(b),
        }
    }

    fn needs_crossings(self) -> bool {
        matches!(self, CombineOp::Min | CombineOp::Max)
    }
}

/// Pointwise combination of two curves on a merged breakpoint grid,
/// inserting intersection points for min/max so each output interval is
/// governed by a single operand.
pub(crate) fn combine(f: &Curve, g: &Curve, op: CombineOp) -> Curve {
    // 1. Merged abscissa grid.
    let mut xs: Vec<Rat> = f
        .breakpoints()
        .iter()
        .chain(g.breakpoints())
        .map(|bp| bp.x)
        .collect();
    xs.sort_unstable();
    xs.dedup();

    // 2. For min/max insert crossings of the affine pieces inside each
    //    open interval (including the unbounded tail). The grid is
    //    sorted, so cursors make the sweep linear.
    if op.needs_crossings() {
        let mut curf = EvalCursor::new(f);
        let mut curg = EvalCursor::new(g);
        let mut extra: Vec<Rat> = Vec::new();
        for (i, &a) in xs.iter().enumerate() {
            let b = xs.get(i + 1).copied();
            let (cf, sf) = (curf.eval_right(a), curf.slope(a));
            let (cg, sg) = (curg.eval_right(a), curg.slope(a));
            if let (Value::Finite(cf), Value::Finite(cg)) = (cf, cg) {
                if sf != sg && cf != cg {
                    // cf + sf (x - a) = cg + sg (x - a)
                    let x = a + (cg - cf) / (sf - sg);
                    let inside = x > a && b.is_none_or(|b| x < b);
                    if inside {
                        extra.push(x);
                    }
                }
            }
        }
        xs.extend(extra);
        xs.sort_unstable();
        xs.dedup();
    }

    // 3. Emit one breakpoint per grid abscissa; the slope on each open
    //    interval is reconstructed exactly from two interior samples
    //    (the interval contains no further breakpoints or crossings, so
    //    the result is affine there). Samples ascend with the grid, so
    //    one cursor pair serves the whole pass.
    let mut curf = EvalCursor::new(f);
    let mut curg = EvalCursor::new(g);
    let mut bps = Vec::with_capacity(xs.len());
    for (i, &x) in xs.iter().enumerate() {
        let v = op.apply(curf.eval(x), curg.eval(x));
        let next = xs.get(i + 1).copied();
        let (slope, v_right) = interval_line(x, next, |t| op.apply(curf.eval(t), curg.eval(t)));
        bps.push(Breakpoint {
            x,
            v,
            v_right,
            slope,
        });
    }
    Curve::from_breakpoints_unchecked(bps)
}

/// Reconstruct the affine piece on `(x, next)` (or `(x, ∞)`): returns
/// `(slope, v_right)` given an exact evaluator for interior points.
/// The evaluated function must be affine (or constant `+∞`) on the open
/// interval; the right-limit is recovered by exact extrapolation.
pub(crate) fn interval_line(
    x: Rat,
    next: Option<Rat>,
    mut eval: impl FnMut(Rat) -> Value,
) -> (Rat, Value) {
    // Two interior sample points.
    let (m1, m2) = match next {
        Some(n) => {
            let d = (n - x) / Rat::int(3);
            (x + d, x + d + d)
        }
        None => (x + Rat::ONE, x + Rat::int(2)),
    };
    let w1 = eval(m1);
    let w2 = eval(m2);
    match (w1, w2) {
        (Value::Finite(w1), Value::Finite(w2)) => {
            let slope = (w2 - w1) / (m2 - m1);
            // Extrapolate back to x to get the exact right-limit; this
            // agrees with the supplied v_right when the evaluator is
            // affine on the whole open interval.
            let vr = w1 - slope * (m1 - x);
            (slope, Value::finite(vr))
        }
        _ => (Rat::ZERO, Value::Infinity),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::shapes;
    use crate::num::rat;

    fn lb(r: i64, b: i64) -> Curve {
        shapes::leaky_bucket(Rat::int(r), Rat::int(b))
    }
    fn rl(r: i64, t: i64) -> Curve {
        shapes::rate_latency(Rat::int(r), Rat::int(t))
    }

    #[test]
    fn eval_leaky_bucket() {
        let a = lb(2, 5);
        assert_eq!(a.eval(Rat::ZERO), Value::ZERO);
        assert_eq!(a.eval_right(Rat::ZERO), Value::from(5));
        assert_eq!(a.eval(Rat::int(3)), Value::from(11));
        assert_eq!(a.eval_left(Rat::int(3)), Value::from(11));
    }

    #[test]
    fn eval_rate_latency() {
        let b = rl(3, 2);
        assert_eq!(b.eval(Rat::ZERO), Value::ZERO);
        assert_eq!(b.eval(Rat::int(2)), Value::ZERO);
        assert_eq!(b.eval(Rat::int(4)), Value::from(6));
        assert_eq!(b.eval_right(Rat::int(2)), Value::ZERO);
    }

    #[test]
    fn eval_delta() {
        let d = shapes::delta(Rat::int(2));
        assert_eq!(d.eval(Rat::int(2)), Value::ZERO);
        assert_eq!(d.eval(rat(5, 2)), Value::Infinity);
        assert_eq!(d.eval_right(Rat::int(2)), Value::Infinity);
        assert_eq!(d.eval_left(Rat::int(2)), Value::ZERO);
        assert_eq!(d.ultimate_slope(), Value::Infinity);
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            Curve::from_breakpoints(vec![]).unwrap_err(),
            CurveError::Empty
        );
        let bad_start = vec![Breakpoint::cont(Rat::ONE, Value::ZERO, Rat::ZERO)];
        assert_eq!(
            Curve::from_breakpoints(bad_start).unwrap_err(),
            CurveError::DoesNotStartAtZero
        );
        let dup = vec![
            Breakpoint::cont(Rat::ZERO, Value::ZERO, Rat::ZERO),
            Breakpoint::cont(Rat::ZERO, Value::ZERO, Rat::ONE),
        ];
        assert_eq!(
            Curve::from_breakpoints(dup).unwrap_err(),
            CurveError::NonMonotoneAbscissa
        );
        let finite_after_inf = vec![
            Breakpoint {
                x: Rat::ZERO,
                v: Value::ZERO,
                v_right: Value::Infinity,
                slope: Rat::ZERO,
            },
            Breakpoint::cont(Rat::ONE, Value::from(3), Rat::ZERO),
        ];
        assert_eq!(
            Curve::from_breakpoints(finite_after_inf).unwrap_err(),
            CurveError::FiniteAfterInfinity
        );
    }

    #[test]
    fn simplify_merges_collinear() {
        let c = Curve::from_breakpoints(vec![
            Breakpoint::cont(Rat::ZERO, Value::ZERO, Rat::int(2)),
            Breakpoint::cont(Rat::int(5), Value::from(10), Rat::int(2)),
            Breakpoint::cont(Rat::int(7), Value::from(14), Rat::int(3)),
        ])
        .unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.eval(Rat::int(6)), Value::from(12));
        assert_eq!(c.eval(Rat::int(8)), Value::from(17));
    }

    #[test]
    fn add_and_sub() {
        let a = lb(2, 5);
        let b = rl(3, 2);
        let s = a.add(&b);
        assert_eq!(s.eval(Rat::ZERO), Value::ZERO);
        assert_eq!(s.eval(Rat::int(4)), Value::from(13 + 6));
        let d = s.sub(&b);
        assert_eq!(d.eval(Rat::int(4)), a.eval(Rat::int(4)));
        assert_eq!(d.eval_right(Rat::ZERO), Value::from(5));
    }

    #[test]
    fn min_inserts_crossing() {
        // α = 2t + 5, β = 4t: cross at t = 2.5.
        let a = lb(2, 5);
        let b = shapes::constant_rate(Rat::int(4));
        let m = a.min(&b);
        assert_eq!(m.eval(Rat::ONE), Value::from(4));
        assert_eq!(m.eval(rat(5, 2)), Value::from(10));
        assert_eq!(m.eval(Rat::int(4)), Value::from(13));
        assert!(m.breakpoints().iter().any(|bp| bp.x == rat(5, 2)));
        // min of increasing curves is increasing.
        assert!(m.is_wide_sense_increasing());
    }

    #[test]
    fn max_tail_crossing() {
        // Tail crossing beyond every breakpoint.
        let a = lb(1, 10); // t + 10
        let b = shapes::constant_rate(Rat::int(2)); // 2t, crosses at t=10
        let m = a.max(&b);
        assert_eq!(m.eval(Rat::int(5)), Value::from(15));
        assert_eq!(m.eval(Rat::int(10)), Value::from(20));
        assert_eq!(m.eval(Rat::int(20)), Value::from(40));
        assert_eq!(m.ultimate_slope(), Value::from(2));
    }

    #[test]
    fn min_with_delta() {
        let d = shapes::delta(Rat::int(3));
        let a = lb(2, 1);
        let m = d.min(&a);
        // Before 3 the delta is 0.
        assert_eq!(m.eval(Rat::int(2)), Value::ZERO);
        // After 3 the delta is +inf, so the LB wins.
        assert_eq!(m.eval(Rat::int(4)), Value::from(9));
    }

    #[test]
    fn scale_and_shift() {
        let b = rl(4, 2);
        let half = b.scale_y(rat(1, 2));
        assert_eq!(half.eval(Rat::int(4)), Value::from(4));
        let dil = b.scale_x(Rat::int(2));
        assert_eq!(dil.eval(Rat::int(8)), Value::from(8)); // latency doubles, rate halves
        let up = b.shift_up(Rat::int(3));
        assert_eq!(up.eval(Rat::ZERO), Value::from(3));
        let right = b.shift_right(Rat::int(1));
        assert_eq!(right.eval(Rat::int(3)), Value::ZERO);
        assert_eq!(right.eval(Rat::int(4)), Value::from(4));
    }

    #[test]
    fn shift_right_preserves_burst() {
        let a = lb(2, 5);
        let s = a.shift_right(Rat::int(3));
        assert_eq!(s.eval(Rat::int(3)), Value::ZERO);
        assert_eq!(s.eval_right(Rat::int(3)), Value::from(5));
        assert_eq!(s.eval(Rat::int(4)), Value::from(7));
        assert_eq!(s.eval(Rat::ONE), Value::ZERO);
    }

    #[test]
    fn pseudo_inverse() {
        let b = rl(3, 2);
        assert_eq!(b.lower_pseudo_inverse(Value::ZERO), Value::ZERO);
        assert_eq!(b.lower_pseudo_inverse(Value::from(6)), Value::from(4));
        assert_eq!(
            shapes::constant_rate(Rat::int(2)).lower_pseudo_inverse(Value::from(5)),
            Value::finite(rat(5, 2))
        );
        // Bounded curve never reaches high values.
        let plateau = Curve::from_breakpoints(vec![
            Breakpoint::cont(Rat::ZERO, Value::ZERO, Rat::ONE),
            Breakpoint::cont(Rat::int(5), Value::from(5), Rat::ZERO),
        ])
        .unwrap();
        assert_eq!(
            plateau.lower_pseudo_inverse(Value::from(9)),
            Value::Infinity
        );
        // Jump curves: inf of the preimage sits at the jump.
        let d = shapes::delta(Rat::int(2));
        assert_eq!(d.lower_pseudo_inverse(Value::from(100)), Value::from(2));
    }

    #[test]
    fn monotonicity_check() {
        assert!(lb(2, 5).is_wide_sense_increasing());
        assert!(rl(3, 2).is_wide_sense_increasing());
        assert!(shapes::delta(Rat::int(1)).is_wide_sense_increasing());
        let dec = Curve::from_breakpoints(vec![Breakpoint::cont(
            Rat::ZERO,
            Value::from(5),
            rat(-1, 1),
        )])
        .unwrap();
        assert!(!dec.is_wide_sense_increasing());
    }

    #[test]
    fn relax_up_exact_when_coords_small() {
        let c = lb(2, 5).min(&shapes::constant_rate(Rat::int(7)));
        assert_eq!(c.relax_up(1_000_000), c);
        let d = shapes::delta(Rat::int(3));
        assert_eq!(d.relax_up(10), d);
    }

    #[test]
    fn relax_up_dominates_and_bounds_denominators() {
        // Awkward coordinates: thirds and sevenths.
        let c = Curve::from_breakpoints(vec![
            Breakpoint {
                x: Rat::ZERO,
                v: Value::ZERO,
                v_right: Value::finite(rat(22, 7)),
                slope: rat(10, 3),
            },
            Breakpoint::cont(rat(13, 7), Value::finite(rat(100, 7)), rat(5, 3)),
        ])
        .unwrap();
        let r = c.relax_up(16);
        assert!(r.is_wide_sense_increasing());
        for bp in r.breakpoints() {
            assert!(bp.x.denom() <= 16);
            assert!(bp.slope.denom() <= 16);
            if let Value::Finite(v) = bp.v {
                assert!(v.denom() <= 16);
            }
        }
        // Pointwise domination.
        for num in 0..80 {
            let t = rat(num, 8);
            assert!(r.eval(t) >= c.eval(t), "t = {t:?}");
            assert!(r.eval_right(t) >= c.eval_right(t), "t = {t:?}");
        }
    }

    #[test]
    fn relax_up_merges_colliding_breakpoints() {
        // Two breakpoints 1/100 apart collapse on a den-10 grid.
        let c = Curve::from_breakpoints(vec![
            Breakpoint::cont(Rat::ZERO, Value::ZERO, Rat::ONE),
            Breakpoint::cont(rat(101, 100), Value::finite(rat(101, 100)), Rat::int(2)),
            Breakpoint::cont(rat(105, 100), Value::finite(rat(109, 100)), Rat::int(3)),
        ])
        .unwrap();
        let r = c.relax_up(10);
        assert!(r.is_wide_sense_increasing());
        for num in 0..50 {
            let t = rat(num, 4);
            assert!(r.eval(t) >= c.eval(t), "t = {t:?}");
        }
    }

    #[test]
    fn eval_cursor_matches_eval() {
        let c = lb(2, 5)
            .min(&shapes::constant_rate(Rat::int(4)))
            .max(&rl(3, 2));
        let d = shapes::delta(Rat::int(6)).min(&c);
        for curve in [&c, &d] {
            let mut cur = EvalCursor::new(curve);
            for num in 0..40 {
                let t = rat(num, 4);
                assert_eq!(cur.eval(t), curve.eval(t), "t = {t:?}");
                assert_eq!(cur.eval_right(t), curve.eval_right(t), "t = {t:?}");
            }
            // Backwards queries fall back to a binary search.
            let mut cur = EvalCursor::new(curve);
            assert_eq!(cur.eval(Rat::int(9)), curve.eval(Rat::int(9)));
            assert_eq!(cur.eval(Rat::ONE), curve.eval(Rat::ONE));
        }
    }

    #[test]
    fn sample_grid() {
        let a = lb(2, 1);
        let pts = a.sample(Rat::int(4), 5);
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0], (Rat::ZERO, Value::ZERO));
        assert_eq!(pts[4], (Rat::int(4), Value::from(9)));
    }
}

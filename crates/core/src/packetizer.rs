//! Packetizer adjustments (§3 of the paper).
//!
//! Classic network calculus models fluid, bit-by-bit flows; real
//! streaming stages exchange whole packets/jobs. Following the paper
//! (after Van Bemten & Kellerer), a packetizer `P^L` with maximum
//! packet size `l_max` modifies the curves as
//!
//! ```text
//! P^L(r(t)) ≤ α(t) + l_max · 1_{t>0}      (arrival grows by one packet)
//! β'(t)     = [β(t) − l_max]⁺             (service loses one packet)
//! γ'(t)     = γ(t)                        (max service unchanged)
//! ```

use crate::curve::pwl::Curve;
use crate::curve::shapes;
use crate::num::Rat;

/// Arrival curve seen downstream of a packetizer:
/// `α'(t) = α(t) + l_max · 1_{t>0}`.
pub fn packetize_arrival(alpha: &Curve, l_max: Rat) -> Curve {
    assert!(!l_max.is_negative(), "packet size must be >= 0");
    // l_max · 1_{t>0} is exactly a zero-rate leaky bucket with burst l_max.
    alpha.add(&shapes::leaky_bucket(Rat::ZERO, l_max))
}

/// Service curve offered after accounting for packetization:
/// `β'(t) = [β(t) − l_max]⁺`.
pub fn packetize_service(beta: &Curve, l_max: Rat) -> Curve {
    assert!(!l_max.is_negative(), "packet size must be >= 0");
    beta.sub(&shapes::constant(l_max)).pos()
}

/// Maximum service curve after packetization: unchanged, `γ'(t) = γ(t)`.
pub fn packetize_max_service(gamma: &Curve) -> Curve {
    gamma.clone()
}

/// All three §3 packetizer adjustments applied to a node's curve triple.
pub fn packetize(alpha: &Curve, beta: &Curve, gamma: &Curve, l_max: Rat) -> (Curve, Curve, Curve) {
    (
        packetize_arrival(alpha, l_max),
        packetize_service(beta, l_max),
        packetize_max_service(gamma),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::{backlog_bound, delay_bound};
    use crate::num::{rat, Value};

    #[test]
    fn arrival_gains_packet_burst() {
        let alpha = shapes::leaky_bucket(Rat::int(2), Rat::int(5));
        let p = packetize_arrival(&alpha, Rat::int(3));
        assert_eq!(p.eval(Rat::ZERO), Value::ZERO);
        assert_eq!(p.eval_right(Rat::ZERO), Value::from(8));
        assert_eq!(p.eval(Rat::int(2)), Value::from(12));
    }

    #[test]
    fn service_loses_packet_and_clamps() {
        let beta = shapes::rate_latency(Rat::int(4), Rat::int(2));
        let p = packetize_service(&beta, Rat::int(4));
        // β(3) = 4, minus 4 → 0; β(4) = 8, minus 4 → 4.
        assert_eq!(p.eval(Rat::int(3)), Value::ZERO);
        assert_eq!(p.eval(Rat::int(4)), Value::from(4));
        // The effective latency grows from 2 to 3 (= T + l/R).
        assert_eq!(p.lower_pseudo_inverse(Value::finite(rat(1, 100))), {
            // first strictly positive value just after t = 3
            p.lower_pseudo_inverse(Value::finite(rat(1, 100)))
        });
        assert_eq!(p.eval(Rat::int(2)), Value::ZERO);
        assert!(p.is_wide_sense_increasing());
    }

    #[test]
    fn max_service_unchanged() {
        let gamma = shapes::constant_rate(Rat::int(9));
        assert_eq!(packetize_max_service(&gamma), gamma);
    }

    #[test]
    fn packetization_worsens_bounds() {
        let alpha = shapes::leaky_bucket(Rat::int(2), Rat::int(5));
        let beta = shapes::rate_latency(Rat::int(4), Rat::int(2));
        let gamma = shapes::constant_rate(Rat::int(8));
        let (pa, pb, pg) = packetize(&alpha, &beta, &gamma, Rat::int(3));
        assert!(backlog_bound(&pa, &pb) >= backlog_bound(&alpha, &beta));
        assert!(delay_bound(&pa, &pb) >= delay_bound(&alpha, &beta));
        assert_eq!(pg, gamma);
        // Quantitatively: backlog 5+2·2=9 → (5+3) + 2·(2+3/4) = 13.5.
        assert_eq!(backlog_bound(&pa, &pb), Value::finite(rat(27, 2)));
    }
}

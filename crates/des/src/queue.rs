//! Bounded byte queues with occupancy accounting.
//!
//! Streaming stages exchange *quantities of data* rather than discrete
//! customers (the Mercator queues of §4.1 collect and redistribute
//! work items; the bump-in-the-wire FIFOs carry byte streams). A
//! [`ByteQueue`] tracks an integer byte level against a capacity and
//! keeps the statistics the paper reads off its simulator: peak
//! occupancy and the time-weighted average.
//!
//! The queue is passive — wake-up logic lives in the model that owns it
//! (see `nc-streamsim`), which keeps the borrow structure simple and
//! the queue reusable.

use serde::Serialize;

use crate::stats::TimeWeighted;
use crate::time::Time;

/// A FIFO byte store with optional capacity.
#[derive(Debug, Serialize)]
pub struct ByteQueue {
    capacity: Option<u64>,
    level: u64,
    total_in: u64,
    total_out: u64,
    occupancy: TimeWeighted,
}

impl ByteQueue {
    /// Unbounded queue.
    pub fn unbounded(t0: Time) -> ByteQueue {
        ByteQueue {
            capacity: None,
            level: 0,
            total_in: 0,
            total_out: 0,
            occupancy: TimeWeighted::new(t0, 0.0),
        }
    }

    /// Bounded queue holding at most `capacity` bytes.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn bounded(t0: Time, capacity: u64) -> ByteQueue {
        assert!(capacity > 0, "queue capacity must be > 0");
        ByteQueue {
            capacity: Some(capacity),
            level: 0,
            total_in: 0,
            total_out: 0,
            occupancy: TimeWeighted::new(t0, 0.0),
        }
    }

    /// Current byte level.
    pub fn level(&self) -> u64 {
        self.level
    }

    /// Capacity, if bounded.
    pub fn capacity(&self) -> Option<u64> {
        self.capacity
    }

    /// Free space (`u64::MAX` when unbounded).
    pub fn free(&self) -> u64 {
        match self.capacity {
            None => u64::MAX,
            Some(c) => c - self.level,
        }
    }

    /// `true` iff `amount` more bytes fit.
    pub fn can_put(&self, amount: u64) -> bool {
        self.free() >= amount
    }

    /// `true` iff `amount` bytes are available.
    pub fn can_get(&self, amount: u64) -> bool {
        self.level >= amount
    }

    /// Deposit `amount` bytes at time `t`.
    ///
    /// # Panics
    /// Panics if the queue would overflow — callers must gate on
    /// [`ByteQueue::can_put`] (that is the backpressure protocol).
    pub fn put(&mut self, t: Time, amount: u64) {
        assert!(self.can_put(amount), "ByteQueue overflow");
        self.level += amount;
        self.total_in += amount;
        self.occupancy.set(t, self.level as f64);
    }

    /// Withdraw `amount` bytes at time `t`.
    ///
    /// # Panics
    /// Panics if fewer than `amount` bytes are present — callers must
    /// gate on [`ByteQueue::can_get`].
    pub fn get(&mut self, t: Time, amount: u64) {
        assert!(self.can_get(amount), "ByteQueue underflow");
        self.level -= amount;
        self.total_out += amount;
        self.occupancy.set(t, self.level as f64);
    }

    /// Total bytes ever deposited.
    pub fn total_in(&self) -> u64 {
        self.total_in
    }

    /// Total bytes ever withdrawn.
    pub fn total_out(&self) -> u64 {
        self.total_out
    }

    /// Peak occupancy in bytes.
    pub fn peak(&self) -> f64 {
        self.occupancy.max()
    }

    /// Time-averaged occupancy over `[t0, t]`.
    pub fn avg_occupancy(&self, t: Time) -> f64 {
        self.occupancy.time_avg(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting() {
        let mut q = ByteQueue::bounded(Time::ZERO, 100);
        assert!(q.can_put(100));
        assert!(!q.can_put(101));
        q.put(Time::secs(1.0), 60);
        assert_eq!(q.level(), 60);
        assert_eq!(q.free(), 40);
        assert!(q.can_get(60));
        assert!(!q.can_get(61));
        q.get(Time::secs(2.0), 20);
        assert_eq!(q.level(), 40);
        assert_eq!(q.total_in(), 60);
        assert_eq!(q.total_out(), 20);
        assert_eq!(q.peak(), 60.0);
    }

    #[test]
    fn unbounded_never_blocks() {
        let mut q = ByteQueue::unbounded(Time::ZERO);
        assert!(q.can_put(u64::MAX / 2));
        q.put(Time::secs(1.0), 1 << 40);
        assert_eq!(q.level(), 1 << 40);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut q = ByteQueue::bounded(Time::ZERO, 10);
        q.put(Time::secs(1.0), 11);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut q = ByteQueue::bounded(Time::ZERO, 10);
        q.get(Time::secs(1.0), 1);
    }

    #[test]
    fn time_weighted_occupancy() {
        let mut q = ByteQueue::bounded(Time::ZERO, 100);
        q.put(Time::secs(0.0), 10);
        q.get(Time::secs(5.0), 10);
        // Level 10 for 5 s, then 0 for 5 s → average 5.
        assert!((q.avg_occupancy(Time::secs(10.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = ByteQueue::bounded(Time::ZERO, 0);
    }
}

//! Figure 10 reproduction: bump-in-the-wire network-calculus curves
//! (α, β, α*; γ omitted as in the paper) and the simulated stairstep.

use nc_apps::bitw;

fn main() {
    let r = bitw::reproduce(42);
    let fig = bitw::figure10(&r, 160);
    nc_bench::emit("fig10.csv", &fig.to_csv());
    println!(
        "Figure 10: {} sim points, stairstep within [beta, alpha*]: {}",
        fig.sim.len(),
        fig.sim_between_bounds(1024.0)
    );
}

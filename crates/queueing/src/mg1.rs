//! M/G/1 queues via the Pollaczek–Khinchine formula, with M/D/1 and
//! M/U/1 (uniform service) specializations.
//!
//! The paper's criticism of the M/M/1 baseline is precisely that real
//! stages are not Markovian: the measured kernels have tightly bounded
//! service times (uniform between min and max in the simulator). M/G/1
//! quantifies how much of the queueing-prediction error comes from the
//! exponential-service assumption alone.

use serde::Serialize;

use crate::mm1::QueueError;

/// Steady-state metrics of a stable M/G/1 queue.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Mg1 {
    /// Arrival rate λ.
    pub lambda: f64,
    /// Mean service time E[S].
    pub mean_service: f64,
    /// Squared coefficient of variation `c² = Var[S]/E[S]²`.
    pub scv: f64,
    /// Utilization ρ = λ·E[S].
    pub rho: f64,
    /// Mean number in system.
    pub l: f64,
    /// Mean number waiting.
    pub lq: f64,
    /// Mean time in system.
    pub w: f64,
    /// Mean waiting time.
    pub wq: f64,
}

impl Mg1 {
    /// Analyze an M/G/1 queue from the first two moments of the
    /// service-time distribution.
    pub fn new(lambda: f64, mean_service: f64, service_variance: f64) -> Result<Mg1, QueueError> {
        if !(lambda.is_finite()
            && mean_service.is_finite()
            && service_variance.is_finite()
            && lambda > 0.0
            && mean_service > 0.0
            && service_variance >= 0.0)
        {
            return Err(QueueError::BadParameters);
        }
        let rho = lambda * mean_service;
        if rho >= 1.0 {
            return Err(QueueError::Unstable);
        }
        let scv = service_variance / (mean_service * mean_service);
        // Pollaczek–Khinchine: Lq = ρ²(1 + c²) / (2(1 − ρ)).
        let lq = rho * rho * (1.0 + scv) / (2.0 * (1.0 - rho));
        let wq = lq / lambda;
        let w = wq + mean_service;
        let l = lambda * w;
        Ok(Mg1 {
            lambda,
            mean_service,
            scv,
            rho,
            l,
            lq,
            w,
            wq,
        })
    }

    /// M/D/1: deterministic service of length `service`.
    pub fn deterministic(lambda: f64, service: f64) -> Result<Mg1, QueueError> {
        Mg1::new(lambda, service, 0.0)
    }

    /// M/U/1: service uniform on `[lo, hi]` — the paper's simulator
    /// model. Variance `(hi − lo)² / 12`.
    pub fn uniform(lambda: f64, lo: f64, hi: f64) -> Result<Mg1, QueueError> {
        if !(lo.is_finite() && hi.is_finite() && lo >= 0.0 && lo <= hi) {
            return Err(QueueError::BadParameters);
        }
        let mean = 0.5 * (lo + hi);
        let var = (hi - lo) * (hi - lo) / 12.0;
        Mg1::new(lambda, mean, var)
    }

    /// M/M/1 expressed through P-K (c² = 1), for cross-checks.
    pub fn exponential(lambda: f64, mean_service: f64) -> Result<Mg1, QueueError> {
        Mg1::new(lambda, mean_service, mean_service * mean_service)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mm1::Mm1;

    #[test]
    fn md1_half_the_mm1_queue() {
        // Classic result: M/D/1 waiting is half of M/M/1 at equal ρ.
        let md1 = Mg1::deterministic(2.0, 0.2).unwrap(); // ρ=0.4
        let mm1 = Mm1::new(2.0, 5.0).unwrap();
        assert!((md1.wq - 0.5 * mm1.wq).abs() < 1e-12);
        assert!((md1.lq - 0.5 * mm1.lq).abs() < 1e-12);
    }

    #[test]
    fn exponential_matches_mm1() {
        let pk = Mg1::exponential(2.0, 0.2).unwrap();
        let mm1 = Mm1::new(2.0, 5.0).unwrap();
        assert!((pk.l - mm1.l).abs() < 1e-12);
        assert!((pk.w - mm1.w).abs() < 1e-12);
    }

    #[test]
    fn uniform_between_deterministic_and_exponential() {
        let lo_hi = (0.1, 0.3); // mean 0.2
        let uni = Mg1::uniform(2.0, lo_hi.0, lo_hi.1).unwrap();
        let det = Mg1::deterministic(2.0, 0.2).unwrap();
        let exp = Mg1::exponential(2.0, 0.2).unwrap();
        assert!(det.wq < uni.wq && uni.wq < exp.wq);
    }

    #[test]
    fn stability_and_validation() {
        assert_eq!(
            Mg1::deterministic(5.0, 0.2).unwrap_err(),
            QueueError::Unstable
        );
        assert_eq!(
            Mg1::uniform(1.0, 0.3, 0.1).unwrap_err(),
            QueueError::BadParameters
        );
        assert_eq!(
            Mg1::new(1.0, 0.1, -1.0).unwrap_err(),
            QueueError::BadParameters
        );
    }

    #[test]
    fn littles_law() {
        let q = Mg1::uniform(2.0, 0.1, 0.3).unwrap();
        assert!((q.l - q.lambda * q.w).abs() < 1e-12);
    }
}

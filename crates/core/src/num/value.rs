//! Extended rationals: finite values plus `+∞`.
//!
//! Network calculus routinely produces infinite bounds — a pure-delay
//! element `δ_T` is `+∞` after `T`, and backlog/delay bounds are `+∞`
//! whenever the arrival rate exceeds the service rate (§3 of the paper).
//! Modeling that explicitly keeps the algebra total instead of hiding
//! overload behind sentinel numbers.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, Mul, Neg, Sub};

use super::rat::Rat;

/// A rational extended with `+∞` (and `-∞`, which only arises
/// transiently inside deconvolution suprema).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    /// Negative infinity. Never stored in a curve; used as the identity
    /// for suprema.
    NegInfinity,
    /// A finite rational.
    Finite(Rat),
    /// Positive infinity.
    Infinity,
}

impl Value {
    /// Finite zero.
    pub const ZERO: Value = Value::Finite(Rat::ZERO);

    /// Wrap a finite rational.
    pub fn finite(r: Rat) -> Value {
        Value::Finite(r)
    }

    /// `true` iff finite.
    pub fn is_finite(self) -> bool {
        matches!(self, Value::Finite(_))
    }

    /// `true` iff `+∞`.
    pub fn is_infinite(self) -> bool {
        matches!(self, Value::Infinity)
    }

    /// Extract the finite value.
    ///
    /// # Panics
    /// Panics if infinite.
    pub fn unwrap_finite(self) -> Rat {
        match self {
            Value::Finite(r) => r,
            Value::Infinity => panic!("Value::unwrap_finite on +inf"),
            Value::NegInfinity => panic!("Value::unwrap_finite on -inf"),
        }
    }

    /// Extract the finite value, or `None`.
    pub fn as_finite(self) -> Option<Rat> {
        match self {
            Value::Finite(r) => Some(r),
            _ => None,
        }
    }

    /// Convert to `f64` (`+∞` ↦ `f64::INFINITY`).
    pub fn to_f64(self) -> f64 {
        match self {
            Value::Finite(r) => r.to_f64(),
            Value::Infinity => f64::INFINITY,
            Value::NegInfinity => f64::NEG_INFINITY,
        }
    }

    /// Minimum.
    pub fn min(self, other: Value) -> Value {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum.
    pub fn max(self, other: Value) -> Value {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Positive part `[v]⁺ = max(v, 0)` — the standard network-calculus
    /// clamp used e.g. for packetized service curves `[β - l_max]⁺`.
    pub fn pos(self) -> Value {
        self.max(Value::ZERO)
    }

    /// Saturating multiplication by a finite rational scale `k ≥ 0`.
    pub fn scale(self, k: Rat) -> Value {
        debug_assert!(!k.is_negative());
        match self {
            Value::Finite(r) => Value::Finite(r * k),
            inf => {
                if k.is_zero() {
                    Value::ZERO
                } else {
                    inf
                }
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (NegInfinity, NegInfinity) | (Infinity, Infinity) => Ordering::Equal,
            (NegInfinity, _) | (_, Infinity) => Ordering::Less,
            (_, NegInfinity) | (Infinity, _) => Ordering::Greater,
            (Finite(a), Finite(b)) => a.cmp(b),
        }
    }
}

impl Add for Value {
    type Output = Value;
    /// # Panics
    /// Panics on `∞ + (-∞)` (indeterminate).
    fn add(self, rhs: Value) -> Value {
        use Value::*;
        match (self, rhs) {
            (Finite(a), Finite(b)) => Finite(a + b),
            (Infinity, NegInfinity) | (NegInfinity, Infinity) => {
                panic!("Value: inf + -inf is indeterminate")
            }
            (Infinity, _) | (_, Infinity) => Infinity,
            (NegInfinity, _) | (_, NegInfinity) => NegInfinity,
        }
    }
}

impl Sub for Value {
    type Output = Value;
    /// # Panics
    /// Panics on `∞ - ∞` (indeterminate).
    fn sub(self, rhs: Value) -> Value {
        self + (-rhs)
    }
}

impl Neg for Value {
    type Output = Value;
    fn neg(self) -> Value {
        match self {
            Value::Finite(r) => Value::Finite(-r),
            Value::Infinity => Value::NegInfinity,
            Value::NegInfinity => Value::Infinity,
        }
    }
}

impl Mul<Rat> for Value {
    type Output = Value;
    /// Multiply by a *non-negative* finite scale.
    fn mul(self, rhs: Rat) -> Value {
        self.scale(rhs)
    }
}

impl From<Rat> for Value {
    fn from(r: Rat) -> Value {
        Value::Finite(r)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Finite(Rat::int(n))
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Finite(r) => write!(f, "{r:?}"),
            Value::Infinity => write!(f, "+inf"),
            Value::NegInfinity => write!(f, "-inf"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl serde::Serialize for Value {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(self.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::num::rat::rat;

    #[test]
    fn ordering_with_infinities() {
        assert!(Value::NegInfinity < Value::from(0));
        assert!(Value::from(i64::MAX) < Value::Infinity);
        assert!(Value::from(1) < Value::from(2));
        assert_eq!(Value::Infinity.max(Value::from(3)), Value::Infinity);
        assert_eq!(Value::Infinity.min(Value::from(3)), Value::from(3));
    }

    #[test]
    fn arithmetic_with_infinities() {
        assert_eq!(Value::Infinity + Value::from(5), Value::Infinity);
        assert_eq!(Value::from(5) - Value::Infinity, Value::NegInfinity);
        assert_eq!(Value::Infinity.scale(rat(1, 2)), Value::Infinity);
        assert_eq!(Value::Infinity.scale(Rat::ZERO), Value::ZERO);
        assert_eq!(Value::from(6).scale(rat(1, 2)), Value::from(3));
    }

    #[test]
    #[should_panic(expected = "indeterminate")]
    fn inf_minus_inf_panics() {
        let _ = Value::Infinity - Value::Infinity;
    }

    #[test]
    fn pos_clamps_negatives() {
        assert_eq!(Value::from(-3).pos(), Value::ZERO);
        assert_eq!(Value::from(3).pos(), Value::from(3));
        assert_eq!(Value::NegInfinity.pos(), Value::ZERO);
    }
}

//! Grid-sampled floating-point bound estimators — the ablation partner
//! of the exact rational operators (DESIGN.md §6).
//!
//! Practitioner tools often evaluate network-calculus bounds by
//! sampling curves on a time grid in `f64`. That is cheaper but
//! *underestimates* suprema (the grid can miss the binding instant,
//! e.g. the burst right after a jump) and inherits float rounding.
//! These estimators exist to quantify that gap: the tests pin the
//! invariant `sampled ≤ exact`, and the `curve_ops` bench measures the
//! speed difference that the exactness costs.

use crate::curve::pwl::Curve;
use crate::num::{Rat, Value};

/// Grid-sampled backlog estimate `max_t {α(t) − β(t)}` over
/// `[0, horizon]` with `n` samples. Always `≤` the exact
/// [`vertical_deviation`](crate::ops::vertical_deviation) restricted to
/// that window.
pub fn sampled_backlog(alpha: &Curve, beta: &Curve, horizon: Rat, n: usize) -> f64 {
    assert!(n >= 2 && horizon.is_positive());
    let h = horizon.to_f64();
    let mut best = 0.0f64;
    for k in 0..n {
        let t = Rat::from_f64(h * k as f64 / (n - 1) as f64);
        let (a, b) = (alpha.eval(t), beta.eval(t));
        if let (Value::Finite(a), Value::Finite(b)) = (a, b) {
            best = best.max(a.to_f64() - b.to_f64());
        }
    }
    best.max(0.0)
}

/// Grid-sampled delay estimate: for each sample `t`, the first grid
/// point `t' ≥ t` with `β(t') ≥ α(t)`; the maximum of `t' − t`.
/// Always `≤` the exact horizontal deviation plus one grid step.
pub fn sampled_delay(alpha: &Curve, beta: &Curve, horizon: Rat, n: usize) -> f64 {
    assert!(n >= 2 && horizon.is_positive());
    let h = horizon.to_f64();
    let step = h / (n - 1) as f64;
    // Precompute β on the grid.
    let beta_grid: Vec<f64> = (0..n)
        .map(|k| beta.eval(Rat::from_f64(step * k as f64)).to_f64())
        .collect();
    let mut worst = 0.0f64;
    let mut j = 0usize;
    for k in 0..n {
        let a = alpha.eval(Rat::from_f64(step * k as f64)).to_f64();
        if j < k {
            j = k;
        }
        while j < n && beta_grid[j] < a {
            j += 1;
        }
        if j >= n {
            // β never catches α within the horizon: report the window
            // remainder (a lower estimate of the true delay).
            worst = worst.max(h - step * k as f64);
            break;
        }
        worst = worst.max(step * (j - k) as f64);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::shapes;
    use crate::ops::{horizontal_deviation, vertical_deviation};

    fn lb(r: i64, b: i64) -> Curve {
        shapes::leaky_bucket(Rat::int(r), Rat::int(b))
    }
    fn rl(r: i64, t: i64) -> Curve {
        shapes::rate_latency(Rat::int(r), Rat::int(t))
    }

    #[test]
    fn sampled_never_exceeds_exact() {
        let cases = [
            (lb(2, 5), rl(3, 4)),
            (lb(3, 2), rl(3, 4)),
            (lb(6, 1).min(&lb(2, 9)), rl(3, 2)),
        ];
        for (alpha, beta) in &cases {
            let exact_x = vertical_deviation(alpha, beta).to_f64();
            let exact_d = horizontal_deviation(alpha, beta).to_f64();
            for n in [16usize, 64, 512] {
                let sx = sampled_backlog(alpha, beta, Rat::int(50), n);
                let sd = sampled_delay(alpha, beta, Rat::int(50), n);
                assert!(sx <= exact_x + 1e-9, "n={n}: {sx} > {exact_x}");
                // Sampled delay can overshoot by one grid step only.
                let step = 50.0 / (n - 1) as f64;
                assert!(sd <= exact_d + step + 1e-9, "n={n}: {sd} > {exact_d}");
            }
        }
    }

    #[test]
    fn dense_grid_converges_to_exact() {
        let alpha = lb(2, 5);
        let beta = rl(3, 4);
        let exact_x = vertical_deviation(&alpha, &beta).to_f64(); // 13
        let exact_d = horizontal_deviation(&alpha, &beta).to_f64(); // 4 + 5/3
        let sx = sampled_backlog(&alpha, &beta, Rat::int(50), 20_001);
        let sd = sampled_delay(&alpha, &beta, Rat::int(50), 20_001);
        assert!((sx - exact_x).abs() < 0.02, "{sx} vs {exact_x}");
        assert!((sd - exact_d).abs() < 0.02, "{sd} vs {exact_d}");
    }

    #[test]
    fn coarse_grid_misses_the_burst() {
        // The binding instant is t → 0⁺ (the burst); a coarse grid that
        // skips it underestimates the backlog — the failure mode the
        // exact operators exist to avoid.
        let alpha = lb(1, 100);
        let beta = shapes::constant_rate(Rat::int(50));
        let exact = vertical_deviation(&alpha, &beta).to_f64(); // 100 at 0⁺
        let coarse = sampled_backlog(&alpha, &beta, Rat::int(50), 11);
        assert!(coarse < exact, "coarse {coarse} vs exact {exact}");
    }
}

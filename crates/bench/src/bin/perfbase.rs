//! The tracked performance baseline.
//!
//! Times the paper-reproduction binaries end to end (`table1`,
//! `table3`, `fig4`, `fig10`, `montecarlo`, `overload`, `sweep`), the
//! min-plus kernel fast paths against their reference implementations,
//! and the batch sweep engine (cached + parallel vs serial uncached,
//! with result-equality asserted and cache-hit counts recorded), then
//! writes the whole snapshot to `BENCH_2.json` at the workspace root —
//! next to PR 1's `BENCH_1.json` — so perf regressions show up in
//! review diffs.
//!
//! Run with `cargo run --release -p nc-bench --bin perfbase`.

use std::process::{Command, Stdio};
use std::time::Instant;

use nc_apps::{bitw, blast};
use nc_core::curve::{shapes, Curve};
use nc_core::num::{rat, Rat};
use nc_core::ops::{
    min_plus_conv, min_plus_conv_general, min_plus_deconv, min_plus_deconv_general,
};
use nc_streamsim::{simulate, simulate_in, SimArena};
use serde::Serialize;

#[derive(Serialize)]
struct BinTime {
    bin: String,
    /// Best-of-2 wall time of one full run, seconds.
    wall_s: f64,
}

#[derive(Serialize)]
struct Ablation {
    what: String,
    fast_s: f64,
    reference_s: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct SimTime {
    what: String,
    events: u64,
    per_run_s: f64,
}

#[derive(Serialize)]
struct SweepBench {
    what: String,
    points: usize,
    /// Best-of-3 wall time of `nc_sweep::run` (parallel, per-worker
    /// caches), seconds.
    cached_s: f64,
    /// Best-of-2 wall time of `nc_sweep::run_serial_uncached` (the
    /// status-quo loop), seconds.
    uncached_serial_s: f64,
    speedup: f64,
    /// Merged cache counters of one cached run.
    cache: nc_core::cache::CacheStats,
}

#[derive(Serialize)]
struct Baseline {
    schema: &'static str,
    command: &'static str,
    bins: Vec<BinTime>,
    sims: Vec<SimTime>,
    ablations: Vec<Ablation>,
    sweeps: Vec<SweepBench>,
}

fn lb(r: i64, b: i64) -> Curve {
    shapes::leaky_bucket(Rat::int(r), Rat::int(b))
}
fn rl(r: i64, t: i64) -> Curve {
    shapes::rate_latency(Rat::int(r), Rat::int(t))
}

/// Mean seconds per iteration of `f` (after a 10% warmup).
fn per_iter(iters: u32, mut f: impl FnMut()) -> f64 {
    for _ in 0..iters / 10 {
        f();
    }
    let t = Instant::now();
    for _ in 0..iters {
        f();
    }
    t.elapsed().as_secs_f64() / iters as f64
}

fn ablation(
    what: &str,
    iters: u32,
    mut fast: impl FnMut(),
    mut reference: impl FnMut(),
) -> Ablation {
    let fast_s = per_iter(iters, &mut fast);
    let reference_s = per_iter(iters, &mut reference);
    let a = Ablation {
        what: what.into(),
        fast_s,
        reference_s,
        speedup: reference_s / fast_s.max(f64::MIN_POSITIVE),
    };
    println!(
        "  {:<36} fast {:>12.3e}s  reference {:>12.3e}s  speedup {:>6.2}x",
        a.what, a.fast_s, a.reference_s, a.speedup
    );
    a
}

/// Best-of-2 wall time of one run of a sibling repro binary.
fn run_bin(name: &str) -> BinTime {
    let exe = std::env::current_exe().expect("current exe");
    let path = exe.parent().expect("bin dir").join(name);
    assert!(
        path.exists(),
        "{} not built — run `cargo build --release -p nc-bench --bins` first",
        path.display()
    );
    let mut best = f64::INFINITY;
    for _ in 0..2 {
        let t = Instant::now();
        let status = Command::new(&path)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .unwrap_or_else(|e| panic!("spawn {name}: {e}"));
        assert!(status.success(), "{name} exited with {status}");
        best = best.min(t.elapsed().as_secs_f64());
    }
    println!("  {name:<36} {best:>10.3}s");
    BinTime {
        bin: name.into(),
        wall_s: best,
    }
}

fn main() {
    // Make sure the sibling repro binaries exist (cheap when cached).
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let status = Command::new(cargo)
        .args(["build", "--release", "-p", "nc-bench", "--bins"])
        .status()
        .expect("spawn cargo build");
    assert!(status.success(), "building repro binaries failed");

    println!("perf baseline: repro binaries (best of 2)");
    let bins = [
        "table1",
        "table3",
        "fig4",
        "fig10",
        "montecarlo",
        "overload",
        "sweep",
    ]
    .iter()
    .map(|b| run_bin(b))
    .collect();

    println!("perf baseline: kernel fast paths vs reference");
    let mut ablations = Vec::new();

    // Convex ⊗ convex: slope merge vs strategy envelope.
    let cx = rl(1, 0).max(&rl(4, 3)).max(&rl(9, 6));
    let cy = rl(2, 1).max(&rl(6, 5)).max(&rl(12, 9));
    ablations.push(ablation(
        "conv convex x convex",
        20_000,
        || {
            std::hint::black_box(min_plus_conv(&cx, &cy));
        },
        || {
            std::hint::black_box(min_plus_conv_general(&cx, &cy));
        },
    ));

    // Concave ⊗ concave: offset-aware min vs strategy envelope.
    let kx = lb(2, 5).min(&lb(1, 9));
    let ky = lb(3, 4).min(&lb(1, 12));
    ablations.push(ablation(
        "conv concave x concave",
        20_000,
        || {
            std::hint::black_box(min_plus_conv(&kx, &ky));
        },
        || {
            std::hint::black_box(min_plus_conv_general(&kx, &ky));
        },
    ));

    // Mixed shapes: pruned strategy scan vs unpruned.
    let sx = shapes::truncated_staircase(Rat::int(3), Rat::int(2), 16);
    ablations.push(ablation(
        "conv staircase16 (pruned)",
        2_000,
        || {
            std::hint::black_box(min_plus_conv(&sx, &sx));
        },
        || {
            std::hint::black_box(min_plus_conv_general(&sx, &sx));
        },
    ));

    // Deconvolution closed form.
    let dy = rl(3, 4);
    ablations.push(ablation(
        "deconv concave / rate-latency",
        20_000,
        || {
            std::hint::black_box(min_plus_deconv(&kx, &dy));
        },
        || {
            std::hint::black_box(min_plus_deconv_general(&kx, &dy));
        },
    ));

    // Rational ops: i64 lane vs checked reference route.
    let (ra, rb) = (rat(355, 113), rat(-217, 990));
    ablations.push(ablation(
        "Rat add (i64 lane)",
        2_000_000,
        || {
            std::hint::black_box(std::hint::black_box(ra) + std::hint::black_box(rb));
        },
        || {
            std::hint::black_box(
                std::hint::black_box(ra)
                    .checked_add(std::hint::black_box(rb))
                    .unwrap(),
            );
        },
    ));
    ablations.push(ablation(
        "Rat mul (i64 lane)",
        2_000_000,
        || {
            std::hint::black_box(std::hint::black_box(ra) * std::hint::black_box(rb));
        },
        || {
            std::hint::black_box(
                std::hint::black_box(ra)
                    .checked_mul(std::hint::black_box(rb))
                    .unwrap(),
            );
        },
    ));

    // Replication loops: pooled arena vs fresh storage per run. BLAST
    // moves 64 MiB in ~700 MiB-sized jobs; BITW pushes ~7 events per
    // KiB and is the event-bound workload.
    let p = blast::deployed_pipeline();
    let mut cfg = blast::sim_config(1);
    cfg.total_input = 64 << 20;
    let mut arena = SimArena::new();
    ablations.push(ablation(
        "streamsim BLAST 64 MiB (pooled)",
        400,
        || {
            std::hint::black_box(simulate_in(&mut arena, &p, &cfg));
        },
        || {
            std::hint::black_box(simulate(&p, &cfg));
        },
    ));

    let pw = bitw::sim_pipeline();
    let mut cfgw = bitw::sim_config(1);
    let mut arena_w = SimArena::new();
    ablations.push(ablation(
        "streamsim BITW 2 MiB (pooled)",
        100,
        || {
            std::hint::black_box(simulate_in(&mut arena_w, &pw, &cfgw));
        },
        || {
            std::hint::black_box(simulate(&pw, &cfgw));
        },
    ));

    // End-to-end 64 MiB simulation runs: the tracked wall-time
    // trajectory for the DES + streamsim hot path.
    println!("perf baseline: 64 MiB simulation runs");
    let mut sims = Vec::new();
    cfgw.total_input = 64 << 20;
    for (what, p, cfg) in [
        ("streamsim BITW 64 MiB", &pw, &cfgw),
        ("streamsim BLAST 64 MiB", &p, &cfg),
    ] {
        let events = simulate(p, cfg).events;
        let iters = if events > 100_000 { 20 } else { 400 };
        let per_run_s = per_iter(iters, || {
            std::hint::black_box(simulate(p, cfg));
        });
        println!("  {what:<36} {per_run_s:>12.3e}s  ({events} events)");
        sims.push(SimTime {
            what: what.into(),
            events,
            per_run_s,
        });
    }

    // Batch sweep engine: cached + parallel fan-out vs the status-quo
    // serial uncached loop, on the tracked 16x16 BITW workload (256
    // points x 10 horizons). Result equality is asserted before timing,
    // so the speedup is apples to apples.
    println!("perf baseline: sweep engine (cached+parallel vs serial uncached)");
    let spec = nc_bench::bitw_sweep_spec(16, 16);
    let cached = nc_sweep::run(&spec);
    let uncached = nc_sweep::run_serial_uncached(&spec);
    assert_eq!(
        cached.to_csv(),
        uncached.to_csv(),
        "cached sweep must reproduce the uncached surface exactly"
    );
    // Interleave the timed runs so CPU frequency drift hits both sides
    // of the comparison equally; keep the best of each.
    let (mut cached_s, mut uncached_serial_s) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        let t = Instant::now();
        std::hint::black_box(nc_sweep::run(&spec));
        cached_s = cached_s.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        std::hint::black_box(nc_sweep::run_serial_uncached(&spec));
        uncached_serial_s = uncached_serial_s.min(t.elapsed().as_secs_f64());
    }
    let sweep = SweepBench {
        what: "BITW 16x16 block-size x PCIe egress rate, 10 horizons".into(),
        points: cached.points.len(),
        cached_s,
        uncached_serial_s,
        speedup: uncached_serial_s / cached_s.max(f64::MIN_POSITIVE),
        cache: cached.stats,
    };
    println!(
        "  {:<36} cached {:>10.3e}s  uncached {:>10.3e}s  speedup {:>6.2}x",
        sweep.what, sweep.cached_s, sweep.uncached_serial_s, sweep.speedup
    );
    println!(
        "  cache: prefix {}/{} hit/miss, ops {}/{} hit/miss, {} curves interned",
        sweep.cache.prefix_hits,
        sweep.cache.prefix_misses,
        sweep.cache.op_hits(),
        sweep.cache.op_misses(),
        sweep.cache.interned
    );
    let sweeps = vec![sweep];

    let baseline = Baseline {
        schema: "nc-perfbase-v2",
        command: "cargo run --release -p nc-bench --bin perfbase",
        bins,
        sims,
        ablations,
        sweeps,
    };
    let root = nc_bench::results_dir()
        .parent()
        .expect("workspace root")
        .to_path_buf();
    let path = root.join("BENCH_2.json");
    let json = serde_json::to_string_pretty(&baseline).expect("serialize baseline");
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("[written {}]", path.display());
}

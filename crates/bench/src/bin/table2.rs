//! Table 2 reproduction: bump-in-the-wire stage throughputs. Our
//! kernels (LZ4, AES-256-CBC, link models) are measured in isolation on
//! this machine — the paper's methodology on our substrate — and
//! printed next to the paper's FPGA kernel rates.

use nc_apps::bitw;

fn main() {
    let (rows, ratio) = bitw::measure_table2(4 << 20, 9);
    let mut out = String::from(
        "Table 2: function throughputs (our CPU kernels vs the paper's FPGA kernels)\n",
    );
    out.push_str(&format!(
        "  {:<12} {:>30} {:>30}\n",
        "Function", "Ours avg/min/max (MiB/s)", "Paper avg/min/max (MiB/s)"
    ));
    for r in &rows {
        out.push_str(&format!(
            "  {:<12} {:>10.0}/{:.0}/{:.0} {:>16.0}/{:.0}/{:.0}\n",
            r.function, r.ours.0, r.ours.1, r.ours.2, r.paper.0, r.paper.1, r.paper.2
        ));
    }
    out.push_str(&format!(
        "  observed LZ4 ratio on synthetic text: {ratio:.2}x (paper: 2.2x avg, 1.0x min, 5.3x max)\n"
    ));
    nc_bench::emit("table2.txt", &out);
    nc_bench::emit_json("table2.json", &rows);
}

//! End-to-end BLASTN search over the stage kernels, with the per-stage
//! stream statistics (items in/out, filter fractions) that drive the
//! paper's job-ratio modeling.

use serde::Serialize;

use crate::fasta::{fa2bit, reverse_complement};

use super::index::{QueryIndex, SEED_LEN};
use super::stages::{
    seed_enumeration, seed_match, small_extension, ungapped_extension, Extension, UngappedParams,
};

/// Counters for one stage of the dataflow.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct StageStats {
    /// Work items entering the stage.
    pub items_in: usize,
    /// Work items leaving the stage.
    pub items_out: usize,
}

impl StageStats {
    /// Output-to-input ratio (filter < 1, expander > 1).
    pub fn ratio(&self) -> f64 {
        if self.items_in == 0 {
            0.0
        } else {
            self.items_out as f64 / self.items_in as f64
        }
    }
}

/// Result of a full BLASTN run.
#[derive(Clone, Debug, Serialize)]
pub struct BlastResult {
    /// Reported alignments (above-threshold ungapped extensions).
    #[serde(skip)]
    pub alignments: Vec<Extension>,
    /// Per-stage stream statistics, in pipeline order:
    /// `[fa2bit, seed_match, seed_enum, small_ext, ungapped_ext]`.
    pub stages: [StageStats; 5],
}

/// Run the complete BLASTN pipeline: `fa2bit → seed match → seed
/// enumeration → small extension → ungapped extension` (Figure 2 of the
/// paper; gapped extension is out of scope there too).
pub fn blast_search(query: &[u8], database: &[u8], params: &UngappedParams) -> BlastResult {
    assert!(query.len() >= SEED_LEN, "query shorter than a seed");
    // Stage 1: fa2bit on both inputs (database conversion is the
    // FPGA-accelerated DIBS step in the paper's deployment).
    let qp = fa2bit(query);
    let dbp = fa2bit(database);
    let s_fa2bit = StageStats {
        items_in: database.len(),
        items_out: dbp.len(),
    };

    let index = QueryIndex::build(&qp, query.len());

    // Stage 2: seed match over byte-aligned 8-mers.
    let scanned = if database.len() >= SEED_LEN {
        (database.len() - SEED_LEN) / 4 + 1
    } else {
        0
    };
    let hits = seed_match(&dbp, database.len(), &index);
    let s_match = StageStats {
        items_in: scanned,
        items_out: hits.len(),
    };

    // Stage 3: seed enumeration.
    let seeds = seed_enumeration(&dbp, &hits, &index);
    let s_enum = StageStats {
        items_in: hits.len(),
        items_out: seeds.len(),
    };

    // Stage 4: small extension.
    let small = small_extension(&dbp, database.len(), &qp, query.len(), &seeds);
    let s_small = StageStats {
        items_in: seeds.len(),
        items_out: small.len(),
    };

    // Stage 5: ungapped extension.
    let alignments = ungapped_extension(&dbp, database.len(), &qp, query.len(), &small, params);
    let s_ungapped = StageStats {
        items_in: small.len(),
        items_out: alignments.len(),
    };

    BlastResult {
        alignments,
        stages: [s_fa2bit, s_match, s_enum, s_small, s_ungapped],
    }
}

/// Which query strand produced a hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Strand {
    /// The query as given.
    Plus,
    /// The reverse complement of the query.
    Minus,
}

/// An alignment annotated with its strand.
#[derive(Clone, Copy, Debug)]
pub struct StrandHit {
    /// Strand of the query that aligned.
    pub strand: Strand,
    /// The alignment (query coordinates are on the stated strand).
    pub alignment: Extension,
}

/// Search both query strands, as NCBI BLASTN does: the plus strand and
/// the reverse complement. Returns all above-threshold alignments with
/// their strand annotation, plus the per-strand stage statistics.
pub fn blast_search_both_strands(
    query: &[u8],
    database: &[u8],
    params: &UngappedParams,
) -> (Vec<StrandHit>, [BlastResult; 2]) {
    let plus = blast_search(query, database, params);
    let rc = reverse_complement(query);
    let minus = blast_search(&rc, database, params);
    let mut hits = Vec::with_capacity(plus.alignments.len() + minus.alignments.len());
    hits.extend(plus.alignments.iter().map(|&alignment| StrandHit {
        strand: Strand::Plus,
        alignment,
    }));
    hits.extend(minus.alignments.iter().map(|&alignment| StrandHit {
        strand: Strand::Minus,
        alignment,
    }));
    (hits, [plus, minus])
}

/// Collapse overlapping hits: keep only the best-scoring alignment per
/// `(strand, diagonal)` — the classic HSP deduplication (seeds along
/// one homologous region all share the diagonal `p − q`).
pub fn dedup_by_diagonal(hits: &[StrandHit]) -> Vec<StrandHit> {
    use std::collections::HashMap;
    let mut best: HashMap<(bool, i64), StrandHit> = HashMap::new();
    for &h in hits {
        let key = (
            matches!(h.strand, Strand::Plus),
            h.alignment.seed.p as i64 - h.alignment.seed.q as i64,
        );
        best.entry(key)
            .and_modify(|cur| {
                if h.alignment.score > cur.alignment.score {
                    *cur = h;
                }
            })
            .or_insert(h);
    }
    let mut out: Vec<StrandHit> = best.into_values().collect();
    out.sort_by(|a, b| {
        b.alignment
            .score
            .cmp(&a.alignment.score)
            .then(a.alignment.seed.p.cmp(&b.alignment.seed.p))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fasta::random_dna;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn finds_planted_homology() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let region = random_dna(80, &mut rng);
        let mut query = random_dna(256, &mut rng);
        let mut db = random_dna(8192, &mut rng);
        query[64..144].copy_from_slice(&region);
        // Plant at a byte-aligned position so the strided seed scan hits it.
        db[4096..4176].copy_from_slice(&region);
        let r = blast_search(&query, &db, &UngappedParams::default());
        assert!(
            r.alignments
                .iter()
                .any(|a| (4096..4176).contains(&(a.seed.p as usize)) && a.score >= 40),
            "planted region not found: {:?}",
            r.alignments
        );
    }

    #[test]
    fn random_data_mostly_filtered() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let query = random_dna(256, &mut rng);
        let db = random_dna(1 << 15, &mut rng);
        let r = blast_search(&query, &db, &UngappedParams::default());
        // fa2bit is exactly 4:1.
        assert!((r.stages[0].ratio() - 0.25).abs() < 0.01);
        // Seed match filters hard on random data.
        assert!(r.stages[1].ratio() < 0.05, "{}", r.stages[1].ratio());
        // Enumeration produces ~1–2 per hit for a non-repetitive query.
        if r.stages[2].items_in > 0 {
            assert!(r.stages[2].ratio() >= 1.0 && r.stages[2].ratio() < 3.0);
        }
        // Nothing random should survive ungapped extension at default
        // threshold.
        assert!(r.alignments.len() <= 1);
    }

    #[test]
    fn stage_counts_chain() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let query = random_dna(128, &mut rng);
        let db = random_dna(4096, &mut rng);
        let r = blast_search(&query, &db, &UngappedParams::default());
        assert_eq!(r.stages[1].items_out, r.stages[2].items_in);
        assert_eq!(r.stages[2].items_out, r.stages[3].items_in);
        assert_eq!(r.stages[3].items_out, r.stages[4].items_in);
        assert_eq!(r.stages[4].items_out, r.alignments.len());
    }

    #[test]
    fn minus_strand_homology_found() {
        // Plant the *reverse complement* of a query region in the
        // database: only the minus-strand pass can find it.
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let region = random_dna(96, &mut rng);
        let mut query = random_dna(256, &mut rng);
        let mut db = random_dna(8192, &mut rng);
        query[64..160].copy_from_slice(&region);
        let rc = crate::fasta::reverse_complement(&region);
        db[4096..4192].copy_from_slice(&rc);
        let (hits, [plus, minus]) =
            blast_search_both_strands(&query, &db, &UngappedParams::default());
        assert!(
            hits.iter().any(|h| h.strand == Strand::Minus
                && (4090..4192).contains(&(h.alignment.seed.p as usize))),
            "minus-strand hit missing: {hits:?}"
        );
        // The plus strand alone misses it.
        assert!(!plus
            .alignments
            .iter()
            .any(|a| (4090..4192).contains(&(a.seed.p as usize)) && a.score > 40));
        assert!(!minus.alignments.is_empty());
    }

    #[test]
    fn dedup_keeps_best_per_diagonal() {
        let mk = |strand, p, q, score| StrandHit {
            strand,
            alignment: Extension {
                seed: super::super::stages::SeedMatch { p, q },
                left: 0,
                right: 0,
                score,
            },
        };
        let hits = vec![
            mk(Strand::Plus, 100, 50, 20),  // diagonal 50
            mk(Strand::Plus, 104, 54, 35),  // diagonal 50, better
            mk(Strand::Plus, 200, 50, 15),  // diagonal 150
            mk(Strand::Minus, 104, 54, 10), // same diagonal, other strand
        ];
        let d = dedup_by_diagonal(&hits);
        assert_eq!(d.len(), 3);
        assert_eq!(d[0].alignment.score, 35); // sorted by score desc
        assert!(d
            .iter()
            .any(|h| h.strand == Strand::Minus && h.alignment.score == 10));
    }

    #[test]
    fn gapped_stage_composes_with_pipeline() {
        // Run the GPU pipeline, then host-side gapped extension on its
        // survivors (Figure 2's dashed final stage).
        let mut rng = ChaCha8Rng::seed_from_u64(32);
        let seq = random_dna(512, &mut rng);
        let r = blast_search(&seq, &seq, &UngappedParams::default());
        assert!(!r.alignments.is_empty());
        let qp = crate::fasta::fa2bit(&seq);
        let g = crate::blast::gapped::gapped_extension(
            &qp,
            seq.len(),
            &qp,
            seq.len(),
            &r.alignments,
            &crate::blast::gapped::GappedParams::default(),
        );
        assert_eq!(g.len(), r.alignments.len());
        for x in &g {
            assert!(x.score >= x.from.score);
        }
    }

    #[test]
    fn identical_sequences_align_fully() {
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let seq = random_dna(512, &mut rng);
        let r = blast_search(&seq, &seq, &UngappedParams::default());
        assert!(!r.alignments.is_empty());
        let best = r.alignments.iter().map(|a| a.score).max().unwrap();
        assert!(best >= 100, "best self-alignment score {best}");
    }
}

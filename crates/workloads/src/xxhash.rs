//! xxHash32 — the checksum algorithm of the LZ4 frame format.
//!
//! A faithful implementation of Yann Collet's XXH32 (the 32-bit
//! variant), needed by [`crate::lz4frame`] for header and content
//! checksums, and useful on its own as a fast non-cryptographic hash
//! for streaming integrity checks. Verified against the reference
//! known-answer vectors.

const PRIME1: u32 = 0x9E3779B1;
const PRIME2: u32 = 0x85EBCA77;
const PRIME3: u32 = 0xC2B2AE3D;
const PRIME4: u32 = 0x27D4EB2F;
const PRIME5: u32 = 0x165667B1;

/// One-shot XXH32 of `data` with `seed`.
pub fn xxh32(data: &[u8], seed: u32) -> u32 {
    let mut h = Xxh32::new(seed);
    h.update(data);
    h.digest()
}

/// Streaming XXH32 state.
#[derive(Clone, Debug)]
pub struct Xxh32 {
    seed: u32,
    acc: [u32; 4],
    /// Bytes buffered toward the next 16-byte stripe.
    buf: [u8; 16],
    buf_len: usize,
    total: u64,
}

#[inline]
fn round(acc: u32, input: u32) -> u32 {
    acc.wrapping_add(input.wrapping_mul(PRIME2))
        .rotate_left(13)
        .wrapping_mul(PRIME1)
}

#[inline]
fn read_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

impl Xxh32 {
    /// Fresh state with the given seed.
    pub fn new(seed: u32) -> Xxh32 {
        Xxh32 {
            seed,
            acc: [
                seed.wrapping_add(PRIME1).wrapping_add(PRIME2),
                seed.wrapping_add(PRIME2),
                seed,
                seed.wrapping_sub(PRIME1),
            ],
            buf: [0; 16],
            buf_len: 0,
            total: 0,
        }
    }

    /// Absorb more input.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total += data.len() as u64;
        // Fill the pending stripe first.
        if self.buf_len > 0 {
            let need = 16 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 16 {
                let b = self.buf;
                self.consume_stripe(&b);
                self.buf_len = 0;
            }
            if data.is_empty() {
                // Everything went into the pending stripe: the stash
                // below must not clobber it.
                return;
            }
        }
        // Whole stripes.
        let mut chunks = data.chunks_exact(16);
        for stripe in &mut chunks {
            self.consume_stripe(stripe);
        }
        // Stash the tail.
        let rem = chunks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
    }

    fn consume_stripe(&mut self, stripe: &[u8]) {
        debug_assert_eq!(stripe.len(), 16);
        self.acc[0] = round(self.acc[0], read_u32(&stripe[0..]));
        self.acc[1] = round(self.acc[1], read_u32(&stripe[4..]));
        self.acc[2] = round(self.acc[2], read_u32(&stripe[8..]));
        self.acc[3] = round(self.acc[3], read_u32(&stripe[12..]));
    }

    /// Finish and return the 32-bit digest (the state may keep
    /// absorbing afterwards; `digest` is non-destructive).
    pub fn digest(&self) -> u32 {
        let mut h = if self.total >= 16 {
            self.acc[0]
                .rotate_left(1)
                .wrapping_add(self.acc[1].rotate_left(7))
                .wrapping_add(self.acc[2].rotate_left(12))
                .wrapping_add(self.acc[3].rotate_left(18))
        } else {
            self.seed.wrapping_add(PRIME5)
        };
        h = h.wrapping_add(self.total as u32);

        let mut tail = &self.buf[..self.buf_len];
        while tail.len() >= 4 {
            h = h
                .wrapping_add(read_u32(tail).wrapping_mul(PRIME3))
                .rotate_left(17)
                .wrapping_mul(PRIME4);
            tail = &tail[4..];
        }
        for &b in tail {
            h = h
                .wrapping_add((b as u32).wrapping_mul(PRIME5))
                .rotate_left(11)
                .wrapping_mul(PRIME1);
        }

        h ^= h >> 15;
        h = h.wrapping_mul(PRIME2);
        h ^= h >> 13;
        h = h.wrapping_mul(PRIME3);
        h ^= h >> 16;
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vectors() {
        // Canonical XXH32 known answers.
        assert_eq!(xxh32(b"", 0), 0x02CC_5D05);
        assert_eq!(xxh32(b"", 1), 0x0B2C_B792);
        assert_eq!(xxh32(b"abc", 0), 0x32D1_53FF);
        assert_eq!(xxh32(b"abcd", 0), 0xA364_3705);
        assert_eq!(
            xxh32(b"Nobody inspects the spammish repetition", 0),
            0xE229_3B2F
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0u16..5000).map(|i| (i % 251) as u8).collect();
        for split in [0usize, 1, 3, 15, 16, 17, 100, 4999, 5000] {
            let mut h = Xxh32::new(7);
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.digest(), xxh32(&data, 7), "split {split}");
        }
        // Byte-at-a-time.
        let mut h = Xxh32::new(7);
        for &b in &data {
            h.update(&[b]);
        }
        assert_eq!(h.digest(), xxh32(&data, 7));
    }

    #[test]
    fn seed_sensitivity() {
        assert_ne!(xxh32(b"stream", 0), xxh32(b"stream", 1));
        assert_ne!(xxh32(b"stream", 0), xxh32(b"strean", 0));
    }

    #[test]
    fn digest_is_nondestructive() {
        let mut h = Xxh32::new(0);
        h.update(b"hello ");
        let first = h.digest();
        assert_eq!(first, h.digest());
        h.update(b"world");
        assert_ne!(h.digest(), first);
        assert_eq!(h.digest(), xxh32(b"hello world", 0));
    }
}

//! Property-based tests for the exact rational arithmetic: field
//! axioms, order compatibility, and float ingestion.

use nc_core::num::{Rat, Value};
use proptest::prelude::*;

fn arb_rat() -> impl Strategy<Value = Rat> {
    (-1000i128..=1000, 1i128..=200).prop_map(|(n, d)| Rat::new(n, d))
}

fn arb_nonzero_rat() -> impl Strategy<Value = Rat> {
    arb_rat().prop_filter("nonzero", |r| !r.is_zero())
}

/// Rationals whose components straddle the i64 boundary, so operations
/// land on both sides of the fast-lane predicate (and right at its
/// edge, where a wrong overflow analysis would show up).
fn arb_boundary_rat() -> impl Strategy<Value = Rat> {
    let m = i64::MAX as i128;
    prop_oneof![
        (-1000i128..=1000, 1i128..=200).prop_map(|(n, d)| Rat::new(n, d)),
        (m - 1000..=m, 1i128..=200).prop_map(|(n, d)| Rat::new(n, d)),
        (-m..=-m + 1000, 1i128..=200).prop_map(|(n, d)| Rat::new(n, d)),
        (-1000i128..=1000, m - 1000..=m).prop_map(|(n, d)| Rat::new(n, d)),
        // Wider than i64: always takes the checked reference lane.
        (-1000i128..=1000, 1i128..=200).prop_map(move |(n, d)| Rat::new(n, d) * Rat::new(m, 7)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn add_commutative_associative(a in arb_rat(), b in arb_rat(), c in arb_rat()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn mul_commutative_associative(a in arb_rat(), b in arb_rat(), c in arb_rat()) {
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    #[test]
    fn distributive(a in arb_rat(), b in arb_rat(), c in arb_rat()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn additive_inverse(a in arb_rat()) {
        prop_assert_eq!(a + (-a), Rat::ZERO);
        prop_assert_eq!(a - a, Rat::ZERO);
    }

    #[test]
    fn multiplicative_inverse(a in arb_nonzero_rat()) {
        prop_assert_eq!(a * a.recip(), Rat::ONE);
        prop_assert_eq!(a / a, Rat::ONE);
    }

    #[test]
    fn order_total_and_compatible(a in arb_rat(), b in arb_rat(), c in arb_rat()) {
        // Totality.
        prop_assert!(a <= b || b <= a);
        // Translation invariance.
        if a <= b {
            prop_assert!(a + c <= b + c);
        }
        // Positive scaling preserves order.
        if a <= b && c.is_positive() {
            prop_assert!(a * c <= b * c);
        }
    }

    #[test]
    fn ordering_matches_f64(a in arb_rat(), b in arb_rat()) {
        // For these small rationals the f64 conversion is exact enough
        // to agree with the rational order.
        let fa = a.to_f64();
        let fb = b.to_f64();
        if (fa - fb).abs() > 1e-9 {
            prop_assert_eq!(a < b, fa < fb);
        }
    }

    #[test]
    fn floor_ceil_bracket(a in arb_rat()) {
        let f = a.floor();
        let c = a.ceil();
        prop_assert!(Rat::new(f, 1) <= a);
        prop_assert!(a <= Rat::new(c, 1));
        prop_assert!(c - f <= 1);
    }

    #[test]
    fn from_f64_close(n in -100_000i64..100_000, d in 1i64..10_000) {
        let x = n as f64 / d as f64;
        let r = Rat::from_f64(x);
        prop_assert!((r.to_f64() - x).abs() <= 1e-9 * x.abs().max(1.0));
    }

    #[test]
    fn fast_lane_equals_checked_reference(a in arb_boundary_rat(), b in arb_boundary_rat()) {
        // The operators dispatch between an i64 fast lane and the
        // checked i128 reference; both must produce identical,
        // lowest-terms results wherever the reference is defined.
        if let Some(s) = a.checked_add(b) {
            prop_assert_eq!(a + b, s);
            prop_assert_eq!(a - (-b), s);
        }
        if let Some(p) = a.checked_mul(b) {
            prop_assert_eq!(a * b, p);
            if !b.is_zero() {
                prop_assert_eq!(p / b, a);
            }
        }
        if let Some(d) = a.checked_add(-b) {
            prop_assert_eq!(a.cmp(&b), d.signum().cmp(&0));
        }
    }

    #[test]
    fn value_lattice(a in arb_rat(), b in arb_rat()) {
        let (va, vb) = (Value::finite(a), Value::finite(b));
        prop_assert_eq!(va.min(vb).max(va.max(vb)), va.max(vb));
        prop_assert!(Value::NegInfinity <= va);
        prop_assert!(va <= Value::Infinity);
        // Exact sum agrees with the float sum up to rounding.
        let diff = ((va + vb).to_f64() - (a.to_f64() + b.to_f64())).abs();
        prop_assert!(diff <= 1e-9);
    }
}

//! Piecewise-linear curves and standard network-calculus shapes.

pub mod approx;
pub mod pwl;
pub mod shapes;

pub use pwl::{Breakpoint, Curve, CurveError};

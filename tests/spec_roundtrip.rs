//! The JSON spec surface: the shipped example spec parses, models, and
//! simulates; Pipeline serde round-trips; exact `[num, den]` rationals
//! are honoured.

use streamcalc::core::num::{rat, Rat};
use streamcalc::core::pipeline::Pipeline;
use streamcalc::core::Regime;
use streamcalc::streamsim::{simulate, SimConfig};

#[test]
fn shipped_example_spec_parses_and_models() {
    let raw = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/specs/example_pipeline.json"
    ))
    .expect("example spec present");
    let p: Pipeline = serde_json::from_str(&raw).expect("spec parses");
    p.validate().expect("spec valid");
    assert_eq!(p.nodes.len(), 4);
    let m = p.build_model();
    assert_eq!(m.regime(), Regime::Underloaded);
    assert!(m.backlog_bound().is_finite());
    // And it simulates.
    let r = simulate(
        &p,
        &SimConfig {
            total_input: 16 << 20,
            ..SimConfig::default()
        },
    );
    assert!(r.throughput > 0.0);
}

#[test]
fn pipeline_serde_roundtrip() {
    let p = streamcalc::apps::bitw::pipeline(streamcalc::apps::bitw::Scenario::Average);
    let json = serde_json::to_string(&p).expect("serialize");
    let back: Pipeline = serde_json::from_str(&json).expect("deserialize");
    back.validate().expect("roundtrip valid");
    assert_eq!(back.nodes.len(), p.nodes.len());
    // Float-serialized rates survive within continued-fraction accuracy.
    for (a, b) in p.nodes.iter().zip(&back.nodes) {
        assert_eq!(a.name, b.name);
        let (x, y) = (a.rates.avg.to_f64(), b.rates.avg.to_f64());
        assert!((x - y).abs() <= 1e-6 * x.abs().max(1.0), "{x} vs {y}");
    }
    // Normalization (exact in the original) is preserved closely enough
    // for identical regime/bottleneck classification.
    let (m1, m2) = (p.build_model(), back.build_model());
    let (r1, r2) = (
        m1.bottleneck_rate_avg.to_f64(),
        m2.bottleneck_rate_avg.to_f64(),
    );
    assert!((r1 - r2).abs() <= 1e-5 * r1);
}

#[test]
fn exact_rationals_in_json() {
    let r: Rat = serde_json::from_str("[1, 3]").unwrap();
    assert_eq!(r, rat(1, 3));
    let r: Rat = serde_json::from_str("0.25").unwrap();
    assert_eq!(r, rat(1, 4));
    let r: Rat = serde_json::from_str("1048576").unwrap();
    assert_eq!(r, Rat::int(1 << 20));
    assert!(serde_json::from_str::<Rat>("[1, 0]").is_err());
    assert!(serde_json::from_str::<Rat>("\"x\"").is_err());
}

#[test]
fn malformed_specs_rejected() {
    assert!(serde_json::from_str::<Pipeline>("{}").is_err());
    let missing_nodes = r#"{"name":"x","source":{"rate":1,"burst":0},"nodes":[]}"#;
    let p: Pipeline = serde_json::from_str(missing_nodes).unwrap();
    assert!(p.validate().is_err());
    let bad_rates = r#"{
        "name":"x","source":{"rate":100,"burst":0},
        "nodes":[{"name":"n","kind":"Compute",
                  "rates":{"min":200,"avg":150,"max":300},
                  "latency":0,"job_in":10,"job_out":10}]}"#;
    let p: Pipeline = serde_json::from_str(bad_rates).unwrap();
    assert!(p.validate().is_err(), "min > avg must fail validation");
}

// ---------------------------------------------------------------------
// Error paths: invalid values anywhere on the spec surface must come
// back as *typed* errors with actionable messages — never panics.
// ---------------------------------------------------------------------

#[test]
fn negative_rate_spec_reports_the_node() {
    let raw = r#"{
        "name":"x","source":{"rate":100,"burst":0},
        "nodes":[{"name":"enc","kind":"Compute",
                  "rates":{"min":-50,"avg":150,"max":300},
                  "latency":0,"job_in":10,"job_out":10}]}"#;
    let p: Pipeline = serde_json::from_str(raw).unwrap();
    let e = p.validate().unwrap_err();
    assert_eq!(e.to_string(), "node 'enc': need 0 < min <= avg <= max");
}

#[test]
fn faulted_pipeline_spec_rejects_bad_fault_parameters() {
    // Zero stall period on a stage's fault hypothesis.
    let raw = r#"{
        "name":"x","source":{"rate":100,"burst":0},
        "nodes":[{"name":"gpu","kind":"Compute",
                  "rates":{"min":200,"avg":250,"max":300},
                  "latency":0,"job_in":10,"job_out":10,
                  "fault":{"PeriodicStall":{"budget":0,"period":0}}}]}"#;
    let p: Pipeline = serde_json::from_str(raw).unwrap();
    let e = p.validate().unwrap_err();
    assert_eq!(e.to_string(), "node 'gpu': stall period must be positive");

    // Stall budget at (or above) the period.
    let raw = raw.replace(
        r#""budget":0,"period":0"#,
        r#""budget":[1,10],"period":[1,10]"#,
    );
    let p: Pipeline = serde_json::from_str(&raw).unwrap();
    let e = p.validate().unwrap_err();
    assert_eq!(e.to_string(), "node 'gpu': stall budget must be < period");
}

#[test]
fn fault_schedule_json_errors_are_typed_and_named() {
    use streamcalc::streamsim::{ConfigError, FaultSchedule};

    // Overlapping outage windows.
    let raw = r#"{"seed":1,"stages":[
        {"outages":[{"start":1.0,"duration":2.0},{"start":2.5,"duration":1.0}]}]}"#;
    let fs: FaultSchedule = serde_json::from_str(raw).unwrap();
    let e = fs.validate(1).unwrap_err();
    assert_eq!(e, ConfigError::OverlappingOutages { stage: 0 });
    assert_eq!(e.to_string(), "stage 0: overlapping outage windows");

    // Stall budget >= period.
    let raw = r#"{"seed":1,"stages":[{"stall":{"budget":0.5,"period":0.5}}]}"#;
    let fs: FaultSchedule = serde_json::from_str(raw).unwrap();
    let e = fs.validate(1).unwrap_err();
    assert_eq!(e, ConfigError::StallExceedsPeriod { stage: 0 });
    assert_eq!(e.to_string(), "stage 0: stall budget must be < period");

    // Zero stall period.
    let raw = r#"{"seed":1,"stages":[{"stall":{"budget":0.0,"period":0.0}}]}"#;
    let fs: FaultSchedule = serde_json::from_str(raw).unwrap();
    let e = fs.validate(1).unwrap_err();
    assert_eq!(e, ConfigError::ZeroStallPeriod { stage: 0 });

    // Derate outside [0, 1).
    let raw = r#"{"seed":1,"stages":[{"derate":-0.25}]}"#;
    let fs: FaultSchedule = serde_json::from_str(raw).unwrap();
    let e = fs.validate(1).unwrap_err();
    assert_eq!(e, ConfigError::BadDerate { stage: 0 });
    assert_eq!(
        e.to_string(),
        "stage 0: rate derate must satisfy 0 <= derate < 1"
    );

    // Stage-count mismatch against the pipeline it is applied to.
    let fs = FaultSchedule::none(2);
    let e = fs.validate(3).unwrap_err();
    assert_eq!(
        e,
        ConfigError::FaultStageCount {
            expected: 3,
            got: 2
        }
    );
    assert_eq!(
        e.to_string(),
        "fault schedule has 2 stage entries for a 3-stage pipeline"
    );

    // Retry backoff with cap below base.
    let raw = r#"{"seed":1,"stages":[{"recovery":{"Retry":{"base":0.01,"cap":0.001}}}]}"#;
    let fs: FaultSchedule = serde_json::from_str(raw).unwrap();
    let e = fs.validate(1).unwrap_err();
    assert_eq!(e, ConfigError::BadRetryBackoff { stage: 0 });
}

#[test]
fn sweep_spec_validation_is_typed_end_to_end() {
    use streamcalc::core::num::Rat as R;
    use streamcalc::sweep::{Axis, Param, SpecError, SweepSpec};

    let base = streamcalc::apps::bitw::light_pipeline();
    let spec = SweepSpec {
        base: base.clone(),
        axes: vec![Axis::new(Param::SourceRate, vec![R::int(1 << 20)])],
        horizons: vec![R::int(1)],
        sim: None,
    };
    assert_eq!(spec.validate(), Ok(()));

    // Negative swept rate.
    let mut bad = spec.clone();
    bad.axes = vec![Axis::new(Param::SourceRate, vec![R::int(-1)])];
    let e = bad.validate().unwrap_err();
    assert!(
        matches!(e, SpecError::BadAxisValue { .. }),
        "got {e:?} instead of BadAxisValue"
    );
    assert!(e.to_string().contains("positive rate"), "{e}");

    // An invalid fault schedule inside the attached sim config.
    let mut schedule = streamcalc::streamsim::FaultSchedule::none(base.nodes.len());
    schedule.stages[0].stall = Some(streamcalc::streamsim::StallSpec {
        budget: 1.0,
        period: 0.5,
    });
    let mut bad = spec;
    bad.sim = Some(streamcalc::streamsim::SimConfig {
        faults: Some(schedule),
        ..Default::default()
    });
    let e = bad.validate().unwrap_err();
    assert!(matches!(e, SpecError::Faults(_)), "got {e:?}");
    assert!(e.to_string().contains("stall budget"), "{e}");
}

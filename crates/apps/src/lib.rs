//! # nc-apps — the paper's two applications, end to end
//!
//! Wires the substrates together into the paper's evaluations:
//!
//! * [`blast`] — the §4 BLAST biosequence pipeline (Figure 3, Table 1,
//!   Figure 4, the 46.9 ms / 20.6 MiB findings);
//! * [`bitw`] — the §5 bump-in-the-wire compression/encryption
//!   pipeline (Figure 9, Tables 2–3, Figure 10, the 38 µs / 3 KiB
//!   findings);
//! * [`paper`] — every number the paper reports, as constants;
//! * [`report`] — table/figure types with paper-vs-ours comparison.
//!
//! Each application exposes `reproduce(seed)` returning the full
//! network-calculus model, the discrete-event simulation result, the
//! throughput table with the paper's values attached, and the bound
//! comparisons; `figure4`/`figure10` regenerate the paper's plots as
//! CSV series.

#![warn(missing_docs)]

pub mod bitw;
pub mod blast;
pub mod paper;
pub mod report;

pub use report::{format_table, BoundsReport, FigureSeries, ThroughputRow};

//! Table 1 reproduction: BLAST throughput predictions from network
//! calculus, the discrete-event simulation, and the queueing baseline,
//! plus the §4.2 delay/backlog findings.

use nc_apps::{blast, format_table};

fn main() {
    let r = blast::reproduce(42);
    let mut out = format_table(
        "Table 1: BLAST streaming data application throughput",
        &r.table1,
    );
    out.push('\n');
    out.push_str(&nc_bench::format_bounds("BLAST (Sec. 4.2)", &r.bounds));
    nc_bench::emit("table1.txt", &out);
    nc_bench::emit_json("table1.json", &r.table1);
}

//! The paper's §4 BLAST evaluation, end to end — and the actual BLASTN
//! kernels running on synthetic DNA to show where the pipeline's job
//! ratios come from.
//!
//! Run with `cargo run --release --example blast_pipeline`.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use streamcalc::apps::blast;
use streamcalc::apps::format_table;
use streamcalc::core::units::{fmt_bytes, fmt_time};
use streamcalc::core::{Rat, Value};
use streamcalc::workloads::blast::{blast_search, UngappedParams};
use streamcalc::workloads::fasta::random_dna;

fn main() {
    // ----- 1. The real computation: BLASTN over synthetic DNA ------
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    let mut query = random_dna(1024, &mut rng);
    let mut db = random_dna(1 << 20, &mut rng);
    // Plant a homologous region so the search has something to find.
    let region = random_dna(120, &mut rng);
    query[400..520].copy_from_slice(&region);
    db[700_000..700_120].copy_from_slice(&region);

    let result = blast_search(&query, &db, &UngappedParams::default());
    println!("BLASTN over a 1 MiB synthetic database:");
    let names = [
        "fa2bit",
        "seed_match",
        "seed_enum",
        "small_ext",
        "ungapped_ext",
    ];
    for (name, s) in names.iter().zip(result.stages.iter()) {
        println!(
            "  {name:<13} in {:>8}  out {:>8}  ratio {:.4}",
            s.items_in,
            s.items_out,
            s.ratio()
        );
    }
    println!("  alignments found: {}", result.alignments.len());
    let best = result.alignments.iter().map(|a| a.score).max().unwrap_or(0);
    println!("  best score: {best}\n");

    // ----- 2. The paper's models over the same stage structure -----
    let repro = blast::reproduce(42);
    println!(
        "{}",
        format_table("Table 1: BLAST throughput (ours vs paper)", &repro.table1)
    );
    println!(
        "delay bound d = {} (paper 46.9 ms), backlog bound x = {} (paper 20.6 MiB)",
        fmt_time(Value::finite(Rat::from_f64(repro.bounds.delay_bound_s))),
        fmt_bytes(Value::finite(Rat::from_f64(
            repro.bounds.backlog_bound_bytes
        ))),
    );
    println!(
        "simulated: throughput {:.0} MiB/s, delay [{:.1}, {:.1}] ms, peak backlog {:.1} MiB",
        repro.sim.throughput / 1048576.0,
        repro.sim.delay_min * 1e3,
        repro.sim.delay_max * 1e3,
        repro.sim.peak_backlog / 1048576.0,
    );
    println!(
        "simulation within modeled bounds: {}",
        repro.bounds.sim_within_bounds()
    );

    // ----- 3. Subset analysis (the paper's buffer-allocation use) ---
    println!("\nper-node backlog decomposition (buffer allocation):");
    for (name, x) in repro.model.per_node_backlogs() {
        println!("  {name:<13} {}", fmt_bytes(x));
    }
}

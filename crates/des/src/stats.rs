//! Statistics collectors for simulation runs.
//!
//! Three collectors cover what the paper reports from its simulator:
//! observation tallies (delays: "the longest observed delay … and the
//! shortest"), time-weighted levels (backlog: "the maximum amount of
//! data in system backlog accounting for all nodes and queues"), and
//! plain counters.

use serde::Serialize;

use crate::time::Time;

/// Tally of independent observations: count/min/max/mean/variance and
/// quantiles (samples retained).
#[derive(Clone, Debug, Default, Serialize)]
pub struct Tally {
    samples: Vec<f64>,
    sum: f64,
    sum_sq: f64,
}

impl Tally {
    /// Empty tally.
    pub fn new() -> Tally {
        Tally::default()
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        debug_assert!(x.is_finite());
        self.samples.push(x);
        self.sum += x;
        self.sum_sq += x * x;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::min)
    }

    /// Largest observation.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::max)
    }

    /// Sample mean.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.sum / self.samples.len() as f64)
        }
    }

    /// Unbiased sample variance.
    pub fn variance(&self) -> Option<f64> {
        let n = self.samples.len();
        if n < 2 {
            return None;
        }
        let mean = self.sum / n as f64;
        Some((self.sum_sq - n as f64 * mean * mean) / (n as f64 - 1.0))
    }

    /// Empirical quantile `q ∈ [0, 1]` (nearest-rank).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let idx = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
        Some(sorted[idx])
    }
}

/// Constant-memory observation tally: count, min, max, mean, variance —
/// no samples retained.
///
/// Drop-in for [`Tally`] where quantiles are not needed: `record` keeps
/// the identical running `sum`/`sum_sq` accumulation order, and the
/// running `min`/`max` equal `Tally`'s insertion-order `f64::min`/`max`
/// reductions bit for bit, so swapping a `Tally` for a
/// `StreamingTally` does not perturb reported statistics. This is what
/// lets the simulation engines record one delay per job over multi-GiB
/// inputs in O(1) memory.
#[derive(Clone, Debug, Serialize)]
pub struct StreamingTally {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl Default for StreamingTally {
    fn default() -> Self {
        StreamingTally::new()
    }
}

impl StreamingTally {
    /// Empty tally.
    pub fn new() -> StreamingTally {
        StreamingTally {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        debug_assert!(x.is_finite());
        self.count += 1;
        self.sum += x;
        self.sum_sq += x * x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Sample mean.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Unbiased sample variance.
    pub fn variance(&self) -> Option<f64> {
        if self.count < 2 {
            return None;
        }
        let n = self.count as f64;
        let mean = self.sum / n;
        Some((self.sum_sq - n * mean * mean) / (n - 1.0))
    }
}

/// A piecewise-constant level tracked over time (queue depth, backlog):
/// records the time integral, time average, and running maximum.
#[derive(Clone, Debug, Serialize)]
pub struct TimeWeighted {
    level: f64,
    max: f64,
    integral: f64,
    last_change: f64,
    start: f64,
}

impl TimeWeighted {
    /// Start tracking at `t0` with `initial` level.
    pub fn new(t0: Time, initial: f64) -> TimeWeighted {
        TimeWeighted {
            level: initial,
            max: initial,
            integral: 0.0,
            last_change: t0.as_secs(),
            start: t0.as_secs(),
        }
    }

    /// Set the level at time `t` (must not precede previous updates).
    pub fn set(&mut self, t: Time, level: f64) {
        let ts = t.as_secs();
        debug_assert!(ts >= self.last_change, "time went backwards");
        self.integral += self.level * (ts - self.last_change);
        self.last_change = ts;
        self.level = level;
        if level > self.max {
            self.max = level;
        }
    }

    /// Add `delta` to the level at time `t`.
    pub fn add(&mut self, t: Time, delta: f64) {
        let next = self.level + delta;
        self.set(t, next);
    }

    /// Current level.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Running maximum level.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Time average over `[start, t]`.
    pub fn time_avg(&self, t: Time) -> f64 {
        let ts = t.as_secs();
        debug_assert!(ts >= self.last_change);
        let total = ts - self.start;
        if total <= 0.0 {
            return self.level;
        }
        (self.integral + self.level * (ts - self.last_change)) / total
    }
}

/// Monotone counter with a rate accessor (events or bytes per second).
#[derive(Clone, Debug, Default, Serialize)]
pub struct Counter {
    total: f64,
}

impl Counter {
    /// Zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add `x` (≥ 0).
    pub fn add(&mut self, x: f64) {
        debug_assert!(x >= 0.0);
        self.total += x;
    }

    /// Total accumulated.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Average rate over `[0, t]`.
    pub fn rate(&self, t: Time) -> f64 {
        let ts = t.as_secs();
        if ts <= 0.0 {
            0.0
        } else {
            self.total / ts
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_moments() {
        let mut t = Tally::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            t.record(x);
        }
        assert_eq!(t.count(), 8);
        assert_eq!(t.min(), Some(2.0));
        assert_eq!(t.max(), Some(9.0));
        assert_eq!(t.mean(), Some(5.0));
        // Known dataset: population variance 4 → sample variance 32/7.
        assert!((t.variance().unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(t.quantile(0.0), Some(2.0));
        assert_eq!(t.quantile(1.0), Some(9.0));
        // Nearest-rank: index round(0.5 · 7) = 4 → the fifth sample.
        assert_eq!(t.quantile(0.5), Some(5.0));
    }

    #[test]
    fn tally_empty() {
        let t = Tally::new();
        assert_eq!(t.mean(), None);
        assert_eq!(t.min(), None);
        assert_eq!(t.quantile(0.5), None);
        assert_eq!(t.variance(), None);
    }

    #[test]
    fn streaming_tally_matches_tally_bitwise() {
        let xs = [2.5, 4.0, 4.25, 4.0, 5.5, 5.0, 7.125, 9.0, 0.375];
        let mut a = Tally::new();
        let mut b = StreamingTally::new();
        for &x in &xs {
            a.record(x);
            b.record(x);
        }
        assert_eq!(b.count(), xs.len() as u64);
        assert_eq!(a.min(), b.min());
        assert_eq!(a.max(), b.max());
        assert_eq!(a.mean(), b.mean());
        assert_eq!(a.variance(), b.variance());
    }

    #[test]
    fn streaming_tally_empty() {
        let t = StreamingTally::new();
        assert_eq!(t.count(), 0);
        assert_eq!(t.min(), None);
        assert_eq!(t.max(), None);
        assert_eq!(t.mean(), None);
        assert_eq!(t.variance(), None);
    }

    #[test]
    fn time_weighted_integral_and_max() {
        let mut tw = TimeWeighted::new(Time::ZERO, 0.0);
        tw.set(Time::secs(1.0), 10.0); // level 0 on [0,1)
        tw.set(Time::secs(3.0), 4.0); // level 10 on [1,3)
        tw.add(Time::secs(4.0), -4.0); // level 4 on [3,4), then 0
                                       // Integral: 0·1 + 10·2 + 4·1 = 24; over 5 s → 4.8.
        assert!((tw.time_avg(Time::secs(5.0)) - 24.0 / 5.0).abs() < 1e-12);
        assert_eq!(tw.max(), 10.0);
        assert_eq!(tw.level(), 0.0);
    }

    #[test]
    fn counter_rate() {
        let mut c = Counter::new();
        c.add(100.0);
        c.add(50.0);
        assert_eq!(c.total(), 150.0);
        assert_eq!(c.rate(Time::secs(3.0)), 50.0);
        assert_eq!(c.rate(Time::ZERO), 0.0);
    }
}

//! # nc-admit — the always-on admission-control engine
//!
//! The paper's §3 bounds answer exactly the question a capacity
//! planner asks — *can this flow meet its deadline on this pipeline?*
//! — but a full [`Pipeline::build_model`] + bounds pass per question is
//! three orders of magnitude too slow for an online service. This
//! crate packages the analytics as a long-lived [`AdmissionEngine`]
//! holding a fleet of tenant pipelines plus a shared
//! [`ModelCache`](nc_core::pipeline::ModelCache), answering
//! admit / reject / admit-remote requests by **incremental** NC
//! recomputation:
//!
//! * The **service side is frozen at onboarding**: one cached model
//!   build per tenant pipeline extracts each stage's packetized
//!   rate-latency service `β'_n = [R_n(t − T_n) − l_n]⁺ =
//!   RL(R_n, T_n + l_n/R_n)` as a scalar `(R, T)` pair (the
//!   [`Curve::as_rate_latency`](nc_core::curve::Curve::as_rate_latency)
//!   detector), along with suffix concatenations
//!   `RL(min_{j≥k} R_j, Σ_{j≥k} T_j)` interned through the
//!   [`CurveCache`](nc_core::cache::CurveCache) fast lane — the closed
//!   form `RL ⊗ RL = RL(min R, ΣT)` skips the general `⊗` strategy
//!   grid entirely.
//! * The **load side is incremental**: admitting a flow at attachment
//!   stage `a` only touches the suffix `j ≥ a` of the per-stage
//!   aggregate state (rates, inflated bursts, per-stage delay bounds) —
//!   exactly mirroring the pipeline prefix memo, whose entries past an
//!   edited stage are evicted by
//!   [`ModelCache::invalidate_suffix`](nc_core::pipeline::ModelCache::invalidate_suffix)
//!   on reconfiguration.
//! * The **steady-state decision path is allocation-free**: every
//!   bound on the hot path is a leaky-bucket-vs-rate-latency closed
//!   form (`d = T + b/R`, `x = b + r·T`, `α ⊘ β` burst inflation
//!   `b → b + r·T`) evaluated in exact rational arithmetic over
//!   preallocated scratch arrays. The curves backing those scalars
//!   stay interned in the shared cache; no curve is built, hashed, or
//!   cloned per decision.
//!
//! Two sound deadline bounds are combined, following Bouillard's
//! accuracy-vs-tractability analysis (arXiv:2010.09263): a **cheap**
//! sum of per-stage delay bounds (burst paid at every hop), and a
//! **tight** segmented concatenation bound that pays each burst once
//! per maximal attachment-free segment. The cheap bound dominates the
//! tight one, so a cheap pass admits without ever evaluating the
//! concatenation — the tight path is the slow-path fallback. See
//! `DESIGN.md` §13 for the soundness argument.
//!
//! The offload scenario of *"To Stream or Not to Stream"*
//! (arXiv:2509.19532) is modeled per tenant: when the local pipeline
//! rejects a flow, the engine re-evaluates it against the tenant's
//! remote pipeline (uplink stages included) and answers
//! [`Decision::AdmitRemote`] when the remote bound meets the deadline.
//!
//! Every decision is reproducible from scratch: [`oracle`] recomputes
//! the identical procedure through the general curve algebra
//! (convolutions, deconvolutions, horizontal/vertical deviations on
//! piecewise-linear curves, full `build_model` per call) and the
//! property suite asserts decision-and-bound equality on random
//! request sequences — the cold-start ablation baseline of the
//! `perfbase` throughput row.

#![warn(missing_docs)]

use std::fmt;

use nc_core::num::Rat;

mod engine;
pub mod oracle;

pub use engine::{AdmissionEngine, EngineStats, TenantId};

/// A heterogeneous flow class: the request-side unit of admission.
///
/// Rates and bursts are input-referred bytes/s and bytes, matching the
/// normalized units of [`nc_core::pipeline::Pipeline`]; `deadline` is
/// the end-to-end delay SLO in seconds from the flow's attachment
/// stage to the pipeline sink.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlowClass {
    /// Class name (reporting only).
    pub name: String,
    /// Sustained leaky-bucket rate `r` (bytes/s, input-referred).
    pub rate: Rat,
    /// Leaky-bucket burst allowance `b` (bytes). Must cover `block`.
    pub burst: Rat,
    /// Block size: the contiguous unit the flow's consumer needs
    /// delivered to make progress (bytes). The deadline SLO is read as
    /// a block-completion deadline, so admission requires
    /// `burst ≥ block` — the burst envelope must admit a whole block.
    pub block: Rat,
    /// Delay SLO (seconds): the flow's NC delay bound from its
    /// attachment stage must not exceed this.
    pub deadline: Rat,
}

impl FlowClass {
    fn validate(&self) -> Result<(), AdmitError> {
        if !self.rate.is_positive()
            || !self.block.is_positive()
            || self.burst < self.block
            || !self.deadline.is_positive()
        {
            return Err(AdmitError::BadClass);
        }
        Ok(())
    }
}

/// Handle to a registered [`FlowClass`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub usize);

/// Where an admitted flow was placed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// The tenant's local pipeline, at the requested attachment stage.
    Local,
    /// The tenant's remote pipeline (attachment stage 0, behind the
    /// uplink stages baked into the remote pipeline).
    Remote,
}

/// Why a request was rejected (the first failing check, in procedure
/// order — see `DESIGN.md` §13).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The placement pre-filter's rate cap
    /// ([`nc_core::bounds::max_admissible_rate`] over the suffix
    /// service concatenation) excludes the flow outright.
    PlacementCap,
    /// Some stage's aggregate arrival rate would exceed its guaranteed
    /// service rate — the NC bounds past that stage are infinite.
    RateInfeasible,
    /// Some stage's backlog bound would exceed the tenant's per-stage
    /// buffer budget.
    BudgetExceeded,
    /// The candidate's — or an already-admitted flow's — delay bound
    /// would exceed its deadline SLO under both the cheap and the
    /// tight bound.
    DeadlineExceeded,
}

impl RejectReason {
    /// Stable lowercase label (CSV output).
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::PlacementCap => "placement-cap",
            RejectReason::RateInfeasible => "rate-infeasible",
            RejectReason::BudgetExceeded => "budget-exceeded",
            RejectReason::DeadlineExceeded => "deadline-exceeded",
        }
    }
}

/// The engine's answer to one admission request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Admitted on the local pipeline; `bound` is the certified delay
    /// bound (seconds) for the flow from its attachment stage.
    Admit {
        /// Certified delay bound for the admitted flow.
        bound: Rat,
    },
    /// Rejected locally but admitted on the tenant's remote pipeline.
    AdmitRemote {
        /// Certified delay bound on the remote pipeline (uplink
        /// included).
        bound: Rat,
    },
    /// Rejected on the local pipeline and (when configured) the remote
    /// one; carries the *local* rejection reason.
    Reject {
        /// First failing check on the local path.
        reason: RejectReason,
    },
}

impl Decision {
    /// `true` for both local and remote admission.
    pub fn is_admitted(&self) -> bool {
        !matches!(self, Decision::Reject { .. })
    }

    /// Stable lowercase label (CSV output).
    pub fn label(&self) -> &'static str {
        match self {
            Decision::Admit { .. } => "admit",
            Decision::AdmitRemote { .. } => "admit-remote",
            Decision::Reject { reason } => reason.label(),
        }
    }

    /// The certified delay bound, when admitted.
    pub fn bound(&self) -> Option<Rat> {
        match self {
            Decision::Admit { bound } | Decision::AdmitRemote { bound } => Some(*bound),
            Decision::Reject { .. } => None,
        }
    }

    /// Where the flow was placed, when admitted.
    pub fn placement(&self) -> Option<Placement> {
        match self {
            Decision::Admit { .. } => Some(Placement::Local),
            Decision::AdmitRemote { .. } => Some(Placement::Remote),
            Decision::Reject { .. } => None,
        }
    }
}

/// Errors from engine configuration and flow bookkeeping (never from
/// the steady-state decision path, which answers with
/// [`Decision::Reject`] instead).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// The tenant pipeline failed [`nc_core::pipeline::Pipeline`]
    /// validation.
    InvalidPipeline(String),
    /// A stage's service curve is not rate-latency shaped, so the
    /// scalar decision lane cannot represent it (cannot happen for
    /// models built by this workspace's packetizer; guards against
    /// future curve families).
    UnsupportedService(String),
    /// The per-stage backlog budget is smaller than the zero-load
    /// backlog bound (the provisioned source burst alone overflows it).
    BudgetInfeasible,
    /// Flow-class parameters violate `rate > 0`, `block > 0`,
    /// `burst ≥ block`, `deadline > 0`.
    BadClass,
    /// Unknown [`TenantId`].
    UnknownTenant,
    /// Unknown [`ClassId`].
    UnknownClass,
    /// Attachment stage index out of range for the pipeline.
    BadAttach,
    /// [`AdmissionEngine::depart`] for a flow that is not resident.
    NoSuchFlow,
    /// [`AdmissionEngine::set_remote`] on a tenant that already has a
    /// remote pipeline, or a remote-path operation without one.
    RemoteConfig,
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::InvalidPipeline(e) => write!(f, "invalid pipeline: {e}"),
            AdmitError::UnsupportedService(s) => {
                write!(f, "stage {s}: service curve is not rate-latency")
            }
            AdmitError::BudgetInfeasible => {
                write!(f, "backlog budget below the zero-load backlog bound")
            }
            AdmitError::BadClass => write!(
                f,
                "flow class must satisfy rate > 0, block > 0, burst >= block, deadline > 0"
            ),
            AdmitError::UnknownTenant => write!(f, "unknown tenant id"),
            AdmitError::UnknownClass => write!(f, "unknown class id"),
            AdmitError::BadAttach => write!(f, "attachment stage out of range"),
            AdmitError::NoSuchFlow => write!(f, "no resident flow with that identity"),
            AdmitError::RemoteConfig => write!(f, "remote pipeline configuration conflict"),
        }
    }
}

impl std::error::Error for AdmitError {}

//! Max-plus algebra: the dual operators of §2.
//!
//! The paper introduces network calculus as resting on *both* the
//! min-plus and max-plus algebras ("in max-plus algebra, addition is
//! replaced by the supremum and, once again, multiplication is replaced
//! with addition"). Max-plus convolution composes *lower* bounds:
//! where a (min-plus) arrival curve `α` caps how much data can arrive,
//! a lower arrival curve `λ` guarantees how much *must* arrive, and a
//! maximum service curve `γ` composes with it by max-plus convolution
//! to give guaranteed minimum progress — the tool behind best-case
//! latency and minimum-throughput analysis.
//!
//! ```text
//! (f ⊗̄ g)(t) = sup_{0 ≤ s ≤ t} { f(s) + g(t − s) }     (max-plus conv)
//! (f ⊘̄ g)(t) = inf_{u ≥ 0}    { f(t + u) − g(u) }     (max-plus deconv)
//! ```
//!
//! The implementation mirrors the min-plus operators: candidate
//! breakpoints from Minkowski sums/differences, exact per-interval
//! upper/lower envelopes of affine strategies.

use crate::curve::pwl::{Breakpoint, Curve};
use crate::num::{Rat, Value};

use super::conv::push_line;
use super::envelope::{lower_envelope, upper_envelope, Line};

/// Exact max-plus convolution `sup_{0≤s≤t} f(s) + g(t−s)` of two
/// wide-sense increasing curves.
///
/// The result dominates both operands shifted by the other's origin
/// value; for curves with `f(0) = g(0) = 0` it dominates `max(f, g)`.
pub fn max_plus_conv(f: &Curve, g: &Curve) -> Curve {
    debug_assert!(f.is_wide_sense_increasing());
    debug_assert!(g.is_wide_sense_increasing());

    let mut ts: Vec<Rat> = Vec::with_capacity(f.len() * g.len());
    for bf in f.breakpoints() {
        for bg in g.breakpoints() {
            ts.push(bf.x + bg.x);
        }
    }
    ts.sort_unstable();
    ts.dedup();

    let mut bps: Vec<Breakpoint> = Vec::with_capacity(ts.len());
    for (k, &a) in ts.iter().enumerate() {
        let v = max_plus_conv_at(f, g, a);
        let b = ts.get(k + 1).copied();
        match strategy_lines(f, g, a, b) {
            None => {
                bps.push(Breakpoint {
                    x: a,
                    v,
                    v_right: Value::Infinity,
                    slope: Rat::ZERO,
                });
            }
            Some(lines) => {
                let env = upper_envelope(&lines, b.map(|b| b - a));
                bps.push(Breakpoint {
                    x: a,
                    v,
                    v_right: Value::finite(env[0].value),
                    slope: env[0].slope,
                });
                for piece in &env[1..] {
                    bps.push(Breakpoint::cont(
                        a + piece.start,
                        Value::finite(piece.value),
                        piece.slope,
                    ));
                }
            }
        }
    }
    Curve::from_breakpoints_unchecked(bps)
}

/// Exact value of the max-plus convolution at `t`.
pub fn max_plus_conv_at(f: &Curve, g: &Curve, t: Rat) -> Value {
    debug_assert!(!t.is_negative());
    let mut grid: Vec<Rat> = vec![Rat::ZERO, t];
    for bf in f.breakpoints() {
        if bf.x <= t {
            grid.push(bf.x);
        }
    }
    for bg in g.breakpoints() {
        let s = t - bg.x;
        if !s.is_negative() {
            grid.push(s);
        }
    }
    grid.sort_unstable();
    grid.dedup();

    let mut best = Value::NegInfinity;
    for &s in &grid {
        let u = t - s;
        best = best.max(f.eval(s) + g.eval(u));
        if s < t {
            best = best.max(f.eval_right(s) + g.eval_left(u));
        }
        if s.is_positive() {
            best = best.max(f.eval_left(s) + g.eval_right(u));
        }
    }
    best
}

/// Affine strategies on `(a, b)` — same pinning argument as the
/// min-plus case, but keeping the *largest* one-sided values because we
/// take a supremum.
fn strategy_lines(f: &Curve, g: &Curve, a: Rat, b: Option<Rat>) -> Option<Vec<Line>> {
    let (m1, m2) = match b {
        Some(b) => {
            let d = (b - a) / Rat::int(3);
            (a + d, a + d + d)
        }
        None => (a + Rat::ONE, a + Rat::int(2)),
    };
    let mut lines = Vec::new();
    let mut infinite = false;

    for bf in f.breakpoints() {
        if bf.x > a {
            continue;
        }
        let mut k = bf.v.max(bf.v_right);
        if bf.x.is_positive() {
            k = k.max(f.eval_left(bf.x));
        }
        if k.is_infinite() {
            infinite = true;
            break;
        }
        if g.eval(m1 - bf.x).is_infinite() {
            infinite = true;
            break;
        }
        push_line(&mut lines, m1, m2, a, |m| k + g.eval(m - bf.x));
    }
    if !infinite {
        for bg in g.breakpoints() {
            if bg.x > a {
                continue;
            }
            let mut l = bg.v.max(bg.v_right);
            if bg.x.is_positive() {
                l = l.max(g.eval_left(bg.x));
            }
            if l.is_infinite() {
                infinite = true;
                break;
            }
            if f.eval(m1 - bg.x).is_infinite() {
                infinite = true;
                break;
            }
            push_line(&mut lines, m1, m2, a, |m| f.eval(m - bg.x) + l);
        }
    }
    if infinite || lines.is_empty() {
        None
    } else {
        Some(lines)
    }
}

/// Exact max-plus deconvolution `inf_{u ≥ 0} f(t+u) − g(u)`.
///
/// For a flow with guaranteed minimum input `λ` through a server with
/// guaranteed service `β`, `λ ⊘̄ β`-style expressions lower-bound the
/// output; points where `g` is infinite dominate the infimum and yield
/// `-∞`-free results because `g` is increasing from `g(0)`.
pub fn max_plus_deconv(f: &Curve, g: &Curve) -> Curve {
    debug_assert!(f.is_wide_sense_increasing());
    debug_assert!(g.is_wide_sense_increasing());

    // If g eventually outgrows f the infimum diverges to -inf; for the
    // curve types used here (both finite rates) we require the
    // stability condition dual to min-plus deconvolution.
    if let (Value::Finite(rf), Value::Finite(rg)) = (f.ultimate_slope(), g.ultimate_slope()) {
        assert!(
            rf >= rg,
            "max-plus deconvolution diverges to -inf when rate(f) < rate(g)"
        );
    }
    let u_tail = f.last_breakpoint_x().max(g.last_breakpoint_x()) + Rat::ONE;

    let mut ts: Vec<Rat> = vec![Rat::ZERO];
    for bf in f.breakpoints() {
        for bg in g.breakpoints() {
            let d = bf.x - bg.x;
            if d.is_positive() {
                ts.push(d);
            }
        }
    }
    ts.sort_unstable();
    ts.dedup();

    let mut bps: Vec<Breakpoint> = Vec::with_capacity(ts.len());
    for (k, &a) in ts.iter().enumerate() {
        let v = max_plus_deconv_at(f, g, a);
        let b = ts.get(k + 1).copied();
        let lines = deconv_strategy_lines(f, g, a, b, u_tail);
        match lines {
            None => bps.push(Breakpoint {
                x: a,
                v,
                v_right: Value::Infinity,
                slope: Rat::ZERO,
            }),
            Some(lines) => {
                let env = lower_envelope(&lines, b.map(|b| b - a));
                bps.push(Breakpoint {
                    x: a,
                    v,
                    v_right: Value::finite(env[0].value),
                    slope: env[0].slope,
                });
                for piece in &env[1..] {
                    bps.push(Breakpoint::cont(
                        a + piece.start,
                        Value::finite(piece.value),
                        piece.slope,
                    ));
                }
            }
        }
    }
    Curve::from_breakpoints_unchecked(bps)
}

/// Exact value of the max-plus deconvolution at `t`.
pub fn max_plus_deconv_at(f: &Curve, g: &Curve, t: Rat) -> Value {
    let u_tail = f.last_breakpoint_x().max(g.last_breakpoint_x()) + Rat::ONE;
    let mut grid: Vec<Rat> = vec![Rat::ZERO, u_tail];
    for bg in g.breakpoints() {
        grid.push(bg.x);
    }
    for bf in f.breakpoints() {
        let u = bf.x - t;
        if !u.is_negative() {
            grid.push(u);
        }
    }
    grid.sort_unstable();
    grid.dedup();

    let mut best = Value::Infinity;
    for &u in &grid {
        let s = t + u;
        if !g.eval(u).is_infinite() {
            best = best.min(f.eval(s) - g.eval(u));
        }
        if !g.eval_right(u).is_infinite() && !f.eval_right(s).is_infinite() {
            best = best.min(f.eval_right(s) - g.eval_right(u));
        }
        if u.is_positive() && !g.eval_left(u).is_infinite() && !f.eval_left(s).is_infinite() {
            best = best.min(f.eval_left(s) - g.eval_left(u));
        }
    }
    best
}

/// Strategies for the deconvolution infimum: smallest one-sided values.
fn deconv_strategy_lines(
    f: &Curve,
    g: &Curve,
    a: Rat,
    b: Option<Rat>,
    u_tail: Rat,
) -> Option<Vec<Line>> {
    let (m1, m2) = match b {
        Some(b) => {
            let d = (b - a) / Rat::int(3);
            (a + d, a + d + d)
        }
        None => (a + Rat::ONE, a + Rat::int(2)),
    };
    let mut lines = Vec::new();

    for bg in g.breakpoints() {
        let mut l = bg.v.min(bg.v_right);
        if bg.x.is_positive() {
            l = l.min(g.eval_left(bg.x));
        }
        let Some(lf) = l.as_finite() else { continue };
        if f.eval(m1 + bg.x).is_infinite() {
            continue;
        }
        push_line(&mut lines, m1, m2, a, |m| {
            f.eval(m + bg.x) - Value::finite(lf)
        });
    }
    for bf in f.breakpoints() {
        let qualifies = match b {
            Some(b) => bf.x >= b,
            None => false,
        };
        if !qualifies {
            continue;
        }
        let mut k = bf.v.min(bf.v_right);
        if bf.x.is_positive() {
            k = k.min(f.eval_left(bf.x));
        }
        let Some(kf) = k.as_finite() else { continue };
        if g.eval(bf.x - m1).is_infinite() {
            continue;
        }
        push_line(&mut lines, m1, m2, a, |m| {
            Value::finite(kf) - g.eval(bf.x - m)
        });
    }
    if !g.eval(u_tail).is_infinite() && !f.eval(m1 + u_tail).is_infinite() {
        let gu = g.eval(u_tail);
        push_line(&mut lines, m1, m2, a, |m| f.eval(m + u_tail) - gu);
    }

    if lines.is_empty() {
        None
    } else {
        Some(lines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::shapes;
    use crate::num::rat;

    fn lb(r: i64, b: i64) -> Curve {
        shapes::leaky_bucket(Rat::int(r), Rat::int(b))
    }
    fn rl(r: i64, t: i64) -> Curve {
        shapes::rate_latency(Rat::int(r), Rat::int(t))
    }

    #[test]
    fn conv_of_rates_adds_nothing_weird() {
        // For pure-rate curves, sup_s r1·s + r2·(t−s) = max(r1, r2)·t.
        let f = shapes::constant_rate(Rat::int(2));
        let g = shapes::constant_rate(Rat::int(5));
        let c = max_plus_conv(&f, &g);
        for n in 0..20 {
            let t = rat(n, 2);
            assert_eq!(c.eval(t), Value::finite(Rat::int(5) * t));
        }
    }

    #[test]
    fn conv_dominates_operands() {
        let f = lb(2, 5);
        let g = rl(3, 4);
        let c = max_plus_conv(&f, &g);
        for n in 0..30 {
            let t = rat(n, 2);
            assert!(c.eval(t) >= f.eval(t));
            assert!(c.eval(t) >= g.eval(t));
        }
        assert!(c.is_wide_sense_increasing());
    }

    #[test]
    fn conv_commutative() {
        let f = lb(2, 5).min(&shapes::constant_rate(Rat::int(6)));
        let g = rl(3, 2);
        assert_eq!(max_plus_conv(&f, &g), max_plus_conv(&g, &f));
    }

    #[test]
    fn conv_matches_pointwise_sup() {
        let f = lb(2, 5);
        let g = rl(3, 4).add(&rl(1, 1));
        let c = max_plus_conv(&f, &g);
        for n in 0..40 {
            let t = rat(n, 3);
            let exact = max_plus_conv_at(&f, &g, t);
            assert_eq!(c.eval(t), exact, "t = {t:?}");
            for k in 0..=24 {
                let s = t * rat(k, 24);
                assert!(exact >= f.eval(s) + g.eval(t - s));
            }
        }
    }

    #[test]
    fn deconv_matches_pointwise_inf() {
        let f = lb(4, 5);
        let g = rl(3, 2);
        let c = max_plus_deconv(&f, &g);
        for n in 0..30 {
            let t = rat(n, 2);
            let exact = max_plus_deconv_at(&f, &g, t);
            assert_eq!(c.eval(t), exact, "t = {t:?}");
            for k in 0..=40 {
                let u = rat(k, 4);
                if g.eval(u).is_infinite() {
                    continue;
                }
                assert!(exact <= f.eval(t + u) - g.eval(u));
            }
        }
    }

    #[test]
    fn min_progress_through_server() {
        // A flow guaranteed to deliver at least λ(t) = 4(t−1)⁺ against
        // a capacity envelope γ(t) = 3t: the max-plus deconvolution
        // lower-bounds the residual progress; at t = 0 it is the worst
        // shortfall, attained at u = 1 (value −3).
        let lambda = rl(4, 1);
        let gamma = shapes::constant_rate(Rat::int(3));
        let d = max_plus_deconv(&lambda, &gamma);
        assert_eq!(d.eval(Rat::ZERO), Value::from(-3));
    }

    #[test]
    #[should_panic(expected = "diverges")]
    fn deconv_rejects_divergent_pair() {
        let f = shapes::constant_rate(Rat::int(1));
        let g = shapes::constant_rate(Rat::int(5));
        let _ = max_plus_deconv(&f, &g);
    }

    #[test]
    fn duality_with_min_plus_on_affine() {
        // For concave f and convex g the max-plus conv of (-g) mirrors
        // min-plus; spot-check the affine identity
        // (f ⊗̄ f)(t) = f(t) + f(0⁺) burst doubling for leaky buckets.
        let f = lb(2, 5);
        let c = max_plus_conv(&f, &f);
        // sup_s f(s) + f(t−s): both endpoints contribute burst once for
        // s in the interior: 2t + 10 for t > 0.
        assert_eq!(c.eval(Rat::int(3)), Value::from(2 * 3 + 10));
        assert_eq!(c.eval(Rat::ZERO), Value::ZERO);
    }
}

//! Simulation outputs: the quantities the paper reads off its
//! discrete-event simulator for Tables 1/3 and Figures 4/10.

use serde::Serialize;

/// Per-node simulation statistics.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct NodeStats {
    /// Stage name.
    pub name: String,
    /// Fraction of the run the node spent executing jobs (the
    /// bottleneck sits near 1.0).
    pub utilization: f64,
    /// Jobs completed.
    pub jobs: u64,
    /// Local bytes consumed.
    pub bytes_in: u64,
    /// Time-averaged input-queue occupancy, input-referred bytes.
    pub avg_queue: f64,
}

/// Result of one pipeline simulation run.
///
/// Derives `PartialEq` so the engine-equivalence property tests can
/// assert whole results bit-identical (f64 fields compare by value; the
/// engines are required to produce them through identical operation
/// sequences).
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct SimResult {
    /// Total input-referred bytes that left the pipeline.
    pub bytes_out: f64,
    /// Time of the last output event, seconds.
    pub makespan: f64,
    /// Mean throughput `bytes_out / makespan`, input-referred bytes/s
    /// (the paper's "discrete-event simulation model" table rows).
    pub throughput: f64,
    /// Steady-state throughput: the cumulative-output slope between the
    /// 10% and 90% levels, excluding pipeline fill and drain. Falls
    /// back to `throughput` when no trace was recorded.
    pub steady_throughput: f64,
    /// Shortest observed end-to-end delay, seconds (paper: "the
    /// shortest delay being …").
    pub delay_min: f64,
    /// Longest observed end-to-end delay, seconds (paper: "the longest
    /// observed delay in the simulator is …").
    pub delay_max: f64,
    /// Mean end-to-end delay, seconds.
    pub delay_mean: f64,
    /// Peak data resident anywhere in the system, input-referred bytes
    /// (paper: "maximum amount of data in system backlog accounting for
    /// all nodes and queues").
    pub peak_backlog: f64,
    /// Peak occupancy of each inter-stage queue, input-referred bytes.
    pub per_queue_peak: Vec<(String, f64)>,
    /// Input bytes still stuck in queues at the end (non-zero when the
    /// total volume is not a multiple of every job size).
    pub residual: f64,
    /// Cumulative input trace `(t, bytes)` (empty unless tracing).
    pub trace_in: Vec<(f64, f64)>,
    /// Cumulative output trace `(t, bytes)` — the stairstep curves of
    /// Figures 4 and 10 (empty unless tracing).
    pub trace_out: Vec<(f64, f64)>,
    /// Per-node utilization/throughput statistics.
    pub per_node: Vec<NodeStats>,
    /// Events executed by the kernel.
    pub events: u64,
    /// Jobs discarded by `Drop`-policy stages during outage windows
    /// (zero without fault injection).
    pub dropped_jobs: u64,
    /// Input-referred bytes those dropped jobs carried. Dropped data
    /// counts as "left the pipeline" for backlog accounting but is not
    /// included in `bytes_out`.
    pub dropped_bytes: f64,
    /// Execution attempts re-run by `Retry`-policy stages after an
    /// outage-window failure (zero without fault injection).
    pub retries: u64,
}

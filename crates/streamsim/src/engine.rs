//! The streaming-pipeline simulation: §4.2 of the paper.
//!
//! Mirrors the paper's SimPy model: "Each node is given a maximum and
//! minimum execution time, a data packet size to consume, and data
//! packet size to emit when the execution time has completed. Discrete
//! events in the simulation model include arrival of a data packet at a
//! node, initiation of execution of that data packet when the node
//! becomes free, and departure of the data packet from the node. The
//! time chosen for execution is chosen from a uniform random
//! distribution using the minimum and maximum times as bounds."
//!
//! Extensions beyond the paper's simulator (both flagged as its
//! shortfalls/future work): optional *bounded* inter-stage queues with
//! blocking backpressure, and exact residual accounting.
//!
//! All stage-local byte quantities are integers; statistics are
//! reported input-referred (normalized) so they are directly comparable
//! with the network-calculus model and the paper's tables.
//!
//! ## The thinned event loop
//!
//! This module is the *stochastic* engine (Uniform/Exponential service
//! models); `ServiceModel::Deterministic` dispatches to the integer-tick
//! engine in [`crate::det`], which adds cycle-jump fast-forward.
//!
//! The first generation of this engine (preserved verbatim as
//! [`crate::reference::simulate_reference`]) pushed every source
//! emission and job completion through the general `nc-des` calendar:
//! a heap/scan push, a pop, and a type-erased closure dispatch per
//! event, plus an `input_steps` vector and a delay tally growing one
//! entry per event — O(events) time constants and O(events) memory.
//! Stochastic runs cannot skip events (every service draw matters), so
//! this engine instead *thins* what each event costs:
//!
//! * **Slot agenda instead of a calendar.** The model has at most one
//!   pending event per process — the next source emission plus one
//!   completion per busy stage — so the pending set lives in a dense
//!   [`SlotAgenda`]: arming is a store, popping is a scan over
//!   `n + 1` slots, and dispatch is a direct `match`. No closure
//!   erasure, no heap sift. Source emissions are generated lazily from
//!   the armed slot rather than materialized as calendar entries.
//! * **Identical event order, identical RNG order.** Every point where
//!   the reference engine consumed a calendar sequence number, this
//!   engine arms a slot and consumes one from the same monotone
//!   counter, so `(time, seq)` pop order — and therefore the service
//!   draw order and every f64 accumulation order — is exactly the
//!   reference's. The `prop_engine_equiv` property test asserts
//!   bit-identical [`SimResult`]s across random pipelines and seeds.
//! * **Constant-memory statistics.** Delays go to a
//!   [`StreamingTally`] (running moments, no samples) and the input
//!   stairstep lives in a [`StepRing`] pruned at the monotone delay
//!   cursor, so with `trace` off, memory is O(data in flight), not
//!   O(events). With `trace` on, nothing is pruned and the full
//!   stairsteps are returned, exactly as before.

use nc_core::pipeline::Pipeline;
use nc_des::{ByteQueue, Dist, SlotAgenda, Span, StreamingTally, Time, TimeWeighted};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::config::{derive_params, NodeParams, ServiceModel, SimConfig};
use crate::faults::FaultRt;
use crate::result::SimResult;
use crate::ring::StepRing;

/// Agenda slot of the source process; node `i` finishes on slot `i + 1`.
const SRC: usize = 0;

struct World {
    rng: ChaCha8Rng,
    params: Vec<NodeParams>,
    /// `queues[i]` feeds node `i` (local bytes of node `i`'s input).
    queues: Vec<ByteQueue>,
    busy: Vec<bool>,
    started: Vec<bool>,
    /// Accumulated service time per node (for utilization).
    busy_time: Vec<f64>,
    /// Jobs completed per node.
    jobs_done: Vec<u64>,
    service_model: ServiceModel,
    /// A finished job waiting for downstream space (backpressure).
    pending_out: Vec<Option<u64>>,

    // Fault injection (`None` = the exact fault-free code path; see
    // `crate::faults` for the zero-fault bit-identity argument).
    faults: Option<FaultRt>,
    /// Consecutive failed attempts of the in-flight job, per stage.
    cur_retry: Vec<u32>,
    /// Last sampled execution time per stage (re-run verbatim on retry).
    last_exec: Vec<f64>,
    dropped_jobs: u64,
    /// Input-referred bytes carried by dropped jobs.
    dropped_norm: f64,
    retries: u64,

    // Source.
    src_remaining: u64,
    src_chunk: u64,
    src_interval: f64,
    src_blocked: bool,

    // Input-referred accounting.
    sink_norm: f64,
    cum_in: f64,
    cum_out: f64,
    in_system: TimeWeighted,
    delays: StreamingTally,
    /// (t, cum_in) steps, pruned below the delay cursor when not
    /// tracing.
    input_steps: StepRing<(f64, f64)>,
    /// Delay-lookup cursor (absolute index): the virtual-delay level is
    /// non-decreasing, so each lookup resumes where the last ended.
    delay_cursor: usize,
    trace: bool,
    trace_out: Vec<(f64, f64)>,
    t_last_out: f64,

    // The thinned event loop.
    agenda: SlotAgenda<Time>,
    now: Time,
    events: u64,
}

impl World {
    fn n(&self) -> usize {
        self.params.len()
    }
}

/// Reusable simulation storage for Monte-Carlo replication.
///
/// The engine's only growable buffers — the input stairstep ring, the
/// output trace, and the agenda slots — are handed from one replication
/// to the next, so a driver looping [`simulate_in`] over seeds stops
/// allocating once the first run has grown them to the workload's
/// high-water mark.
#[derive(Default)]
pub struct SimArena {
    ring: StepRing<(f64, f64)>,
    trace_out: Vec<(f64, f64)>,
    agenda: SlotAgenda<Time>,
}

impl SimArena {
    /// An empty arena.
    pub fn new() -> SimArena {
        SimArena::default()
    }
}

/// Run the paper's discrete-event simulation of `pipeline`.
///
/// # Panics
/// Panics if the pipeline is invalid (see
/// [`Pipeline::validate`]) or the configuration is inconsistent.
pub fn simulate(pipeline: &Pipeline, config: &SimConfig) -> SimResult {
    simulate_in(&mut SimArena::new(), pipeline, config)
}

/// As [`simulate`], reusing `arena`'s buffers across calls.
pub fn simulate_in(arena: &mut SimArena, pipeline: &Pipeline, config: &SimConfig) -> SimResult {
    if config.service_model == ServiceModel::Deterministic {
        // Constant service times consume no randomness: route to the
        // exact integer-tick engine, which can also fast-forward
        // periodic steady states (see `crate::det`).
        return crate::det::simulate_det(pipeline, config);
    }
    if let Some(w) = config.workers {
        if crate::par::supported(config) {
            // Stage-parallel conservative PDES (DESIGN.md §12):
            // bit-identical across worker counts, different sample
            // paths than this engine (per-stage RNG streams). Bounded
            // queues fall through to the sequential path below.
            return crate::par::simulate_par(pipeline, config, w);
        }
    }
    pipeline
        .validate()
        .unwrap_or_else(|e| panic!("simulate: invalid pipeline: {e}"));
    let mut params = derive_params(pipeline);
    let n = params.len();
    let faults = config.faults.as_ref().and_then(|fs| {
        fs.validate(n)
            .unwrap_or_else(|e| panic!("simulate: invalid fault schedule: {e}"));
        FaultRt::build(fs, n)
    });
    if let Some(fr) = &faults {
        // Derates scale the service-time parameters before sampling, so
        // every engine draws from identically scaled distributions.
        fr.apply_derates(&mut params);
    }

    let src_chunk = config.source_chunk.unwrap_or(params[0].job_in).max(1);
    let src_rate = pipeline.source.rate.to_f64();
    assert!(src_rate > 0.0);
    let sink_norm = {
        let last = &params[n - 1];
        last.norm_in * last.job_in as f64 / last.job_out as f64
    };

    let queues = build_queues(config, &params, src_chunk);

    let mut ring = std::mem::take(&mut arena.ring);
    ring.clear();
    let mut trace_out = std::mem::take(&mut arena.trace_out);
    trace_out.clear();
    let mut agenda = std::mem::take(&mut arena.agenda);
    agenda.reset(n + 1);

    let mut w = World {
        rng: ChaCha8Rng::seed_from_u64(config.seed),
        params,
        queues,
        busy: vec![false; n],
        started: vec![false; n],
        busy_time: vec![0.0; n],
        jobs_done: vec![0u64; n],
        service_model: config.service_model,
        pending_out: vec![None; n],
        faults,
        cur_retry: vec![0u32; n],
        last_exec: vec![0.0; n],
        dropped_jobs: 0,
        dropped_norm: 0.0,
        retries: 0,
        src_remaining: config.total_input,
        src_chunk,
        src_interval: src_chunk as f64 / src_rate,
        src_blocked: false,
        sink_norm,
        cum_in: 0.0,
        cum_out: 0.0,
        in_system: TimeWeighted::new(Time::ZERO, 0.0),
        delays: StreamingTally::new(),
        input_steps: ring,
        delay_cursor: 0,
        trace: config.trace,
        trace_out,
        t_last_out: 0.0,
        agenda,
        now: Time::ZERO,
        events: 0,
    };

    // Mirror of the reference engine's `schedule_at(ZERO, source_emit)`:
    // consumes sequence number 0.
    w.agenda.arm(SRC, Time::ZERO);
    while let Some((slot, t)) = w.agenda.pop() {
        w.now = t;
        w.events += 1;
        if slot == SRC {
            w.source_emit();
        } else {
            w.finish(slot - 1);
        }
    }

    let result = assemble(&w);
    // Return the buffers to the arena for the next replication.
    arena.ring = std::mem::take(&mut w.input_steps);
    arena.trace_out = std::mem::take(&mut w.trace_out);
    arena.agenda = std::mem::take(&mut w.agenda);
    result
}

/// Resolve and validate the per-queue capacities: each queue must admit
/// both its node's job and whole upstream blocks or the pipeline
/// deadlocks. Shared with the deterministic engine.
pub(crate) fn queue_caps(
    config: &SimConfig,
    params: &[NodeParams],
    src_chunk: u64,
) -> Vec<Option<u64>> {
    let n = params.len();
    if let Some(caps) = &config.queue_capacities {
        assert_eq!(
            caps.len(),
            n,
            "queue_capacities must have one entry per node"
        );
    }
    (0..n)
        .map(|i| {
            let cap = config
                .queue_capacities
                .as_ref()
                .map(|caps| caps[i])
                .or(config.queue_capacity);
            if let Some(c) = cap {
                assert!(
                    c >= params[i].job_in,
                    "queue for node '{}' smaller than its job size",
                    params[i].name
                );
                let upstream = if i == 0 {
                    src_chunk
                } else {
                    params[i - 1].job_out
                };
                assert!(
                    c >= upstream,
                    "queue for node '{}' smaller than the upstream block ({c} < {upstream})",
                    params[i].name
                );
            }
            cap
        })
        .collect()
}

/// Build the inter-stage queues from the validated capacities.
fn build_queues(config: &SimConfig, params: &[NodeParams], src_chunk: u64) -> Vec<ByteQueue> {
    queue_caps(config, params, src_chunk)
        .into_iter()
        .map(|cap| match cap {
            None => ByteQueue::unbounded(Time::ZERO),
            Some(c) => ByteQueue::bounded(Time::ZERO, c),
        })
        .collect()
}

fn assemble(w: &World) -> SimResult {
    let bytes_out = w.cum_out;
    let makespan = w.t_last_out;
    let residual: f64 = w
        .queues
        .iter()
        .zip(&w.params)
        .map(|(q, p)| q.level() as f64 * p.norm_in)
        .sum();
    let per_queue_peak = w
        .queues
        .iter()
        .zip(&w.params)
        .map(|(q, p)| (p.name.clone(), q.peak() * p.norm_in))
        .collect();
    let horizon = w.now.as_secs().max(f64::MIN_POSITIVE);
    let per_node = w
        .params
        .iter()
        .enumerate()
        .map(|(i, p)| crate::result::NodeStats {
            name: p.name.clone(),
            utilization: (w.busy_time[i] / horizon).min(1.0),
            jobs: w.jobs_done[i],
            bytes_in: w.jobs_done[i] * p.job_in,
            avg_queue: w.queues[i].avg_occupancy(w.now) * p.norm_in,
        })
        .collect();
    let throughput = if makespan > 0.0 {
        bytes_out / makespan
    } else {
        0.0
    };
    SimResult {
        bytes_out,
        makespan,
        throughput,
        steady_throughput: steady_slope(&w.trace_out).unwrap_or(throughput),
        delay_min: w.delays.min().unwrap_or(0.0),
        delay_max: w.delays.max().unwrap_or(0.0),
        delay_mean: w.delays.mean().unwrap_or(0.0),
        peak_backlog: w.in_system.max(),
        per_queue_peak,
        residual,
        trace_in: if w.trace {
            w.input_steps.iter().collect()
        } else {
            Vec::new()
        },
        trace_out: w.trace_out.clone(),
        per_node,
        events: w.events,
        dropped_jobs: w.dropped_jobs,
        dropped_bytes: w.dropped_norm,
        retries: w.retries,
    }
}

impl World {
    /// Source event: emit one chunk into the first queue (or block on a
    /// bounded queue) and re-arm.
    fn source_emit(&mut self) {
        let now = self.now;
        if self.src_remaining == 0 {
            return;
        }
        let chunk = self.src_chunk.min(self.src_remaining);
        if !self.queues[0].can_put(chunk) {
            // Bounded first queue is full: the source stalls until
            // space appears (resume_source will restart it).
            self.src_blocked = true;
            return;
        }
        self.queues[0].put(now, chunk);
        self.src_remaining -= chunk;
        self.cum_in += chunk as f64; // norm_in[0] == 1 by construction
        self.in_system.add(now, chunk as f64);
        self.input_steps.push((now.as_secs(), self.cum_in));
        if self.src_remaining > 0 {
            let at = now + Span::secs(self.src_interval);
            self.agenda.arm(SRC, at);
        }
        self.try_start(0);
    }

    // The wake protocol. The seed simulator re-ran a full O(n) fixpoint
    // scan (deliver / start / resume-source until nothing changed) on
    // every event; at BITW scale that scan dominated per-event cost.
    // These targeted wakes reach the same fixpoint by re-examining
    // exactly the nodes whose enabling conditions the event could have
    // flipped:
    //
    //   * queue `i` gained bytes, or `pending_out[i]` cleared → `try_start(i)`
    //   * node `i` went idle with output, or queue `i+1` freed → `try_deliver(i)`
    //   * queue 0 freed space → `resume_source`
    //
    // Deadlock-freedom is preserved because every byte movement still
    // wakes every consumer it could unblock — the wakes are just routed
    // instead of rediscovered by scanning. The invariant between events
    // is unchanged: no delivery, start, or source resume is possible.

    /// Start node `i` if it is idle, unblocked, and has a full job
    /// queued. A successful start frees input-queue space, which may
    /// unblock the upstream delivery (or the stalled source when
    /// `i == 0`).
    fn try_start(&mut self, i: usize) {
        let now = self.now;
        // Drop-policy outage: any job that would *start* inside the
        // window is consumed and discarded instead, and the freed queue
        // space wakes upstream exactly as a real start would.
        while let Some(fr) = &self.faults {
            if !(fr.drops(i) && fr.in_outage(i, now.as_secs())) {
                break;
            }
            let job_in = self.params[i].job_in;
            if self.busy[i] || self.pending_out[i].is_some() || !self.queues[i].can_get(job_in) {
                break;
            }
            self.queues[i].get(now, job_in);
            let dn = job_in as f64 * self.params[i].norm_in;
            self.dropped_jobs += 1;
            self.dropped_norm += dn;
            self.in_system.add(now, -dn);
            if i == 0 {
                self.resume_source();
            } else {
                self.try_deliver(i - 1);
            }
        }
        let p = &self.params[i];
        if self.busy[i] || self.pending_out[i].is_some() || !self.queues[i].can_get(p.job_in) {
            return;
        }
        self.queues[i].get(now, p.job_in);
        self.busy[i] = true;
        let startup = if self.started[i] {
            0.0
        } else {
            self.started[i] = true;
            p.startup
        };
        let dist = match self.service_model {
            ServiceModel::Uniform => Dist::Uniform {
                lo: p.exec_min,
                hi: p.exec_max,
            },
            ServiceModel::Exponential => Dist::Exponential { mean: p.exec_avg },
            ServiceModel::Deterministic => Dist::Constant(p.exec_avg),
        };
        let exec = dist.sample(&mut self.rng);
        self.busy_time[i] += exec;
        // Occupancy = service time, extended across any freeze window
        // (periodic stall, Block-policy outage) it straddles. With no
        // faults the span is exactly `startup + exec`.
        let span = match &self.faults {
            None => startup + exec,
            Some(fr) => {
                self.last_exec[i] = exec;
                fr.extend(i, now.as_secs(), startup + exec)
            }
        };
        self.agenda.arm(i + 1, now + Span::secs(span));
        if i == 0 {
            self.resume_source();
        } else {
            self.try_deliver(i - 1);
        }
    }

    /// Deliver node `i`'s pending output downstream (or to the sink) if
    /// space allows, then wake the two nodes the movement affects: `i`
    /// (its output slot cleared) and `i + 1` (new input) — in that
    /// order, matching the full scan's ascending start order at each
    /// wake. Events landing on the exact same timestamp may still
    /// interleave differently than a global rescan would; all
    /// observables stay within the tolerance/containment bounds the
    /// tests assert.
    fn try_deliver(&mut self, i: usize) {
        let Some(bytes) = self.pending_out[i] else {
            return;
        };
        if i + 1 == self.n() {
            self.deliver_to_sink(bytes);
            self.pending_out[i] = None;
            self.try_start(i);
        } else if self.queues[i + 1].can_put(bytes) {
            let now = self.now;
            self.queues[i + 1].put(now, bytes);
            self.pending_out[i] = None;
            self.try_start(i);
            self.try_start(i + 1);
        }
    }

    /// Restart a source stalled on a full first queue once space
    /// appears. Runs inline within the unblocking event — not as a new
    /// event — exactly as in the reference engine, so no sequence
    /// number is consumed for the resumed emission itself.
    fn resume_source(&mut self) {
        if self.src_blocked && self.queues[0].can_put(self.src_chunk) {
            self.src_blocked = false;
            self.source_emit();
        }
    }

    /// Retry-policy outage check at completion time: an attempt whose
    /// completion lands strictly inside an outage window fails and is
    /// re-executed after a capped exponential backoff. Curtailed
    /// (frozen) completions land *at* window ends — outside the
    /// half-open window — so Block semantics never trip this. Returns
    /// `true` when the completion was swallowed by a retry.
    fn try_retry(&mut self, i: usize) -> bool {
        let Some(fr) = &self.faults else { return false };
        let Some((base, cap)) = fr.retry_params(i) else {
            return false;
        };
        let t = self.now.as_secs();
        if !fr.in_outage(i, t) {
            self.cur_retry[i] = 0;
            return false;
        }
        let k = self.cur_retry[i].min(30);
        let backoff = (base * (1u64 << k) as f64).min(cap);
        self.cur_retry[i] = self.cur_retry[i].saturating_add(1);
        self.retries += 1;
        // The same execution is re-run in full (work done twice).
        let exec = self.last_exec[i];
        self.busy_time[i] += exec;
        let span = backoff + fr.extend(i, t + backoff, exec);
        self.agenda.arm(i + 1, self.now + Span::secs(span));
        true
    }

    /// Node `i` finished a job: its output becomes pending delivery.
    fn finish(&mut self, i: usize) {
        debug_assert!(self.busy[i]);
        debug_assert!(self.pending_out[i].is_none());
        if self.try_retry(i) {
            return;
        }
        self.busy[i] = false;
        self.jobs_done[i] += 1;
        self.pending_out[i] = Some(self.params[i].job_out);
        self.try_deliver(i);
    }

    /// Final-stage output reaches the sink: record throughput, delay,
    /// and the stairstep trace.
    fn deliver_to_sink(&mut self, local_bytes: u64) {
        let now = self.now;
        let out_norm = local_bytes as f64 * self.sink_norm;
        self.cum_out += out_norm;
        self.in_system.add(now, -out_norm);
        self.t_last_out = now.as_secs();

        // Virtual delay: when did this cumulative level enter the
        // system? The level only ever grows, so the stairstep inverse
        // lookup is a cursor that advances monotonically through
        // `input_steps`.
        // Dropped data "exited" too, so the virtual-delay inverse lookup
        // must skip past it (`+ 0.0` is exact when nothing dropped).
        let level = (self.cum_out + self.dropped_norm).min(self.cum_in);
        debug_assert!(!self.input_steps.is_empty());
        while self.delay_cursor + 1 < self.input_steps.len()
            && self.input_steps.get(self.delay_cursor).1 < level - 1e-9
        {
            self.delay_cursor += 1;
        }
        let t_in = self.input_steps.get(self.delay_cursor).0;
        self.delays.record((now.as_secs() - t_in).max(0.0));

        if self.trace {
            self.trace_out.push((now.as_secs(), self.cum_out));
        } else {
            // Steps behind the (monotone) cursor are dead: drop them so
            // live memory tracks data in flight, not run length.
            self.input_steps.prune_to(self.delay_cursor);
        }
    }
}

/// Slope of the cumulative-output trace between its 10% and 90%
/// levels — the fill/drain-free steady-state rate.
pub(crate) fn steady_slope(trace: &[(f64, f64)]) -> Option<f64> {
    let (_, total) = *trace.last()?;
    if total <= 0.0 || trace.len() < 8 {
        return None;
    }
    let (lo_level, hi_level) = (0.1 * total, 0.9 * total);
    let lo = trace.iter().find(|&&(_, v)| v >= lo_level)?;
    let hi = trace.iter().find(|&&(_, v)| v >= hi_level)?;
    let dt = hi.0 - lo.0;
    if dt <= 0.0 {
        return None;
    }
    Some((hi.1 - lo.1) / dt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_core::num::Rat;
    use nc_core::pipeline::{Node, NodeKind, Source, StageRates};

    fn node(name: &str, rmin: i64, rmax: i64, jin: i64, jout: i64) -> Node {
        Node::new(
            name,
            NodeKind::Compute,
            StageRates::new(Rat::int(rmin), Rat::int((rmin + rmax) / 2), Rat::int(rmax)),
            Rat::ZERO,
            Rat::int(jin),
            Rat::int(jout),
        )
    }

    fn pipeline(rate: i64, nodes: Vec<Node>) -> Pipeline {
        Pipeline::new(
            "test",
            Source {
                rate: Rat::int(rate),
                burst: Rat::int(64),
            },
            nodes,
        )
    }

    fn cfg(total: u64) -> SimConfig {
        SimConfig {
            seed: 1,
            total_input: total,
            source_chunk: Some(64),
            queue_capacity: None,
            queue_capacities: None,
            service_model: ServiceModel::Uniform,
            trace: true,
            fast_forward: true,
            faults: None,
            workers: None,
        }
    }

    #[test]
    fn conserves_volume_identity_pipeline() {
        // One deterministic stage, 1:1 jobs: everything drains.
        let p = pipeline(1000, vec![node("id", 500, 500, 64, 64)]);
        let r = simulate(&p, &cfg(64 * 100));
        assert_eq!(r.bytes_out, 6400.0);
        assert_eq!(r.residual, 0.0);
        assert!(r.events > 0);
    }

    #[test]
    fn throughput_tracks_bottleneck() {
        // Source 1000 B/s feeds a 500 B/s stage: output rate ≈ 500.
        let p = pipeline(1000, vec![node("slow", 500, 500, 64, 64)]);
        let r = simulate(&p, &cfg(64 * 200));
        assert!(
            (r.throughput - 500.0).abs() / 500.0 < 0.05,
            "throughput {} vs 500",
            r.throughput
        );
    }

    #[test]
    fn source_limited_throughput() {
        // Source 300 B/s feeds a 1000 B/s stage: output rate ≈ 300.
        let p = pipeline(300, vec![node("fast", 1000, 1000, 64, 64)]);
        let r = simulate(&p, &cfg(64 * 100));
        assert!(
            (r.throughput - 300.0).abs() / 300.0 < 0.07,
            "throughput {} vs 300",
            r.throughput
        );
    }

    #[test]
    fn job_ratio_volume_conservation() {
        // 4:1 then 1:4 — normalized output equals input.
        let p = pipeline(
            1000,
            vec![
                node("pack", 800, 800, 64, 16),
                node("unpack", 800, 800, 16, 64),
            ],
        );
        let r = simulate(&p, &cfg(64 * 50));
        assert!((r.bytes_out - 3200.0).abs() < 1e-6, "out {}", r.bytes_out);
        assert_eq!(r.residual, 0.0);
    }

    #[test]
    fn delays_positive_and_ordered() {
        let p = pipeline(
            800,
            vec![node("a", 600, 900, 64, 64), node("b", 600, 900, 64, 64)],
        );
        let r = simulate(&p, &cfg(64 * 100));
        assert!(r.delay_min > 0.0);
        assert!(r.delay_min <= r.delay_mean && r.delay_mean <= r.delay_max);
    }

    #[test]
    fn backlog_grows_under_overload() {
        // Overloaded stage: backlog approaches total input.
        let over = pipeline(1000, vec![node("slow", 100, 100, 64, 64)]);
        let under = pipeline(1000, vec![node("fast", 2000, 2000, 64, 64)]);
        let r_over = simulate(&over, &cfg(64 * 50));
        let r_under = simulate(&under, &cfg(64 * 50));
        assert!(r_over.peak_backlog > 4.0 * r_under.peak_backlog);
    }

    #[test]
    fn bounded_queues_backpressure_without_loss() {
        let p = pipeline(
            2000,
            vec![
                node("a", 1000, 1000, 64, 64),
                node("slow", 250, 250, 64, 64),
            ],
        );
        let mut c = cfg(64 * 60);
        c.queue_capacity = Some(256);
        let r = simulate(&p, &c);
        // All data still flows (blocking, not dropping)…
        assert!((r.bytes_out - 64.0 * 60.0).abs() < 1e-6);
        // …and no queue ever exceeded its capacity.
        for (name, peak) in &r.per_queue_peak {
            assert!(*peak <= 256.0 + 1e-9, "queue {name} peaked at {peak}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let p = pipeline(
            800,
            vec![node("a", 600, 900, 64, 64), node("b", 500, 700, 64, 64)],
        );
        let r1 = simulate(&p, &cfg(64 * 40));
        let r2 = simulate(&p, &cfg(64 * 40));
        assert_eq!(r1.throughput, r2.throughput);
        assert_eq!(r1.delay_max, r2.delay_max);
        assert_eq!(r1.peak_backlog, r2.peak_backlog);
        let mut c3 = cfg(64 * 40);
        c3.seed = 999;
        let r3 = simulate(&p, &c3);
        assert_ne!(r1.delay_max, r3.delay_max);
    }

    #[test]
    fn arena_reuse_is_bit_identical() {
        // Pooled replication must not leak any state between runs: a
        // shared arena reproduces the fresh-sim results exactly.
        let p = pipeline(
            800,
            vec![node("a", 600, 900, 64, 64), node("b", 500, 700, 64, 64)],
        );
        let mut arena = SimArena::new();
        for seed in [1u64, 7, 42] {
            let mut c = cfg(64 * 40);
            c.seed = seed;
            let fresh = simulate(&p, &c);
            let pooled = simulate_in(&mut arena, &p, &c);
            assert_eq!(fresh, pooled);
        }
    }

    #[test]
    fn untraced_run_matches_traced_statistics() {
        // Pruning the stairstep ring must not change any statistic —
        // only the returned traces.
        let p = pipeline(
            800,
            vec![node("a", 600, 900, 64, 64), node("b", 500, 700, 64, 64)],
        );
        let traced = simulate(&p, &cfg(64 * 200));
        let mut c = cfg(64 * 200);
        c.trace = false;
        let lean = simulate(&p, &c);
        assert!(lean.trace_in.is_empty() && lean.trace_out.is_empty());
        assert_eq!(traced.throughput, lean.throughput);
        assert_eq!(traced.delay_min, lean.delay_min);
        assert_eq!(traced.delay_max, lean.delay_max);
        assert_eq!(traced.delay_mean, lean.delay_mean);
        assert_eq!(traced.peak_backlog, lean.peak_backlog);
        assert_eq!(traced.events, lean.events);
    }

    #[test]
    fn trace_is_monotone_stairstep() {
        let p = pipeline(800, vec![node("a", 600, 900, 64, 64)]);
        let r = simulate(&p, &cfg(64 * 30));
        assert!(!r.trace_out.is_empty());
        for w in r.trace_out.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert!(!r.trace_in.is_empty());
    }

    #[test]
    fn steady_throughput_excludes_fill() {
        // A big startup latency drags the mean rate but not the steady
        // slope.
        let mut slow_start = pipeline(1000, vec![node("s", 500, 500, 64, 64)]);
        slow_start.nodes[0].latency = Rat::new(1, 1); // 1 s startup
        let r = simulate(&slow_start, &cfg(64 * 40));
        assert!(r.throughput < 0.9 * 500.0, "mean {}", r.throughput);
        assert!(
            (r.steady_throughput - 500.0).abs() / 500.0 < 0.05,
            "steady {}",
            r.steady_throughput
        );
    }

    #[test]
    fn per_node_stats_identify_bottleneck() {
        let p = pipeline(
            2000,
            vec![
                node("fast", 1500, 1500, 64, 64),
                node("slow", 300, 300, 64, 64),
            ],
        );
        let r = simulate(&p, &cfg(64 * 100));
        assert_eq!(r.per_node.len(), 2);
        let fast = &r.per_node[0];
        let slow = &r.per_node[1];
        // The slow stage is ~saturated; the fast one mostly idle.
        assert!(slow.utilization > 0.9, "slow util {}", slow.utilization);
        assert!(fast.utilization < 0.4, "fast util {}", fast.utilization);
        // Both processed every job.
        assert_eq!(fast.jobs, 100);
        assert_eq!(slow.jobs, 100);
        assert_eq!(slow.bytes_in, 6400);
        // The slow stage's queue holds the backlog.
        assert!(slow.avg_queue > fast.avg_queue);
    }

    #[test]
    fn service_models_rank_by_variability() {
        // Same pipeline at high load under the three service models:
        // the Markovian (exponential) stages queue far more than the
        // paper's uniform model, which exceeds deterministic — the
        // mechanism behind the M/M/1 baseline's optimism/pessimism
        // mismatch the paper discusses.
        let p = pipeline(900, vec![node("svc", 800, 1200, 64, 64)]);
        let run = |model: ServiceModel| {
            let mut c = cfg(64 * 2000);
            c.service_model = model;
            simulate(&p, &c)
        };
        let det = run(ServiceModel::Deterministic);
        let uni = run(ServiceModel::Uniform);
        let exp = run(ServiceModel::Exponential);
        assert!(
            det.delay_mean <= uni.delay_mean && uni.delay_mean < exp.delay_mean,
            "det {} uni {} exp {}",
            det.delay_mean,
            uni.delay_mean,
            exp.delay_mean
        );
        assert!(exp.peak_backlog > uni.peak_backlog);
    }

    #[test]
    fn residual_reported_for_partial_jobs() {
        // 100 bytes with a 64-byte job: one job runs, 36 bytes stuck.
        let p = pipeline(1000, vec![node("a", 500, 500, 64, 64)]);
        let mut c = cfg(100);
        c.source_chunk = Some(50);
        let r = simulate(&p, &c);
        assert_eq!(r.bytes_out, 64.0);
        assert_eq!(r.residual, 36.0);
    }

    #[test]
    fn steady_slope_empty_trace() {
        assert_eq!(steady_slope(&[]), None);
    }

    #[test]
    fn steady_slope_single_point() {
        assert_eq!(steady_slope(&[(1.0, 100.0)]), None);
    }

    #[test]
    fn steady_slope_pure_fill_no_window() {
        // All mass lands at one instant: the 10%→90% window has zero
        // width, so there is no slope to report.
        let t: Vec<(f64, f64)> = (0..10).map(|i| (5.0, 10.0 * (i + 1) as f64)).collect();
        assert_eq!(steady_slope(&t), None);
    }

    #[test]
    fn steady_slope_recovers_exact_slope() {
        // Synthetic stairstep at exactly 25 units/s: 40 steps of 5
        // units every 0.2 s.
        let t: Vec<(f64, f64)> = (0..40)
            .map(|i| (0.2 * (i + 1) as f64, 5.0 * (i + 1) as f64))
            .collect();
        let s = steady_slope(&t).unwrap();
        assert!((s - 25.0).abs() < 1e-9, "slope {s}");
    }

    #[test]
    fn steady_slope_zero_total_is_none() {
        let t: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 0.0)).collect();
        assert_eq!(steady_slope(&t), None);
    }

    // --- fault injection ---

    use crate::faults::{FaultSchedule, Outage, RecoveryPolicy, StallSpec};

    #[test]
    fn zero_fault_schedule_is_bit_identical() {
        // An all-default schedule must take the literal fault-free code
        // path: whole-result equality, not tolerance.
        let p = pipeline(
            800,
            vec![node("a", 600, 900, 64, 64), node("b", 500, 700, 64, 64)],
        );
        let base = simulate(&p, &cfg(64 * 200));
        let mut c = cfg(64 * 200);
        c.faults = Some(FaultSchedule::none(2));
        let faulted = simulate(&p, &c);
        assert_eq!(base, faulted);
        assert_eq!(faulted.dropped_jobs, 0);
        assert_eq!(faulted.retries, 0);
    }

    #[test]
    fn stall_fault_halves_throughput() {
        // 50 ms frozen per 100 ms on the only stage: long-run service
        // rate halves, and the source outruns it.
        let p = pipeline(2000, vec![node("s", 1000, 1000, 64, 64)]);
        let mut c = cfg(64 * 400);
        let mut fs = FaultSchedule::none(1);
        fs.stages[0].stall = Some(StallSpec {
            budget: 0.05,
            period: 0.1,
        });
        c.faults = Some(fs);
        let base = simulate(&p, &cfg(64 * 400));
        let faulted = simulate(&p, &c);
        assert!(
            faulted.throughput < 0.65 * base.throughput,
            "faulted {} vs base {}",
            faulted.throughput,
            base.throughput
        );
        assert_eq!(faulted.dropped_jobs, 0); // Block policy: no loss
        assert!((faulted.bytes_out - base.bytes_out).abs() < 1e-9);
    }

    #[test]
    fn derate_fault_scales_service_times() {
        let p = pipeline(2000, vec![node("s", 1000, 1000, 64, 64)]);
        let mut c = cfg(64 * 400);
        let mut fs = FaultSchedule::none(1);
        fs.stages[0].derate = 0.5;
        c.faults = Some(fs);
        let base = simulate(&p, &cfg(64 * 400));
        let faulted = simulate(&p, &c);
        assert!(
            (faulted.throughput - 0.5 * base.throughput).abs() / base.throughput < 0.1,
            "faulted {} vs base {}",
            faulted.throughput,
            base.throughput
        );
    }

    #[test]
    fn drop_policy_counts_discarded_volume() {
        // A long mid-run outage on the only stage with Drop recovery:
        // jobs arriving in the window are discarded and accounted.
        let p = pipeline(1000, vec![node("s", 1000, 1000, 64, 64)]);
        let total = 64 * 200;
        let mut c = cfg(total);
        let mut fs = FaultSchedule::none(1);
        fs.stages[0].outages = vec![Outage {
            start: 2.0,
            duration: 4.0,
        }];
        fs.stages[0].recovery = RecoveryPolicy::Drop;
        c.faults = Some(fs);
        let r = simulate(&p, &c);
        assert!(r.dropped_jobs > 0, "nothing dropped");
        assert_eq!(r.dropped_bytes, r.dropped_jobs as f64 * 64.0);
        // Conservation: delivered + dropped + residual = offered.
        assert!(
            (r.bytes_out + r.dropped_bytes + r.residual - total as f64).abs() < 1e-6,
            "out {} + dropped {} + residual {} != {}",
            r.bytes_out,
            r.dropped_bytes,
            r.residual,
            total
        );
        assert_eq!(r.retries, 0);
    }

    #[test]
    fn retry_policy_redelivers_everything() {
        // An outage on the stage with Retry recovery: attempts failing
        // inside the window back off and re-run; no data is lost.
        let p = pipeline(1000, vec![node("s", 1000, 1000, 64, 64)]);
        let total = 64 * 200;
        let mut c = cfg(total);
        let mut fs = FaultSchedule::none(1);
        fs.stages[0].outages = vec![Outage {
            start: 2.0,
            duration: 1.0,
        }];
        fs.stages[0].recovery = RecoveryPolicy::Retry {
            base: 0.01,
            cap: 0.16,
        };
        c.faults = Some(fs);
        let base = simulate(&p, &cfg(total));
        let r = simulate(&p, &c);
        assert!(r.retries > 0, "no retries fired");
        assert_eq!(r.dropped_jobs, 0);
        assert!((r.bytes_out - base.bytes_out).abs() < 1e-9);
        assert!(r.makespan > base.makespan);
    }

    #[test]
    fn faulted_run_is_deterministic_given_seed() {
        let p = pipeline(
            800,
            vec![node("a", 600, 900, 64, 64), node("b", 500, 700, 64, 64)],
        );
        let mut c = cfg(64 * 100);
        let mut fs = FaultSchedule::none(2);
        fs.seed = 99;
        fs.stages[0].stall = Some(StallSpec {
            budget: 0.02,
            period: 0.2,
        });
        fs.stages[1].outages = vec![Outage {
            start: 1.0,
            duration: 0.5,
        }];
        c.faults = Some(fs);
        let r1 = simulate(&p, &c);
        let r2 = simulate(&p, &c);
        assert_eq!(r1, r2);
    }
}

//! Tandem queueing networks and the roofline flow analysis of
//! Faber et al. [12] — the "queueing theory prediction" rows of the
//! paper's Tables 1 and 3.
//!
//! The baseline treats each stage as an M/M/1 queue fed by the pipeline
//! flow (Jackson's theorem makes the tandem decomposition exact for
//! Markovian stages), with every rate normalized to input-referred
//! volumes. Its throughput prediction is the roofline: the smallest
//! normalized average service rate. The paper observes this is
//! optimistic — the measured BLAST deployment ran ~30% below the
//! roofline — which is exactly the gap the network-calculus bounds
//! close.

use serde::Serialize;

use crate::mm1::{Mm1, QueueError};

/// One stage of the tandem model: a name plus the *normalized* average
/// service rate (input-referred bytes per second).
#[derive(Clone, Debug, Serialize)]
pub struct TandemStage {
    /// Stage name.
    pub name: String,
    /// Normalized average service rate (bytes/s).
    pub rate: f64,
}

/// Flow analysis of a tandem of stages.
#[derive(Clone, Debug, Serialize)]
pub struct TandemAnalysis {
    /// Roofline throughput: `min(source rate, min stage rate)` — the
    /// queueing-theory throughput prediction.
    pub roofline: f64,
    /// Name of the bottleneck stage (or `"source"`).
    pub bottleneck: String,
    /// Per-stage utilization at the operating throughput.
    pub utilization: Vec<(String, f64)>,
    /// Jackson/M/M/1 per-stage metrics at a sustainable operating
    /// point, when one exists (`None` for stages driven at ρ ≥ 1).
    pub stages: Vec<(String, Option<Mm1>)>,
    /// End-to-end mean sojourn time (sum of stage `W`s), when every
    /// stage is stable.
    pub total_sojourn: Option<f64>,
    /// Mean data in system (sum of stage `L`s, in *jobs* of the chosen
    /// granularity), when every stage is stable.
    pub total_in_system: Option<f64>,
}

/// Analyze a tandem network fed at `source_rate` (input-referred
/// bytes/s), with M/M/1 stages evaluated at the offered load.
///
/// `job_size` sets the granularity for converting byte rates into job
/// rates for the per-stage M/M/1 metrics (bytes themselves would give
/// astronomically high rates with identical ratios; job granularity
/// matches how the paper's stages actually dispatch).
pub fn analyze_tandem(
    source_rate: f64,
    stages: &[TandemStage],
    job_size: f64,
) -> Result<TandemAnalysis, QueueError> {
    if !(source_rate.is_finite() && source_rate > 0.0 && job_size.is_finite() && job_size > 0.0) {
        return Err(QueueError::BadParameters);
    }
    if stages.is_empty() || stages.iter().any(|s| !(s.rate.is_finite() && s.rate > 0.0)) {
        return Err(QueueError::BadParameters);
    }

    // Roofline.
    let mut roofline = source_rate;
    let mut bottleneck = "source".to_string();
    for s in stages {
        if s.rate < roofline {
            roofline = s.rate;
            bottleneck = s.name.clone();
        }
    }

    // Offered load = source rate; stages slower than the offered load
    // saturate (ρ ≥ 1 → no steady state).
    let lambda_jobs = source_rate / job_size;
    let mut per = Vec::with_capacity(stages.len());
    let mut utilization = Vec::with_capacity(stages.len());
    let mut total_w = Some(0.0);
    let mut total_l = Some(0.0);
    for s in stages {
        let mu_jobs = s.rate / job_size;
        utilization.push((s.name.clone(), (source_rate / s.rate).min(1.0)));
        match Mm1::new(lambda_jobs, mu_jobs) {
            Ok(m) => {
                if let Some(w) = total_w.as_mut() {
                    *w += m.w;
                }
                if let Some(l) = total_l.as_mut() {
                    *l += m.l;
                }
                per.push((s.name.clone(), Some(m)));
            }
            Err(QueueError::Unstable) => {
                total_w = None;
                total_l = None;
                per.push((s.name.clone(), None));
            }
            Err(e) => return Err(e),
        }
    }

    Ok(TandemAnalysis {
        roofline,
        bottleneck,
        utilization,
        stages: per,
        total_sojourn: total_w,
        total_in_system: total_l,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(name: &str, rate: f64) -> TandemStage {
        TandemStage {
            name: name.into(),
            rate,
        }
    }

    #[test]
    fn roofline_finds_bottleneck() {
        let a = analyze_tandem(
            1000.0,
            &[
                stage("fast", 5000.0),
                stage("slow", 600.0),
                stage("mid", 2000.0),
            ],
            100.0,
        )
        .unwrap();
        assert_eq!(a.roofline, 600.0);
        assert_eq!(a.bottleneck, "slow");
    }

    #[test]
    fn source_limited_when_stages_fast() {
        let a = analyze_tandem(100.0, &[stage("s", 400.0)], 10.0).unwrap();
        assert_eq!(a.roofline, 100.0);
        assert_eq!(a.bottleneck, "source");
        assert!(a.total_sojourn.is_some());
    }

    #[test]
    fn saturated_stage_has_no_steady_state() {
        let a = analyze_tandem(1000.0, &[stage("slow", 600.0)], 100.0).unwrap();
        assert_eq!(a.roofline, 600.0);
        assert!(a.stages[0].1.is_none());
        assert_eq!(a.total_sojourn, None);
        assert_eq!(a.utilization[0].1, 1.0);
    }

    #[test]
    fn tandem_sojourn_adds_up() {
        let a = analyze_tandem(100.0, &[stage("a", 200.0), stage("b", 300.0)], 10.0).unwrap();
        // Jackson: W = 1/(20−10) + 1/(30−10) = 0.15 (in job-time units).
        assert!((a.total_sojourn.unwrap() - 0.15).abs() < 1e-12);
        // L = λW.
        assert!((a.total_in_system.unwrap() - 10.0 * 0.15).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(analyze_tandem(0.0, &[stage("a", 1.0)], 1.0).is_err());
        assert!(analyze_tandem(1.0, &[], 1.0).is_err());
        assert!(analyze_tandem(1.0, &[stage("a", f64::NAN)], 1.0).is_err());
        assert!(analyze_tandem(1.0, &[stage("a", 2.0)], 0.0).is_err());
    }
}

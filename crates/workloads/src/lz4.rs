//! LZ4 block-format compression, from scratch.
//!
//! Stands in for the Vitis streaming LZ4 kernel of the paper's
//! bump-in-the-wire application (§5). Implements the standard LZ4
//! *block* format (token / literals / little-endian offset / extended
//! lengths) with a greedy hash-table matcher, plus the streaming
//! chunker the paper describes ("a target file or stream of data may
//! need to be chunked and then run through the kernel").
//!
//! Format rules honoured: minimum match length 4, last five bytes are
//! always literals, matches must not run into the last five bytes, and
//! offsets are in `1..=65535`.

/// Compression errors (decompression side).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lz4Error {
    /// Input ended in the middle of a sequence.
    Truncated,
    /// A match offset points before the start of the output.
    BadOffset,
    /// The declared output exceeds the safety limit.
    OutputTooLarge,
}

impl std::fmt::Display for Lz4Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Lz4Error::Truncated => write!(f, "truncated LZ4 block"),
            Lz4Error::BadOffset => write!(f, "match offset out of range"),
            Lz4Error::OutputTooLarge => write!(f, "decompressed output exceeds limit"),
        }
    }
}

impl std::error::Error for Lz4Error {}

const MIN_MATCH: usize = 4;
const LAST_LITERALS: usize = 5;
/// Matches may not start within the last 12 bytes of input.
const MF_LIMIT: usize = 12;
const HASH_LOG: usize = 13;
const MAX_OFFSET: usize = 65535;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    ((v.wrapping_mul(2654435761)) >> (32 - HASH_LOG)) as usize
}

/// Compress `input` into the LZ4 block format.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let n = input.len();
    let mut out = Vec::with_capacity(n / 2 + 16);
    if n == 0 {
        // A single empty-literal token terminates the block.
        out.push(0);
        return out;
    }
    let mut table = vec![usize::MAX; 1 << HASH_LOG];
    let mut anchor = 0usize; // start of pending literals
    let mut pos = 0usize;

    while n >= MF_LIMIT && pos + MF_LIMIT <= n {
        // Find a match at pos.
        if pos + MIN_MATCH > n - LAST_LITERALS {
            break;
        }
        let h = hash4(&input[pos..]);
        let candidate = table[h];
        table[h] = pos;
        let is_match = candidate != usize::MAX
            && pos - candidate <= MAX_OFFSET
            && input[candidate..candidate + MIN_MATCH] == input[pos..pos + MIN_MATCH];
        if !is_match {
            pos += 1;
            continue;
        }
        // Extend the match forward (leaving the last 5 bytes literal).
        let limit = n - LAST_LITERALS;
        let mut match_len = MIN_MATCH;
        while pos + match_len < limit && input[candidate + match_len] == input[pos + match_len] {
            match_len += 1;
        }
        emit_sequence(
            &mut out,
            &input[anchor..pos],
            (pos - candidate) as u16,
            match_len,
        );
        pos += match_len;
        anchor = pos;
    }

    // Trailing literals.
    emit_literals(&mut out, &input[anchor..]);
    out
}

fn emit_sequence(out: &mut Vec<u8>, literals: &[u8], offset: u16, match_len: usize) {
    debug_assert!(offset >= 1);
    debug_assert!(match_len >= MIN_MATCH);
    let lit_len = literals.len();
    let ml = match_len - MIN_MATCH;
    let token = (nibble(lit_len) << 4) | nibble(ml);
    out.push(token);
    push_extended(out, lit_len);
    out.extend_from_slice(literals);
    out.extend_from_slice(&offset.to_le_bytes());
    push_extended(out, ml);
}

fn emit_literals(out: &mut Vec<u8>, literals: &[u8]) {
    let lit_len = literals.len();
    out.push(nibble(lit_len) << 4);
    push_extended(out, lit_len);
    out.extend_from_slice(literals);
}

#[inline]
fn nibble(len: usize) -> u8 {
    if len >= 15 {
        15
    } else {
        len as u8
    }
}

#[inline]
fn push_extended(out: &mut Vec<u8>, len: usize) {
    if len >= 15 {
        let mut rest = len - 15;
        while rest >= 255 {
            out.push(255);
            rest -= 255;
        }
        out.push(rest as u8);
    }
}

/// Decompress an LZ4 block. `max_output` bounds memory use against
/// malicious inputs.
pub fn decompress(input: &[u8], max_output: usize) -> Result<Vec<u8>, Lz4Error> {
    let mut out: Vec<u8> = Vec::new();
    let mut i = 0usize;
    loop {
        let token = *input.get(i).ok_or(Lz4Error::Truncated)?;
        i += 1;
        // Literals.
        let mut lit_len = (token >> 4) as usize;
        if lit_len == 15 {
            lit_len += read_extended(input, &mut i)?;
        }
        if i + lit_len > input.len() {
            return Err(Lz4Error::Truncated);
        }
        if out.len() + lit_len > max_output {
            return Err(Lz4Error::OutputTooLarge);
        }
        out.extend_from_slice(&input[i..i + lit_len]);
        i += lit_len;
        // End of block: the final sequence has no match part.
        if i == input.len() {
            return Ok(out);
        }
        // Match.
        if i + 2 > input.len() {
            return Err(Lz4Error::Truncated);
        }
        let offset = u16::from_le_bytes([input[i], input[i + 1]]) as usize;
        i += 2;
        if offset == 0 || offset > out.len() {
            return Err(Lz4Error::BadOffset);
        }
        let mut match_len = (token & 0x0F) as usize;
        if match_len == 15 {
            match_len += read_extended(input, &mut i)?;
        }
        match_len += MIN_MATCH;
        if out.len() + match_len > max_output {
            return Err(Lz4Error::OutputTooLarge);
        }
        // Overlap-safe copy (offsets smaller than the match length
        // deliberately repeat freshly written bytes — LZ4's RLE trick).
        let start = out.len() - offset;
        for k in 0..match_len {
            let b = out[start + k];
            out.push(b);
        }
    }
}

fn read_extended(input: &[u8], i: &mut usize) -> Result<usize, Lz4Error> {
    let mut total = 0usize;
    loop {
        let b = *input.get(*i).ok_or(Lz4Error::Truncated)?;
        *i += 1;
        total += b as usize;
        if b != 255 {
            return Ok(total);
        }
    }
}

/// Worst-case compressed size for `n` input bytes (all-literal block:
/// token + extended length bytes + literals).
pub fn worst_case_len(n: usize) -> usize {
    n + n / 255 + 16
}

/// Compress a stream in independent chunks (the Vitis streaming-kernel
/// deployment model). Returns per-chunk compressed blocks and the
/// overall compression ratio (input/output — higher is better; 1.0 or
/// below means incompressible, matching the paper's worst case).
pub fn compress_chunked(input: &[u8], chunk_size: usize) -> (Vec<Vec<u8>>, f64) {
    assert!(chunk_size > 0);
    let blocks: Vec<Vec<u8>> = input.chunks(chunk_size).map(compress).collect();
    let out_len: usize = blocks.iter().map(Vec::len).sum();
    let ratio = if out_len == 0 {
        1.0
    } else {
        input.len() as f64 / out_len as f64
    };
    (blocks, ratio)
}

/// Decompress chunked blocks produced by [`compress_chunked`].
pub fn decompress_chunked(blocks: &[Vec<u8>], chunk_size: usize) -> Result<Vec<u8>, Lz4Error> {
    let mut out = Vec::new();
    for b in blocks {
        out.extend(decompress(b, chunk_size)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c, data.len().max(16)).unwrap();
        assert_eq!(d, data, "roundtrip failed for len {}", data.len());
    }

    #[test]
    fn empty_and_tiny_inputs() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"hello");
        roundtrip(b"twelve bytes");
    }

    #[test]
    fn repetitive_data_compresses() {
        let data = b"streaming streaming streaming streaming streaming data!".repeat(64);
        let c = compress(&data);
        assert!(
            c.len() * 2 < data.len(),
            "ratio only {}",
            data.len() as f64 / c.len() as f64
        );
        roundtrip(&data);
    }

    #[test]
    fn run_length_overlap_copy() {
        // Offset 1 with long match: the classic RLE case.
        let data = vec![0x41u8; 10_000];
        let c = compress(&data);
        assert!(c.len() < 100, "RLE should collapse: {}", c.len());
        roundtrip(&data);
    }

    #[test]
    fn incompressible_data_expands_slightly() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let data: Vec<u8> = (0..4096).map(|_| rng.gen()).collect();
        let c = compress(&data);
        assert!(c.len() >= data.len()); // only literal overhead
        roundtrip(&data);
    }

    #[test]
    fn random_structured_roundtrips() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..50 {
            let len = rng.gen_range(0..5000);
            let mut data = Vec::with_capacity(len);
            while data.len() < len {
                if rng.gen_bool(0.5) && !data.is_empty() {
                    // Copy an earlier slice (guarantees matches exist).
                    let start = rng.gen_range(0..data.len());
                    let take = rng.gen_range(1..=(data.len() - start).min(64));
                    let slice = data[start..start + take].to_vec();
                    data.extend(slice);
                } else {
                    data.push(rng.gen());
                }
            }
            data.truncate(len);
            roundtrip(&data);
        }
    }

    #[test]
    fn long_literal_and_match_lengths() {
        // > 15 literals and > 19 match bytes exercise extended lengths.
        let mut data = Vec::new();
        data.extend((0u32..100).flat_map(|i| i.to_le_bytes())); // literals
        data.extend(std::iter::repeat_n(7u8, 1000)); // long match
        data.extend((200u32..260).flat_map(|i| i.to_le_bytes()));
        roundtrip(&data);
    }

    #[test]
    fn decompress_rejects_malformed() {
        assert_eq!(decompress(&[], 100).unwrap_err(), Lz4Error::Truncated);
        // Token promising 5 literals with only 2 present.
        assert_eq!(
            decompress(&[0x50, 1, 2], 100).unwrap_err(),
            Lz4Error::Truncated
        );
        // Offset 0 is illegal.
        assert_eq!(
            decompress(&[0x10, 9, 0, 0], 100).unwrap_err(),
            Lz4Error::BadOffset
        );
        // Offset beyond what was produced.
        assert_eq!(
            decompress(&[0x10, 9, 5, 0], 100).unwrap_err(),
            Lz4Error::BadOffset
        );
    }

    #[test]
    fn decompress_respects_output_limit() {
        let data = vec![0x42u8; 100_000];
        let c = compress(&data);
        assert_eq!(decompress(&c, 1000).unwrap_err(), Lz4Error::OutputTooLarge);
        assert!(decompress(&c, 100_000).is_ok());
    }

    #[test]
    fn chunked_stream_roundtrip_and_ratio() {
        let text = b"the quick brown fox jumps over the lazy dog. ".repeat(512);
        let (blocks, ratio) = compress_chunked(&text, 4096);
        assert!(ratio > 2.0, "chunked ratio {ratio}");
        let back = decompress_chunked(&blocks, 4096).unwrap();
        assert_eq!(back, text);
        // Chunking reduces the ratio vs whole-buffer compression
        // (the paper: "chunked data may reduce similarity").
        let whole = compress(&text);
        let whole_ratio = text.len() as f64 / whole.len() as f64;
        let (_, tiny_ratio) = compress_chunked(&text, 64);
        assert!(tiny_ratio <= whole_ratio);
    }
}

//! Property-based tests for the workload kernels: the invariants that
//! must hold for *any* input, not just the curated unit-test cases.

use nc_workloads::aes::{cbc_decrypt, cbc_encrypt, Aes256};
use nc_workloads::blast::{blast_search, UngappedParams};
use nc_workloads::fasta::{bit2fa, fa2bit, parse_fasta, to_fasta};
use nc_workloads::lz4::{compress, compress_chunked, decompress, decompress_chunked};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lz4_roundtrips_any_bytes(data in proptest::collection::vec(any::<u8>(), 0..8192)) {
        let c = compress(&data);
        let d = decompress(&c, data.len().max(16)).unwrap();
        prop_assert_eq!(d, data);
    }

    #[test]
    fn lz4_roundtrips_compressible(
        pattern in proptest::collection::vec(any::<u8>(), 1..64),
        reps in 1usize..200,
    ) {
        let data: Vec<u8> = pattern.iter().cycle().take(pattern.len() * reps).copied().collect();
        let c = compress(&data);
        let d = decompress(&c, data.len().max(16)).unwrap();
        prop_assert_eq!(&d, &data);
        // Long repetitions must actually compress.
        if data.len() > 1024 {
            prop_assert!(c.len() < data.len());
        }
    }

    #[test]
    fn lz4_chunked_roundtrips(
        data in proptest::collection::vec(any::<u8>(), 0..8192),
        chunk in 64usize..2048,
    ) {
        let (blocks, ratio) = compress_chunked(&data, chunk);
        prop_assert!(ratio > 0.0);
        let d = decompress_chunked(&blocks, chunk).unwrap();
        prop_assert_eq!(d, data);
    }

    #[test]
    fn lz4_decompress_never_panics_on_garbage(
        garbage in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        // Any outcome is fine; crashing or unbounded allocation is not.
        let _ = decompress(&garbage, 1 << 16);
    }

    #[test]
    fn aes_cbc_roundtrips(
        key in proptest::array::uniform32(any::<u8>()),
        iv in proptest::array::uniform16(any::<u8>()),
        msg in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        let aes = Aes256::new(&key);
        let ct = cbc_encrypt(&aes, &iv, &msg);
        prop_assert_eq!(ct.len() % 16, 0);
        prop_assert!(ct.len() >= msg.len());
        let pt = cbc_decrypt(&aes, &iv, &ct).unwrap();
        prop_assert_eq!(pt, msg);
    }

    #[test]
    fn aes_block_is_permutation(
        key in proptest::array::uniform32(any::<u8>()),
        block in proptest::array::uniform16(any::<u8>()),
    ) {
        let aes = Aes256::new(&key);
        let mut b = block;
        aes.encrypt_block(&mut b);
        let encrypted = b;
        aes.decrypt_block(&mut b);
        prop_assert_eq!(b, block);
        // Encryption is never the identity for a random block (keyed
        // permutation; probability of fixed point ~2^-128).
        prop_assert_ne!(encrypted, block);
    }

    #[test]
    fn wrong_iv_corrupts_first_block_only(
        key in proptest::array::uniform32(any::<u8>()),
        iv in proptest::array::uniform16(any::<u8>()),
        msg in proptest::collection::vec(any::<u8>(), 33..256),
    ) {
        let aes = Aes256::new(&key);
        let ct = cbc_encrypt(&aes, &iv, &msg);
        let mut iv2 = iv;
        iv2[0] ^= 0xFF;
        if let Ok(pt) = cbc_decrypt(&aes, &iv2, &ct) {
            // CBC: a wrong IV garbles exactly the first 16 bytes.
            prop_assert_eq!(&pt[16..], &msg[16..pt.len().min(msg.len())]);
            prop_assert_ne!(&pt[..16], &msg[..16]);
        }
    }

    #[test]
    fn fa2bit_roundtrips_dna(len in 0usize..4096, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let seq = nc_workloads::fasta::random_dna(len, &mut rng);
        prop_assert_eq!(bit2fa(&fa2bit(&seq), len), seq);
    }

    #[test]
    fn fasta_roundtrips(len in 1usize..2000, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let seq = nc_workloads::fasta::random_dna(len, &mut rng);
        let (h, parsed) = parse_fasta(&to_fasta("hdr", &seq)).unwrap();
        prop_assert_eq!(h, "hdr");
        prop_assert_eq!(parsed, seq);
    }

    #[test]
    fn blast_self_search_always_hits(len in 64usize..512, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let seq = nc_workloads::fasta::random_dna(len, &mut rng);
        let r = blast_search(&seq, &seq, &UngappedParams::default());
        // A sequence always aligns with itself above threshold (len ≥ 64
        // guarantees a byte-aligned self seed and score ≥ threshold).
        prop_assert!(!r.alignments.is_empty());
        // Stage counts always chain.
        prop_assert_eq!(r.stages[1].items_out, r.stages[2].items_in);
        prop_assert_eq!(r.stages[3].items_out, r.stages[4].items_in);
    }
}

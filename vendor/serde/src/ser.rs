//! Serialization half of the data model.

use core::fmt::Display;

/// A data structure that can be serialized into any data format.
pub trait Serialize {
    /// Serialize `self` with the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Error raised by a serializer.
pub trait Error: Sized + std::error::Error {
    /// Build an error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A format-specific serializer (the driver side of the data model).
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Sub-serializer for sequences and tuples.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for structs and struct variants.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;

    /// Serialize a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serialize a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serialize an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a 128-bit signed integer.
    fn serialize_i128(self, v: i128) -> Result<Self::Ok, Self::Error> {
        match i64::try_from(v) {
            Ok(v) => self.serialize_i64(v),
            Err(_) => Err(Error::custom("i128 out of i64 range")),
        }
    }
    /// Serialize a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serialize a unit value (`()` / JSON `null`).
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize `Some(value)`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serialize a unit enum variant (e.g. `Kind::Compute`).
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serialize a newtype enum variant (e.g. `Dist::Constant(x)`).
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begin a sequence of `len` elements (if known).
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begin a fixed-arity tuple.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeSeq, Self::Error> {
        self.serialize_seq(Some(len))
    }
    /// Begin a struct with `len` fields.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begin a struct enum variant (e.g. `Dist::Uniform { .. }`).
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
}

/// Incremental serializer for sequence elements.
pub trait SerializeSeq {
    /// Output produced on `end`.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Incremental serializer for struct fields.
pub trait SerializeStruct {
    /// Output produced on `end`.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finish the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

macro_rules! impl_serialize_int {
    ($($t:ty => $method:ident as $cast:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self as $cast)
            }
        }
    )*};
}

impl_serialize_int! {
    i8 => serialize_i64 as i64,
    i16 => serialize_i64 as i64,
    i32 => serialize_i64 as i64,
    i64 => serialize_i64 as i64,
    isize => serialize_i64 as i64,
    u8 => serialize_u64 as u64,
    u16 => serialize_u64 as u64,
    u32 => serialize_u64 as u64,
    u64 => serialize_u64 as u64,
    usize => serialize_u64 as u64,
    i128 => serialize_i128 as i128,
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self as f64)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut seq = serializer.serialize_tuple(0 $(+ { let _ = stringify!($name); 1 })+)?;
                $(seq.serialize_element(&self.$idx)?;)+
                seq.end()
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

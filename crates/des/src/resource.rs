//! Counting resources with FIFO waiters — the SimPy `Resource`
//! equivalent for this engine's callback style.
//!
//! A [`Resource`] models `capacity` identical servers (DMA channels,
//! GPU streams, NIC queues). Processes `request` a slot and are either
//! admitted immediately or queued; `release` hands the slot to the
//! longest-waiting requester. Because events are closures over the
//! whole simulation, the resource is addressed through an accessor
//! function `fn(&mut S) -> &mut Resource<S>` rather than a borrow.
//!
//! ```
//! use nc_des::{Resource, Sim, Span, Time};
//!
//! struct World {
//!     printer: Resource<World>,
//!     done: Vec<u32>,
//! }
//! fn printer(w: &mut World) -> &mut Resource<World> { &mut w.printer }
//!
//! let mut sim = Sim::new(World { printer: Resource::new(1), done: vec![] });
//! for id in 0..3u32 {
//!     sim.schedule_at(Time::ZERO, move |sim| {
//!         Resource::request(sim, printer, move |sim| {
//!             // Hold the printer for one second.
//!             sim.schedule_in(Span::secs(1.0), move |sim| {
//!                 sim.state.done.push(id);
//!                 Resource::release(sim, printer);
//!             });
//!         });
//!     });
//! }
//! sim.run();
//! assert_eq!(sim.state.done, vec![0, 1, 2]); // FIFO service
//! assert_eq!(sim.now(), Time::secs(3.0));    // serialized on 1 server
//! ```

use std::collections::VecDeque;

use crate::engine::{Event, Sim};
use crate::time::Span;

/// A counting resource (see the module docs).
pub struct Resource<S: 'static> {
    capacity: usize,
    in_use: usize,
    waiters: VecDeque<Event<S>>,
    peak_queue: usize,
    total_grants: u64,
}

impl<S: 'static> std::fmt::Debug for Resource<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Resource")
            .field("capacity", &self.capacity)
            .field("in_use", &self.in_use)
            .field("waiting", &self.waiters.len())
            .finish()
    }
}

impl<S: 'static> Resource<S> {
    /// A resource with `capacity` slots.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Resource<S> {
        assert!(capacity > 0, "resource capacity must be > 0");
        Resource {
            capacity,
            in_use: 0,
            waiters: VecDeque::new(),
            peak_queue: 0,
            total_grants: 0,
        }
    }

    /// Slots currently held.
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Total slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Requests currently waiting.
    pub fn queue_len(&self) -> usize {
        self.waiters.len()
    }

    /// Largest queue observed.
    pub fn peak_queue(&self) -> usize {
        self.peak_queue
    }

    /// Grants issued so far.
    pub fn total_grants(&self) -> u64 {
        self.total_grants
    }
}

impl<S: 'static> Resource<S> {
    /// Request a slot; `granted` runs (as a fresh event at the current
    /// time) once one is available. FIFO among waiters.
    pub fn request(
        sim: &mut Sim<S>,
        access: fn(&mut S) -> &mut Resource<S>,
        granted: impl FnOnce(&mut Sim<S>) + 'static,
    ) {
        let r = access(&mut sim.state);
        if r.in_use < r.capacity {
            r.in_use += 1;
            r.total_grants += 1;
            sim.schedule_in(Span::ZERO, granted);
        } else {
            r.waiters.push_back(Event::new(granted));
            r.peak_queue = r.peak_queue.max(r.waiters.len());
        }
    }

    /// Release a held slot, admitting the next waiter if any.
    ///
    /// # Panics
    /// Panics if no slot is held (release without request).
    pub fn release(sim: &mut Sim<S>, access: fn(&mut S) -> &mut Resource<S>) {
        let r = access(&mut sim.state);
        assert!(r.in_use > 0, "Resource::release without a held slot");
        if let Some(next) = r.waiters.pop_front() {
            // The slot transfers directly to the next waiter.
            r.total_grants += 1;
            sim.schedule_event_in(Span::ZERO, next);
        } else {
            r.in_use -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;

    struct W {
        res: Resource<W>,
        log: Vec<(u32, f64)>,
    }
    fn res(w: &mut W) -> &mut Resource<W> {
        &mut w.res
    }

    fn job(sim: &mut Sim<W>, id: u32, hold: f64) {
        Resource::request(sim, res, move |sim| {
            let start = sim.now().as_secs();
            sim.state.log.push((id, start));
            sim.schedule_in(Span::secs(hold), move |sim| {
                Resource::release(sim, res);
            });
        });
    }

    #[test]
    fn single_server_serializes_fifo() {
        let mut sim = Sim::new(W {
            res: Resource::new(1),
            log: vec![],
        });
        for id in 0..4u32 {
            sim.schedule_at(Time::ZERO, move |sim| job(sim, id, 2.0));
        }
        sim.run();
        assert_eq!(sim.state.log, vec![(0, 0.0), (1, 2.0), (2, 4.0), (3, 6.0)]);
        assert_eq!(sim.state.res.total_grants(), 4);
        assert_eq!(sim.state.res.peak_queue(), 3);
        assert_eq!(sim.state.res.in_use(), 0);
    }

    #[test]
    fn multi_server_overlaps() {
        let mut sim = Sim::new(W {
            res: Resource::new(3),
            log: vec![],
        });
        for id in 0..6u32 {
            sim.schedule_at(Time::ZERO, move |sim| job(sim, id, 5.0));
        }
        sim.run();
        // First wave at t=0, second at t=5.
        let starts: Vec<f64> = sim.state.log.iter().map(|&(_, t)| t).collect();
        assert_eq!(starts, vec![0.0, 0.0, 0.0, 5.0, 5.0, 5.0]);
        assert_eq!(sim.now(), Time::secs(10.0));
    }

    #[test]
    fn staggered_arrivals_reuse_free_slots() {
        let mut sim = Sim::new(W {
            res: Resource::new(1),
            log: vec![],
        });
        sim.schedule_at(Time::ZERO, |sim| job(sim, 0, 1.0));
        sim.schedule_at(Time::secs(5.0), |sim| job(sim, 1, 1.0));
        sim.run();
        // No queueing: the second job starts at its arrival.
        assert_eq!(sim.state.log, vec![(0, 0.0), (1, 5.0)]);
        assert_eq!(sim.state.res.peak_queue(), 0);
    }

    #[test]
    #[should_panic(expected = "without a held slot")]
    fn release_without_request_panics() {
        let mut sim = Sim::new(W {
            res: Resource::new(1),
            log: vec![],
        });
        sim.schedule_at(Time::ZERO, |sim| Resource::release(sim, res));
        sim.run();
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _: Resource<()> = Resource::new(0);
    }
}

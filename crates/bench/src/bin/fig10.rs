//! Figure 10 reproduction: bump-in-the-wire network-calculus curves
//! (α, β, α*; γ omitted as in the paper) and the simulated stairstep —
//! plus a what-if bounds surface (compression ratio × network link
//! rate) from the `nc-sweep` engine, emitted as `fig10_sweep.csv`.

use nc_apps::bitw;
use nc_core::num::Rat;
use nc_core::units::mib_per_s;
use nc_sweep::{Axis, Param, SweepSpec};

fn main() {
    let r = bitw::reproduce(42);
    let fig = bitw::figure10(&r, 160);
    nc_bench::emit("fig10.csv", &fig.to_csv());
    println!(
        "Figure 10: {} sim points, stairstep within [beta, alpha*]: {}",
        fig.sim.len(),
        fig.sim_between_bounds(1024.0)
    );

    // What-if surface: the paper's three observed compression ratios
    // (1.0 / 2.2 / 5.3) × the wire swapped for slower link rates.
    let spec = SweepSpec {
        base: bitw::pipeline(bitw::Scenario::Average),
        axes: vec![
            Axis::new(
                Param::CompressionRatio(0),
                vec![Rat::ONE, Rat::new(11, 5), Rat::new(53, 10)],
            ),
            Axis::linspace(Param::Rate(2), mib_per_s(16.0), mib_per_s(256.0), 9),
        ],
        horizons: vec![Rat::new(1, 10), Rat::int(1)],
        sim: None,
    };
    let surface = nc_sweep::run(&spec);
    nc_bench::emit("fig10_sweep.csv", &surface.to_csv());
    let s = surface.stats;
    println!(
        "Figure 10 sweep: {} points, cache ops {}/{} hit/miss, prefix {}/{}",
        surface.points.len(),
        s.op_hits(),
        s.op_misses(),
        s.prefix_hits,
        s.prefix_misses
    );
}

//! The M/M/c queue: Poisson arrivals, `c` exponential servers.
//!
//! Used to model stages that overlap several in-flight jobs (a GPU
//! running multiple Mercator blocks, or multiple DMA channels), which
//! the plain M/M/1 baseline cannot express.

use serde::Serialize;

use crate::mm1::QueueError;

/// Steady-state metrics of a stable M/M/c queue.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Mmc {
    /// Arrival rate λ.
    pub lambda: f64,
    /// Per-server service rate µ.
    pub mu: f64,
    /// Number of servers.
    pub servers: u32,
    /// Total utilization ρ = λ/(cµ).
    pub rho: f64,
    /// Erlang-C probability that an arrival must wait.
    pub p_wait: f64,
    /// Mean number in system.
    pub l: f64,
    /// Mean number waiting.
    pub lq: f64,
    /// Mean time in system.
    pub w: f64,
    /// Mean waiting time.
    pub wq: f64,
}

impl Mmc {
    /// Analyze an M/M/c queue.
    pub fn new(lambda: f64, mu: f64, servers: u32) -> Result<Mmc, QueueError> {
        if !(lambda.is_finite() && mu.is_finite() && lambda > 0.0 && mu > 0.0) || servers == 0 {
            return Err(QueueError::BadParameters);
        }
        let c = servers as f64;
        let a = lambda / mu; // offered load in Erlangs
        let rho = a / c;
        if rho >= 1.0 {
            return Err(QueueError::Unstable);
        }
        // Erlang C via the numerically stable recurrence on Erlang B:
        // B(0) = 1; B(k) = a·B(k−1) / (k + a·B(k−1)).
        let mut b = 1.0;
        for k in 1..=servers {
            b = a * b / (k as f64 + a * b);
        }
        let p_wait = b / (1.0 - rho * (1.0 - b));
        let lq = p_wait * rho / (1.0 - rho);
        let wq = lq / lambda;
        let w = wq + 1.0 / mu;
        let l = lambda * w;
        Ok(Mmc {
            lambda,
            mu,
            servers,
            rho,
            p_wait,
            l,
            lq,
            w,
            wq,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mm1::Mm1;

    #[test]
    fn single_server_matches_mm1() {
        let a = Mmc::new(2.0, 5.0, 1).unwrap();
        let b = Mm1::new(2.0, 5.0).unwrap();
        assert!((a.l - b.l).abs() < 1e-12);
        assert!((a.w - b.w).abs() < 1e-12);
        assert!((a.p_wait - b.rho).abs() < 1e-12);
    }

    #[test]
    fn textbook_two_servers() {
        // λ=3, µ=2, c=2: a=1.5, ρ=0.75; Erlang-C = 0.6428571…
        let q = Mmc::new(3.0, 2.0, 2).unwrap();
        assert!((q.p_wait - 9.0 / 14.0).abs() < 1e-9, "{}", q.p_wait);
        assert!((q.lq - (9.0 / 14.0) * 3.0).abs() < 1e-9, "{}", q.lq);
    }

    #[test]
    fn more_servers_less_waiting() {
        let w2 = Mmc::new(3.0, 2.0, 2).unwrap().wq;
        let w3 = Mmc::new(3.0, 2.0, 3).unwrap().wq;
        let w8 = Mmc::new(3.0, 2.0, 8).unwrap().wq;
        assert!(w2 > w3 && w3 > w8);
    }

    #[test]
    fn stability_boundary() {
        assert_eq!(Mmc::new(4.0, 2.0, 2).unwrap_err(), QueueError::Unstable);
        assert!(Mmc::new(3.9, 2.0, 2).is_ok());
        assert_eq!(
            Mmc::new(1.0, 1.0, 0).unwrap_err(),
            QueueError::BadParameters
        );
    }

    #[test]
    fn littles_law() {
        let q = Mmc::new(5.0, 2.0, 4).unwrap();
        assert!((q.l - q.lambda * q.w).abs() < 1e-9);
        assert!((q.lq - q.lambda * q.wq).abs() < 1e-9);
    }
}

//! Engine-equivalence properties backing the simulation scaling layer
//! (DESIGN.md §10): the thinned event path must be *bit-identical* to
//! the frozen pre-PR reference engine for the stochastic service
//! models, and the deterministic engine must produce bit-identical
//! results with cycle-jump fast-forward on and off — across random
//! pipelines, seeds, bounded/unbounded queues, and totals that leave a
//! partial residual chunk.

use nc_core::num::Rat;
use nc_core::pipeline::{Node, NodeKind, Pipeline, Source, StageRates};
use nc_streamsim::{simulate, simulate_reference, ServiceModel, SimConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct GenNode {
    rmin: i64,
    spread: i64,
    job_in_log2: u32,
    job_out_log2: u32,
    latency_ms: i64,
}

#[derive(Debug, Clone)]
struct GenCase {
    pipeline: Pipeline,
    chunk: u64,
    total: u64,
    caps: Option<Vec<u64>>,
}

/// Random 1–3 node pipelines with power-of-two job sizes, optional
/// per-queue capacities (always at least one full job / source chunk so
/// backpressure blocks rather than deadlocks), and totals that may end
/// in a partial chunk. Rates are free, so cases span underloaded and
/// overloaded pipelines.
fn arb_case() -> impl Strategy<Value = GenCase> {
    let node = (500i64..20_000, 0i64..5_000, 4u32..8, 4u32..8, 0i64..20).prop_map(
        |(rmin, spread, ji, jo, lat)| GenNode {
            rmin,
            spread,
            job_in_log2: ji,
            job_out_log2: jo,
            latency_ms: lat,
        },
    );
    (
        proptest::collection::vec(node, 1..4),
        200i64..30_000, // source rate
        1u64..4,        // chunk = mult * job_in(0)
        1u64..40,       // whole chunks
        0u64..64,       // partial tail bytes
        (any::<bool>(), proptest::collection::vec(1u64..6, 3)),
    )
        .prop_map(|(gens, src_rate, chunk_mult, chunks, tail, caps_gen)| {
            let (bounded, cap_mults) = caps_gen;
            let cap_mults = bounded.then_some(cap_mults);
            let nodes: Vec<Node> = gens
                .iter()
                .enumerate()
                .map(|(i, g)| {
                    Node::new(
                        format!("n{i}"),
                        NodeKind::Compute,
                        StageRates::new(
                            Rat::int(g.rmin),
                            Rat::int(g.rmin + g.spread / 2),
                            Rat::int(g.rmin + g.spread),
                        ),
                        Rat::new(g.latency_ms as i128, 1000),
                        Rat::int(1 << g.job_in_log2),
                        Rat::int(1 << g.job_out_log2),
                    )
                })
                .collect();
            let chunk = chunk_mult << gens[0].job_in_log2;
            let caps = cap_mults.map(|ms| {
                gens.iter()
                    .zip(ms)
                    .enumerate()
                    .map(|(i, (g, m))| {
                        // Validation requires cap >= own job size and
                        // >= the upstream block (chunk / producer
                        // job_out), else the queue can never fill.
                        let upstream = if i == 0 {
                            chunk
                        } else {
                            1u64 << gens[i - 1].job_out_log2
                        };
                        upstream.max(1 << g.job_in_log2) * m
                    })
                    .collect()
            });
            let pipeline = Pipeline::new(
                "equiv",
                Source {
                    rate: Rat::int(src_rate),
                    burst: Rat::int(chunk as i64),
                },
                nodes,
            );
            GenCase {
                pipeline,
                chunk,
                total: chunk * chunks + tail % chunk.min(64),
                caps,
            }
        })
}

fn cfg(case: &GenCase, model: ServiceModel, seed: u64, trace: bool, ff: bool) -> SimConfig {
    SimConfig {
        seed,
        total_input: case.total,
        source_chunk: Some(case.chunk),
        queue_capacity: None,
        queue_capacities: case.caps.clone(),
        trace,
        service_model: model,
        fast_forward: ff,
        faults: None,
        workers: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Thinned stochastic path (lazy source, fused calendar slots,
    /// streaming statistics, pruned input ring) is bit-identical to the
    /// frozen pre-PR engine: same RNG draw order, same float operation
    /// sequence, so `assert_eq!` on the whole `SimResult` holds.
    #[test]
    fn thinned_engine_matches_reference_bitwise(
        case in arb_case(),
        seed in 0u64..10_000,
        model in prop_oneof![Just(ServiceModel::Uniform), Just(ServiceModel::Exponential)],
        trace in any::<bool>(),
    ) {
        let c = cfg(&case, model, seed, trace, true);
        let fast = simulate(&case.pipeline, &c);
        let reference = simulate_reference(&case.pipeline, &c);
        prop_assert_eq!(fast, reference);
    }

    /// Cycle-jump fast-forward never changes a deterministic result:
    /// the integer-tick engine with `fast_forward` on and off agrees on
    /// every field, including bounded-queue backpressure and totals
    /// with a partial residual chunk.
    #[test]
    fn cycle_jump_on_off_is_bitwise_identical(
        case in arb_case(),
        seed in 0u64..10_000,
    ) {
        let on = simulate(&case.pipeline, &cfg(&case, ServiceModel::Deterministic, seed, false, true));
        let off = simulate(&case.pipeline, &cfg(&case, ServiceModel::Deterministic, seed, false, false));
        prop_assert_eq!(on, off);
    }
}

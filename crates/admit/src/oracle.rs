//! From-scratch reference decisions through the general curve algebra.
//!
//! [`decide_full`] answers one admission question with **no** engine
//! state and **no** scalar shortcuts: it rebuilds the pipeline model
//! ([`Pipeline::build_model`], uncached `DirectOps`), re-derives every
//! arrival curve by actual min-plus deconvolution, folds service
//! concatenations with the general `⊗`, and evaluates each bound as a
//! horizontal/vertical deviation between piecewise-linear curves. The
//! procedure (checks, their order, the reported bound) mirrors
//! [`AdmissionEngine::decide`](crate::AdmissionEngine::decide) step for
//! step, so the property suite can assert decision-and-bound equality
//! against the incremental engine — and the `perfbase` throughput row
//! uses it as the cold-start full-recompute ablation baseline.

use nc_core::bounds;
use nc_core::curve::shapes;
use nc_core::num::Rat;
use nc_core::ops::{min_plus_conv, min_plus_deconv};
use nc_core::pipeline::Pipeline;

use crate::{ClassId, FlowClass, RejectReason};

/// Decide one candidate flow against a pipeline by full recomputation.
///
/// `resident` lists the already-admitted flows on this path as
/// `(attach stage, class)` pairs; `candidate` asks to attach at stage
/// `attach`. Returns the certified delay bound (seconds, from the
/// attachment stage to the sink) or the first failing check.
///
/// # Panics
/// Panics on invalid pipelines, out-of-range stages/classes, or a
/// budget below the zero-load backlog — the configuration errors the
/// engine reports as [`AdmitError`](crate::AdmitError) before ever
/// reaching its decision path.
pub fn decide_full(
    pipeline: &Pipeline,
    budget: Option<Rat>,
    classes: &[FlowClass],
    resident: &[(usize, ClassId)],
    candidate: &FlowClass,
    attach: usize,
) -> Result<Rat, RejectReason> {
    let model = pipeline.build_model();
    let n = model.per_node.len();
    assert!(attach < n, "attachment stage out of range");

    // Aggregate attachment envelopes per stage, candidate included.
    let mut at_rate = vec![Rat::ZERO; n];
    let mut at_burst = vec![Rat::ZERO; n];
    let mut slo_min: Vec<Option<Rat>> = vec![None; n];
    for &(a, class) in resident {
        let c = &classes[class.0];
        at_rate[a] += c.rate;
        at_burst[a] += c.burst;
        slo_min[a] = Some(slo_min[a].map_or(c.deadline, |s| s.min(c.deadline)));
    }
    let limit_at = |k: usize| {
        if k == attach {
            Some(slo_min[k].map_or(candidate.deadline, |s| s.min(candidate.deadline)))
        } else {
            slo_min[k]
        }
    };
    at_rate[attach] += candidate.rate;
    at_burst[attach] += candidate.burst;

    // 1. Placement pre-filter: rate caps from the suffix service
    // concatenations, folded with the general ⊗.
    if let Some(bud) = budget {
        let mut suffix = model.per_node[n - 1].service.clone();
        let mut caps = vec![Rat::ZERO; n];
        for k in (0..n).rev() {
            if k < n - 1 {
                suffix = min_plus_conv(&model.per_node[k].service, &suffix);
            }
            caps[k] = bounds::max_admissible_rate(&suffix, Rat::ZERO, bud)
                .expect("zero burst fits any budget");
        }
        caps[0] = caps[0].min(
            model
                .max_admissible_rate(bud)
                .expect("budget below the zero-load backlog bound"),
        );
        let mut cum_rate = Rat::ZERO;
        for k in 0..n {
            // Committed rate entering stage k (candidate excluded; its
            // rate is the increment under test).
            cum_rate += at_rate[k];
            if k == attach {
                cum_rate -= candidate.rate;
            }
            if k >= attach && cum_rate + candidate.rate > caps[k] {
                return Err(RejectReason::PlacementCap);
            }
        }
    }

    // 2. Per-stage pass: arrival curves by cascaded deconvolution,
    // rate feasibility, backlog budget, delay bounds.
    let mut arrivals = Vec::with_capacity(n);
    let mut delays = vec![Rat::ZERO; n];
    let mut alpha = shapes::leaky_bucket(at_rate[0], pipeline.source.burst + at_burst[0]);
    for j in 0..n {
        let beta = &model.per_node[j].service;
        if j > 0 {
            alpha = min_plus_deconv(&arrivals[j - 1], &model.per_node[j - 1].service);
            if at_rate[j].is_positive() || at_burst[j].is_positive() {
                alpha = alpha.add(&shapes::leaky_bucket(at_rate[j], at_burst[j]));
            }
        }
        if j >= attach {
            let (srv_rate, _) = beta
                .as_rate_latency()
                .expect("pipeline services are rate-latency");
            let arr_rate = alpha
                .ultimate_slope()
                .as_finite()
                .expect("leaky-bucket arrivals have finite rate");
            if arr_rate > srv_rate {
                return Err(RejectReason::RateInfeasible);
            }
            if let Some(bud) = budget {
                if bounds::backlog_bound(&alpha, beta)
                    .as_finite()
                    .is_none_or(|x| x > bud)
                {
                    return Err(RejectReason::BudgetExceeded);
                }
            }
        }
        delays[j] = bounds::delay_bound(&alpha, beta)
            .as_finite()
            .expect("delay bound finite after the rate check");
        arrivals.push(alpha.clone());
    }

    // 3. Cheap deadline bound: suffix sums of per-stage delay bounds.
    let mut cheap = vec![Rat::ZERO; n];
    let mut acc = Rat::ZERO;
    for j in (0..n).rev() {
        acc += delays[j];
        cheap[j] = acc;
    }

    // Tight bound from stage k: segments split at stages with nonzero
    // attached burst (candidate included in `at_burst`), each folded
    // with the general ⊗ and evaluated as a horizontal deviation
    // against its entry arrival curve.
    let tight = |k: usize| -> Rat {
        let mut total = Rat::ZERO;
        let mut seg_start = k;
        let mut beta_seg = model.per_node[k].service.clone();
        #[allow(clippy::needless_range_loop)] // j indexes three arrays and the n boundary
        for j in k + 1..=n {
            if j == n || at_burst[j].is_positive() {
                total += bounds::delay_bound(&arrivals[seg_start], &beta_seg)
                    .as_finite()
                    .expect("segment delay finite after the rate check");
                if j < n {
                    seg_start = j;
                    beta_seg = model.per_node[j].service.clone();
                }
            } else {
                beta_seg = min_plus_conv(&beta_seg, &model.per_node[j].service);
            }
        }
        total
    };

    // 4. Deadline checks for the candidate and every protected stage,
    // cheap first, tight as the fallback.
    for (k, sum) in cheap.iter().enumerate() {
        let Some(limit) = limit_at(k) else { continue };
        if *sum <= limit {
            continue;
        }
        if tight(k) > limit {
            return Err(RejectReason::DeadlineExceeded);
        }
    }

    let limit_a = limit_at(attach).expect("candidate stage always has a limit");
    Ok(if cheap[attach] <= limit_a {
        cheap[attach]
    } else {
        tight(attach)
    })
}

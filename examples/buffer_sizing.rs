//! Buffer sizing from per-node backlog bounds — the paper's stated
//! developer payoff ("the contributions of the data occupancy bounds
//! that are due to each node … can assist a developer in allocating
//! buffers") and its future-work direction ("utilizing network calculus
//! to guide the sizing and allocation of buffers").
//!
//! We size each queue from the NC per-node backlog bound, run the
//! simulator with exactly those capacities, and verify the pipeline
//! neither deadlocks nor loses throughput; a halved allocation is run
//! alongside for comparison (with this workload's backpressure it still
//! keeps up — the bound is a worst case, as bounds should be).
//!
//! Run with `cargo run --release --example buffer_sizing`.

use streamcalc::core::num::Rat;
use streamcalc::core::pipeline::{Node, NodeKind, Pipeline, Source, StageRates};
use streamcalc::core::units::{fmt_bytes, mib, mib_per_s};
use streamcalc::core::Value;
use streamcalc::streamsim::{simulate, SimConfig};

fn pipeline() -> Pipeline {
    Pipeline::new(
        "buffer-sizing demo",
        Source {
            rate: mib_per_s(200.0),
            burst: mib(1),
        },
        vec![
            Node::new(
                "ingest",
                NodeKind::Compute,
                StageRates::new(mib_per_s(400.0), mib_per_s(450.0), mib_per_s(500.0)),
                Rat::new(1, 1000),
                mib(1),
                mib(1),
            ),
            Node::new(
                "transform",
                NodeKind::Compute,
                StageRates::new(mib_per_s(250.0), mib_per_s(280.0), mib_per_s(310.0)),
                Rat::new(2, 1000),
                mib(1),
                mib(1),
            ),
            Node::new(
                "publish",
                NodeKind::NetworkLink,
                StageRates::fixed(mib_per_s(1100.0)),
                Rat::new(1, 1000),
                mib(1) / Rat::int(4),
                mib(1) / Rat::int(4),
            ),
        ],
    )
}

fn run_with_caps(caps: Option<Vec<u64>>) -> (f64, f64) {
    let p = pipeline();
    let r = simulate(
        &p,
        &SimConfig {
            seed: 11,
            total_input: 256 << 20,
            source_chunk: Some(1 << 20),
            queue_capacity: None,
            queue_capacities: caps,
            service_model: streamcalc::streamsim::ServiceModel::Uniform,
            trace: false,
            fast_forward: true,
            faults: None,
            workers: None,
        },
    );
    (r.throughput / 1048576.0, r.peak_backlog / 1048576.0)
}

fn main() {
    let model = pipeline().build_model();
    println!("per-node backlog bounds (NC):");
    let mut caps: Vec<u64> = Vec::new();
    for (m, node) in model.per_node.iter().zip(&pipeline().nodes) {
        let bound = match m.backlog {
            Value::Finite(x) => x.to_f64(),
            _ => f64::INFINITY,
        };
        // Buffer = per-node bound, converted back to local bytes and
        // rounded up to whole jobs.
        let local = bound / m.normalization.to_f64();
        let job = node.job_in.to_f64();
        let jobs = (local / job).ceil().max(2.0);
        let cap = (jobs * job) as u64;
        println!(
            "  {:<10} bound {:>10}  -> buffer {:>10} local bytes ({} jobs)",
            m.name,
            fmt_bytes(m.backlog),
            cap,
            jobs as u64
        );
        caps.push(cap);
    }

    let (thr_unbounded, peak_unbounded) = run_with_caps(None);
    let (thr_sized, peak_sized) = run_with_caps(Some(caps.clone()));
    let halved: Vec<u64> = caps
        .iter()
        .zip(&pipeline().nodes)
        .map(|(&c, n)| (c / 2).max(n.job_in.to_f64() as u64 * 2))
        .collect();
    let (thr_halved, _) = run_with_caps(Some(halved));

    println!("\nsimulation (256 MiB, 200 MiB/s offered):");
    println!("  unbounded queues : {thr_unbounded:.1} MiB/s, peak backlog {peak_unbounded:.2} MiB");
    println!("  NC-sized buffers : {thr_sized:.1} MiB/s, peak backlog {peak_sized:.2} MiB");
    println!("  half-size buffers: {thr_halved:.1} MiB/s");

    // NC-sized buffers sacrifice < 2% throughput vs unbounded.
    assert!(
        thr_sized > 0.98 * thr_unbounded,
        "NC sizing lost throughput"
    );
    println!("\nNC-sized buffers preserve throughput (within 2%): OK");
}

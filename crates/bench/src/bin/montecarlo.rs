//! Monte-Carlo replication of the paper's simulations: run both
//! applications over many seeds in parallel (rayon) and report
//! mean ± spread for every simulated quantity, demonstrating that the
//! single-seed numbers in Tables 1/3 are representative. Also runs the
//! service-model ablation (uniform vs exponential vs deterministic
//! stages) across the replication set.
//!
//! Artifacts: `results/montecarlo.txt` and `results/montecarlo.json`.

use nc_apps::{bitw, blast};
use nc_streamsim::{simulate_in, ServiceModel, SimArena, SimResult};
use rayon::prelude::*;
use serde::Serialize;

const MIB: f64 = 1048576.0;
const SEEDS: u64 = 32;

#[derive(Clone, Debug, Serialize)]
struct Summary {
    what: String,
    n: usize,
    mean: f64,
    min: f64,
    max: f64,
    stddev: f64,
}

fn summarize(what: &str, xs: &[f64]) -> Summary {
    let n = xs.len();
    // Degenerate sizes: an empty sample has no mean (report zeros, not
    // NaN/±inf from 0/0 and empty folds); a single observation has no
    // spread, so its sample standard deviation is 0 by definition.
    if n == 0 {
        return Summary {
            what: what.into(),
            n,
            mean: 0.0,
            min: 0.0,
            max: 0.0,
            stddev: 0.0,
        };
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let stddev = if n < 2 {
        0.0
    } else {
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        var.sqrt()
    };
    Summary {
        what: what.into(),
        n,
        mean,
        min: xs.iter().copied().fold(f64::INFINITY, f64::min),
        max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        stddev,
    }
}

fn fmt(s: &Summary, unit: &str, scale: f64) -> String {
    format!(
        "  {:<44} {:>9.2} ± {:>6.3} {unit}  (range [{:.2}, {:.2}], n={})",
        s.what,
        s.mean * scale,
        s.stddev * scale,
        s.min * scale,
        s.max * scale,
        s.n
    )
}

/// Build the full replication artifact for a given replication count.
/// Everything emitted is a pure function of `seeds` (and `scale_rows`):
/// rayon's `collect` preserves input order, and every reduction is over
/// that ordered vector — so the output is byte-identical run-to-run for
/// any thread count. Wall-clock timings go to stdout only, never into
/// the returned artifact.
fn replicate(seeds: u64, scale_rows: bool) -> (String, Vec<Summary>) {
    let mut out = String::from("Monte-Carlo replication (parallel over seeds)\n\n");
    let mut all: Vec<Summary> = Vec::new();

    // --- BLAST (shorter runs than the headline config for 32x). ---
    // Each worker thread keeps one SimArena, so replications after the
    // first reuse the grown event calendar instead of reallocating.
    let blast_runs: Vec<SimResult> = (0..seeds)
        .into_par_iter()
        .map_init(SimArena::new, |arena, seed| {
            let mut cfg = blast::sim_config(seed);
            cfg.total_input = 256 << 20;
            simulate_in(arena, &blast::deployed_pipeline(), &cfg)
        })
        .collect();
    let thr: Vec<f64> = blast_runs.iter().map(|r| r.throughput / MIB).collect();
    let dmax: Vec<f64> = blast_runs.iter().map(|r| r.delay_max * 1e3).collect();
    let backlog: Vec<f64> = blast_runs.iter().map(|r| r.peak_backlog / MIB).collect();
    let s = summarize("BLAST sim throughput (paper 353 MiB/s)", &thr);
    out.push_str(&fmt(&s, "MiB/s", 1.0));
    out.push('\n');
    all.push(s);
    let s = summarize("BLAST sim max delay (paper 46.4 ms)", &dmax);
    out.push_str(&fmt(&s, "ms", 1.0));
    out.push('\n');
    all.push(s);
    let s = summarize("BLAST sim peak backlog (paper ~20 MiB)", &backlog);
    out.push_str(&fmt(&s, "MiB", 1.0));
    out.push('\n');
    all.push(s);

    // --- Bump in the wire. ---
    let bitw_runs: Vec<(SimResult, SimResult)> = (0..seeds)
        .into_par_iter()
        .map_init(SimArena::new, |arena, seed| {
            (
                simulate_in(arena, &bitw::sim_pipeline(), &bitw::sim_config(seed)),
                simulate_in(
                    arena,
                    &bitw::light_pipeline(),
                    &bitw::sim_config(seed ^ 0xABCD),
                ),
            )
        })
        .collect();
    let thr: Vec<f64> = bitw_runs.iter().map(|(r, _)| r.throughput / MIB).collect();
    let dmax: Vec<f64> = bitw_runs.iter().map(|(_, l)| l.delay_max * 1e6).collect();
    let s = summarize("BITW sim throughput (paper 61 MiB/s)", &thr);
    out.push_str(&fmt(&s, "MiB/s", 1.0));
    out.push('\n');
    all.push(s);
    let s = summarize("BITW light-load max delay (paper 36.7 us)", &dmax);
    out.push_str(&fmt(&s, "us", 1.0));
    out.push('\n');
    all.push(s);

    // --- Service-model ablation on the BITW bottleneck. ---
    let ablation_seeds = seeds.min(8);
    out.push_str("\nservice-model ablation (BITW, same load, 8 seeds each):\n");
    for model in [
        ServiceModel::Deterministic,
        ServiceModel::Uniform,
        ServiceModel::Exponential,
    ] {
        let runs: Vec<SimResult> = (0..ablation_seeds)
            .into_par_iter()
            .map_init(SimArena::new, |arena, seed| {
                let mut cfg = bitw::sim_config(seed);
                cfg.service_model = model;
                simulate_in(arena, &bitw::light_pipeline(), &cfg)
            })
            .collect();
        let dm: Vec<f64> = runs.iter().map(|r| r.delay_max * 1e6).collect();
        let s = summarize(&format!("{model:?} service, max delay"), &dm);
        out.push_str(&fmt(&s, "us", 1.0));
        out.push('\n');
        all.push(s);
    }
    out.push_str(
        "\nExponential (Markovian) stages queue hardest — the M/M/1 baseline's\n\
         assumption — while the paper's uniform model sits near deterministic:\n\
         the measured-variability gap behind the queueing prediction's optimism.\n",
    );

    // --- Scale rows (PR 3): the regimes the ROADMAP north-star cares
    // about. 1 GiB stochastic runs are affordable with tracing off
    // (constant-memory input window); the 16 GiB deterministic run
    // rides the cycle-jump fast-forward, so its wall time is set by the
    // warmup + drain, not the 100M+ virtual events it accounts for.
    if !scale_rows {
        return (out, all);
    }
    out.push_str("\nscale replication (trace off):\n");
    let bitw_1g: Vec<SimResult> = (0..4u64)
        .into_par_iter()
        .map_init(SimArena::new, |arena, seed| {
            let mut cfg = bitw::sim_config(seed);
            cfg.trace = false;
            cfg.total_input = 1 << 30;
            simulate_in(arena, &bitw::sim_pipeline(), &cfg)
        })
        .collect();
    let thr: Vec<f64> = bitw_1g.iter().map(|r| r.throughput / MIB).collect();
    let s = summarize("BITW 1 GiB sim throughput", &thr);
    out.push_str(&fmt(&s, "MiB/s", 1.0));
    out.push('\n');
    all.push(s);

    let mut cfg_det = bitw::sim_config(0);
    cfg_det.trace = false;
    cfg_det.total_input = 16u64 << 30;
    cfg_det.service_model = ServiceModel::Deterministic;
    cfg_det.queue_capacity = Some(64 << 10);
    let t = std::time::Instant::now();
    let det = simulate_in(&mut SimArena::new(), &bitw::sim_pipeline(), &cfg_det);
    let wall = t.elapsed().as_secs_f64();
    let s = summarize(
        "BITW 16 GiB deterministic throughput (cycle-jump)",
        &[det.throughput / MIB],
    );
    out.push_str(&fmt(&s, "MiB/s", 1.0));
    out.push('\n');
    // Wall time goes to stdout only: the emitted artifact must stay
    // byte-deterministic run-to-run (it is md5-compared in review).
    out.push_str(&format!(
        "  ({} virtual events fast-forwarded)\n",
        det.events
    ));
    println!(
        "16 GiB deterministic run: {} virtual events in {:.1} ms wall",
        det.events,
        wall * 1e3
    );
    all.push(s);

    (out, all)
}

fn main() {
    // NC_THREADS pins the replication fan-out width; `replicate` is a
    // pure function of the seed count, so the artifacts are
    // byte-identical for every worker count.
    let (out, all) = nc_bench::with_nc_threads(|| replicate(SEEDS, true));
    nc_bench::emit("montecarlo.txt", &out);
    nc_bench::emit_json("montecarlo.json", &all);
}

#[cfg(test)]
mod tests {
    use super::{replicate, summarize};

    /// The determinism contract behind the md5-compared artifact: the
    /// same replication count on the same ambient rayon pool produces
    /// byte-identical text and JSON, twice in a row.
    #[test]
    fn replication_artifact_is_byte_deterministic() {
        let (out1, all1) = replicate(3, false);
        let (out2, all2) = replicate(3, false);
        assert_eq!(out1, out2);
        let j1 = serde_json::to_string_pretty(&all1).unwrap();
        let j2 = serde_json::to_string_pretty(&all2).unwrap();
        assert_eq!(j1, j2);
    }

    #[test]
    fn summarize_empty_is_all_zeros_not_nan() {
        let s = summarize("none", &[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn summarize_single_observation_has_zero_stddev() {
        let s = summarize("one", &[42.5]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 42.5);
        assert_eq!(s.min, 42.5);
        assert_eq!(s.max, 42.5);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn summarize_pair_matches_sample_stddev() {
        let s = summarize("two", &[1.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        // Sample (n-1) stddev of {1, 3} is sqrt(2).
        assert!((s.stddev - 2.0f64.sqrt()).abs() < 1e-12);
    }
}

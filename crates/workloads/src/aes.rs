//! AES-256 (FIPS-197) with CBC mode and PKCS#7 padding, from scratch.
//!
//! Stands in for the Vitis 256-bit CBC AES kernel of the paper's
//! bump-in-the-wire application (§5). The S-box is generated at compile
//! time from its algebraic definition (multiplicative inverse in
//! GF(2⁸) followed by the affine transform), which removes the
//! possibility of table typos; known-answer tests pin the FIPS-197 and
//! NIST SP 800-38A vectors.
//!
//! This is a straightforward table-free software implementation tuned
//! for clarity and *measurability* (the paper's methodology measures
//! each kernel's throughput in isolation), not a hardened cryptographic
//! library: it makes no constant-time claims.

/// GF(2⁸) multiplication modulo the AES polynomial `x⁸+x⁴+x³+x+1`.
const fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
        i += 1;
    }
    p
}

/// Multiplicative inverse in GF(2⁸) (0 maps to 0), via a ↦ a²⁵⁴.
const fn gf_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    let mut result = 1u8;
    let mut base = a;
    let mut e = 254u32;
    while e > 0 {
        if e & 1 == 1 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        e >>= 1;
    }
    result
}

const fn build_sbox() -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut x = 0usize;
    while x < 256 {
        let b = gf_inv(x as u8);
        t[x] = b ^ b.rotate_left(1) ^ b.rotate_left(2) ^ b.rotate_left(3) ^ b.rotate_left(4) ^ 0x63;
        x += 1;
    }
    t
}

const fn invert_sbox(sbox: &[u8; 256]) -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut x = 0usize;
    while x < 256 {
        t[sbox[x] as usize] = x as u8;
        x += 1;
    }
    t
}

/// The AES S-box, generated from its algebraic definition.
pub static SBOX: [u8; 256] = build_sbox();
/// The inverse S-box.
pub static INV_SBOX: [u8; 256] = invert_sbox(&SBOX);

const NB: usize = 4; // columns in the state
const NK: usize = 8; // 256-bit key words
const NR: usize = 14; // rounds

/// An expanded AES-256 key schedule.
#[derive(Clone)]
pub struct Aes256 {
    round_keys: [[u8; 16]; NR + 1],
}

impl Aes256 {
    /// Expand a 256-bit key.
    pub fn new(key: &[u8; 32]) -> Aes256 {
        let mut w = [[0u8; 4]; NB * (NR + 1)];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            w[i].copy_from_slice(chunk);
        }
        let mut rcon = 1u8;
        for i in NK..NB * (NR + 1) {
            let mut temp = w[i - 1];
            if i % NK == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= rcon;
                rcon = gf_mul(rcon, 2);
            } else if i % NK == 4 {
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
            }
            for j in 0..4 {
                w[i][j] = w[i - NK][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; NR + 1];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Aes256 { round_keys }
    }

    /// Encrypt one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        add_round_key(block, &self.round_keys[0]);
        for r in 1..NR {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[r]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[NR]);
    }

    /// Decrypt one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        add_round_key(block, &self.round_keys[NR]);
        for r in (1..NR).rev() {
            inv_shift_rows(block);
            inv_sub_bytes(block);
            add_round_key(block, &self.round_keys[r]);
            inv_mix_columns(block);
        }
        inv_shift_rows(block);
        inv_sub_bytes(block);
        add_round_key(block, &self.round_keys[0]);
    }
}

// The state is stored FIPS-style: state[r][c] = buf[r + 4c].

fn add_round_key(s: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        s[i] ^= rk[i];
    }
}

fn sub_bytes(s: &mut [u8; 16]) {
    for b in s.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

fn inv_sub_bytes(s: &mut [u8; 16]) {
    for b in s.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

fn shift_rows(s: &mut [u8; 16]) {
    for r in 1..4 {
        let row = [s[r], s[r + 4], s[r + 8], s[r + 12]];
        for c in 0..4 {
            s[r + 4 * c] = row[(c + r) % 4];
        }
    }
}

fn inv_shift_rows(s: &mut [u8; 16]) {
    for r in 1..4 {
        let row = [s[r], s[r + 4], s[r + 8], s[r + 12]];
        for c in 0..4 {
            s[r + 4 * c] = row[(c + 4 - r) % 4];
        }
    }
}

fn mix_columns(s: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]];
        s[4 * c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
        s[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
        s[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
        s[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
    }
}

fn inv_mix_columns(s: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]];
        s[4 * c] = gf_mul(col[0], 14) ^ gf_mul(col[1], 11) ^ gf_mul(col[2], 13) ^ gf_mul(col[3], 9);
        s[4 * c + 1] =
            gf_mul(col[0], 9) ^ gf_mul(col[1], 14) ^ gf_mul(col[2], 11) ^ gf_mul(col[3], 13);
        s[4 * c + 2] =
            gf_mul(col[0], 13) ^ gf_mul(col[1], 9) ^ gf_mul(col[2], 14) ^ gf_mul(col[3], 11);
        s[4 * c + 3] =
            gf_mul(col[0], 11) ^ gf_mul(col[1], 13) ^ gf_mul(col[2], 9) ^ gf_mul(col[3], 14);
    }
}

/// CBC-mode errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CbcError {
    /// Ciphertext length not a positive multiple of 16.
    BadLength,
    /// PKCS#7 padding malformed after decryption.
    BadPadding,
}

impl std::fmt::Display for CbcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CbcError::BadLength => write!(f, "ciphertext length must be a positive multiple of 16"),
            CbcError::BadPadding => write!(f, "invalid PKCS#7 padding"),
        }
    }
}

impl std::error::Error for CbcError {}

/// Encrypt a raw multiple-of-16 buffer in CBC mode (no padding); used
/// directly by the known-answer tests and the streaming kernel.
pub fn cbc_encrypt_raw(aes: &Aes256, iv: &[u8; 16], data: &mut [u8]) {
    assert!(
        data.len().is_multiple_of(16),
        "cbc_encrypt_raw needs 16-byte blocks"
    );
    let mut prev = *iv;
    for block in data.chunks_exact_mut(16) {
        for i in 0..16 {
            block[i] ^= prev[i];
        }
        let b: &mut [u8; 16] = block.try_into().expect("16-byte chunk");
        aes.encrypt_block(b);
        prev = *b;
    }
}

/// Decrypt a raw multiple-of-16 CBC buffer (no padding removal).
pub fn cbc_decrypt_raw(aes: &Aes256, iv: &[u8; 16], data: &mut [u8]) -> Result<(), CbcError> {
    if !data.len().is_multiple_of(16) {
        return Err(CbcError::BadLength);
    }
    let mut prev = *iv;
    for block in data.chunks_exact_mut(16) {
        let b: &mut [u8; 16] = block.try_into().expect("16-byte chunk");
        let cipher = *b;
        aes.decrypt_block(b);
        for i in 0..16 {
            b[i] ^= prev[i];
        }
        prev = cipher;
    }
    Ok(())
}

/// CBC-encrypt `plaintext` with PKCS#7 padding; returns the ciphertext.
pub fn cbc_encrypt(aes: &Aes256, iv: &[u8; 16], plaintext: &[u8]) -> Vec<u8> {
    let pad = 16 - (plaintext.len() % 16);
    let mut buf = Vec::with_capacity(plaintext.len() + pad);
    buf.extend_from_slice(plaintext);
    buf.extend(std::iter::repeat_n(pad as u8, pad));
    cbc_encrypt_raw(aes, iv, &mut buf);
    buf
}

/// CBC-decrypt and strip PKCS#7 padding.
pub fn cbc_decrypt(aes: &Aes256, iv: &[u8; 16], ciphertext: &[u8]) -> Result<Vec<u8>, CbcError> {
    if ciphertext.is_empty() || !ciphertext.len().is_multiple_of(16) {
        return Err(CbcError::BadLength);
    }
    let mut buf = ciphertext.to_vec();
    cbc_decrypt_raw(aes, iv, &mut buf)?;
    let pad = *buf.last().expect("non-empty") as usize;
    if pad == 0 || pad > 16 || buf.len() < pad {
        return Err(CbcError::BadPadding);
    }
    if buf[buf.len() - pad..].iter().any(|&b| b as usize != pad) {
        return Err(CbcError::BadPadding);
    }
    buf.truncate(buf.len() - pad);
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn sbox_known_entries() {
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7c);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
        assert_eq!(INV_SBOX[0x63], 0x00);
        // Bijectivity.
        let mut seen = [false; 256];
        for &b in SBOX.iter() {
            assert!(!seen[b as usize]);
            seen[b as usize] = true;
        }
    }

    #[test]
    fn fips197_aes256_vector() {
        // FIPS-197 Appendix C.3.
        let key: [u8; 32] = hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
            .try_into()
            .unwrap();
        let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let aes = Aes256::new(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("8ea2b7ca516745bfeafc49904b496089"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn nist_sp800_38a_cbc_aes256() {
        // SP 800-38A F.2.5 CBC-AES256.Encrypt, first two blocks.
        let key: [u8; 32] = hex("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4")
            .try_into()
            .unwrap();
        let iv: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let mut data = hex("6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51");
        let aes = Aes256::new(&key);
        cbc_encrypt_raw(&aes, &iv, &mut data);
        assert_eq!(data[..16].to_vec(), hex("f58c4c04d6e5f1ba779eabfb5f7bfbd6"));
        assert_eq!(data[16..].to_vec(), hex("9cfc4e967edb808d679f777bc6702c7d"));
        cbc_decrypt_raw(&aes, &iv, &mut data).unwrap();
        assert_eq!(
            data,
            hex("6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51")
        );
    }

    #[test]
    fn cbc_roundtrip_with_padding() {
        let key = [7u8; 32];
        let iv = [9u8; 16];
        let aes = Aes256::new(&key);
        for len in [0usize, 1, 15, 16, 17, 100, 4096] {
            let msg: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            let ct = cbc_encrypt(&aes, &iv, &msg);
            assert_eq!(ct.len() % 16, 0);
            assert!(ct.len() > msg.len()); // padding always added
            let pt = cbc_decrypt(&aes, &iv, &ct).unwrap();
            assert_eq!(pt, msg, "len = {len}");
        }
    }

    #[test]
    fn cbc_rejects_malformed() {
        let aes = Aes256::new(&[1u8; 32]);
        let iv = [0u8; 16];
        assert_eq!(
            cbc_decrypt(&aes, &iv, &[]).unwrap_err(),
            CbcError::BadLength
        );
        assert_eq!(
            cbc_decrypt(&aes, &iv, &[0u8; 15]).unwrap_err(),
            CbcError::BadLength
        );
        // Random block almost surely yields bad padding.
        let garbage = [0xA5u8; 16];
        assert!(matches!(
            cbc_decrypt(&aes, &iv, &garbage),
            Err(CbcError::BadPadding) | Ok(_)
        ));
    }

    #[test]
    fn ciphertext_differs_from_plaintext_and_chains() {
        let aes = Aes256::new(&[3u8; 32]);
        let iv = [1u8; 16];
        // Two identical plaintext blocks must encrypt differently (CBC
        // chaining), unlike ECB.
        let msg = [0x42u8; 32];
        let mut raw = msg;
        cbc_encrypt_raw(&aes, &iv, &mut raw);
        assert_ne!(raw[..16], raw[16..]);
    }
}

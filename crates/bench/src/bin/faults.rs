//! Degraded-mode validation (DESIGN.md §11, EXPERIMENTS.md §E-faults):
//! run the faulted BITW and BLAST scenarios under each recovery policy
//! and compare every run against the *degraded* network-calculus
//! bounds of the same fault hypotheses. Containment is asserted row by
//! row — the binary aborts if any faulted run escapes its bounds.
//!
//! Artifact: `results/faults.csv`.

use nc_apps::{bitw, blast};
use nc_core::num::Rat;
use nc_core::pipeline::{Pipeline, PipelineModel};
use nc_streamsim::{simulate, RecoveryPolicy, SimConfig, SimResult};

/// Fill/drain slack on the throughput lower bound: the degraded
/// guarantee speaks about sustained operation, a finite run pays
/// pipeline fill and drain once (see the cross-model grid test, which
/// uses the same band).
const THR_BAND: f64 = 0.98;

struct Row {
    scenario: &'static str,
    policy: &'static str,
    seed: u64,
    delay_bound_s: f64,
    sim_delay_max_s: f64,
    backlog_bound_bytes: f64,
    sim_peak_backlog_bytes: f64,
    thr_lower_bytes_s: f64,
    sim_throughput_bytes_s: f64,
    dropped_bytes: f64,
    retries: u64,
    within: bool,
}

/// Evaluate one faulted run against its degraded model. Under `Drop`
/// recovery discarded volume frees capacity, so the throughput lower
/// bound does not apply (`check_thr = false`); delay and backlog
/// containment always must hold.
fn check(
    scenario: &'static str,
    policy: &'static str,
    seed: u64,
    model: &PipelineModel,
    r: &SimResult,
    check_thr: bool,
) -> Row {
    let d = model
        .delay_bound_concat()
        .as_finite()
        .expect("degraded model must stay underloaded")
        .to_f64();
    let x = model
        .backlog_bound_concat()
        .as_finite()
        .expect("finite degraded backlog bound")
        .to_f64();
    let tb = model.throughput_over(Rat::from_f64(r.makespan.max(1e-9)));
    let thr_lower = tb.lower.to_f64();
    let within = r.delay_max <= d * (1.0 + 1e-6)
        && r.peak_backlog <= x * (1.0 + 1e-6) + 1.0
        && (!check_thr || r.throughput >= thr_lower * THR_BAND);
    Row {
        scenario,
        policy,
        seed,
        delay_bound_s: d,
        sim_delay_max_s: r.delay_max,
        backlog_bound_bytes: x,
        sim_peak_backlog_bytes: r.peak_backlog,
        thr_lower_bytes_s: thr_lower,
        sim_throughput_bytes_s: r.throughput,
        dropped_bytes: r.dropped_bytes,
        retries: r.retries,
        within,
    }
}

fn run(p: &Pipeline, cfg: &SimConfig) -> SimResult {
    simulate(p, cfg)
}

fn main() {
    let mut rows: Vec<Row> = Vec::new();

    // --- BITW, blocking recovery: the semantics the degraded curves
    // cover directly. ---
    let p = bitw::faulted_pipeline();
    let m = p.build_model();
    for seed in [5, 17, 29, 41] {
        let r = run(&p, &bitw::faulted_sim_config(seed));
        rows.push(check("bitw", "block", seed, &m, &r, true));
    }

    // --- BITW, retry recovery on the network stage: the analysis side
    // models the retrying stage as a longer outage (window + backoff
    // cap + one re-execution). ---
    let pr = bitw::faulted_retry_pipeline();
    let mr = pr.build_model();
    for seed in [5, 17, 29] {
        let r = run(&p, &bitw::faulted_retry_sim_config(seed));
        rows.push(check("bitw", "retry", seed, &mr, &r, true));
    }

    // --- BITW, drop recovery on the network stage: delay/backlog
    // containment only (discarded volume frees capacity, so the
    // throughput floor does not apply to delivered bytes). ---
    for seed in [5, 17] {
        let mut cfg = bitw::faulted_sim_config(seed);
        if let Some(fs) = cfg.faults.as_mut() {
            fs.stages[2].recovery = RecoveryPolicy::Drop;
        }
        let r = run(&p, &cfg);
        rows.push(check("bitw", "drop", seed, &m, &r, false));
    }

    // --- BLAST, blocking recovery on the reduced-drive deployed
    // pipeline. ---
    let pb = blast::faulted_pipeline();
    let mb = pb.build_model();
    for seed in [9, 21] {
        let r = run(&pb, &blast::faulted_sim_config(seed));
        rows.push(check("blast", "block", seed, &mb, &r, true));
    }

    // --- Emit and assert. ---
    let mut csv = String::from(
        "scenario,policy,seed,delay_bound_s,sim_delay_max_s,\
         backlog_bound_bytes,sim_peak_backlog_bytes,\
         thr_lower_bytes_s,sim_throughput_bytes_s,\
         dropped_bytes,retries,within_bounds\n",
    );
    for r in &rows {
        csv.push_str(&format!(
            "{},{},{},{:.9},{:.9},{:.3},{:.3},{:.3},{:.3},{:.3},{},{}\n",
            r.scenario,
            r.policy,
            r.seed,
            r.delay_bound_s,
            r.sim_delay_max_s,
            r.backlog_bound_bytes,
            r.sim_peak_backlog_bytes,
            r.thr_lower_bytes_s,
            r.sim_throughput_bytes_s,
            r.dropped_bytes,
            r.retries,
            r.within,
        ));
    }
    nc_bench::emit("faults.csv", &csv);

    let escaped: Vec<String> = rows
        .iter()
        .filter(|r| !r.within)
        .map(|r| format!("{}/{}/seed {}", r.scenario, r.policy, r.seed))
        .collect();
    assert!(
        escaped.is_empty(),
        "faulted runs escaped their degraded NC bounds: {}",
        escaped.join(", ")
    );
    println!(
        "all {} faulted runs inside their degraded NC bounds",
        rows.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full faults table, at test scale: every scenario × policy ×
    /// seed row lands inside its degraded bounds.
    #[test]
    fn every_faulted_row_is_within_bounds() {
        let p = bitw::faulted_pipeline();
        let m = p.build_model();
        let r = run(&p, &bitw::faulted_sim_config(5));
        assert!(check("bitw", "block", 5, &m, &r, true).within);

        let mr = bitw::faulted_retry_pipeline().build_model();
        let r = run(&p, &bitw::faulted_retry_sim_config(5));
        assert!(check("bitw", "retry", 5, &mr, &r, true).within);

        let mut cfg = bitw::faulted_sim_config(5);
        cfg.faults.as_mut().unwrap().stages[2].recovery = RecoveryPolicy::Drop;
        let r = run(&p, &cfg);
        assert!(check("bitw", "drop", 5, &m, &r, false).within);
    }
}

//! Simulation configuration and derived per-node parameters.

use nc_core::pipeline::Pipeline;
use serde::{Deserialize, Serialize};

use crate::faults::FaultSchedule;

/// Knobs for one simulation run of a [`Pipeline`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// RNG seed; identical seeds reproduce runs bit-for-bit.
    pub seed: u64,
    /// Total data volume to push through, in bytes at the pipeline
    /// input (normalized units).
    pub total_input: u64,
    /// Bytes emitted by the source per arrival event (input units).
    /// Defaults to the first node's job size when `None`.
    pub source_chunk: Option<u64>,
    /// Capacity of each inter-stage queue in *local* bytes of the
    /// producing stage. `None` = unbounded (the paper's default; it
    /// lists queue-overflow handling as future work).
    pub queue_capacity: Option<u64>,
    /// Per-queue capacity override in local bytes of each node's input
    /// (`queue_capacities[i]` feeds node `i`). Overrides
    /// `queue_capacity` where set; must be at least the node's job size
    /// (checked by the simulator). Models the Mercator limited queues
    /// of §4.1.
    pub queue_capacities: Option<Vec<u64>>,
    /// Record cumulative input/output traces (for Figures 4 and 10).
    ///
    /// **Memory cap.** With `trace: false` (the scale setting) the
    /// engines keep only the in-flight window of the input stairstep —
    /// peak simulation memory is O(data in flight in the pipeline),
    /// independent of `total_input`. With `trace: true` the full
    /// `(t, bytes)` stairsteps are retained and returned (one entry per
    /// source emission and per sink delivery — O(events) memory), and
    /// deterministic cycle-jump fast-forward is disabled, since a
    /// skipped cycle cannot emit trace points. Keep tracing for figure
    /// runs; turn it off for multi-GiB inputs.
    pub trace: bool,
    /// Service-time model for every stage. The paper's simulator uses
    /// uniform(min,max) execution times; `Exponential` reproduces the
    /// Markovian assumption of the M/M/1 baseline (ablation), and
    /// `Deterministic` uses the average rate.
    pub service_model: ServiceModel,
    /// Allow the deterministic engine to fast-forward periodic steady
    /// states in closed form (default `true`; see `DESIGN.md` §10).
    /// Results are bit-identical either way — the flag exists for
    /// ablation and debugging. Ignored (no-op) by the stochastic
    /// service models, where every service draw must be realized, and
    /// disabled by `trace: true`.
    #[serde(default = "default_fast_forward")]
    pub fast_forward: bool,
    /// Deterministic fault-injection schedule (stalls, derates, outages
    /// with per-stage recovery policies). `None` — and any schedule
    /// with no effective faults — runs the exact fault-free code path,
    /// bit-identical to the unfaulted simulator. Validated against the
    /// pipeline at simulation setup.
    #[serde(default)]
    pub faults: Option<FaultSchedule>,
    /// Run the stochastic engines stage-parallel with this many worker
    /// threads (conservative PDES with NC-derived lookahead; see
    /// `DESIGN.md` §12). `None` (the default) keeps the sequential
    /// thinned engine — existing configurations are untouched. The
    /// parallel engine draws per-stage RNG streams keyed by
    /// `(seed, stage)`, so its sample paths differ from the sequential
    /// engine's, but results are bit-identical for every worker count
    /// (`workers = Some(1)` ≡ `workers = Some(n)`). Bounded-queue
    /// configurations and `ServiceModel::Deterministic` fall back to
    /// the sequential engines.
    #[serde(default)]
    pub workers: Option<usize>,
}

fn default_fast_forward() -> bool {
    true
}

/// How per-job execution times are drawn from a stage's measured
/// min/avg/max rates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServiceModel {
    /// Uniform on `[job/rate_max, job/rate_min]` — the paper's model.
    Uniform,
    /// Exponential with mean `job/rate_avg` — the M/M/1 baseline's
    /// assumption, for the ablation quantifying its optimism.
    Exponential,
    /// Exactly `job/rate_avg` every time.
    Deterministic,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xC0FFEE,
            total_input: 64 << 20,
            source_chunk: None,
            queue_capacity: None,
            queue_capacities: None,
            trace: true,
            service_model: ServiceModel::Uniform,
            fast_forward: true,
            faults: None,
            workers: None,
        }
    }
}

/// Per-node parameters derived from a [`Pipeline`] in simulator units:
/// integer local bytes and f64 seconds.
#[derive(Clone, Debug)]
pub(crate) struct NodeParams {
    pub name: String,
    /// Local bytes consumed per job.
    pub job_in: u64,
    /// Local bytes emitted per job.
    pub job_out: u64,
    /// Execution-time bounds per job, seconds: `job_in / rate_max` to
    /// `job_in / rate_min` (the paper's uniform service model).
    pub exec_min: f64,
    pub exec_max: f64,
    /// Mean execution time per job (`job_in / rate_avg`).
    pub exec_avg: f64,
    /// One-time startup latency before the first job (the rate-latency
    /// `T_n`).
    pub startup: f64,
    /// Input normalization factor: local bytes at this node's input ×
    /// `norm_in` = input-referred bytes.
    pub norm_in: f64,
}

pub(crate) fn derive_params(p: &Pipeline) -> Vec<NodeParams> {
    let norms = p.normalization_factors();
    p.nodes
        .iter()
        .zip(norms)
        .map(|(n, norm)| {
            let job_in = n.job_in.to_f64().round() as u64;
            let job_out = n.job_out.to_f64().round() as u64;
            assert!(job_in > 0 && job_out > 0, "node '{}': job sizes", n.name);
            let jin = n.job_in.to_f64();
            NodeParams {
                name: n.name.clone(),
                job_in,
                job_out,
                exec_min: jin / n.rates.max.to_f64(),
                exec_max: jin / n.rates.min.to_f64(),
                exec_avg: jin / n.rates.avg.to_f64(),
                startup: n.latency.to_f64(),
                norm_in: norm.to_f64(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_core::num::Rat;
    use nc_core::pipeline::{Node, NodeKind, Source, StageRates};

    #[test]
    fn params_derive_exec_bounds_and_norms() {
        let p = Pipeline::new(
            "t",
            Source {
                rate: Rat::int(100),
                burst: Rat::int(8),
            },
            vec![
                Node::new(
                    "a",
                    NodeKind::Compute,
                    StageRates::new(Rat::int(50), Rat::int(75), Rat::int(100)),
                    Rat::new(1, 2),
                    Rat::int(8),
                    Rat::int(2),
                ),
                Node::new(
                    "b",
                    NodeKind::Compute,
                    StageRates::fixed(Rat::int(10)),
                    Rat::ZERO,
                    Rat::int(2),
                    Rat::int(2),
                ),
            ],
        );
        let params = derive_params(&p);
        assert_eq!(params[0].job_in, 8);
        assert_eq!(params[0].job_out, 2);
        assert!((params[0].exec_min - 8.0 / 100.0).abs() < 1e-12);
        assert!((params[0].exec_max - 8.0 / 50.0).abs() < 1e-12);
        assert!((params[0].startup - 0.5).abs() < 1e-12);
        assert_eq!(params[0].norm_in, 1.0);
        // Node b sees quarter-volume data: norm 4.
        assert_eq!(params[1].norm_in, 4.0);
    }
}

//! Vendored ChaCha-based RNGs.
//!
//! A genuine ChaCha keystream generator (D. J. Bernstein's quarter-round
//! network) exposed through the vendored `rand` traits. Streams are
//! fully determined by the seed, so `seed_from_u64(k)` reproduces runs
//! bit-for-bit — the property the simulators rely on. Exact keystream
//! equality with the upstream `rand_chacha` crate is *not* guaranteed
//! (nothing in this workspace depends on golden keystream values).

use rand::{RngCore, SeedableRng};

const ROUNDS_CHACHA8: usize = 8;
const ROUNDS_CHACHA12: usize = 12;
const ROUNDS_CHACHA20: usize = 20;

#[derive(Clone, Debug)]
struct ChaChaCore<const ROUNDS: usize> {
    /// Key (words 4..12 of the initial state).
    key: [u32; 8],
    /// 64-bit block counter (words 12..14); nonce words are zero.
    counter: u64,
    /// Buffered keystream block.
    buf: [u32; 16],
    /// Next unread word index in `buf`; 16 = exhausted.
    idx: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const ROUNDS: usize> ChaChaCore<ROUNDS> {
    fn from_seed_bytes(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().unwrap());
        }
        ChaChaCore {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }

    fn refill(&mut self) {
        // "expand 32-byte k"
        let mut state = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial) {
            *word = word.wrapping_add(init);
        }
        self.buf = state;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.idx == 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:literal) => {
        #[doc = $doc]
        #[derive(Clone, Debug)]
        pub struct $name(ChaChaCore<$rounds>);

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: [u8; 32]) -> Self {
                $name(ChaChaCore::from_seed_bytes(seed))
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                self.0.next_word()
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.0.next_word() as u64;
                let hi = self.0.next_word() as u64;
                (hi << 32) | lo
            }
        }
    };
}

chacha_rng!(
    ChaCha8Rng,
    ROUNDS_CHACHA8,
    "ChaCha with 8 rounds — the workspace's standard fast reproducible RNG."
);
chacha_rng!(ChaCha12Rng, ROUNDS_CHACHA12, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, ROUNDS_CHACHA20, "ChaCha with 20 rounds.");

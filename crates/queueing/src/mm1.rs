//! The M/M/1 queue: Poisson arrivals, exponential service, one server.
//!
//! This is the building block of the baseline model the paper compares
//! against (Faber et al. [12] use M/M/1 queueing networks): it yields
//! the steady-state mean flow quantities but — as the paper argues in
//! §1 — no worst-case bounds, no data-bundling effects, and optimistic
//! throughput when stages are not Markovian.

use serde::Serialize;

/// Steady-state metrics of a stable M/M/1 queue.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Mm1 {
    /// Arrival rate λ (jobs or bytes per second).
    pub lambda: f64,
    /// Service rate µ.
    pub mu: f64,
    /// Utilization ρ = λ/µ.
    pub rho: f64,
    /// Mean number in system `L = ρ/(1−ρ)`.
    pub l: f64,
    /// Mean number in queue `Lq = ρ²/(1−ρ)`.
    pub lq: f64,
    /// Mean time in system `W = 1/(µ−λ)`.
    pub w: f64,
    /// Mean waiting time `Wq = ρ/(µ−λ)`.
    pub wq: f64,
}

/// Errors for unstable or invalid queue parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum QueueError {
    /// λ or µ not finite and positive.
    BadParameters,
    /// ρ ≥ 1: the queue grows without bound — the same divergence the
    /// network-calculus model reports for `R_α > R_β` (paper §3).
    Unstable,
}

impl std::fmt::Display for QueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueError::BadParameters => write!(f, "rates must be finite and > 0"),
            QueueError::Unstable => write!(f, "unstable queue (rho >= 1)"),
        }
    }
}

impl std::error::Error for QueueError {}

impl Mm1 {
    /// Analyze an M/M/1 queue with arrival rate `lambda` and service
    /// rate `mu`.
    pub fn new(lambda: f64, mu: f64) -> Result<Mm1, QueueError> {
        if !(lambda.is_finite() && mu.is_finite() && lambda > 0.0 && mu > 0.0) {
            return Err(QueueError::BadParameters);
        }
        let rho = lambda / mu;
        if rho >= 1.0 {
            return Err(QueueError::Unstable);
        }
        let l = rho / (1.0 - rho);
        let w = 1.0 / (mu - lambda);
        Ok(Mm1 {
            lambda,
            mu,
            rho,
            l,
            lq: rho * rho / (1.0 - rho),
            w,
            wq: rho / (mu - lambda),
        })
    }

    /// Probability of exactly `n` customers in the system:
    /// `p_n = (1−ρ)ρⁿ`.
    pub fn p_n(&self, n: u32) -> f64 {
        (1.0 - self.rho) * self.rho.powi(n as i32)
    }

    /// Probability that the system holds more than `n` customers:
    /// `P(N > n) = ρ^{n+1}` — the M/M/1 stand-in for a buffer-overflow
    /// estimate (contrast with the hard backlog bound of network
    /// calculus).
    pub fn p_more_than(&self, n: u32) -> f64 {
        self.rho.powi(n as i32 + 1)
    }

    /// `q`-quantile of the sojourn-time distribution
    /// (exponential with rate µ−λ): `-ln(1−q)·W`.
    pub fn sojourn_quantile(&self, q: f64) -> f64 {
        assert!((0.0..1.0).contains(&q));
        -(1.0 - q).ln() * self.w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_values() {
        let q = Mm1::new(2.0, 5.0).unwrap();
        assert!((q.rho - 0.4).abs() < 1e-12);
        assert!((q.l - 2.0 / 3.0).abs() < 1e-12);
        assert!((q.w - 1.0 / 3.0).abs() < 1e-12);
        assert!((q.wq - q.w + 1.0 / q.mu).abs() < 1e-12);
        assert!((q.lq - q.l + q.rho).abs() < 1e-12);
    }

    #[test]
    fn littles_law() {
        let q = Mm1::new(3.0, 4.0).unwrap();
        assert!((q.l - q.lambda * q.w).abs() < 1e-12);
        assert!((q.lq - q.lambda * q.wq).abs() < 1e-12);
    }

    #[test]
    fn instability_detected() {
        assert_eq!(Mm1::new(5.0, 5.0).unwrap_err(), QueueError::Unstable);
        assert_eq!(Mm1::new(6.0, 5.0).unwrap_err(), QueueError::Unstable);
        assert_eq!(Mm1::new(-1.0, 5.0).unwrap_err(), QueueError::BadParameters);
        assert_eq!(
            Mm1::new(1.0, f64::NAN).unwrap_err(),
            QueueError::BadParameters
        );
    }

    #[test]
    fn distribution_sums_to_one() {
        let q = Mm1::new(2.0, 5.0).unwrap();
        let total: f64 = (0..200).map(|n| q.p_n(n)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((q.p_more_than(0) - q.rho).abs() < 1e-12);
    }

    #[test]
    fn sojourn_quantiles_increase() {
        let q = Mm1::new(2.0, 5.0).unwrap();
        assert!(q.sojourn_quantile(0.5) < q.sojourn_quantile(0.99));
        // Median of Exp(3) = ln(2)/3.
        assert!((q.sojourn_quantile(0.5) - 2f64.ln() / 3.0).abs() < 1e-12);
    }
}

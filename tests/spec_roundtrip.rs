//! The JSON spec surface: the shipped example spec parses, models, and
//! simulates; Pipeline serde round-trips; exact `[num, den]` rationals
//! are honoured.

use streamcalc::core::num::{rat, Rat};
use streamcalc::core::pipeline::Pipeline;
use streamcalc::core::Regime;
use streamcalc::streamsim::{simulate, SimConfig};

#[test]
fn shipped_example_spec_parses_and_models() {
    let raw = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/specs/example_pipeline.json"
    ))
    .expect("example spec present");
    let p: Pipeline = serde_json::from_str(&raw).expect("spec parses");
    p.validate().expect("spec valid");
    assert_eq!(p.nodes.len(), 4);
    let m = p.build_model();
    assert_eq!(m.regime(), Regime::Underloaded);
    assert!(m.backlog_bound().is_finite());
    // And it simulates.
    let r = simulate(
        &p,
        &SimConfig {
            total_input: 16 << 20,
            ..SimConfig::default()
        },
    );
    assert!(r.throughput > 0.0);
}

#[test]
fn pipeline_serde_roundtrip() {
    let p = streamcalc::apps::bitw::pipeline(streamcalc::apps::bitw::Scenario::Average);
    let json = serde_json::to_string(&p).expect("serialize");
    let back: Pipeline = serde_json::from_str(&json).expect("deserialize");
    back.validate().expect("roundtrip valid");
    assert_eq!(back.nodes.len(), p.nodes.len());
    // Float-serialized rates survive within continued-fraction accuracy.
    for (a, b) in p.nodes.iter().zip(&back.nodes) {
        assert_eq!(a.name, b.name);
        let (x, y) = (a.rates.avg.to_f64(), b.rates.avg.to_f64());
        assert!((x - y).abs() <= 1e-6 * x.abs().max(1.0), "{x} vs {y}");
    }
    // Normalization (exact in the original) is preserved closely enough
    // for identical regime/bottleneck classification.
    let (m1, m2) = (p.build_model(), back.build_model());
    let (r1, r2) = (
        m1.bottleneck_rate_avg.to_f64(),
        m2.bottleneck_rate_avg.to_f64(),
    );
    assert!((r1 - r2).abs() <= 1e-5 * r1);
}

#[test]
fn exact_rationals_in_json() {
    let r: Rat = serde_json::from_str("[1, 3]").unwrap();
    assert_eq!(r, rat(1, 3));
    let r: Rat = serde_json::from_str("0.25").unwrap();
    assert_eq!(r, rat(1, 4));
    let r: Rat = serde_json::from_str("1048576").unwrap();
    assert_eq!(r, Rat::int(1 << 20));
    assert!(serde_json::from_str::<Rat>("[1, 0]").is_err());
    assert!(serde_json::from_str::<Rat>("\"x\"").is_err());
}

#[test]
fn malformed_specs_rejected() {
    assert!(serde_json::from_str::<Pipeline>("{}").is_err());
    let missing_nodes = r#"{"name":"x","source":{"rate":1,"burst":0},"nodes":[]}"#;
    let p: Pipeline = serde_json::from_str(missing_nodes).unwrap();
    assert!(p.validate().is_err());
    let bad_rates = r#"{
        "name":"x","source":{"rate":100,"burst":0},
        "nodes":[{"name":"n","kind":"Compute",
                  "rates":{"min":200,"avg":150,"max":300},
                  "latency":0,"job_in":10,"job_out":10}]}"#;
    let p: Pipeline = serde_json::from_str(bad_rates).unwrap();
    assert!(p.validate().is_err(), "min > avg must fail validation");
}

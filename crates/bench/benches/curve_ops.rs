//! Microbenchmarks of the exact min-plus algebra, including the
//! design-choice ablations called out in DESIGN.md §6: closed-form
//! shortcuts vs the general envelope algorithm, and the cost of
//! packetization and pipeline-scale concatenation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use nc_core::curve::{shapes, Curve};
use nc_core::num::Rat;
use nc_core::ops::{
    min_plus_conv, min_plus_conv_general, min_plus_deconv, min_plus_deconv_general,
    subadditive_closure,
};
use nc_core::{bounds, packetizer};

fn lb(r: i64, b: i64) -> Curve {
    shapes::leaky_bucket(Rat::int(r), Rat::int(b))
}
fn rl(r: i64, t: i64) -> Curve {
    shapes::rate_latency(Rat::int(r), Rat::int(t))
}

/// A staircase-plus-rate curve with `n` breakpoints: the general-path
/// stressor (neither concave nor convex).
fn stair(n: usize) -> Curve {
    shapes::truncated_staircase(Rat::int(3), Rat::int(2), n)
}

fn bench_conv(c: &mut Criterion) {
    let mut g = c.benchmark_group("conv");
    // Closed-form fast paths.
    g.bench_function("concave_fastpath_lb_lb", |b| {
        let (x, y) = (lb(2, 5), lb(1, 9));
        b.iter(|| black_box(min_plus_conv(&x, &y)))
    });
    g.bench_function("delay_fastpath", |b| {
        let (x, y) = (rl(3, 2), shapes::delta(Rat::int(4)));
        b.iter(|| black_box(min_plus_conv(&x, &y)))
    });
    // General envelope path, growing operand complexity.
    for n in [2usize, 4, 8, 16] {
        g.bench_with_input(BenchmarkId::new("general_stair_x_rl", n), &n, |b, &n| {
            let (x, y) = (stair(n), rl(2, 3));
            b.iter(|| black_box(min_plus_conv(&x, &y)))
        });
    }
    g.finish();
}

fn bench_deconv(c: &mut Criterion) {
    let mut g = c.benchmark_group("deconv");
    g.bench_function("lb_by_rl", |b| {
        let (x, y) = (lb(2, 5), rl(3, 4));
        b.iter(|| black_box(min_plus_deconv(&x, &y)))
    });
    for n in [4usize, 16] {
        g.bench_with_input(BenchmarkId::new("stair_by_rl", n), &n, |b, &n| {
            let (x, y) = (stair(n), rl(4, 1));
            b.iter(|| black_box(min_plus_deconv(&x, &y)))
        });
    }
    g.finish();
}

fn bench_bounds(c: &mut Criterion) {
    let mut g = c.benchmark_group("bounds");
    let (alpha, beta, gamma) = (lb(2, 5), rl(3, 4), shapes::constant_rate(Rat::int(4)));
    g.bench_function("backlog", |b| {
        b.iter(|| black_box(bounds::backlog_bound(&alpha, &beta)))
    });
    g.bench_function("delay", |b| {
        b.iter(|| black_box(bounds::delay_bound(&alpha, &beta)))
    });
    g.bench_function("output_with_max", |b| {
        b.iter(|| black_box(bounds::output_bound_with_max(&alpha, &gamma, &beta)))
    });
    g.bench_function("packetize_triple", |b| {
        b.iter(|| black_box(packetizer::packetize(&alpha, &beta, &gamma, Rat::int(3))))
    });
    g.finish();
}

fn bench_pipeline_scale(c: &mut Criterion) {
    // Concatenating k rate-latency servers: the §4.2 composition.
    let mut g = c.benchmark_group("concat");
    for k in [2usize, 4, 8, 16] {
        g.bench_with_input(BenchmarkId::new("rate_latency_chain", k), &k, |b, &k| {
            let curves: Vec<Curve> = (0..k)
                .map(|i| rl(10 + i as i64, 1 + (i as i64 % 3)))
                .collect();
            b.iter(|| {
                let mut acc = curves[0].clone();
                for c in &curves[1..] {
                    acc = min_plus_conv(&acc, c);
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

/// Ablation (DESIGN.md §6): exact rational bounds vs grid-sampled f64
/// estimates. Exactness costs time; this quantifies how much.
fn bench_exact_vs_sampled(c: &mut Criterion) {
    use nc_core::curve::approx::{sampled_backlog, sampled_delay};
    use nc_core::ops::{horizontal_deviation, vertical_deviation};
    let alpha = lb(2, 5).min(&shapes::constant_rate(Rat::int(7)));
    let beta = rl(3, 4).add(&rl(1, 1));
    let mut g = c.benchmark_group("ablation_exact_vs_sampled");
    g.bench_function("exact_backlog_delay", |b| {
        b.iter(|| {
            black_box(vertical_deviation(&alpha, &beta));
            black_box(horizontal_deviation(&alpha, &beta));
        })
    });
    for n in [64usize, 1024] {
        g.bench_with_input(BenchmarkId::new("sampled", n), &n, |b, &n| {
            b.iter(|| {
                black_box(sampled_backlog(&alpha, &beta, Rat::int(50), n));
                black_box(sampled_delay(&alpha, &beta, Rat::int(50), n));
            })
        });
    }
    g.finish();
}

/// The tracked perf baseline's headline ablation: every dispatcher fast
/// path benched side by side with the reference strategy-envelope
/// algorithm on identical operands (the property tests pin the two to
/// exact curve equality).
fn bench_fast_vs_reference(c: &mut Criterion) {
    let mut g = c.benchmark_group("fast_vs_reference");

    // Convex ⊗ convex: O(n+m) slope merge vs full Minkowski envelope.
    let cx = rl(1, 0).max(&rl(4, 3)).max(&rl(9, 6));
    let cy = rl(2, 1).max(&rl(6, 5)).max(&rl(12, 9));
    g.bench_function("conv_convex_fast", |b| {
        b.iter(|| black_box(min_plus_conv(&cx, &cy)))
    });
    g.bench_function("conv_convex_reference", |b| {
        b.iter(|| black_box(min_plus_conv_general(&cx, &cy)))
    });

    // Concave ⊗ concave: offset-aware min vs the envelope.
    let kx = lb(2, 5).min(&lb(1, 9));
    let ky = lb(3, 4).min(&lb(1, 12));
    g.bench_function("conv_concave_fast", |b| {
        b.iter(|| black_box(min_plus_conv(&kx, &ky)))
    });
    g.bench_function("conv_concave_reference", |b| {
        b.iter(|| black_box(min_plus_conv_general(&kx, &ky)))
    });

    // Mixed-shape operands: same general algorithm, but the fast entry
    // point prunes dominated/collapsed strategies.
    let (sx, sy) = (stair(16), stair(16));
    g.bench_function("conv_stair16_pruned", |b| {
        b.iter(|| black_box(min_plus_conv(&sx, &sy)))
    });
    g.bench_function("conv_stair16_reference", |b| {
        b.iter(|| black_box(min_plus_conv_general(&sx, &sy)))
    });

    // Deconvolution: concave ⊘ rate-latency closed form vs envelope.
    let dx = lb(2, 5).min(&lb(1, 9));
    let dy = rl(3, 4);
    g.bench_function("deconv_concave_rl_fast", |b| {
        b.iter(|| black_box(min_plus_deconv(&dx, &dy)))
    });
    g.bench_function("deconv_concave_rl_reference", |b| {
        b.iter(|| black_box(min_plus_deconv_general(&dx, &dy)))
    });

    // Sub-additive closure of a concave arrival curve: fixpoint
    // recognized up front vs one (fast) verification convolution.
    let ka = lb(2, 5).min(&lb(1, 9));
    g.bench_function("closure_concave_fast", |b| {
        b.iter(|| black_box(subadditive_closure(&ka, 8)))
    });

    g.finish();
}

fn bench_closure(c: &mut Criterion) {
    c.bench_function("subadditive_closure_rl_8iters", |b| {
        let f = rl(3, 2);
        b.iter(|| black_box(subadditive_closure(&f, 8)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_conv, bench_deconv, bench_bounds, bench_pipeline_scale, bench_exact_vs_sampled, bench_fast_vs_reference, bench_closure
}
criterion_main!(benches);

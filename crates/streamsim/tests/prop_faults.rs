//! Fault-layer properties (DESIGN.md §11): the degraded network-calculus
//! bounds must contain every faulted simulation run; fault injection must
//! preserve the engine-equivalence invariants of DESIGN.md §10 (thinned ≡
//! reference bitwise, det fast-forward on ≡ off bitwise); and a zero-fault
//! schedule must be bit-identical to running with no schedule at all.

use nc_core::curve::{Breakpoint, Curve};
use nc_core::num::{Rat, Value};
use nc_core::ops::min_plus_conv;
use nc_core::pipeline::{Node, NodeKind, Pipeline, Source, StageRates};
use nc_core::{FaultModel, Regime};
use nc_streamsim::{
    simulate, simulate_reference, FaultSchedule, Outage, RecoveryPolicy, ServiceModel, SimConfig,
    StageFault, StallSpec,
};
use proptest::prelude::*;

/// Relative slack for float↔rational conversions.
const EPS: f64 = 1e-6;

/// Build the exact cumulative-input staircase observed in the run.
fn input_staircase(steps: &[(f64, f64)]) -> Curve {
    let mut bps = Vec::with_capacity(steps.len() + 1);
    let mut level = 0.0f64;
    if steps.first().is_none_or(|s| s.0 > 0.0) {
        bps.push(Breakpoint::cont(Rat::ZERO, Value::ZERO, Rat::ZERO));
    }
    for &(t, cum) in steps {
        bps.push(Breakpoint {
            x: Rat::from_f64(t),
            v: Value::finite(Rat::from_f64(level)),
            v_right: Value::finite(Rat::from_f64(cum)),
            slope: Rat::ZERO,
        });
        level = cum;
    }
    Curve::from_breakpoints(bps).expect("staircase valid")
}

// ---------------------------------------------------------------------
// Property (a): degraded NC bounds contain the faulted simulation.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct NodeGen {
    rmin: i64,
    spread: i64,
    job_in_log2: u32,
    job_out_log2: u32,
    latency_ms: i64,
    fault: Option<FaultModel>,
}

/// One of the three fault hypotheses (or none), with parameters exact in
/// rationals so the analysis side and the `from_pipeline` realization
/// agree on the numbers.
fn arb_fault() -> impl Strategy<Value = Option<FaultModel>> {
    prop_oneof![
        Just(None),
        // Stall budget is period / 2^k for k ≥ 2: at most a quarter of
        // the window, keeping the degraded pipeline plausibly loaded.
        (5i64..100, 2u32..6).prop_map(|(per_ms, k)| Some(FaultModel::PeriodicStall {
            budget: Rat::new(per_ms as i128, 1000 * (1i128 << k)),
            period: Rat::new(per_ms as i128, 1000),
        })),
        (5i64..40).prop_map(|pct| Some(FaultModel::RateDerate {
            delta: Rat::new(pct as i128, 100),
        })),
        (1i64..200).prop_map(|ms| Some(FaultModel::TransientOutage {
            duration: Rat::new(ms as i128, 1000),
        })),
    ]
}

/// Random underloaded pipelines carrying per-stage fault hypotheses —
/// the underload filter runs on the *degraded* model, so every case has
/// finite degraded bounds to test against.
fn arb_faulted_pipeline() -> impl Strategy<Value = (Pipeline, u64)> {
    let node = (
        2_000i64..20_000,
        0i64..5_000,
        4u32..8,
        4u32..8,
        0i64..20,
        arb_fault(),
    )
        .prop_map(|(rmin, spread, ji, jo, lat, fault)| NodeGen {
            rmin,
            spread,
            job_in_log2: ji,
            job_out_log2: jo,
            latency_ms: lat,
            fault,
        });
    (
        proptest::collection::vec(node, 1..4),
        500i64..1_500, // source rate, below the degraded min rates
        1u64..40,      // number of source chunks
    )
        .prop_map(|(gens, src_rate, chunks)| {
            let nodes: Vec<Node> = gens
                .iter()
                .enumerate()
                .map(|(i, g)| {
                    let mut n = Node::new(
                        format!("n{i}"),
                        NodeKind::Compute,
                        StageRates::new(
                            Rat::int(g.rmin),
                            Rat::int(g.rmin + g.spread / 2),
                            Rat::int(g.rmin + g.spread),
                        ),
                        Rat::new(g.latency_ms as i128, 1000),
                        Rat::int(1 << g.job_in_log2),
                        Rat::int(1 << g.job_out_log2),
                    );
                    n.fault = g.fault;
                    n
                })
                .collect();
            let chunk = 1u64 << gens[0].job_in_log2;
            let p = Pipeline::new(
                "prop-faults",
                Source {
                    rate: Rat::int(src_rate),
                    burst: Rat::int(chunk as i64),
                },
                nodes,
            );
            (p, chunk * chunks)
        })
        .prop_filter("degraded model underloaded", |(p, _)| {
            let m = p.build_model();
            m.regime() == Regime::Underloaded
                && m.per_node.iter().all(|n| n.regime == Regime::Underloaded)
        })
        .prop_filter("some stage actually faulted", |(p, _)| {
            p.nodes.iter().any(|n| n.fault.is_some())
        })
}

// ---------------------------------------------------------------------
// Properties (b)–(d): engine equivalence under arbitrary schedules.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct GenCase {
    pipeline: Pipeline,
    chunk: u64,
    total: u64,
    caps: Option<Vec<u64>>,
}

/// Random 1–3 node pipelines (free rates: spans under- and overloaded),
/// optional bounded queues, totals with a partial residual chunk — the
/// same shape `prop_engine_equiv` uses, so fault injection is tested on
/// top of every engine path that is already known equivalent.
fn arb_case() -> impl Strategy<Value = GenCase> {
    let node = (500i64..20_000, 0i64..5_000, 4u32..8, 4u32..8, 0i64..20).prop_map(
        |(rmin, spread, ji, jo, lat)| NodeGen {
            rmin,
            spread,
            job_in_log2: ji,
            job_out_log2: jo,
            latency_ms: lat,
            fault: None,
        },
    );
    (
        proptest::collection::vec(node, 1..4),
        200i64..30_000,
        1u64..4,
        1u64..30,
        0u64..64,
        (any::<bool>(), proptest::collection::vec(1u64..6, 3)),
    )
        .prop_map(|(gens, src_rate, chunk_mult, chunks, tail, caps_gen)| {
            let (bounded, cap_mults) = caps_gen;
            let cap_mults = bounded.then_some(cap_mults);
            let nodes: Vec<Node> = gens
                .iter()
                .enumerate()
                .map(|(i, g)| {
                    Node::new(
                        format!("n{i}"),
                        NodeKind::Compute,
                        StageRates::new(
                            Rat::int(g.rmin),
                            Rat::int(g.rmin + g.spread / 2),
                            Rat::int(g.rmin + g.spread),
                        ),
                        Rat::new(g.latency_ms as i128, 1000),
                        Rat::int(1 << g.job_in_log2),
                        Rat::int(1 << g.job_out_log2),
                    )
                })
                .collect();
            let chunk = chunk_mult << gens[0].job_in_log2;
            let caps = cap_mults.map(|ms| {
                gens.iter()
                    .zip(ms)
                    .enumerate()
                    .map(|(i, (g, m))| {
                        let upstream = if i == 0 {
                            chunk
                        } else {
                            1u64 << gens[i - 1].job_out_log2
                        };
                        upstream.max(1 << g.job_in_log2) * m
                    })
                    .collect()
            });
            let pipeline = Pipeline::new(
                "fault-equiv",
                Source {
                    rate: Rat::int(src_rate),
                    burst: Rat::int(chunk as i64),
                },
                nodes,
            );
            GenCase {
                pipeline,
                chunk,
                total: chunk * chunks + tail % chunk.min(64),
                caps,
            }
        })
}

/// Arbitrary *valid* per-stage fault: simultaneous derate + stall +
/// outage windows (built cumulatively so they never overlap) and a
/// random recovery policy with sane retry backoff.
fn arb_stage_fault() -> impl Strategy<Value = StageFault> {
    let stall = (any::<bool>(), 2i64..60, 2u32..6).prop_map(|(on, per_ms, k)| {
        on.then(|| StallSpec {
            budget: per_ms as f64 / 1000.0 / (1u64 << k) as f64,
            period: per_ms as f64 / 1000.0,
        })
    });
    let outages = proptest::collection::vec((0.0f64..4.0, 0.0f64..0.4), 0..3).prop_map(|ws| {
        let mut t = 0.0;
        let mut v = Vec::new();
        for (gap, dur) in ws {
            t += gap;
            v.push(Outage {
                start: t,
                duration: dur,
            });
            t += dur + 1e-3;
        }
        v
    });
    let recovery = prop_oneof![
        Just(RecoveryPolicy::Block),
        Just(RecoveryPolicy::Block),
        Just(RecoveryPolicy::Drop),
        (1i64..20, 0u32..6).prop_map(|(b, k)| RecoveryPolicy::Retry {
            base: b as f64 / 1000.0,
            cap: b as f64 / 1000.0 * (1u64 << k) as f64,
        }),
    ];
    (0i64..60, stall, outages, recovery).prop_map(|(pct, stall, outages, recovery)| StageFault {
        derate: pct as f64 / 100.0,
        stall,
        outages,
        recovery,
    })
}

fn arb_faulted_case() -> impl Strategy<Value = (GenCase, FaultSchedule)> {
    // Generate a schedule for the widest pipeline and truncate to the
    // actual stage count (the vendored proptest has no flat_map).
    (
        arb_case(),
        proptest::collection::vec(arb_stage_fault(), 3),
        0u64..10_000,
    )
        .prop_map(|(case, mut stages, fseed)| {
            stages.truncate(case.pipeline.nodes.len());
            let schedule = FaultSchedule {
                seed: fseed,
                stages,
            };
            (case, schedule)
        })
}

fn cfg(
    case: &GenCase,
    model: ServiceModel,
    seed: u64,
    ff: bool,
    faults: Option<FaultSchedule>,
) -> SimConfig {
    SimConfig {
        seed,
        total_input: case.total,
        source_chunk: Some(case.chunk),
        queue_capacity: None,
        queue_capacities: case.caps.clone(),
        trace: false,
        service_model: model,
        fast_forward: ff,
        faults,
        workers: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// (a) For every underloaded faulted pipeline, the *degraded* NC
    /// model contains the faulted run realized from the same hypotheses
    /// (blocking recovery — the semantics the degraded curves cover):
    /// delay, backlog, and the full output trace between `r ⊗ β_deg`
    /// and α.
    #[test]
    fn faulted_sim_respects_degraded_nc_bounds(
        (p, total) in arb_faulted_pipeline(),
        seed in 0u64..1000,
    ) {
        let model = p.build_model();
        let src = p.source.rate.to_f64();
        let horizon = total as f64 / src;
        let schedule = FaultSchedule::from_pipeline(&p, seed ^ 0xFA17, horizon);
        let cfg = SimConfig {
            seed,
            total_input: total,
            source_chunk: None,
            queue_capacity: None,
            queue_capacities: None,
            service_model: ServiceModel::Uniform,
            trace: true,
            fast_forward: true,
            faults: Some(schedule),
            workers: None,
        };
        let r = simulate(&p, &cfg);

        // Conservation (blocking recovery: nothing is dropped).
        prop_assert_eq!(r.dropped_jobs, 0);
        prop_assert!((r.bytes_out + r.residual - total as f64).abs() < 1.0 + total as f64 * EPS);

        // Delay containment against the *degraded* concatenated bound.
        if let Some(d) = model.delay_bound_concat().as_finite() {
            prop_assert!(
                r.delay_max <= d.to_f64() * (1.0 + EPS) + 1e-9,
                "faulted sim delay {} exceeds degraded NC bound {}", r.delay_max, d.to_f64()
            );
        }

        // Backlog containment.
        if let Some(x) = model.backlog_bound_concat().as_finite() {
            prop_assert!(
                r.peak_backlog <= x.to_f64() * (1.0 + EPS) + 1e-9,
                "faulted sim backlog {} exceeds degraded NC bound {}", r.peak_backlog, x.to_f64()
            );
        }

        // Trace containment: output below α, above r ⊗ β_deg.
        let input = input_staircase(&r.trace_in);
        let floor = min_plus_conv(&input, &model.service_concat);
        for &(t, out) in &r.trace_out {
            let tr = Rat::from_f64(t);
            let hi = model.arrival.eval(tr).to_f64();
            prop_assert!(out <= hi * (1.0 + EPS) + 1.0,
                "output {} above α(t)={} at t={}", out, hi, t);
            let lo = floor.eval(tr).to_f64();
            prop_assert!(out >= lo * (1.0 - EPS) - 1.0,
                "output {} below (r⊗β_deg)(t)={} at t={}", out, lo, t);
        }
    }

    /// (b) Fault injection preserves thinned ≡ reference: the two
    /// stochastic engines stay bit-identical under arbitrary schedules,
    /// every recovery policy, and both service models.
    #[test]
    fn faulted_thinned_engine_matches_reference_bitwise(
        (case, schedule) in arb_faulted_case(),
        seed in 0u64..10_000,
        model in prop_oneof![Just(ServiceModel::Uniform), Just(ServiceModel::Exponential)],
    ) {
        let c = cfg(&case, model, seed, true, Some(schedule));
        let fast = simulate(&case.pipeline, &c);
        let reference = simulate_reference(&case.pipeline, &c);
        prop_assert_eq!(fast, reference);
    }

    /// (c) Cycle-jump fast-forward stays bitwise-invariant under faults:
    /// the jump gate defers to the fault horizon, after which the
    /// integer-tick evolution is time-shift invariant again.
    #[test]
    fn faulted_cycle_jump_on_off_is_bitwise_identical(
        (case, schedule) in arb_faulted_case(),
        seed in 0u64..10_000,
    ) {
        let on = simulate(
            &case.pipeline,
            &cfg(&case, ServiceModel::Deterministic, seed, true, Some(schedule.clone())),
        );
        let off = simulate(
            &case.pipeline,
            &cfg(&case, ServiceModel::Deterministic, seed, false, Some(schedule)),
        );
        prop_assert_eq!(on, off);
    }

    /// (d) A zero-fault schedule is indistinguishable — bitwise — from
    /// no schedule at all, in both the stochastic and the deterministic
    /// engine (the BENCH_3 no-regression guarantee).
    #[test]
    fn zero_fault_schedule_is_bitwise_transparent(
        case in arb_case(),
        seed in 0u64..10_000,
        model in prop_oneof![
            Just(ServiceModel::Uniform),
            Just(ServiceModel::Exponential),
            Just(ServiceModel::Deterministic),
        ],
    ) {
        let n = case.pipeline.nodes.len();
        let with = simulate(
            &case.pipeline,
            &cfg(&case, model, seed, true, Some(FaultSchedule::none(n))),
        );
        let without = simulate(&case.pipeline, &cfg(&case, model, seed, true, None));
        prop_assert_eq!(with, without);
    }
}

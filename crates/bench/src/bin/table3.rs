//! Table 3 reproduction: bump-in-the-wire throughput predictions plus
//! the §5 delay/backlog findings.

use nc_apps::{bitw, format_table};

fn main() {
    let r = bitw::reproduce(42);
    let mut out = format_table(
        "Table 3: bump-in-the-wire streaming data application throughput",
        &r.table3,
    );
    out.push('\n');
    out.push_str(&nc_bench::format_bounds(
        "Bump-in-the-wire (Sec. 5)",
        &r.bounds,
    ));
    nc_bench::emit("table3.txt", &out);
    nc_bench::emit_json("table3.json", &r.table3);
}

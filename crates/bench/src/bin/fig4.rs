//! Figure 4 reproduction: BLAST network-calculus curves (α, β, α*) and
//! the simulated cumulative-output stairstep — plus a what-if bounds
//! surface (offered load × network link rate) from the `nc-sweep`
//! engine, emitted as `fig4_sweep.csv`.

use nc_apps::blast;
use nc_core::num::Rat;
use nc_core::units::mib_per_s;
use nc_sweep::{Axis, Param, SweepSpec};

fn main() {
    let r = blast::reproduce(42);
    let fig = blast::figure4(&r, 160);
    nc_bench::emit("fig4.csv", &fig.to_csv());
    println!(
        "Figure 4: {} sim points, stairstep within [beta, alpha*]: {}",
        fig.sim.len(),
        fig.sim_between_bounds(1024.0)
    );

    // What-if surface around the deployed operating point: offered load
    // across the regimes × the 10 GbE link swapped for slower fabrics.
    let spec = SweepSpec {
        base: blast::deployed_pipeline(),
        axes: vec![
            Axis::linspace(Param::SourceRate, mib_per_s(40.0), mib_per_s(120.0), 9),
            Axis::linspace(Param::Rate(2), mib_per_s(73.625), mib_per_s(1178.0), 5),
        ],
        horizons: vec![Rat::int(1), Rat::int(10)],
        sim: None,
    };
    let surface = nc_sweep::run(&spec);
    nc_bench::emit("fig4_sweep.csv", &surface.to_csv());
    let s = surface.stats;
    println!(
        "Figure 4 sweep: {} points, cache ops {}/{} hit/miss, prefix {}/{}",
        surface.points.len(),
        s.op_hits(),
        s.op_misses(),
        s.prefix_hits,
        s.prefix_misses
    );
}

//! # nc-queueing — queueing-theory baselines
//!
//! The models the paper compares its network-calculus approach against:
//! M/M/1 (the baseline of Faber et al. [12]), M/M/c, M/G/1 via
//! Pollaczek–Khinchine (including the uniform-service stages of the
//! simulator), and the tandem-network roofline flow analysis that
//! produces the "queueing theory prediction" rows of Tables 1 and 3.
//!
//! ## Quick start
//!
//! ```
//! use nc_queueing::{analyze_tandem, Mm1, TandemStage};
//!
//! let q = Mm1::new(2.0, 5.0).unwrap();
//! assert!((q.l - 2.0 / 3.0).abs() < 1e-12);
//!
//! let t = analyze_tandem(
//!     100.0,
//!     &[TandemStage { name: "slow".into(), rate: 80.0 }],
//!     10.0,
//! ).unwrap();
//! assert_eq!(t.roofline, 80.0);
//! ```

#![warn(missing_docs)]

pub mod gg1;
pub mod mg1;
pub mod mm1;
pub mod mmc;
pub mod network;

pub use gg1::Gg1;
pub use mg1::Mg1;
pub use mm1::{Mm1, QueueError};
pub use mmc::Mmc;
pub use network::{analyze_tandem, TandemAnalysis, TandemStage};

//! Degraded-service transforms for fault-tolerant analysis.
//!
//! A [`FaultModel`] attached to a pipeline stage rewrites that stage's
//! guaranteed rate-latency service curve β = RL(R, T) into a *degraded*
//! curve β_deg that remains a valid lower service bound while the fault
//! is active (DESIGN.md §11):
//!
//! - **Periodic stall** `(s, p)` — the stage freezes for at most `s`
//!   seconds in every window of length `p`. Over any backlogged
//!   interval of length `t` the cumulative freeze is at most
//!   `s·(t/p + 1)`, so
//!   `service ≥ R·(t − T − s·(t/p + 1)) = R'·(t − T')` with
//!   `R' = R·(p − s)/p` and `T' = (T + s)·p/(p − s)`.
//!   (The naive `T' = T + s` is *not* sound: it ignores the recurring
//!   per-period loss beyond the first window.)
//! - **Rate derating** `δ` — the stage runs uniformly slower:
//!   `β_deg = RL(R·(1 − δ), T)`.
//! - **Transient outage** `d` — a single unavailability of length `d`
//!   anywhere in the run: `β_deg = RL(R, T + d)`.
//!
//! Degradation stays inside the rate-latency family, so the cached
//! min-plus fast paths and the prefix memo keep working; the fault is
//! part of the stage's cache signature (`StageSig`), so faulted and
//! fault-free sweeps never collide.

use crate::num::Rat;
use serde::{Deserialize, Serialize};

/// A per-stage fault hypothesis, expressed exactly (all fields are
/// rationals in seconds or dimensionless fractions).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultModel {
    /// The stage freezes for up to `budget` seconds in every `period`
    /// seconds (GPU thermal throttling, periodic firmware housekeeping).
    PeriodicStall {
        /// Worst-case stalled time per period, in seconds (`0 ≤ budget < period`).
        budget: Rat,
        /// Length of the recurring window, in seconds (`> 0`).
        period: Rat,
    },
    /// The stage's service rate is uniformly derated by a fraction
    /// `delta` (sustained thermal or power capping).
    RateDerate {
        /// Fractional rate loss (`0 ≤ delta < 1`).
        delta: Rat,
    },
    /// A single transient unavailability of length `duration` seconds
    /// anywhere in the run (link drop with retransmission).
    TransientOutage {
        /// Outage length in seconds (`≥ 0`).
        duration: Rat,
    },
}

impl FaultModel {
    /// Validates the fault parameters, returning a human-readable
    /// description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            FaultModel::PeriodicStall { budget, period } => {
                if !period.is_positive() {
                    return Err("stall period must be positive".into());
                }
                if budget.is_negative() {
                    return Err("stall budget must be non-negative".into());
                }
                if budget >= period {
                    return Err("stall budget must be < period".into());
                }
                Ok(())
            }
            FaultModel::RateDerate { delta } => {
                if delta.is_negative() || delta >= Rat::ONE {
                    return Err("rate derate must satisfy 0 <= delta < 1".into());
                }
                Ok(())
            }
            FaultModel::TransientOutage { duration } => {
                if duration.is_negative() {
                    return Err("outage duration must be non-negative".into());
                }
                Ok(())
            }
        }
    }

    /// Rewrites a stage's `(rate, latency)` rate-latency parameters
    /// into the guaranteed degraded pair (see module docs for the
    /// derivation). The result is exact.
    pub fn degraded(&self, rate: Rat, latency: Rat) -> (Rat, Rat) {
        match *self {
            FaultModel::PeriodicStall { budget, period } => {
                let avail = (period - budget) / period;
                (rate * avail, (latency + budget) / avail)
            }
            FaultModel::RateDerate { delta } => (rate * (Rat::ONE - delta), latency),
            FaultModel::TransientOutage { duration } => (rate, latency + duration),
        }
    }

    /// Multiplicative long-run rate factor of the fault: the fraction
    /// of nominal throughput the degraded stage sustains. Used to
    /// derate the *average*-rate bottleneck (queueing roofline) in
    /// addition to the guaranteed-rate curve.
    pub fn rate_factor(&self) -> Rat {
        match *self {
            FaultModel::PeriodicStall { budget, period } => (period - budget) / period,
            FaultModel::RateDerate { delta } => Rat::ONE - delta,
            FaultModel::TransientOutage { .. } => Rat::ONE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_degradation_is_sound_and_reduces_to_identity() {
        // 10 ms stall per 100 ms period on a 1000 B/s, 5 ms stage.
        let f = FaultModel::PeriodicStall {
            budget: Rat::new(1, 100),
            period: Rat::new(1, 10),
        };
        let (r, t) = f.degraded(Rat::int(1000), Rat::new(5, 1000));
        // R' = 1000 * 90/100 = 900; T' = (5ms + 10ms) / 0.9 = 15/0.9 ms.
        assert_eq!(r, Rat::int(900));
        assert_eq!(t, Rat::new(15, 1000) / Rat::new(9, 10));
        // Zero budget leaves the curve untouched.
        let id = FaultModel::PeriodicStall {
            budget: Rat::ZERO,
            period: Rat::new(1, 10),
        };
        assert_eq!(
            id.degraded(Rat::int(1000), Rat::new(5, 1000)),
            (Rat::int(1000), Rat::new(5, 1000))
        );
    }

    #[test]
    fn stall_latency_exceeds_naive_t_plus_s() {
        // The sound T' = (T + s)·p/(p − s) is strictly larger than the
        // naive T + s whenever s > 0 — the recurring per-period loss.
        let f = FaultModel::PeriodicStall {
            budget: Rat::new(1, 100),
            period: Rat::new(1, 10),
        };
        let (_, t) = f.degraded(Rat::int(1000), Rat::new(5, 1000));
        assert!(t > Rat::new(15, 1000));
    }

    #[test]
    fn derate_scales_rate_only() {
        let f = FaultModel::RateDerate {
            delta: Rat::new(1, 4),
        };
        let (r, t) = f.degraded(Rat::int(1000), Rat::new(5, 1000));
        assert_eq!(r, Rat::int(750));
        assert_eq!(t, Rat::new(5, 1000));
    }

    #[test]
    fn outage_extends_latency_only() {
        let f = FaultModel::TransientOutage {
            duration: Rat::new(1, 50),
        };
        let (r, t) = f.degraded(Rat::int(1000), Rat::ZERO);
        assert_eq!(r, Rat::int(1000));
        assert_eq!(t, Rat::new(1, 50));
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(FaultModel::PeriodicStall {
            budget: Rat::new(1, 10),
            period: Rat::new(1, 10),
        }
        .validate()
        .unwrap_err()
        .contains("budget must be < period"));
        assert!(FaultModel::PeriodicStall {
            budget: Rat::ZERO,
            period: Rat::ZERO,
        }
        .validate()
        .unwrap_err()
        .contains("period must be positive"));
        assert!(FaultModel::RateDerate { delta: Rat::ONE }
            .validate()
            .is_err());
        assert!(FaultModel::RateDerate {
            delta: Rat::new(-1, 2)
        }
        .validate()
        .is_err());
        assert!(FaultModel::TransientOutage {
            duration: Rat::int(-1)
        }
        .validate()
        .is_err());
        assert!(FaultModel::RateDerate {
            delta: Rat::new(99, 100)
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn serde_roundtrip_preserves_variant_and_values() {
        for f in [
            FaultModel::PeriodicStall {
                budget: Rat::new(1, 100),
                period: Rat::new(1, 10),
            },
            FaultModel::RateDerate {
                delta: Rat::new(1, 8),
            },
            FaultModel::TransientOutage {
                duration: Rat::new(3, 1000),
            },
        ] {
            let js = serde_json::to_string(&f).unwrap();
            let back: FaultModel = serde_json::from_str(&js).unwrap();
            assert_eq!(back, f);
        }
    }
}

//! The bump-in-the-wire application model (§5 of the paper, Figure 9,
//! Tables 2–3, Figure 10).
//!
//! Pipeline (Figure 9): LZ4 compress → AES-256-CBC encrypt → FPGA TCP
//! network → decrypt → decompress → PCIe to host, with all rates taken
//! from the paper's Table 2.
//!
//! # Compression-ratio scenarios
//!
//! The paper's normalization makes the compression ratio part of the
//! model: "the lower bound service curve corresponds to a compression
//! ratio of 1.0 and the maximum service curve will correspond to the
//! maximum compression ratio." We therefore build three pipelines:
//!
//! * **pessimistic** — min rates, ratio 1.0 → the NC lower bound;
//! * **average** — avg rates, ratio 2.2 (jobs 1100:500) → the queueing
//!   prediction (encrypt: 68 × 2.2 ≈ 150 MiB/s, the paper's 151);
//! * **optimistic** — max rates, ratio 5.3 (jobs 1060:200) → the NC
//!   upper bound (encrypt: 75 × 5.3 ≈ 397 MiB/s; the paper prints 313
//!   = 59 × 5.3, applying the max ratio to its lower bound — both
//!   conventions are reported by the harness and recorded in
//!   EXPERIMENTS.md).
//!
//! The simulator mirrors the paper's stated simplification ("we instead
//! assume that data will be gathered at maximum in 1 KiB normalized
//! chunks"): ratio-1.0 jobs of 1 KiB with uniform(min,max) stage times.
//! Two runs reproduce the paper's two kinds of observation: a
//! *saturating* run for the Table 3 throughput (capacity ≈64 MiB/s,
//! just above the lower bound) and a *light-load* run for the delay and
//! backlog observations (see [`light_source`]).

use nc_core::num::Rat;
use nc_core::pipeline::{Node, NodeKind, Pipeline, PipelineModel, Source, StageRates};
use nc_core::units::{mib_per_s, micros};
use nc_streamsim::{simulate, SimConfig, SimResult};
use nc_workloads::link::LinkModel;
use nc_workloads::measure::{measure_repeated, StageMeasurement};

use crate::paper;
use crate::report::{BoundsReport, FigureSeries, ThroughputRow};

/// Compression-ratio scenario selecting rates and job ratios.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scenario {
    /// Ratio 1.0 with minimum rates: the service-curve (lower-bound)
    /// parameterization.
    Pessimistic,
    /// Ratio 2.2 with average rates: the queueing parameterization.
    Average,
    /// Ratio 5.3 with maximum rates: the max-service (upper-bound)
    /// parameterization.
    Optimistic,
}

impl Scenario {
    /// `(job_in, job_out)` of the compressor: exact rationals realizing
    /// the paper's observed ratios around a ~1 KiB chunk.
    fn compress_jobs(self) -> (i64, i64) {
        match self {
            Scenario::Pessimistic => (1024, 1024), // ratio 1.0
            Scenario::Average => (1100, 500),      // ratio 2.2
            Scenario::Optimistic => (1060, 200),   // ratio 5.3
        }
    }
}

/// The model's arrival envelope: a 91 MiB/s leaky bucket with 1 KiB
/// burst — the peak host-DMA ingest rate. The paper's own backlog
/// figure implies this envelope: `x = b + R_α·T_tot ≈ 3 KiB` requires
/// `R_α ≈ 91 MiB/s` at `T_tot ≈ 21 µs`.
pub fn source() -> Source {
    Source {
        rate: mib_per_s(91.0),
        burst: Rat::int(1024),
    }
}

/// The simulator's saturating drive for the *throughput* run:
/// 70 MiB/s exceeds the encrypt bottleneck's uniform-mean capacity
/// (harmonic mean of 56 and 75 ≈ 64.1 MiB/s), so the measured
/// throughput is the pipeline's capacity — landing just above the NC
/// lower bound, as the paper's simulation does.
pub fn sim_source() -> Source {
    Source {
        rate: mib_per_s(70.0),
        burst: Rat::int(1024),
    }
}

/// The light drive for the *latency* run: 40 MiB/s keeps queueing
/// negligible (utilization ≈0.62 at the encrypt bottleneck), so the
/// observed end-to-end delays are essentially the per-stage service
/// sojourns — the regime in which the paper's reported delay range
/// (25.7–36.7 µs against a 38 µs bound) is self-consistent.
pub fn light_source() -> Source {
    Source {
        rate: mib_per_s(40.0),
        burst: Rat::int(1024),
    }
}

fn node(
    name: &str,
    kind: NodeKind,
    rates_mib: (f64, f64, f64),
    latency_us: f64,
    job_in: i64,
    job_out: i64,
) -> Node {
    // Table 2 lists (avg, min, max).
    let (avg, min, max) = rates_mib;
    Node::new(
        name,
        kind,
        StageRates::new(mib_per_s(min), mib_per_s(avg), mib_per_s(max)),
        micros(latency_us),
        Rat::int(job_in),
        Rat::int(job_out),
    )
}

/// Build the §5 pipeline for one compression-ratio scenario.
pub fn pipeline(scenario: Scenario) -> Pipeline {
    use paper::table2 as t2;
    let (cin, cout) = scenario.compress_jobs();
    Pipeline::new(
        "bump-in-the-wire",
        source(),
        vec![
            node("compress", NodeKind::Compute, t2::COMPRESS, 2.0, cin, cout),
            node("encrypt", NodeKind::Compute, t2::ENCRYPT, 3.0, cout, cout),
            node(
                "network",
                NodeKind::NetworkLink,
                t2::NETWORK,
                10.0,
                cout,
                cout,
            ),
            node("decrypt", NodeKind::Compute, t2::DECRYPT, 3.0, cout, cout),
            node(
                "decompress",
                NodeKind::Compute,
                t2::DECOMPRESS,
                2.0,
                cout,
                cin,
            ),
            node("pcie", NodeKind::PcieLink, t2::PCIE, 1.0, cin, cin),
        ],
    )
}

/// The pipeline as the throughput simulation drives it: pessimistic
/// (ratio-1.0) jobs at the saturating load.
pub fn sim_pipeline() -> Pipeline {
    let mut p = pipeline(Scenario::Pessimistic);
    p.source = sim_source();
    fold_latencies(&mut p);
    p
}

/// The pipeline as the latency simulation drives it.
pub fn light_pipeline() -> Pipeline {
    let mut p = pipeline(Scenario::Pessimistic);
    p.source = light_source();
    fold_latencies(&mut p);
    p
}

/// The simulator folds per-stage dispatch latencies into the measured
/// service rates (as deployment traces do); the standalone `T_n` terms
/// belong to the analytical model.
fn fold_latencies(p: &mut Pipeline) {
    for n in &mut p.nodes {
        n.latency = Rat::ZERO;
    }
}

/// Simulation configuration (paper's simplification: 1 KiB normalized
/// chunks, unbounded queues, a short 2 MiB transfer — the scale at
/// which the paper's reported 2 KiB peak backlog is achievable at
/// near-critical load).
pub fn sim_config(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        total_input: 2 << 20,
        source_chunk: Some(1024),
        queue_capacity: None,
        queue_capacities: None,
        trace: true,
        service_model: nc_streamsim::ServiceModel::Uniform,
        fast_forward: true,
        faults: None,
        workers: None,
    }
}

/// Backoff parameters of the retry scenario: first retry after 20 µs,
/// doubling to a 160 µs cap.
pub const RETRY_BASE: f64 = 20.0e-6;
/// Capped exponential backoff ceiling of the retry scenario.
pub const RETRY_CAP: f64 = 160.0e-6;

/// Degraded-mode scenario (DESIGN.md §11, EXPERIMENTS.md §E-faults):
/// the light-load pipeline with three fault hypotheses attached — a
/// periodic 50 µs-per-ms stall on the compressor (firmware
/// housekeeping), a 15 % rate derate on the encrypt bottleneck
/// (thermal capping), and a single 200 µs transient outage on the
/// network link. Model and simulator share this pipeline, so the
/// degraded NC bounds must contain every faulted simulation run.
pub fn faulted_pipeline() -> Pipeline {
    use nc_core::units::millis;
    use nc_core::FaultModel;
    let mut p = light_pipeline();
    p.nodes[0].fault = Some(FaultModel::PeriodicStall {
        budget: micros(50.0),
        period: millis(1.0),
    });
    p.nodes[1].fault = Some(FaultModel::RateDerate {
        delta: Rat::new(3, 20),
    });
    p.nodes[2].fault = Some(FaultModel::TransientOutage {
        duration: micros(200.0),
    });
    p
}

/// Run horizon of the faulted simulation (seconds): how long the light
/// drive needs to push `sim_config`'s 2 MiB through. Outage placements
/// drawn within it are guaranteed to be exercised by the run.
fn faulted_horizon() -> f64 {
    (2 << 20) as f64 / light_source().rate.to_f64()
}

/// The simulation realization of [`faulted_pipeline`]'s hypotheses:
/// blocking recovery everywhere (the semantics the degraded curves
/// cover directly), outage placement seeded within the run horizon.
pub fn faulted_sim_config(seed: u64) -> SimConfig {
    let schedule =
        nc_streamsim::FaultSchedule::from_pipeline(&faulted_pipeline(), seed, faulted_horizon());
    SimConfig {
        faults: Some(schedule),
        workers: None,
        ..sim_config(seed)
    }
}

/// Retry variant of the degraded scenario: the network stage *retries*
/// transmissions that complete inside the outage window, with capped
/// exponential backoff. Retrying re-executes work, which a degraded
/// service curve cannot express directly; the sound analysis-side
/// model is a longer outage — the window itself, plus the backoff cap,
/// plus one worst-case re-execution (DESIGN.md §11).
pub fn faulted_retry_pipeline() -> Pipeline {
    use nc_core::FaultModel;
    let mut p = faulted_pipeline();
    // One worst-case network (re-)execution of a 1 KiB chunk.
    let exec_max = Rat::int(1024) / mib_per_s(paper::table2::NETWORK.1);
    p.nodes[2].fault = Some(FaultModel::TransientOutage {
        duration: micros(200.0) + Rat::from_f64(RETRY_CAP) + exec_max,
    });
    p
}

/// Simulation realization of the retry scenario: the *physical* faults
/// of [`faulted_pipeline`] (the real 200 µs outage, not the inflated
/// analysis window) with the network stage switched to retry recovery.
pub fn faulted_retry_sim_config(seed: u64) -> SimConfig {
    let mut schedule =
        nc_streamsim::FaultSchedule::from_pipeline(&faulted_pipeline(), seed, faulted_horizon());
    schedule.stages[2].recovery = nc_streamsim::RecoveryPolicy::Retry {
        base: RETRY_BASE,
        cap: RETRY_CAP,
    };
    SimConfig {
        faults: Some(schedule),
        workers: None,
        ..sim_config(seed)
    }
}

/// Full §5 reproduction: Table 3, the delay/backlog findings, Figure 10.
pub struct BitwReproduction {
    /// Pessimistic-scenario model (lower bounds).
    pub model_lower: PipelineModel,
    /// Average-scenario model (queueing parameterization).
    pub model_avg: PipelineModel,
    /// Optimistic-scenario model (upper bounds).
    pub model_upper: PipelineModel,
    /// Saturating-throughput simulation (pessimistic jobs).
    pub sim: SimResult,
    /// Light-load latency simulation (delay/backlog observations).
    pub sim_light: SimResult,
    /// Table 3 rows.
    pub table3: Vec<ThroughputRow>,
    /// §5 delay/backlog comparison.
    pub bounds: BoundsReport,
}

/// Run the complete bump-in-the-wire reproduction.
pub fn reproduce(seed: u64) -> BitwReproduction {
    let model_lower = pipeline(Scenario::Pessimistic).build_model();
    let model_avg = pipeline(Scenario::Average).build_model();
    let model_upper = pipeline(Scenario::Optimistic).build_model();
    let sim = simulate(&sim_pipeline(), &sim_config(seed));
    let sim_light = simulate(&light_pipeline(), &sim_config(seed.wrapping_add(1)));

    const MIB: f64 = 1048576.0;
    let nc_lower = model_lower.bottleneck_rate_min.to_f64() / MIB;
    let nc_upper = model_upper.bottleneck_rate_max.to_f64() / MIB;
    let queueing = crate::blast::queueing_prediction(&model_avg);
    // The paper's upper-bound convention: max compression ratio applied
    // to the lower-bound rate.
    let nc_upper_paper_method = nc_lower * paper::table2::RATIOS.2;

    let table3 = vec![
        ThroughputRow {
            source: "Network calculus upper bound".into(),
            ours_mib_s: nc_upper,
            paper_mib_s: Some(paper::table3::NC_UPPER),
        },
        ThroughputRow {
            source: "  (paper's lower x max-ratio method)".into(),
            ours_mib_s: nc_upper_paper_method,
            paper_mib_s: Some(paper::table3::NC_UPPER),
        },
        ThroughputRow {
            source: "Network calculus lower bound".into(),
            ours_mib_s: nc_lower,
            paper_mib_s: Some(paper::table3::NC_LOWER),
        },
        ThroughputRow {
            source: "Discrete-event simulation model".into(),
            ours_mib_s: sim.throughput / MIB,
            paper_mib_s: Some(paper::table3::DES),
        },
        ThroughputRow {
            source: "Queueing theory prediction".into(),
            ours_mib_s: queueing,
            paper_mib_s: Some(paper::table3::QUEUEING),
        },
    ];

    let bounds = BoundsReport {
        delay_bound_s: model_lower.heuristic_delay().to_f64(),
        backlog_bound_bytes: model_lower.heuristic_backlog().to_f64(),
        sim_delay_min_s: sim_light.delay_min,
        sim_delay_max_s: sim_light.delay_max,
        sim_backlog_bytes: sim_light.peak_backlog,
        paper_delay_bound_s: paper::bitw_bounds::DELAY_BOUND,
        paper_backlog_bound_bytes: paper::bitw_bounds::BACKLOG_BOUND,
        paper_sim_delay_s: (
            paper::bitw_bounds::SIM_DELAY_MIN,
            paper::bitw_bounds::SIM_DELAY_MAX,
        ),
        paper_sim_backlog_bytes: paper::bitw_bounds::SIM_BACKLOG,
    };

    BitwReproduction {
        model_lower,
        model_avg,
        model_upper,
        sim,
        sim_light,
        table3,
        bounds,
    }
}

/// Figure 10: α(t), β(t), α*(t) and the simulated stairstep (the paper
/// drops γ from this plot; so do we).
pub fn figure10(repro: &BitwReproduction, samples: usize) -> FigureSeries {
    crate::blast::curve_figure("fig10", &repro.model_lower, &repro.sim, samples)
}

/// One row of a regenerated Table 2.
#[derive(Clone, Debug, serde::Serialize)]
pub struct Table2Row {
    /// Stage name.
    pub function: String,
    /// Our measured (avg, min, max) in MiB/s.
    pub ours: (f64, f64, f64),
    /// The paper's (avg, min, max) in MiB/s.
    pub paper: (f64, f64, f64),
}

/// Regenerate Table 2 by measuring *our* kernels in isolation (the
/// paper's methodology on our CPU substrate): LZ4 compress/decompress,
/// AES-256-CBC encrypt/decrypt, and the link models. Absolute numbers
/// differ from the paper's FPGA kernels — the reproduction keeps the
/// *structure* (min ≤ avg ≤ max per stage, compression ratios measured
/// not assumed); the NC models consume the paper's Table 2 values.
pub fn measure_table2(chunk_bytes: usize, reps: usize) -> (Vec<Table2Row>, f64) {
    use nc_workloads::aes::{cbc_encrypt_raw, Aes256};
    use nc_workloads::lz4;
    use rand::{Rng, SeedableRng};

    // Text-like input with realistic entropy: random words from a small
    // vocabulary give an LZ4 ratio in the paper's observed 2–3x band
    // (a repeated literal pattern would compress 100x+ and make the
    // decompressor's rate meaningless).
    let vocab: [&[u8]; 12] = [
        b"stream", b"data", b"node", b"queue", b"rate", b"burst", b"delay", b"fpga", b"gpu",
        b"link", b"curve", b"bound",
    ];
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2024);
    let mut data = Vec::with_capacity(chunk_bytes + 16);
    while data.len() < chunk_bytes {
        data.extend_from_slice(vocab[rng.gen_range(0..vocab.len())]);
        data.push(b' ');
        if rng.gen_bool(0.1) {
            data.extend_from_slice(format!("{} ", rng.gen_range(0..10_000)).as_bytes());
        }
    }
    data.truncate(chunk_bytes);

    let m_compress = measure_repeated(&data, reps, 1, |c| lz4::compress(c).len());
    let compressed = lz4::compress(&data);
    let ratio = data.len() as f64 / compressed.len() as f64;
    // Decompression throughput is reported against the *produced*
    // (raw) volume, matching how the Vitis kernel numbers are quoted.
    let m_dec_raw = measure_repeated(&compressed, reps, 1, |c| {
        lz4::decompress(c, chunk_bytes)
            .map(|v| v.len())
            .unwrap_or(0)
    });
    let scale = ratio;
    let m_decompress = StageMeasurement {
        min: m_dec_raw.min * scale,
        avg: m_dec_raw.avg * scale,
        max: m_dec_raw.max * scale,
        bytes: m_dec_raw.bytes,
        chunks: m_dec_raw.chunks,
    };

    let key = [0x42u8; 32];
    let iv = [7u8; 16];
    let aes = Aes256::new(&key);
    let mut block = vec![0u8; (chunk_bytes / 16) * 16];
    let m_encrypt = measure_repeated(&data[..block.len()], reps, 1, |c| {
        block.copy_from_slice(c);
        cbc_encrypt_raw(&aes, &iv, &mut block);
        block[0]
    });
    // Decrypt measured over the same block count.
    let mut enc = block.clone();
    let m_decrypt = measure_repeated(&enc.clone(), reps, 1, |c| {
        enc.copy_from_slice(c);
        let _ = nc_workloads::aes::cbc_decrypt_raw(&aes, &iv, &mut enc);
        enc[0]
    });

    let net = LinkModel::ten_gbe();
    let pcie = LinkModel::pcie_gen3_x16();
    const MIB: f64 = 1048576.0;
    let link_row = |l: &LinkModel| {
        let r = l.effective_rate(chunk_bytes as u64) / MIB;
        let asym = l.asymptotic_rate() / MIB;
        (asym.min(r * 1.5), r.min(asym), asym)
    };

    let tup = |m: &StageMeasurement| {
        let (lo, avg, hi) = m.mib_per_s();
        (avg, lo, hi)
    };
    use paper::table2 as t2;
    let rows = vec![
        Table2Row {
            function: "Compress".into(),
            ours: tup(&m_compress),
            paper: t2::COMPRESS,
        },
        Table2Row {
            function: "Encrypt".into(),
            ours: tup(&m_encrypt),
            paper: t2::ENCRYPT,
        },
        Table2Row {
            function: "Network".into(),
            ours: link_row(&net),
            paper: t2::NETWORK,
        },
        Table2Row {
            function: "Decrypt".into(),
            ours: tup(&m_decrypt),
            paper: t2::DECRYPT,
        },
        Table2Row {
            function: "Decompress".into(),
            ours: tup(&m_decompress),
            paper: t2::DECOMPRESS,
        },
        Table2Row {
            function: "PCIe link".into(),
            ours: link_row(&pcie),
            paper: t2::PCIE,
        },
    ];
    (rows, ratio)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: f64 = 1048576.0;

    #[test]
    fn scenarios_hit_paper_normalized_rates() {
        let lower = pipeline(Scenario::Pessimistic).build_model();
        // Bottleneck: encrypt at min rate, ratio 1.0 → 56 MiB/s.
        assert!((lower.bottleneck_rate_min.to_f64() / MIB - 56.0).abs() < 0.1);

        let avg = pipeline(Scenario::Average).build_model();
        // Encrypt 68 × 2.2 = 149.6 ≈ the paper's queueing 151.
        assert!((avg.bottleneck_rate_avg.to_f64() / MIB - 149.6).abs() < 0.5);

        let upper = pipeline(Scenario::Optimistic).build_model();
        // Encrypt 75 × 5.3 = 397.5.
        assert!((upper.bottleneck_rate_max.to_f64() / MIB - 397.5).abs() < 1.0);
    }

    #[test]
    fn normalization_is_input_referred() {
        let m = pipeline(Scenario::Average).build_model();
        let norms: Vec<f64> = m
            .per_node
            .iter()
            .map(|n| n.normalization.to_f64())
            .collect();
        assert_eq!(norms[0], 1.0); // compress sees raw input
        assert!((norms[1] - 2.2).abs() < 1e-9); // encrypt sees compressed
        assert!((norms[4] - 2.2).abs() < 1e-9); // decompress input side
        assert!((norms[5] - 1.0).abs() < 1e-9); // PCIe sees raw again
    }

    #[test]
    fn heuristic_bounds_near_paper() {
        let m = pipeline(Scenario::Pessimistic).build_model();
        let d = m.heuristic_delay().to_f64();
        // Paper: 38 µs.
        assert!(
            (d - paper::bitw_bounds::DELAY_BOUND).abs() / paper::bitw_bounds::DELAY_BOUND < 0.05,
            "delay bound {d}"
        );
        let x = m.heuristic_backlog().to_f64();
        // Paper: 3 KiB; ours ≈ 2.4 KiB (documented –20% in
        // EXPERIMENTS.md — the paper's offered-load rate is unpublished).
        assert!(
            (x - paper::bitw_bounds::BACKLOG_BOUND).abs() / paper::bitw_bounds::BACKLOG_BOUND
                < 0.30,
            "backlog bound {x}"
        );
    }

    #[test]
    fn sim_lands_just_above_lower_bound() {
        let r = simulate(&sim_pipeline(), &sim_config(3));
        let thr = r.throughput / MIB;
        // Paper: 61 MiB/s between the 59 lower bound and queueing 151.
        assert!(
            (56.0..70.0).contains(&thr),
            "sim throughput {thr} out of the near-critical band"
        );
    }

    #[test]
    fn full_reproduction_consistency() {
        let r = reproduce(42);
        for row in &r.table3 {
            if let Some(e) = row.rel_error() {
                // The γ-convention upper bound is allowed its documented
                // +27% (paper applies the max ratio to the lower bound).
                let tol = if row.source.contains("upper") {
                    0.30
                } else {
                    0.20
                };
                assert!(
                    e.abs() < tol,
                    "{}: {:+.1}% (ours {} vs paper {:?})",
                    row.source,
                    e * 100.0,
                    row.ours_mib_s,
                    row.paper_mib_s
                );
            }
        }
        // Simulated delay and backlog corroborate the bounds.
        assert!(
            r.bounds.sim_within_bounds(),
            "sim delay {} / backlog {} vs bounds {} / {}",
            r.bounds.sim_delay_max_s,
            r.bounds.sim_backlog_bytes,
            r.bounds.delay_bound_s,
            r.bounds.backlog_bound_bytes,
        );
        let fig = figure10(&r, 64);
        assert!(fig.sim_between_bounds(1024.0));
    }

    #[test]
    fn faulted_bitw_stays_underloaded_with_weaker_bounds() {
        use nc_core::Regime;
        let clean = light_pipeline().build_model();
        let faulted = faulted_pipeline().build_model();
        assert_eq!(faulted.regime(), Regime::Underloaded);
        // Degradation strictly weakens the guaranteed bounds.
        let d_clean = clean.delay_bound_concat().as_finite().unwrap().to_f64();
        let d_faulted = faulted.delay_bound_concat().as_finite().unwrap().to_f64();
        assert!(d_faulted > d_clean, "{d_faulted} vs {d_clean}");
        let x_clean = clean.backlog_bound_concat().as_finite().unwrap().to_f64();
        let x_faulted = faulted.backlog_bound_concat().as_finite().unwrap().to_f64();
        assert!(x_faulted > x_clean, "{x_faulted} vs {x_clean}");
        // The retry model is weaker still (longer outage window).
        let retry = faulted_retry_pipeline().build_model();
        let d_retry = retry.delay_bound_concat().as_finite().unwrap().to_f64();
        assert!(d_retry > d_faulted, "{d_retry} vs {d_faulted}");
    }

    #[test]
    fn faulted_bitw_sim_within_degraded_bounds() {
        let model = faulted_pipeline().build_model();
        let d = model.delay_bound_concat().as_finite().unwrap().to_f64();
        let x = model.backlog_bound_concat().as_finite().unwrap().to_f64();
        for seed in [5, 17] {
            let r = simulate(&faulted_pipeline(), &faulted_sim_config(seed));
            assert!(
                r.delay_max <= d * (1.0 + 1e-6),
                "seed {seed}: {} > {d}",
                r.delay_max
            );
            assert!(r.peak_backlog <= x * (1.0 + 1e-6) + 1.0, "seed {seed}");
            // The faults actually bit: throughput below the clean run's.
            let clean = simulate(&light_pipeline(), &sim_config(seed));
            assert!(r.makespan > clean.makespan, "fault schedule had no effect");
        }
    }

    #[test]
    fn faulted_retry_sim_within_its_degraded_bounds() {
        let model = faulted_retry_pipeline().build_model();
        let d = model.delay_bound_concat().as_finite().unwrap().to_f64();
        let x = model.backlog_bound_concat().as_finite().unwrap().to_f64();
        let mut any_retry = false;
        for seed in [5, 17, 23] {
            let r = simulate(&faulted_pipeline(), &faulted_retry_sim_config(seed));
            assert!(
                r.delay_max <= d * (1.0 + 1e-6),
                "seed {seed}: {} > {d}",
                r.delay_max
            );
            assert!(r.peak_backlog <= x * (1.0 + 1e-6) + 1.0, "seed {seed}");
            // Retries never lose data.
            assert_eq!(r.dropped_jobs, 0);
            any_retry |= r.retries > 0;
        }
        assert!(any_retry, "no seed exercised the retry path");
    }

    #[test]
    fn table2_measurement_shape() {
        // Small sizes: this validates structure, not absolute speed.
        let (rows, ratio) = measure_table2(64 << 10, 3);
        assert_eq!(rows.len(), 6);
        for row in &rows {
            let (avg, min, max) = row.ours;
            assert!(min <= avg + 1e-9 && avg <= max + 1e-9, "{:?}", row);
            assert!(min > 0.0);
        }
        // The synthetic text input compresses.
        assert!(ratio > 1.5, "ratio {ratio}");
    }
}

//! The BLAST application model (§4 of the paper, Figure 3, Table 1,
//! Figure 4).
//!
//! # Calibration
//!
//! The paper does not publish per-stage BLAST rates (they come from
//! Faber et al. [12]), so the stage parameters below are *calibrated*
//! to reproduce the published aggregates exactly (see DESIGN.md §5):
//!
//! * isolated normalized bottleneck rates 350 / 500 / 704 MiB/s — the
//!   GPU seed-match stage at local 87.5 / 125 / 176 MiB/s behind the
//!   4:1 `fa2bit` normalization (NC lower bound, queueing roofline, NC
//!   upper bound of Table 1);
//! * job-aggregation latency `T_tot ≈ 45 ms`, dominated by the FPGA
//!   block collection and the GPU batch composer (node E of Figure 3),
//!   reproducing `d ≈ 46.9 ms` and `x ≈ 20.6 MiB`;
//! * a *deployed* rate set for the simulator: [12] reports the real
//!   deployment ran ~30 % below the isolated-measurement roofline, and
//!   the paper's simulator (calibrated to deployment) lands at
//!   353 MiB/s — so the simulated seed-match stage runs at local
//!   86 / 88.75 / 91.5 MiB/s with dispatch overheads folded into the
//!   rates (zero standalone latency).
//!
//! The model's arrival envelope (425 MiB/s) exceeds the service rate:
//! the system operates in the paper's §3 overload regime, where the
//! backlog and delay figures are the closed-form heuristics. The
//! simulator drives at 356 MiB/s — just above the deployed bottleneck
//! capacity (≈354.8 MiB/s), the near-critical point the measured
//! deployment ran at.

use nc_core::num::Rat;
use nc_core::pipeline::{Node, NodeKind, Pipeline, PipelineModel, Source, StageRates};
use nc_core::units::{kib, mib, mib_per_s};
use nc_streamsim::{simulate, SimConfig, SimResult};

use crate::paper;
use crate::report::{BoundsReport, FigureSeries, ThroughputRow};

/// Seconds, from milliseconds.
fn ms(x: f64) -> Rat {
    nc_core::units::millis(x)
}

fn node(
    name: &str,
    kind: NodeKind,
    rates_mib: (f64, f64, f64),
    latency_ms: f64,
    job_in: Rat,
    job_out: Rat,
) -> Node {
    Node::new(
        name,
        kind,
        StageRates::new(
            mib_per_s(rates_mib.0),
            mib_per_s(rates_mib.1),
            mib_per_s(rates_mib.2),
        ),
        ms(latency_ms),
        job_in,
        job_out,
    )
}

/// The model's arrival envelope: 425 MiB/s of FASTA data in 1 MiB
/// bursts (the FPGA ingest capability).
pub fn source() -> Source {
    Source {
        rate: mib_per_s(425.0),
        burst: mib(1),
    }
}

/// The simulator's sustained drive: 356 MiB/s, just above the deployed
/// bottleneck capacity (harmonic mean of the deployed seed-match rates
/// ≈ 354.8 MiB/s normalized), so the run operates at the near-critical
/// point the measured deployment ran at.
pub fn sim_source() -> Source {
    Source {
        rate: mib_per_s(356.0),
        burst: mib(1),
    }
}

fn stages(seed_match_rates: (f64, f64, f64), gpu_latency_ms: f64, io_latency: bool) -> Vec<Node> {
    let l = |x: f64| if io_latency { x } else { 0.0 };
    vec![
        // FPGA fa2bit: 4:1 compression of FASTA to 2-bit (Figure 3).
        node(
            "fa2bit",
            NodeKind::Compute,
            (800.0, 900.0, 1000.0),
            l(1.0),
            mib(2),
            kib(512),
        ),
        // Node D: decomposes FPGA blocks for network delivery.
        node(
            "decompose",
            NodeKind::Compute,
            (300.0, 350.0, 400.0),
            l(0.2),
            kib(64),
            kib(64),
        ),
        // Host-to-host network link (10 GbE payload rate).
        node(
            "network",
            NodeKind::NetworkLink,
            (1178.0, 1178.0, 1178.0),
            l(1.0),
            kib(64),
            kib(64),
        ),
        // Node E: composes larger blocks for delivery to the GPU.
        node(
            "compose",
            NodeKind::Compute,
            (500.0, 550.0, 600.0),
            l(3.0),
            kib(768),
            kib(768),
        ),
        // GPU Mercator stages.
        node(
            "seed_match",
            NodeKind::Compute,
            seed_match_rates,
            l(gpu_latency_ms),
            kib(768),
            kib(192),
        ),
        node(
            "seed_enum",
            NodeKind::Compute,
            (100.0, 120.0, 140.0),
            l(gpu_latency_ms),
            kib(192),
            kib(384),
        ),
        node(
            "small_ext",
            NodeKind::Compute,
            (80.0, 90.0, 100.0),
            l(gpu_latency_ms),
            kib(384),
            kib(48),
        ),
        node(
            "ungapped_ext",
            NodeKind::Compute,
            (30.0, 35.0, 40.0),
            l(gpu_latency_ms),
            kib(48),
            kib(12),
        ),
    ]
}

/// Pipeline parameterized from **isolated** stage measurements — the
/// input to the network-calculus model and the queueing baseline.
pub fn isolated_pipeline() -> Pipeline {
    Pipeline::new(
        "BLAST (isolated measurements)",
        source(),
        stages((87.5, 125.0, 176.0), 7.0, true),
    )
}

/// Pipeline parameterized from **deployed** stage timings — the input
/// to the discrete-event simulation (dispatch overheads folded into the
/// measured rates, per the calibration note in the module docs).
pub fn deployed_pipeline() -> Pipeline {
    Pipeline::new(
        "BLAST (deployed timings)",
        sim_source(),
        stages((86.0, 88.75, 91.5), 0.0, false),
    )
}

/// Simulation configuration: a 1 GiB database scan (long enough that
/// pipeline fill/drain boundary effects stay below 1%). Queues are
/// unbounded like the paper's simulator (overflow handling is its
/// stated future work); the near-critical drive keeps them small.
pub fn sim_config(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        total_input: 1 << 30,
        source_chunk: Some(1 << 20),
        queue_capacity: None,
        queue_capacities: None,
        trace: true,
        service_model: nc_streamsim::ServiceModel::Uniform,
        fast_forward: true,
        faults: None,
        workers: None,
    }
}

/// Degraded-mode scenario (DESIGN.md §11, EXPERIMENTS.md §E-faults):
/// the deployed pipeline at a reduced 250 MiB/s drive — the degraded
/// bottleneck is ≈310 MiB/s normalized, so the faulted system stays
/// underloaded and the degraded bounds finite — with a 10 % GPU rate
/// derate on seed-match (thermal capping), a 2 ms-per-40 ms stall on
/// the batch composer (host paging), and a single 50 ms transient
/// outage on the network link.
pub fn faulted_pipeline() -> Pipeline {
    use nc_core::FaultModel;
    let mut p = deployed_pipeline();
    p.source = Source {
        rate: mib_per_s(250.0),
        burst: mib(1),
    };
    p.nodes[2].fault = Some(FaultModel::TransientOutage { duration: ms(50.0) });
    p.nodes[3].fault = Some(FaultModel::PeriodicStall {
        budget: ms(2.0),
        period: ms(40.0),
    });
    p.nodes[4].fault = Some(FaultModel::RateDerate {
        delta: Rat::new(1, 10),
    });
    p
}

/// Input volume of the faulted run: 256 MiB keeps the run ≈1 s long —
/// two orders above the largest fault window, so long-run throughput
/// is meaningful, while staying cheap enough for the test suite.
pub const FAULTED_TOTAL: u64 = 256 << 20;

/// The simulation realization of [`faulted_pipeline`]'s hypotheses
/// (blocking recovery, outage placement seeded within the horizon).
pub fn faulted_sim_config(seed: u64) -> SimConfig {
    let horizon = FAULTED_TOTAL as f64 / mib_per_s(250.0).to_f64();
    let schedule = nc_streamsim::FaultSchedule::from_pipeline(&faulted_pipeline(), seed, horizon);
    SimConfig {
        total_input: FAULTED_TOTAL,
        faults: Some(schedule),
        workers: None,
        ..sim_config(seed)
    }
}

/// Full §4 reproduction: Table 1, the delay/backlog findings, and the
/// Figure 4 series.
pub struct BlastReproduction {
    /// Network-calculus model built from the isolated pipeline.
    pub model: PipelineModel,
    /// Simulation of the deployed pipeline.
    pub sim: SimResult,
    /// Table 1 rows (paper values attached).
    pub table1: Vec<ThroughputRow>,
    /// §4.2 delay/backlog comparison.
    pub bounds: BoundsReport,
}

/// Run the complete BLAST reproduction.
pub fn reproduce(seed: u64) -> BlastReproduction {
    let model = isolated_pipeline().build_model();
    let sim = simulate(&deployed_pipeline(), &sim_config(seed));

    const MIB: f64 = 1048576.0;
    let nc_upper = model.bottleneck_rate_max.to_f64() / MIB;
    let nc_lower = model.bottleneck_rate_min.to_f64() / MIB;
    let queueing = queueing_prediction(&model);
    let table1 = vec![
        ThroughputRow {
            source: "Network calculus upper bound".into(),
            ours_mib_s: nc_upper,
            paper_mib_s: Some(paper::table1::NC_UPPER),
        },
        ThroughputRow {
            source: "Network calculus lower bound".into(),
            ours_mib_s: nc_lower,
            paper_mib_s: Some(paper::table1::NC_LOWER),
        },
        ThroughputRow {
            source: "Discrete-event simulation model".into(),
            ours_mib_s: sim.throughput / MIB,
            paper_mib_s: Some(paper::table1::DES),
        },
        ThroughputRow {
            source: "Queueing theory prediction [12]".into(),
            ours_mib_s: queueing,
            paper_mib_s: Some(paper::table1::QUEUEING),
        },
        ThroughputRow {
            source: "Measured throughput [12] (paper)".into(),
            ours_mib_s: paper::table1::MEASURED,
            paper_mib_s: Some(paper::table1::MEASURED),
        },
    ];

    let bounds = BoundsReport {
        delay_bound_s: model.heuristic_delay().to_f64(),
        backlog_bound_bytes: model.heuristic_backlog().to_f64(),
        sim_delay_min_s: sim.delay_min,
        sim_delay_max_s: sim.delay_max,
        sim_backlog_bytes: sim.peak_backlog,
        paper_delay_bound_s: paper::blast_bounds::DELAY_BOUND,
        paper_backlog_bound_bytes: paper::blast_bounds::BACKLOG_BOUND,
        paper_sim_delay_s: (
            paper::blast_bounds::SIM_DELAY_MIN,
            paper::blast_bounds::SIM_DELAY_MAX,
        ),
        paper_sim_backlog_bytes: paper::blast_bounds::SIM_BACKLOG,
    };

    BlastReproduction {
        model,
        sim,
        table1,
        bounds,
    }
}

/// The queueing-theory roofline of [12]: the smallest normalized
/// *average* stage rate (offered load excluded — the roofline states
/// the application's capability).
pub fn queueing_prediction(model: &PipelineModel) -> f64 {
    let stages: Vec<nc_queueing::TandemStage> = model
        .per_node
        .iter()
        .map(|n| nc_queueing::TandemStage {
            name: n.name.clone(),
            rate: n.rate_avg.to_f64(),
        })
        .collect();
    let a = nc_queueing::analyze_tandem(1e15, &stages, (1u64 << 20) as f64).expect("valid tandem");
    a.roofline / 1048576.0
}

/// Figure 4: α(t), β(t), α*(t) and the simulated stairstep.
pub fn figure4(repro: &BlastReproduction, samples: usize) -> FigureSeries {
    curve_figure("fig4", &repro.model, &repro.sim, samples)
}

pub(crate) fn curve_figure(
    name: &str,
    model: &PipelineModel,
    sim: &SimResult,
    samples: usize,
) -> FigureSeries {
    let t_max = Rat::from_f64(sim.makespan.max(1e-6));
    let sample = |c: &nc_core::Curve| -> Vec<(f64, f64)> {
        c.sample(t_max, samples)
            .into_iter()
            .map(|(t, v)| (t.to_f64(), v.to_f64()))
            .collect()
    };
    // In the overload regime the exact α* = (α⊗γ)⊘β is infinite; the
    // paper plots the §3 closed-form heuristic LB(R_α, b + R_α·T_tot)
    // instead (the same hypothesis behind its finite backlog/delay
    // estimates).
    let alpha_star = match nc_core::bounds::classify_regime(&model.arrival, &model.service) {
        nc_core::Regime::Overloaded => {
            let rate = match model.arrival.ultimate_slope() {
                nc_core::Value::Finite(r) => r,
                _ => Rat::ZERO,
            };
            nc_core::curve::shapes::leaky_bucket(rate, model.heuristic_backlog())
        }
        _ => model.output_bound(),
    };
    // Decimate the sim trace to a plottable size.
    let stride = (sim.trace_out.len() / (samples * 4)).max(1);
    let sim_pts: Vec<(f64, f64)> = sim.trace_out.iter().step_by(stride).copied().collect();
    FigureSeries {
        name: name.into(),
        alpha: sample(&model.arrival),
        beta: sample(&model.service),
        alpha_star: sample(&alpha_star),
        sim: sim_pts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_core::Regime;

    const MIB: f64 = 1048576.0;

    #[test]
    fn isolated_model_matches_table1_bounds() {
        let m = isolated_pipeline().build_model();
        // Calibrated: 350 / 500 / 704 MiB/s normalized bottlenecks.
        assert!((m.bottleneck_rate_min.to_f64() / MIB - 350.0).abs() < 0.5);
        assert!((m.bottleneck_rate_avg.to_f64() / MIB - 500.0).abs() < 0.5);
        assert!((m.bottleneck_rate_max.to_f64() / MIB - 704.0).abs() < 0.5);
        // Overload regime: offered 425 > deployed service — the paper's
        // §3 discussion case.
        assert_eq!(m.regime(), Regime::Overloaded);
    }

    #[test]
    fn normalization_follows_figure3_job_ratios() {
        let m = isolated_pipeline().build_model();
        let norms: Vec<f64> = m
            .per_node
            .iter()
            .map(|n| n.normalization.to_f64())
            .collect();
        // fa2bit at 1, everything after the 4:1 at 4, then the GPU
        // filters expand the factor further.
        assert_eq!(norms[0], 1.0);
        assert_eq!(norms[1], 4.0);
        assert_eq!(norms[4], 4.0);
        assert_eq!(norms[5], 16.0); // after seed_match 4:1 volume filter
        assert_eq!(norms[6], 8.0); // seed_enum doubles volume
        assert_eq!(norms[7], 64.0);
    }

    #[test]
    fn heuristic_bounds_near_paper() {
        let m = isolated_pipeline().build_model();
        let d = m.heuristic_delay().to_f64();
        let x = m.heuristic_backlog().to_f64();
        assert!(
            (d - paper::blast_bounds::DELAY_BOUND).abs() / paper::blast_bounds::DELAY_BOUND < 0.10,
            "delay bound {d} vs paper {}",
            paper::blast_bounds::DELAY_BOUND
        );
        assert!(
            (x - paper::blast_bounds::BACKLOG_BOUND).abs() / paper::blast_bounds::BACKLOG_BOUND
                < 0.10,
            "backlog bound {x} vs paper {}",
            paper::blast_bounds::BACKLOG_BOUND
        );
    }

    #[test]
    fn deployed_sim_reproduces_measured_throughput() {
        let r = simulate(&deployed_pipeline(), &sim_config(7));
        let thr = r.throughput / MIB;
        assert!(
            (thr - paper::table1::MEASURED).abs() / paper::table1::MEASURED < 0.03,
            "sim throughput {thr} vs measured 355"
        );
    }

    #[test]
    fn queueing_prediction_matches_roofline() {
        let m = isolated_pipeline().build_model();
        let q = queueing_prediction(&m);
        assert!((q - paper::table1::QUEUEING).abs() < 1.0, "queueing {q}");
    }

    #[test]
    fn faulted_blast_sim_within_degraded_bounds() {
        use nc_core::Regime;
        let model = faulted_pipeline().build_model();
        assert_eq!(model.regime(), Regime::Underloaded);
        let d = model.delay_bound_concat().as_finite().unwrap().to_f64();
        let x = model.backlog_bound_concat().as_finite().unwrap().to_f64();
        let r = simulate(&faulted_pipeline(), &faulted_sim_config(9));
        assert!(r.delay_max <= d * (1.0 + 1e-6), "{} > {d}", r.delay_max);
        assert!(
            r.peak_backlog <= x * (1.0 + 1e-6) + 1.0,
            "{} > {x}",
            r.peak_backlog
        );
        // The degraded guaranteed rate still lower-bounds throughput on
        // this long (≈1 s, fill/drain-amortized) run.
        let tb = model.throughput_over(nc_core::num::Rat::from_f64(r.makespan));
        assert!(
            r.throughput >= tb.lower.to_f64() * (1.0 - 1e-6),
            "throughput {} below degraded NC lower bound {}",
            r.throughput,
            tb.lower.to_f64()
        );
    }

    #[test]
    fn full_reproduction_consistency() {
        let r = reproduce(42);
        // Errors under 15% for every row with a paper value.
        for row in &r.table1 {
            if let Some(e) = row.rel_error() {
                assert!(e.abs() < 0.15, "{}: {:+.1}%", row.source, e * 100.0);
            }
        }
        // The paper's corroboration claim holds in our reproduction.
        assert!(
            r.bounds.sim_within_bounds(),
            "sim delay {} / backlog {} vs bounds {} / {}",
            r.bounds.sim_delay_max_s,
            r.bounds.sim_backlog_bytes,
            r.bounds.delay_bound_s,
            r.bounds.backlog_bound_bytes,
        );
        // Figure 4: the stairstep stays between β and α*.
        let fig = figure4(&r, 64);
        assert!(fig.sim_between_bounds(1024.0));
    }
}

//! The tracked performance baseline.
//!
//! Times the paper-reproduction binaries end to end (`table1`,
//! `table3`, `fig4`, `fig10`, `montecarlo`, `overload`, `sweep`), the
//! min-plus kernel fast paths against their reference implementations,
//! the simulation scaling layer (thinned event path vs the frozen
//! reference engine; deterministic cycle-jump on vs off), the scale
//! simulation rows (64 MiB / 1 GiB stochastic, 16 GiB deterministic),
//! the batch sweep engine (cached + parallel vs serial uncached,
//! with result-equality asserted and cache-hit counts recorded), and
//! the stage-parallel PDES engine (DESIGN.md §12) across worker counts
//! against the sequential thinned engine, the fleet-throughput row
//! (10³ independent seeded tenant simulations sharing one pooled
//! arena), and the admission-control engine (DESIGN.md §13 — the warm
//! incremental decision path, a full trace replay, and the cold-start
//! full-recompute ablation), the striped-fleet row (tenants striped
//! over OS workers, one arena per worker), and the watermark
//! publication-batching ablation (`NC_PUB_QUANTUM` 256 vs 1, with
//! publish counts), then writes the whole snapshot to `BENCH_6.json`
//! at the workspace root — next to the earlier PRs'
//! `BENCH_1.json`–`BENCH_5.json` — so perf regressions show up in
//! review diffs.
//!
//! The snapshot records `host_cpus`: parallel-engine rows are only
//! meaningful relative to the cores available when they were taken (on
//! a single-vCPU host every worker count serializes and the scaling
//! rows measure synchronization overhead, not speedup).
//!
//! Run with `cargo run --release -p nc-bench --bin perfbase`. Set
//! `PERFBASE_OUT=/path/to.json` to redirect the snapshot (used by
//! `scripts/perfgate.sh` so gate runs never clobber the committed
//! baseline).

use std::process::{Command, Stdio};
use std::time::Instant;

use nc_apps::{bitw, blast};
use nc_core::curve::{shapes, Curve};
use nc_core::num::{rat, Rat};
use nc_core::ops::{
    min_plus_conv, min_plus_conv_general, min_plus_deconv, min_plus_deconv_general,
};
use nc_streamsim::{simulate, simulate_in, simulate_reference, ServiceModel, SimArena};
use serde::Serialize;

#[derive(Serialize)]
struct BinTime {
    bin: String,
    /// Best-of-2 wall time of one full run, seconds.
    wall_s: f64,
}

#[derive(Serialize)]
struct Ablation {
    what: String,
    fast_s: f64,
    reference_s: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct SimTime {
    what: String,
    events: u64,
    per_run_s: f64,
}

#[derive(Serialize)]
struct SweepBench {
    what: String,
    points: usize,
    /// Best-of-3 wall time of `nc_sweep::run` (parallel, per-worker
    /// caches), seconds.
    cached_s: f64,
    /// Best-of-2 wall time of `nc_sweep::run_serial_uncached` (the
    /// status-quo loop), seconds.
    uncached_serial_s: f64,
    speedup: f64,
    /// Merged cache counters of one cached run.
    cache: nc_core::cache::CacheStats,
}

#[derive(Serialize)]
struct ParScalingRow {
    what: String,
    /// `0` encodes the sequential thinned engine (`workers: None`).
    workers: usize,
    per_run_s: f64,
    /// Sequential wall time over this row's (>1 = faster than the
    /// sequential engine).
    speedup_vs_seq: f64,
}

#[derive(Serialize)]
struct PublishRow {
    what: String,
    /// Events per watermark publication (`NC_PUB_QUANTUM`).
    quantum: u32,
    /// Link publications (flushes) during the timed run.
    publishes: u64,
    per_run_s: f64,
}

#[derive(Serialize)]
struct AdmissionRow {
    what: String,
    /// Decisions per measured unit (pair, trace, or single call).
    decisions: u64,
    per_decision_s: f64,
    decisions_per_s: f64,
}

#[derive(Serialize)]
struct Baseline {
    schema: &'static str,
    command: &'static str,
    /// Cores available when the snapshot was taken — the context the
    /// `par_scaling` rows must be read in.
    host_cpus: usize,
    bins: Vec<BinTime>,
    sims: Vec<SimTime>,
    admission: Vec<AdmissionRow>,
    ablations: Vec<Ablation>,
    sweeps: Vec<SweepBench>,
    par_scaling: Vec<ParScalingRow>,
    publish_ablation: Vec<PublishRow>,
}

fn lb(r: i64, b: i64) -> Curve {
    shapes::leaky_bucket(Rat::int(r), Rat::int(b))
}
fn rl(r: i64, t: i64) -> Curve {
    shapes::rate_latency(Rat::int(r), Rat::int(t))
}

/// Noise-robust seconds per iteration of `f` (after a 10% warmup): the
/// per-iteration mean of the fastest of five equal batches. Taking the
/// minimum matches `run_bin`'s best-of-2 policy — scheduler noise on a
/// shared single-vCPU box is strictly one-sided, so the fastest batch
/// is the least-contaminated estimate.
fn per_iter(iters: u32, mut f: impl FnMut()) -> f64 {
    for _ in 0..iters / 10 {
        f();
    }
    let batch = (iters / 5).max(1);
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64() / batch as f64);
    }
    best
}

fn ablation(
    what: &str,
    iters: u32,
    mut fast: impl FnMut(),
    mut reference: impl FnMut(),
) -> Ablation {
    let fast_s = per_iter(iters, &mut fast);
    let reference_s = per_iter(iters, &mut reference);
    let a = Ablation {
        what: what.into(),
        fast_s,
        reference_s,
        speedup: reference_s / fast_s.max(f64::MIN_POSITIVE),
    };
    println!(
        "  {:<36} fast {:>12.3e}s  reference {:>12.3e}s  speedup {:>6.2}x",
        a.what, a.fast_s, a.reference_s, a.speedup
    );
    a
}

/// Best-of-2 wall time of one run of a sibling repro binary.
fn run_bin(name: &str) -> BinTime {
    let exe = std::env::current_exe().expect("current exe");
    let path = exe.parent().expect("bin dir").join(name);
    assert!(
        path.exists(),
        "{} not built — run `cargo build --release -p nc-bench --bins` first",
        path.display()
    );
    let mut best = f64::INFINITY;
    for _ in 0..2 {
        let t = Instant::now();
        let status = Command::new(&path)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .unwrap_or_else(|e| panic!("spawn {name}: {e}"));
        assert!(status.success(), "{name} exited with {status}");
        best = best.min(t.elapsed().as_secs_f64());
    }
    println!("  {name:<36} {best:>10.3}s");
    BinTime {
        bin: name.into(),
        wall_s: best,
    }
}

fn main() {
    // Make sure the sibling repro binaries exist (cheap when cached).
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let status = Command::new(cargo)
        .args(["build", "--release", "-p", "nc-bench", "--bins"])
        .status()
        .expect("spawn cargo build");
    assert!(status.success(), "building repro binaries failed");

    println!("perf baseline: repro binaries (best of 2)");
    let bins = [
        "table1",
        "table3",
        "fig4",
        "fig10",
        "montecarlo",
        "overload",
        "sweep",
        "admit",
    ]
    .iter()
    .map(|b| run_bin(b))
    .collect();

    println!("perf baseline: kernel fast paths vs reference");
    let mut ablations = Vec::new();

    // Convex ⊗ convex: slope merge vs strategy envelope.
    let cx = rl(1, 0).max(&rl(4, 3)).max(&rl(9, 6));
    let cy = rl(2, 1).max(&rl(6, 5)).max(&rl(12, 9));
    ablations.push(ablation(
        "conv convex x convex",
        20_000,
        || {
            std::hint::black_box(min_plus_conv(&cx, &cy));
        },
        || {
            std::hint::black_box(min_plus_conv_general(&cx, &cy));
        },
    ));

    // Concave ⊗ concave: offset-aware min vs strategy envelope.
    let kx = lb(2, 5).min(&lb(1, 9));
    let ky = lb(3, 4).min(&lb(1, 12));
    ablations.push(ablation(
        "conv concave x concave",
        20_000,
        || {
            std::hint::black_box(min_plus_conv(&kx, &ky));
        },
        || {
            std::hint::black_box(min_plus_conv_general(&kx, &ky));
        },
    ));

    // Mixed shapes: pruned strategy scan vs unpruned.
    let sx = shapes::truncated_staircase(Rat::int(3), Rat::int(2), 16);
    ablations.push(ablation(
        "conv staircase16 (pruned)",
        2_000,
        || {
            std::hint::black_box(min_plus_conv(&sx, &sx));
        },
        || {
            std::hint::black_box(min_plus_conv_general(&sx, &sx));
        },
    ));

    // Deconvolution closed form.
    let dy = rl(3, 4);
    ablations.push(ablation(
        "deconv concave / rate-latency",
        20_000,
        || {
            std::hint::black_box(min_plus_deconv(&kx, &dy));
        },
        || {
            std::hint::black_box(min_plus_deconv_general(&kx, &dy));
        },
    ));

    // Rational ops: i64 lane vs checked reference route.
    let (ra, rb) = (rat(355, 113), rat(-217, 990));
    ablations.push(ablation(
        "Rat add (i64 lane)",
        2_000_000,
        || {
            std::hint::black_box(std::hint::black_box(ra) + std::hint::black_box(rb));
        },
        || {
            std::hint::black_box(
                std::hint::black_box(ra)
                    .checked_add(std::hint::black_box(rb))
                    .unwrap(),
            );
        },
    ));
    ablations.push(ablation(
        "Rat mul (i64 lane)",
        2_000_000,
        || {
            std::hint::black_box(std::hint::black_box(ra) * std::hint::black_box(rb));
        },
        || {
            std::hint::black_box(
                std::hint::black_box(ra)
                    .checked_mul(std::hint::black_box(rb))
                    .unwrap(),
            );
        },
    ));

    // Replication loops: pooled arena vs fresh storage per run. BLAST
    // moves 64 MiB in ~700 MiB-sized jobs; BITW pushes ~7 events per
    // KiB and is the event-bound workload.
    let p = blast::deployed_pipeline();
    let mut cfg = blast::sim_config(1);
    cfg.total_input = 64 << 20;
    let mut arena = SimArena::new();
    ablations.push(ablation(
        "streamsim BLAST 64 MiB (pooled)",
        400,
        || {
            std::hint::black_box(simulate_in(&mut arena, &p, &cfg));
        },
        || {
            std::hint::black_box(simulate(&p, &cfg));
        },
    ));

    let pw = bitw::sim_pipeline();
    let mut cfgw = bitw::sim_config(1);
    let mut arena_w = SimArena::new();
    ablations.push(ablation(
        "streamsim BITW 2 MiB (pooled)",
        100,
        || {
            std::hint::black_box(simulate_in(&mut arena_w, &pw, &cfgw));
        },
        || {
            std::hint::black_box(simulate(&pw, &cfgw));
        },
    ));

    // Simulation scaling layer (DESIGN.md §10): the thinned stochastic
    // event path against the frozen pre-PR reference engine (results
    // are bit-identical — asserted by the engine-equivalence property
    // tests), and the deterministic cycle-jump fast-forward against
    // exact stepping on a bounded-queue 1 GiB run.
    let mut cfg_thin = bitw::sim_config(1);
    cfg_thin.trace = false;
    cfg_thin.total_input = 64 << 20;
    ablations.push(ablation(
        "streamsim thinned vs reference (64 MiB)",
        20,
        || {
            std::hint::black_box(simulate(&pw, &cfg_thin));
        },
        || {
            std::hint::black_box(simulate_reference(&pw, &cfg_thin));
        },
    ));
    let mut cfg_ff = cfg_thin.clone();
    cfg_ff.service_model = ServiceModel::Deterministic;
    cfg_ff.queue_capacity = Some(64 << 10);
    cfg_ff.total_input = 1 << 30;
    let mut cfg_noff = cfg_ff.clone();
    cfg_noff.fast_forward = false;
    ablations.push(ablation(
        "det cycle-jump on vs off (1 GiB)",
        5,
        || {
            std::hint::black_box(simulate(&pw, &cfg_ff));
        },
        || {
            std::hint::black_box(simulate(&pw, &cfg_noff));
        },
    ));

    // End-to-end simulation runs: the tracked wall-time trajectory for
    // the DES + streamsim hot path. The BITW 64 MiB and 1 GiB rows run
    // with `trace: false` — the scale setting, where live memory is the
    // in-flight input window, not the run length. The traced 64 MiB row
    // keeps the figure configuration for continuity with BENCH_2. The
    // 16 GiB row is deterministic with bounded queues, so the periodic
    // steady state is advanced in closed form by the cycle-jump
    // fast-forward (its `events` count the virtual events skipped).
    println!("perf baseline: scale simulation runs");
    let mut sims = Vec::new();
    cfgw.total_input = 64 << 20;
    let mut cfg_1g = cfg_thin.clone();
    cfg_1g.total_input = 1 << 30;
    let mut cfg_det = cfg_ff.clone();
    cfg_det.total_input = 16u64 << 30;
    let rows = [
        ("streamsim BITW 64 MiB", &pw, &cfg_thin),
        ("streamsim BITW 64 MiB (traced)", &pw, &cfgw),
        ("streamsim BITW 1 GiB", &pw, &cfg_1g),
        ("streamsim BITW 16 GiB det (cycle-jump)", &pw, &cfg_det),
        ("streamsim BLAST 64 MiB", &p, &cfg),
    ];
    // Pick iterations from one measured run so the 16 GiB row (~13 ms
    // via fast-forward despite 117M virtual events) is not starved,
    // then sample each row in three round-robin passes and keep the
    // minimum — scheduler-noise windows on this box last seconds, so
    // back-to-back batches alone can sit entirely inside one.
    let stats: Vec<(u64, u32)> = rows
        .iter()
        .map(|(_, pipe, scfg)| {
            let t = Instant::now();
            let events = simulate(pipe, scfg).events;
            let once = t.elapsed().as_secs_f64();
            (events, ((0.4 / once.max(1e-6)) as u32).clamp(3, 400))
        })
        .collect();
    let mut best = vec![f64::INFINITY; rows.len()];
    for _ in 0..3 {
        for (idx, (_, pipe, scfg)) in rows.iter().enumerate() {
            let per = per_iter(stats[idx].1, || {
                std::hint::black_box(simulate(pipe, scfg));
            });
            best[idx] = best[idx].min(per);
        }
    }
    for (idx, (what, _, _)) in rows.iter().enumerate() {
        let (events, _) = stats[idx];
        let per_run_s = best[idx];
        println!("  {what:<40} {per_run_s:>12.3e}s  ({events} events)");
        sims.push(SimTime {
            what: (*what).into(),
            events,
            per_run_s,
        });
    }

    // Fleet-throughput row: 10^3 independent seeded tenant pipelines
    // batch-simulated back to back through one pooled arena (the
    // admission fleet at simulation fidelity). Aggregate events/s is
    // the tracked figure; the row lives in `sims` so the perf gate
    // compares it like any other simulation row.
    println!("perf baseline: fleet batch simulation (1000 tenants, pooled arena)");
    let fleet_n: u64 = 1000;
    let mut arena_fleet = SimArena::new();
    let mut fleet_events = 0u64;
    let run_fleet = |arena: &mut SimArena| {
        let mut events = 0u64;
        for tenant in 0..fleet_n {
            let mut c = bitw::sim_config(tenant + 1);
            c.trace = false;
            c.total_input = 256 << 10;
            events += simulate_in(arena, &pw, &c).events;
        }
        events
    };
    let mut fleet_best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        fleet_events = run_fleet(&mut arena_fleet);
        fleet_best = fleet_best.min(t.elapsed().as_secs_f64());
    }
    println!(
        "  {:<40} {:>12.3e}s  ({} events, {:.3e} events/s)",
        "streamsim fleet 1000 tenants x 256 KiB",
        fleet_best,
        fleet_events,
        fleet_events as f64 / fleet_best
    );
    sims.push(SimTime {
        what: "streamsim fleet 1000 tenants x 256 KiB (pooled)".into(),
        events: fleet_events,
        per_run_s: fleet_best,
    });

    // Admission engine (DESIGN.md §13): the warm incremental decision
    // path (the tentpole's >=1e5 decisions/s/core target), a full
    // 4-tenant trace replay with onboarding amortized in, and the
    // cold-start oracle (full model rebuild + general curve algebra
    // per decision) as the ablation baseline.
    println!("perf baseline: admission engine (incremental vs cold start)");
    use nc_bench::admitload;
    let mut admission = Vec::new();
    let adm_cfg = admitload::request_config(42, 1, 200);
    let mut adm_shard = admitload::build_shard(&adm_cfg, &[0]);
    let adm_tid = adm_shard.tenants[0].1;
    let adm_class = adm_shard.classes[0];
    let pair_s = per_iter(200_000, || {
        let d = adm_shard
            .engine
            .decide(adm_tid, adm_class, 0)
            .expect("in range");
        if let Some(pl) = d.placement() {
            adm_shard
                .engine
                .depart(adm_tid, adm_class, 0, pl)
                .expect("resident flow");
        }
        std::hint::black_box(d);
    });
    let warm_per_decision = pair_s / 2.0;

    let adm_trace_cfg = admitload::request_config(7, 4, 250);
    let adm_trace = nc_workloads::requests::generate(&adm_trace_cfg);
    let adm_tenants: Vec<usize> = (0..4).collect();
    let (_, adm_stats) = admitload::replay_shard(&adm_trace_cfg, &adm_trace, &adm_tenants);
    let replay_s = per_iter(30, || {
        std::hint::black_box(admitload::replay_shard(
            &adm_trace_cfg,
            &adm_trace,
            &adm_tenants,
        ));
    });
    let replay_per_decision = replay_s / adm_stats.decisions as f64;

    let oracle_s = admitload::oracle_per_decision_s(&adm_trace_cfg, 0, 200);

    for (what, decisions, per_decision_s) in [
        ("admit+depart pair, warm engine", 2u64, warm_per_decision),
        (
            "trace replay, 4 tenants x 250 arrivals (onboarding included)",
            adm_stats.decisions,
            replay_per_decision,
        ),
        ("cold-start full recompute (oracle)", 1, oracle_s),
    ] {
        let row = AdmissionRow {
            what: what.into(),
            decisions,
            per_decision_s,
            decisions_per_s: 1.0 / per_decision_s.max(f64::MIN_POSITIVE),
        };
        println!(
            "  {:<58} {:>10.3e}s/decision  ({:.3e}/s)",
            row.what, row.per_decision_s, row.decisions_per_s
        );
        admission.push(row);
    }
    let adm_ablation = Ablation {
        what: "admission incremental vs full recompute".into(),
        fast_s: warm_per_decision,
        reference_s: oracle_s,
        speedup: oracle_s / warm_per_decision.max(f64::MIN_POSITIVE),
    };
    println!(
        "  {:<36} fast {:>12.3e}s  reference {:>12.3e}s  speedup {:>6.2}x",
        adm_ablation.what, adm_ablation.fast_s, adm_ablation.reference_s, adm_ablation.speedup
    );
    ablations.push(adm_ablation);

    // Batch sweep engine: cached + parallel fan-out vs the status-quo
    // serial uncached loop, on the tracked 16x16 BITW workload (256
    // points x 10 horizons). Result equality is asserted before timing,
    // so the speedup is apples to apples.
    println!("perf baseline: sweep engine (cached+parallel vs serial uncached)");
    let spec = nc_bench::bitw_sweep_spec(16, 16);
    let cached = nc_sweep::run(&spec);
    let uncached = nc_sweep::run_serial_uncached(&spec);
    assert_eq!(
        cached.to_csv(),
        uncached.to_csv(),
        "cached sweep must reproduce the uncached surface exactly"
    );
    // Interleave the timed runs so CPU frequency drift hits both sides
    // of the comparison equally; keep the best of each.
    let (mut cached_s, mut uncached_serial_s) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        let t = Instant::now();
        std::hint::black_box(nc_sweep::run(&spec));
        cached_s = cached_s.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        std::hint::black_box(nc_sweep::run_serial_uncached(&spec));
        uncached_serial_s = uncached_serial_s.min(t.elapsed().as_secs_f64());
    }
    let sweep = SweepBench {
        what: "BITW 16x16 block-size x PCIe egress rate, 10 horizons".into(),
        points: cached.points.len(),
        cached_s,
        uncached_serial_s,
        speedup: uncached_serial_s / cached_s.max(f64::MIN_POSITIVE),
        cache: cached.stats,
    };
    println!(
        "  {:<36} cached {:>10.3e}s  uncached {:>10.3e}s  speedup {:>6.2}x",
        sweep.what, sweep.cached_s, sweep.uncached_serial_s, sweep.speedup
    );
    println!(
        "  cache: prefix {}/{} hit/miss, ops {}/{} hit/miss, {} curves interned",
        sweep.cache.prefix_hits,
        sweep.cache.prefix_misses,
        sweep.cache.op_hits(),
        sweep.cache.op_misses(),
        sweep.cache.interned
    );
    let sweeps = vec![sweep];

    // Stage-parallel PDES engine (DESIGN.md §12) vs the sequential
    // thinned engine, on the event-bound BITW workloads. The parallel
    // engine is bit-identical across worker counts (prop_par tests),
    // so every row computes the same result; wall time is the only
    // variable. Interleaved round-robin passes, best of each.
    println!("perf baseline: stage-parallel engine scaling (host_cpus noted in snapshot)");
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut par_scaling = Vec::new();
    for (label, total) in [("BITW 64 MiB", 64u64 << 20), ("BITW 1 GiB", 1 << 30)] {
        let mut cfg_par = cfg_thin.clone();
        cfg_par.total_input = total;
        // Worker counts above the host's cores measure oversubscription,
        // not the engine — skip them (mirrors perfgate.sh / par_scaling).
        let worker_axis: Vec<Option<usize>> = [None, Some(1), Some(2), Some(4)]
            .into_iter()
            .filter(|w| match w {
                Some(n) if *n > host_cpus => {
                    println!(
                        "  skipping workers={n} (> host_cpus={host_cpus}: oversubscription, \
                         not engine scaling)"
                    );
                    false
                }
                _ => true,
            })
            .collect();
        let mut best = vec![f64::INFINITY; worker_axis.len()];
        for _ in 0..3 {
            for (slot, w) in worker_axis.iter().enumerate() {
                cfg_par.workers = *w;
                let t = Instant::now();
                std::hint::black_box(simulate(&pw, &cfg_par));
                best[slot] = best[slot].min(t.elapsed().as_secs_f64());
            }
        }
        let seq_s = best[0];
        for (slot, w) in worker_axis.iter().enumerate() {
            let row = ParScalingRow {
                what: format!("streamsim par {label}"),
                workers: w.unwrap_or(0),
                per_run_s: best[slot],
                speedup_vs_seq: seq_s / best[slot].max(f64::MIN_POSITIVE),
            };
            println!(
                "  {:<28} workers {:>3} {:>12.3e}s  vs seq {:>5.2}x",
                row.what,
                if row.workers == 0 {
                    "seq".into()
                } else {
                    row.workers.to_string()
                },
                row.per_run_s,
                row.speedup_vs_seq
            );
            par_scaling.push(row);
        }
    }

    // Watermark publication-batching ablation: the par engine at one
    // worker with the default 256-event quantum vs per-event
    // publication (`NC_PUB_QUANTUM=1`, the pre-overhaul behavior).
    // Publish counts come from the link layer's global flush counter;
    // the quantum changes publication *timing* only, never results
    // (prop_par pins bit-identity with batching active).
    println!("perf baseline: watermark publication batching (par@1, BITW 64 MiB)");
    let mut publish_ablation = Vec::new();
    {
        let mut cfg_pub = cfg_thin.clone();
        cfg_pub.total_input = 64 << 20;
        cfg_pub.workers = Some(1);
        for quantum in [256u32, 1] {
            std::env::set_var("NC_PUB_QUANTUM", quantum.to_string());
            let mut best = f64::INFINITY;
            let mut publishes = 0u64;
            for _ in 0..3 {
                nc_des::link::take_publish_count(); // drain other sections' counts
                let t = Instant::now();
                std::hint::black_box(simulate(&pw, &cfg_pub));
                let dt = t.elapsed().as_secs_f64();
                let count = nc_des::link::take_publish_count();
                if dt < best {
                    best = dt;
                    publishes = count;
                }
            }
            println!(
                "  {:<40} quantum {:>4} {:>12.3e}s  ({publishes} publishes)",
                "streamsim par@1 BITW 64 MiB", quantum, best
            );
            publish_ablation.push(PublishRow {
                what: "streamsim par@1 BITW 64 MiB".into(),
                quantum,
                publishes,
                per_run_s: best,
            });
        }
        std::env::remove_var("NC_PUB_QUANTUM");
    }

    // Striped-fleet row: the same 1000-tenant fleet, striped over OS
    // workers with one pooled arena per worker and a deterministic
    // tenant-order merge (`nc_bench::fleet`; the merged CSV is
    // byte-identical for any worker count — check.sh asserts it).
    // Worker counts beyond the host's cores are skipped like the
    // scaling rows above.
    println!("perf baseline: striped fleet (1000 tenants, one arena per worker)");
    {
        let fcfg = nc_bench::fleet::FleetConfig {
            tenants: fleet_n,
            input_bytes: 256 << 10,
        };
        for workers in [1usize, 2, 4] {
            if workers > host_cpus {
                println!(
                    "  skipping workers={workers} (> host_cpus={host_cpus}: oversubscription, \
                     not engine scaling)"
                );
                continue;
            }
            let mut best = f64::INFINITY;
            let mut events = 0u64;
            for _ in 0..3 {
                let t = Instant::now();
                let rows = nc_bench::fleet::run_striped(&fcfg, workers);
                best = best.min(t.elapsed().as_secs_f64());
                events = rows.iter().map(|r| r.events).sum();
            }
            println!(
                "  {:<40} {:>12.3e}s  ({} events, {:.3e} events/s)",
                format!("streamsim fleet striped @{workers}w"),
                best,
                events,
                events as f64 / best
            );
            sims.push(SimTime {
                what: format!("streamsim fleet 1000 tenants x 256 KiB (striped @{workers}w)"),
                events,
                per_run_s: best,
            });
        }
    }

    let baseline = Baseline {
        schema: "nc-perfbase-v6",
        command: "cargo run --release -p nc-bench --bin perfbase",
        host_cpus,
        bins,
        sims,
        admission,
        ablations,
        sweeps,
        par_scaling,
        publish_ablation,
    };
    let root = nc_bench::results_dir()
        .parent()
        .expect("workspace root")
        .to_path_buf();
    let path = match std::env::var_os("PERFBASE_OUT") {
        Some(p) => std::path::PathBuf::from(p),
        None => root.join("BENCH_6.json"),
    };
    let json = serde_json::to_string_pretty(&baseline).expect("serialize baseline");
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("[written {}]", path.display());
}

//! Microbenchmarks of the discrete-event kernel: raw event throughput,
//! queue accounting, and an M/M/1 end-to-end run — the simulator cost
//! model behind every Figure 4/10 stairstep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use nc_des::{ByteQueue, Dist, Sim, SimPool, Span, Time};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_event_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("events");
    for n in [1_000usize, 10_000, 100_000] {
        g.bench_with_input(BenchmarkId::new("chain", n), &n, |b, &n| {
            b.iter(|| {
                let mut sim = Sim::new(0u64);
                fn tick(sim: &mut Sim<u64>) {
                    sim.state += 1;
                }
                for i in 0..n {
                    sim.schedule_at(Time::secs(i as f64 * 1e-6), tick);
                }
                sim.run();
                black_box(sim.state)
            })
        });
    }
    g.finish();
}

fn bench_self_scheduling(c: &mut Criterion) {
    c.bench_function("events/self_rescheduling_50k", |b| {
        b.iter(|| {
            let mut sim = Sim::new(0u64);
            fn tick(sim: &mut Sim<u64>) {
                sim.state += 1;
                if sim.state < 50_000 {
                    sim.schedule_in(Span::secs(1e-6), tick);
                }
            }
            sim.schedule_at(Time::ZERO, tick);
            sim.run();
            black_box(sim.state)
        })
    });
}

/// Fresh calendar per replication vs pooled storage: the Monte-Carlo
/// reuse path benched against the one-shot path on an identical burst
/// of 100k pre-scheduled events.
fn bench_calendar_pool(c: &mut Criterion) {
    const N: usize = 100_000;
    fn tick(sim: &mut Sim<u64>) {
        sim.state += 1;
    }
    let mut g = c.benchmark_group("calendar");
    g.bench_function("burst_100k_fresh", |b| {
        b.iter(|| {
            let mut sim = Sim::new(0u64);
            for i in 0..N {
                sim.schedule_at(Time::secs(i as f64 * 1e-6), tick);
            }
            sim.run();
            black_box(sim.state)
        })
    });
    g.bench_function("burst_100k_pooled", |b| {
        let mut pool: SimPool<u64> = SimPool::new();
        b.iter(|| {
            let mut sim = pool.take(0u64);
            for i in 0..N {
                sim.schedule_at(Time::secs(i as f64 * 1e-6), tick);
            }
            sim.run();
            let out = sim.state;
            pool.put(sim);
            black_box(out)
        })
    });
    g.finish();
}

fn bench_queue_ops(c: &mut Criterion) {
    c.bench_function("queue/put_get_cycle", |b| {
        b.iter(|| {
            let mut q = ByteQueue::bounded(Time::ZERO, 1 << 20);
            for i in 0..1000u64 {
                let t = Time::secs(i as f64 * 1e-6);
                q.put(t, 512);
                q.get(t, 512);
            }
            black_box(q.total_out())
        })
    });
}

fn bench_distributions(c: &mut Criterion) {
    let mut g = c.benchmark_group("dist");
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    for (name, d) in [
        ("uniform", Dist::Uniform { lo: 1.0, hi: 2.0 }),
        ("exponential", Dist::Exponential { mean: 1.5 }),
        ("constant", Dist::Constant(1.0)),
    ] {
        g.bench_function(name, |b| b.iter(|| black_box(d.sample(&mut rng))));
    }
    g.finish();
}

fn bench_mm1(c: &mut Criterion) {
    c.bench_function("mm1/10k_jobs", |b| {
        b.iter(|| {
            // Inline M/M/1: measures realistic event mix (arrivals,
            // departures, stats updates).
            struct St {
                rng: ChaCha8Rng,
                arrival: Dist,
                service: Dist,
                q: u32,
                done: u32,
            }
            fn arrive(sim: &mut Sim<St>) {
                sim.state.q += 1;
                if sim.state.q == 1 {
                    depart_schedule(sim);
                }
                let d = Span::secs(sim.state.arrival.sample(&mut sim.state.rng));
                if sim.state.done < 10_000 {
                    sim.schedule_in(d, arrive);
                }
            }
            fn depart_schedule(sim: &mut Sim<St>) {
                let d = Span::secs(sim.state.service.sample(&mut sim.state.rng));
                sim.schedule_in(d, |sim| {
                    sim.state.q -= 1;
                    sim.state.done += 1;
                    if sim.state.q > 0 {
                        depart_schedule(sim);
                    }
                });
            }
            let mut sim = Sim::new(St {
                rng: ChaCha8Rng::seed_from_u64(9),
                arrival: Dist::Exponential { mean: 2.0 },
                service: Dist::Exponential { mean: 1.0 },
                q: 0,
                done: 0,
            });
            sim.schedule_at(Time::ZERO, arrive);
            sim.run();
            black_box(sim.state.done)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_event_throughput, bench_self_scheduling, bench_calendar_pool, bench_queue_ops, bench_distributions, bench_mm1
}
criterion_main!(benches);
